"""E4 — Lemma 8: storage shrinks to (2f+k) D/k after writes quiesce.

Paper claim: in a run with finitely many writes, all by correct clients,
garbage collection eventually reduces storage to one piece per object.

Reproduction nuance (recorded in EXPERIMENTS.md): under *in-order* RMW
application the residue is exactly ``(2f+k) D/k``; under arbitrary
asynchrony a write's GC can take effect before its own straggler update on
the same object, leaving that object empty — so Lemma 8 holds as an upper
bound, while readability is preserved by Invariant 1, which the bench also
checks on the final state.
"""

import pytest

from repro.analysis import format_table
from repro.registers import (
    AdaptiveRegister,
    CodedOnlyRegister,
    RegisterSetup,
    check_invariant1,
)
from repro.sim import FairScheduler, RandomScheduler
from repro.workloads import WorkloadSpec, run_register_workload

SETUP = RegisterSetup(f=2, k=3, data_size_bytes=24)  # n=7, D=192


@pytest.mark.parametrize(
    "register_cls", [AdaptiveRegister, CodedOnlyRegister], ids=lambda c: c.name
)
def test_gc_converges_to_one_piece_per_object(benchmark, record_table,
                                              register_cls):
    def run():
        results = []
        for c in (1, 3, 6):
            for scheduler_name, scheduler in (
                ("fair", FairScheduler()),
                ("random", RandomScheduler(c)),
            ):
                spec = WorkloadSpec(writers=c, writes_per_writer=2,
                                    readers=0, seed=c)
                results.append((c, scheduler_name, run_register_workload(
                    register_cls, SETUP, spec, scheduler=scheduler,
                )))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    optimum = SETUP.n * SETUP.data_size_bits // SETUP.k  # (2f+k) D/k
    rows = []
    for c, scheduler_name, result in results:
        final = result.final_bo_state_bits
        if scheduler_name == "fair":
            # FIFO application: exactly one piece per object remains.
            assert final == optimum, f"c={c}: final {final} != {optimum}"
        else:
            assert final <= optimum, f"c={c}: final {final} > {optimum}"
        assert check_invariant1(result.sim).ok
        rows.append([
            c, scheduler_name, result.peak_bo_state_bits, final, optimum,
            f"{result.peak_bo_state_bits / optimum:.1f}x",
        ])
    table = format_table(
        ["c", "scheduler", "peak(bits)", "final(bits)", "(2f+k)D/k",
         "peak/optimum"],
        rows,
    )
    record_table(f"E4_lemma8_gc_{register_cls.name}", table)
