"""E14 — the model reduction: shared memory <-> message passing.

Paper context: Section 2's fault-prone shared memory abstracts storage
nodes reached over an asynchronous network (the ABD emulation), and
Section 3.2 insists in-flight data counts as storage. This bench runs ABD
in both incarnations and compares:

* server/base-object storage at rest: identical, ``(2f+1) D`` bits;
* consistency: both histories pass the same strong-regularity checker;
* the transient channel charge: the message-passing write demonstrably
  parks ``n`` replicas in flight mid-round.
"""


from repro.analysis import format_table
from repro.msgnet import FairMsgScheduler, MsgABDSystem, RandomMsgScheduler
from repro.registers import ABDRegister, replication_setup
from repro.spec import check_strong_regularity
from repro.workloads import WorkloadSpec, run_register_workload

F = 2
DATA = 16  # D = 128 bits


def run_both():
    # Message-passing world.
    system = MsgABDSystem(f=F, data_size_bytes=DATA)
    for index in range(3):
        system.add_writer(f"w{index}", bytes([index + 1]) * DATA)
    for index in range(2):
        system.add_reader(f"r{index}")
    system.run(RandomMsgScheduler(7))
    # Shared-memory world.
    setup = replication_setup(f=F, data_size_bytes=DATA)
    spec = WorkloadSpec(writers=3, writes_per_writer=1, readers=2,
                        reads_per_reader=1, seed=7)
    shared = run_register_workload(ABDRegister, setup, spec)
    return system, shared


def test_equivalence(benchmark, record_table):
    system, shared = benchmark.pedantic(run_both, rounds=1, iterations=1)
    expected = (2 * F + 1) * DATA * 8
    msg_history_ok = check_strong_regularity(system.history()).ok
    shm_history_ok = check_strong_regularity(shared.history).ok
    rows = [
        ["message-passing", system.server_storage_bits(),
         "strongly regular" if msg_history_ok else "VIOLATION"],
        ["shared-memory", shared.final_bo_state_bits,
         "strongly regular" if shm_history_ok else "VIOLATION"],
    ]
    table = format_table(
        ["world", "storage at rest (bits)", "consistency"], rows
    )
    record_table("E14_msgnet_equivalence", table)
    assert system.server_storage_bits() == expected
    assert shared.final_bo_state_bits == expected
    assert msg_history_ok and shm_history_ok
    assert all(op.return_time is not None for op in system.ops)


def test_replicas_ride_the_network(benchmark, record_table):
    def run():
        system = MsgABDSystem(f=F, data_size_bytes=DATA)
        system.add_writer("w0", b"\xaa" * DATA)
        scheduler = FairMsgScheduler()
        peak_in_flight = 0
        for _ in range(10_000):
            peak_in_flight = max(
                peak_in_flight, system.network.storage_bits_in_flight()
            )
            action = scheduler.next_action(system.network)
            if action is None:
                break
            kind, target = action
            if kind == "deliver":
                system.network.deliver(target)
            else:
                system.network.processes[target].step()
        return system, peak_in_flight

    system, peak = benchmark.pedantic(run, rounds=1, iterations=1)
    n = 2 * F + 1
    record_table(
        "E14_msgnet_channel_peak",
        format_table(
            ["in-flight peak(bits)", "n replicas (n*D)"],
            [[peak, n * DATA * 8]],
        ),
    )
    # The write round parks one full replica per server in the channels.
    assert peak == n * DATA * 8
