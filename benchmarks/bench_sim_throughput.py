"""E12 — simulation-loop throughput: the O(1)-per-action hot path.

PRs 1-2 made encoding ~25x faster, which left the *simulation loop* as the
sweep bottleneck: per-action storage metering used to re-walk every
base-object state, applied response, and pending RMW (O(actions x state)
overall). This benchmark pins the replacement — the incremental
:class:`~repro.storage.cost.StorageLedger` plus the kernel's indexed
queues — against the full-walk reference meter on the acceptance workload
(8 writers, 8 readers, RS(k=16, n=32)) and records actions/sec for three
configurations:

* ``full-walk``  — :class:`ReferenceStorageMeter` sampled at every action:
  the pre-PR metering cost (run on the new kernel, so the measured speedup
  is a *lower bound* on the true pre-PR speedup — the old kernel also
  rebuilt sorted action queues each step);
* ``ledger``     — the production path (`run_register_workload`);
* ``kernel-only``— no metering at all: the ceiling the ledger approaches.

Both metered runs must report bit-identical peaks (measurement
invisibility), and the ledger must beat the full walk by ``--min-speedup``
(default 3.0; the acceptance bar). Results go to
``benchmarks/results/e12_sim_throughput.json`` and ``.txt``.

Two entry points:

* ``python benchmarks/bench_sim_throughput.py [--quick]`` — the script;
  ``--quick`` trims the workload for CI smoke runs and runs the ledger
  with ``audit_storage_every=1`` (ledger == full walk asserted at every
  action);
* ``pytest benchmarks/bench_sim_throughput.py`` — a fast parity smoke.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.analysis.benchgate import metric, write_bench_summary
from repro.analysis.sweeps import SweepGrid, SweepPoint, run_sweep
from repro.coding import DecodeShareCache
from repro.registers import AdaptiveRegister, RegisterSetup
from repro.sim import FairScheduler, Simulation
from repro.storage import PeakTracker, ReferenceStorageMeter, StorageMeter
from repro.workloads import WorkloadSpec, run_register_workload
from repro.workloads.runner import _build_encode_plan

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The acceptance workload: RS(k=16, n=32) via n = 2f + k with f = 8.
SETUP = RegisterSetup(f=8, k=16, data_size_bytes=4096)
SPEC = WorkloadSpec(writers=8, writes_per_writer=3, readers=8,
                    reads_per_reader=3, seed=0)
#: CI smoke workload: same register and code, quarter the clients — the
#: full-walk mode and the every-action audit both cost O(actions x state),
#: so the smoke stays a few seconds instead of ~40 s on shared runners.
QUICK_SPEC = WorkloadSpec(writers=4, writes_per_writer=1, readers=4,
                          reads_per_reader=1, seed=0)


def _manual_run(spec: WorkloadSpec, meter_cls=None):
    """Run the acceptance workload with an explicit meter choice.

    Mirrors :func:`run_register_workload` (same priming, same fair
    scheduler, hence the byte-identical action sequence) but lets the
    benchmark attach the *reference* meter — or none at all — where the
    runner always uses the ledger-backed one.
    """
    sim = Simulation(AdaptiveRegister(SETUP), keep_events=False)
    values = spec.write_values(SETUP)
    sim.encode_plan = _build_encode_plan(sim, values)
    # Match the runner's defaults exactly: all modes share the encode plan
    # AND the decode cache, so they differ only in metering.
    sim.decode_cache = DecodeShareCache(sim.scheme)
    from repro.workloads.generators import reader_name, writer_name

    for index in range(spec.writers):
        client = sim.add_client(writer_name(index))
        for value in values[writer_name(index)]:
            client.enqueue_write(value)
    for index in range(spec.readers):
        client = sim.add_client(reader_name(index))
        for _ in range(spec.reads_per_reader):
            client.enqueue_read()
    tracker = None
    if meter_cls is not None:
        tracker = PeakTracker(meter_cls(sim))
    run = sim.run(FairScheduler(), on_action=tracker)
    assert run.quiescent, "benchmark workload failed to quiesce"
    return run, tracker


def _time_mode(label: str, spec: WorkloadSpec, repeats: int, runner):
    """Best-of-``repeats`` wall-clock; returns (actions/sec, peaks)."""
    best_elapsed = None
    steps = None
    peaks = None
    for _ in range(repeats):
        started = time.perf_counter()
        run, tracker = runner(spec)
        elapsed = time.perf_counter() - started
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed = elapsed
        steps = run.steps
        if tracker is not None:
            peaks = (tracker.peak_bits, tracker.peak_bo_only_bits)
    return {
        "label": label,
        "steps": steps,
        "seconds": round(best_elapsed, 6),
        "actions_per_sec": round(steps / best_elapsed, 1),
        "peaks": peaks,
    }


def _run_ledger(spec: WorkloadSpec, audit_every: int = 0):
    result = run_register_workload(
        AdaptiveRegister, SETUP, spec, keep_events=False,
        audit_storage_every=audit_every,
    )
    class _TrackerView:
        peak_bits = result.peak_storage_bits
        peak_bo_only_bits = result.peak_bo_state_bits
    return result.run, _TrackerView


def sweep_point_seconds(quick: bool) -> float:
    """Mean wall-clock per sweep point (the new per-record timing field)."""
    cs = (2,) if quick else (4, 8)
    grid = SweepGrid.explicit([
        SweepPoint(register="adaptive", f=4, k=8, c=c, data_size_bytes=1024)
        for c in cs
    ])
    result = run_sweep(grid)
    clocks = [record.wall_clock_s for record in result.records]
    assert all(clock > 0 for clock in clocks), "sweep records lost wall-clock"
    return round(sum(clocks) / len(clocks), 6)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: small workload, audited ledger run")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per mode (best-of)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="required ledger-vs-full-walk ratio "
                             "(default: 3.0, or 1.0 with --quick)")
    args = parser.parse_args()
    spec = QUICK_SPEC if args.quick else SPEC
    repeats = args.repeats or (1 if args.quick else 3)
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = 1.0 if args.quick else 3.0

    # The audited pass is the correctness half of the quick smoke: every
    # action asserts ledger == full walk (MeasurementError on divergence).
    audited_every = 1 if args.quick else 64
    _run_ledger(spec, audit_every=audited_every)
    audit_note = f"ledger audited vs full walk every {audited_every} action(s)"

    # One repeat suffices for the full walk: it runs for minutes, so timing
    # noise is negligible — and it is the mode this PR made obsolete.
    full_walk = _time_mode(
        "full-walk", spec, 1,
        lambda s: _manual_run(s, ReferenceStorageMeter),
    )
    ledger = _time_mode("ledger", spec, repeats, _run_ledger)
    kernel_only = _time_mode(
        "kernel-only", spec, repeats, lambda s: _manual_run(s, None)
    )
    # Sanity: the ledger-backed meter on the manual path matches too.
    _, manual_ledger_tracker = _manual_run(spec, StorageMeter)

    assert full_walk["steps"] == ledger["steps"] == kernel_only["steps"], (
        "metering must not change the schedule"
    )
    parity = (
        full_walk["peaks"] == ledger["peaks"]
        == (manual_ledger_tracker.peak_bits,
            manual_ledger_tracker.peak_bo_only_bits)
    )
    assert parity, (
        f"measurement divergence: full-walk={full_walk['peaks']} "
        f"ledger={ledger['peaks']}"
    )
    speedup = ledger["actions_per_sec"] / full_walk["actions_per_sec"]
    point_seconds = sweep_point_seconds(args.quick)

    lines = [
        "E12: simulation-loop throughput "
        f"(AdaptiveRegister, RS(k={SETUP.k}, n={SETUP.n}), "
        f"{spec.writers}w/{spec.readers}r, {SETUP.data_size_bytes} B values)",
        "",
        f"{'mode':>12}  {'steps':>7}  {'seconds':>9}  {'actions/sec':>12}",
    ]
    for mode in (full_walk, ledger, kernel_only):
        lines.append(
            f"{mode['label']:>12}  {mode['steps']:>7}  "
            f"{mode['seconds']:>9.4f}  {mode['actions_per_sec']:>12.1f}"
        )
    lines += [
        "",
        f"ledger vs full-walk speedup: {speedup:.2f}x "
        f"(required >= {min_speedup:.2f}x)",
        f"peaks bit-identical across meters: {parity}",
        f"{audit_note}: ok",
        f"mean wall-clock per sweep point: {point_seconds:.4f} s "
        "(recorded per-record as SweepRecord.wall_clock_s)",
    ]
    table = "\n".join(lines)
    print(table)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "E12_sim_throughput.txt").write_text(table + "\n")
    payload = {
        "experiment": "e12_sim_throughput",
        "quick": args.quick,
        "workload": {
            "register": "adaptive",
            "f": SETUP.f, "k": SETUP.k, "n": SETUP.n,
            "data_size_bytes": SETUP.data_size_bytes,
            "writers": spec.writers, "writes_per_writer": spec.writes_per_writer,
            "readers": spec.readers, "reads_per_reader": spec.reads_per_reader,
        },
        "modes": [full_walk, ledger, kernel_only],
        "speedup_ledger_vs_full_walk": round(speedup, 3),
        "min_speedup_required": min_speedup,
        "peaks_bit_identical": parity,
        "audited_every_actions": audited_every,
        "mean_sweep_point_seconds": point_seconds,
    }
    (RESULTS_DIR / "e12_sim_throughput.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    write_bench_summary(
        "sim_throughput",
        {
            "ledger_actions_per_s": metric(
                ledger["actions_per_sec"], "actions/s"
            ),
            "mean_sweep_point_seconds": metric(
                point_seconds, "s", direction="lower"
            ),
        },
        RESULTS_DIR,
        quick=args.quick,
    )
    if speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below bar {min_speedup:.2f}x")
        return 1
    return 0


# ------------------------------------------------------------------ pytest


class TestSimThroughputSmoke:
    def test_meters_agree_and_schedule_is_invariant(self):
        """Parity-only smoke (no timing asserts — CI machines are noisy)."""
        spec = WorkloadSpec(writers=2, writes_per_writer=1, readers=2,
                            reads_per_reader=1, seed=0)
        run_ref, tracker_ref = _manual_run(spec, ReferenceStorageMeter)
        run_led, tracker_led = _manual_run(spec, StorageMeter)
        assert run_ref.steps == run_led.steps
        assert (tracker_ref.peak_bits, tracker_ref.peak_bo_only_bits) == \
            (tracker_led.peak_bits, tracker_led.peak_bo_only_bits)

    def test_sweep_records_carry_wall_clock(self):
        assert sweep_point_seconds(quick=True) > 0


if __name__ == "__main__":
    raise SystemExit(main())
