"""E1 — Theorem 1: Ad forces storage >= min((f+1) ell, c (D - ell + 1)).

Paper claim (Section 4, ell = D/2): any lock-free black-box regular
register stores Omega(min(f, c) * D) bits in some run. This bench runs the
Definition 7 adversary against both coded registers over a (f, c) grid and
reports measured storage against the Lemma 3 bound. Corollary 1 is checked
alongside: no write completes before the bound state is reached.
"""

import pytest

from repro.analysis import format_table
from repro.lowerbound import run_lower_bound_experiment
from repro.registers import (
    AdaptiveRegister,
    CASRegister,
    ChannelCodedRegister,
    CodedOnlyRegister,
    RegisterSetup,
)

GRID = [(2, 2), (2, 4), (3, 2), (3, 4), (3, 8), (4, 4)]


def run_grid(register_cls):
    outcomes = []
    for f, c in GRID:
        setup = RegisterSetup(f=f, k=f, data_size_bytes=16 * f)
        outcomes.append(
            run_lower_bound_experiment(register_cls, setup, concurrency=c)
        )
    return outcomes


@pytest.mark.parametrize(
    "register_cls",
    [CodedOnlyRegister, AdaptiveRegister, CASRegister],
    ids=lambda c: c.name,
)
def test_theorem1_lower_bound(benchmark, record_table, register_cls):
    outcomes = benchmark.pedantic(
        run_grid, args=(register_cls,), rounds=1, iterations=1
    )
    rows = []
    for (f, c), outcome in zip(GRID, outcomes):
        assert outcome.fired != "none", f"Lemma 3 never fired at f={f}, c={c}"
        assert outcome.bound_satisfied
        assert outcome.writes_completed == 0  # Corollary 1
        rows.append([
            f, c, outcome.data_bits, outcome.fired,
            outcome.frozen_count, outcome.c_plus_count,
            outcome.storage_bits, outcome.lemma3_bound_bits,
            outcome.theorem1_bound_bits,
        ])
    table = format_table(
        ["f", "c", "D", "fired", "|F|", "|C+|", "measured(bits)",
         "lemma3-bound", "thm1-bound"],
        rows,
    )
    record_table(f"E1_theorem1_{register_cls.name}", table)


def test_channel_parking_escapes_only_by_losing_lock_freedom(
    benchmark, record_table
):
    """The channel-coded register is NOT subject to Theorem 1 — and the
    experiment shows why, rather than papering over it.

    Under Ad, newer writes overwrite older writes' single pieces, cycling
    ops back into C-: writes *complete* (Corollary 1's premise breaks).
    That evasion is available precisely because the register is not
    lock-free at the paper's granularity — the fragmented one-piece-per-
    object states it passes through can starve a solo reader forever (see
    the module docstring of ``repro.registers.channel_coded``). Its real
    cost lives in the channels (benchmark E13)."""
    setup = RegisterSetup(f=3, k=3, data_size_bytes=48)

    def run():
        return run_lower_bound_experiment(
            ChannelCodedRegister, setup, concurrency=8
        )

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "E1_channel_parking_escape",
        format_table(
            ["fired", "writes completed under Ad", "storage(bits)"],
            [[outcome.fired, outcome.writes_completed, outcome.storage_bits]],
        ),
    )
    # The escape hatch: completions under Ad — impossible for any
    # lock-free register (Corollary 1), observed here.
    assert outcome.writes_completed > 0
