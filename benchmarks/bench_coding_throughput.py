"""E11 — substrate sanity: encode/decode throughput of the coding layer.

Not a paper table — the paper's oracles are abstract — but a harness-level
check that the from-scratch codes are usable at realistic value sizes, and
the one benchmark here that exercises pytest-benchmark's statistical
timing across rounds.
"""

import os

import pytest

from repro.coding import (
    RatelessXorCode,
    ReedSolomonCode,
    ReplicationCode,
    XorParityCode,
)

SIZE = 64 * 1024  # 64 KiB values


@pytest.fixture(scope="module")
def value():
    return os.urandom(SIZE)


class TestEncode:
    def test_rs_encode_parity_block(self, benchmark, value):
        rs = ReedSolomonCode(k=4, n=10, data_size_bytes=SIZE)
        result = benchmark(rs.encode_block, value, 9)
        assert len(result) == SIZE // 4

    def test_rs_encode_systematic_block(self, benchmark, value):
        rs = ReedSolomonCode(k=4, n=10, data_size_bytes=SIZE)
        result = benchmark(rs.encode_block, value, 0)
        assert len(result) == SIZE // 4

    def test_xor_parity_encode(self, benchmark, value):
        code = XorParityCode(k=4, data_size_bytes=SIZE)
        result = benchmark(code.encode_block, value, 4)
        assert len(result) == SIZE // 4

    def test_replication_encode(self, benchmark, value):
        code = ReplicationCode(data_size_bytes=SIZE)
        result = benchmark(code.encode_block, value, 0)
        assert result == value

    def test_rateless_encode(self, benchmark, value):
        code = RatelessXorCode(k=4, data_size_bytes=SIZE, seed=1)
        result = benchmark(code.encode_block, value, 123)
        assert len(result) == SIZE // 4


class TestDecode:
    def test_rs_decode_from_parity(self, benchmark, value):
        rs = ReedSolomonCode(k=4, n=10, data_size_bytes=SIZE)
        blocks = {i: rs.encode_block(value, i) for i in (5, 7, 8, 9)}
        result = benchmark(rs.decode, blocks)
        assert result == value

    def test_rs_decode_systematic_fast_path(self, benchmark, value):
        rs = ReedSolomonCode(k=4, n=10, data_size_bytes=SIZE)
        blocks = {i: rs.encode_block(value, i) for i in range(4)}
        result = benchmark(rs.decode, blocks)
        assert result == value

    def test_xor_parity_decode_with_rebuild(self, benchmark, value):
        code = XorParityCode(k=4, data_size_bytes=SIZE)
        blocks = {i: code.encode_block(value, i) for i in (0, 1, 3, 4)}
        result = benchmark(code.decode, blocks)
        assert result == value

    def test_rateless_decode(self, benchmark, value):
        code = RatelessXorCode(k=4, data_size_bytes=SIZE, seed=1)
        blocks = {i: code.encode_block(value, i) for i in range(8)}
        result = benchmark(code.decode, blocks)
        assert result == value
