"""E11 — substrate sanity: encode/decode throughput of the coding layer.

Not a paper table — the paper's oracles are abstract — but the perf anchor
for the vectorized batch coding engine: it pits the pre-vectorization
*scalar* Reed-Solomon path (kept here verbatim as a reference
implementation) against the `gf_matmul`-backed codec, and measures how
`encode_batch` throughput scales with batch size. The engine's acceptance
bar is >= 5x encode throughput over the scalar path at k=16, n=32, 64 KiB
values.

Two entry points:

* ``pytest benchmarks/bench_coding_throughput.py`` — statistical timing of
  the per-scheme hot paths via pytest-benchmark;
* ``python benchmarks/bench_coding_throughput.py [--quick]`` — a plain
  script printing the scalar-vs-vectorized MB/s table and the batch-size
  scaling curve (``--quick`` trims repetitions for CI smoke runs;
  ``--backend`` picks the GF(2^8) kernel and the run also times the
  ``numpy-table`` reference for a same-run vs-table speedup).
"""

from __future__ import annotations

import argparse
import os
import pathlib
import time

import numpy as np

from repro.coding import (
    RatelessXorCode,
    ReedSolomonCode,
    ReplicationCode,
    XorParityCode,
)
from repro.coding.gf256 import _EXP_NP, _LOG_NP, gf_matmul

SIZE = 64 * 1024  # 64 KiB values


# --------------------------------------------------------------------------
# Scalar reference: the seed implementation's per-block, per-coefficient
# log/antilog path, preserved so the vectorized engine has a fixed yardstick.
# --------------------------------------------------------------------------


def _scalar_mul_bytes(scalar: int, data: np.ndarray) -> np.ndarray:
    """Pre-table ``scalar * data``: mask zeros, add logs, gather antilogs."""
    if scalar == 0:
        return np.zeros_like(data)
    if scalar == 1:
        return data.copy()
    log_scalar = int(_LOG_NP[scalar])
    nonzero = data != 0
    result = np.zeros_like(data)
    result[nonzero] = _EXP_NP[_LOG_NP[data[nonzero]] + log_scalar]
    return result


def scalar_encode_codeword(rs: ReedSolomonCode, value: bytes) -> dict[int, bytes]:
    """Encode all ``n`` blocks the pre-vectorization way: one Python loop
    per block, one masked log/antilog pass per generator coefficient."""
    size = rs.shard_bytes
    shards = [
        np.frombuffer(value[i * size: (i + 1) * size], dtype=np.uint8)
        for i in range(rs.k)
    ]
    blocks: dict[int, bytes] = {}
    for index in range(rs.n):
        if index < rs.k:
            blocks[index] = shards[index].tobytes()
            continue
        accumulator = np.zeros(size, dtype=np.uint8)
        for coefficient, shard in zip(rs.generator_row(index), shards):
            if coefficient == 0:
                continue
            np.bitwise_xor(
                accumulator, _scalar_mul_bytes(coefficient, shard),
                out=accumulator,
            )
        blocks[index] = accumulator.tobytes()
    return blocks


# --------------------------------------------------------------- CLI bench


def _time(fn, repetitions: int) -> float:
    """Median-free simple timer: warm once, average ``repetitions`` runs."""
    fn()
    start = time.perf_counter()
    for _ in range(repetitions):
        fn()
    return (time.perf_counter() - start) / repetitions


def run_cli(
    quick: bool, k: int = 16, n: int = 32, size: int = SIZE,
    backend: str | None = None,
) -> tuple[str, float, float, dict[str, float], float]:
    """Return the report, the scalar speedup, the batch-tiling ratio, the
    headline MB/s numbers (for the CI bench-regression gate), and the
    active backend's speedup over the ``numpy-table`` reference kernel.

    The tiling ratio is large-batch MB/s over the small-batch (<= 8) peak;
    >= 1.0 means the old L2 cliff is gone. ``backend`` selects the GF
    kernel (default: the process's active backend); the vs-table speedup
    is measured in the same run by temporarily switching kernels, and is
    1.0 when the active backend *is* ``numpy-table``.
    """
    from repro.coding import get_backend, use_backend

    active = use_backend(backend) if backend else get_backend()
    rs = ReedSolomonCode(k=k, n=n, data_size_bytes=size)
    value = os.urandom(size)
    reference = scalar_encode_codeword(rs, value)
    vectorized = rs.encode_many(value, range(n))
    assert vectorized == reference, "vectorized codec diverged from scalar"

    reps = 5 if quick else 30
    scalar_s = _time(lambda: scalar_encode_codeword(rs, value), reps)
    vector_s = _time(lambda: rs.encode_many(value, range(n)), reps)
    speedup = scalar_s / vector_s
    mb = size / 1e6

    # Same workload on the reference kernel, for the vs-table speedup.
    if active.name == "numpy-table":
        table_s = vector_s
    else:
        use_backend("numpy-table")
        try:
            assert rs.encode_many(value, range(n)) == reference, (
                "numpy-table kernel diverged"
            )
            table_s = _time(lambda: rs.encode_many(value, range(n)), reps)
        finally:
            use_backend(active.name)
    vs_table = table_s / vector_s

    lines = [
        f"coding throughput — RS(k={k}, n={n}), {size // 1024} KiB values, "
        f"backend {active.name}",
        "",
        "full-codeword encode (all n blocks):",
        f"  scalar reference   {mb / scalar_s:8.1f} MB/s   "
        f"({scalar_s * 1e3:6.2f} ms)",
        f"  numpy-table        {mb / table_s:8.1f} MB/s   "
        f"({table_s * 1e3:6.2f} ms)",
        f"  vectorized         {mb / vector_s:8.1f} MB/s   "
        f"({vector_s * 1e3:6.2f} ms)",
        f"  speedup            {speedup:8.1f} x   (acceptance bar: >= 5x)",
        f"  vs numpy-table     {vs_table:8.2f} x",
        "",
        "encode_batch scaling (values encoded together -> MB/s):",
    ]
    batch_sizes = (1, 8, 32) if quick else (1, 4, 16, 64, 128)
    batch_mbps: dict[int, float] = {}
    for batch in batch_sizes:
        values = [os.urandom(size) for _ in range(batch)]
        batch_reps = max(2, reps // batch)
        batch_s = _time(lambda: rs.encode_batch(values, range(n)), batch_reps)
        batch_mbps[batch] = batch * mb / batch_s
        lines.append(
            f"  batch {batch:3d}          {batch * mb / batch_s:8.1f} MB/s   "
            f"({scalar_s * batch / batch_s:5.1f}x scalar)"
        )
    # The gf_matmul column tiling keeps wide operands L2-resident; before
    # it, throughput fell ~30% once the width outgrew the cache. Measured
    # at the kernel (the batch table above also pays batch-sized
    # stack/unstack memory traffic, which would mask a tiling regression
    # behind streaming noise).
    generator = np.array(
        [rs.generator_row(i) for i in range(n)], dtype=np.uint8
    )
    rng = np.random.default_rng(0)

    def kernel_mbps(width: int) -> float:
        data = rng.integers(0, 256, size=(k, width), dtype=np.uint8)
        seconds = _time(lambda: gf_matmul(generator, data), 4 * reps)
        return n * width / 1e6 / seconds

    narrow, wide = kernel_mbps(4 * 1024), kernel_mbps(128 * 1024)
    tiling_ratio = wide / narrow
    large = max(batch_sizes)
    lines.append(
        f"  tiling check       kernel at 128 KiB width runs "
        f"{tiling_ratio:.2f}x its 4 KiB-width rate (bar: >= 0.85x)"
    )

    erased = list(range(n - k, n))  # the k highest indices: all-parity decode
    blocks = {i: vectorized[i] for i in erased}
    decode_s = _time(lambda: rs.decode(blocks), reps)
    batch_blocks = [blocks] * (8 if quick else 32)
    decode_batch_s = _time(lambda: rs.decode_batch(batch_blocks), 3)
    lines += [
        "",
        "decode from parity blocks:",
        f"  single             {mb / decode_s:8.1f} MB/s",
        f"  batch {len(batch_blocks):3d}          "
        f"{len(batch_blocks) * mb / decode_batch_s:8.1f} MB/s",
    ]
    throughputs = {
        "vectorized_encode_mb_per_s": round(mb / vector_s, 1),
        "encode_batch_large_mb_per_s": round(batch_mbps[large], 1),
        "decode_batch_mb_per_s": round(
            len(batch_blocks) * mb / decode_batch_s, 1
        ),
    }
    return ("\n".join(lines), speedup, tiling_ratio, throughputs, vs_table)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer repetitions / smaller batches (CI smoke run)",
    )
    parser.add_argument("--k", type=int, default=16)
    parser.add_argument("--n", type=int, default=32)
    parser.add_argument("--size", type=int, default=SIZE,
                        help="value size in bytes")
    parser.add_argument(
        "--backend", default=None,
        help="GF(2^8) kernel to benchmark (see repro.coding"
             ".available_backends); default: the active backend",
    )
    args = parser.parse_args(argv)
    table, _, _, throughputs, vs_table = run_cli(
        quick=args.quick, k=args.k, n=args.n, size=args.size,
        backend=args.backend,
    )
    print(table)

    from repro.coding import get_backend

    backend = get_backend().name
    if not args.quick:
        # Full-mode acceptance gate (ISSUE PR 10): the numba kernel must
        # clear 1 GB/s encode; the nibble kernel — pure numpy, so bounded
        # by gather bandwidth — must instead beat the table kernel by a
        # clear margin in the same run.
        encode = throughputs["vectorized_encode_mb_per_s"]
        if backend == "numba":
            assert encode >= 1000.0, (
                f"numba encode fell to {encode:.0f} MB/s (bar: 1 GB/s)"
            )
        elif backend == "numpy-nibble":
            assert vs_table >= 1.3, (
                f"nibble kernel only {vs_table:.2f}x numpy-table "
                "(bar: >= 1.3x)"
            )

    from repro.analysis.benchgate import metric, write_bench_summary

    write_bench_summary(
        "coding_throughput",
        {name: metric(value, "MB/s")
         for name, value in throughputs.items()},
        pathlib.Path(__file__).parent / "results",
        quick=args.quick,
    )
    return 0


# ---------------------------------------------------------------- pytest


try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None


if pytest is not None:

    @pytest.fixture(scope="module")
    def value():
        return os.urandom(SIZE)

    @pytest.fixture(scope="module")
    def values():
        return [os.urandom(SIZE) for _ in range(16)]

    class TestEncode:
        def test_rs_encode_parity_block(self, benchmark, value):
            rs = ReedSolomonCode(k=4, n=10, data_size_bytes=SIZE)
            result = benchmark(rs.encode_block, value, 9)
            assert len(result) == SIZE // 4

        def test_rs_encode_systematic_block(self, benchmark, value):
            rs = ReedSolomonCode(k=4, n=10, data_size_bytes=SIZE)
            result = benchmark(rs.encode_block, value, 0)
            assert len(result) == SIZE // 4

        def test_rs_encode_whole_codeword(self, benchmark, value):
            rs = ReedSolomonCode(k=4, n=10, data_size_bytes=SIZE)
            result = benchmark(rs.encode_many, value, range(10))
            assert len(result) == 10

        def test_rs_scalar_reference_codeword(self, benchmark, value):
            rs = ReedSolomonCode(k=4, n=10, data_size_bytes=SIZE)
            result = benchmark(scalar_encode_codeword, rs, value)
            assert len(result) == 10

        def test_rs_encode_batch(self, benchmark, values):
            rs = ReedSolomonCode(k=4, n=10, data_size_bytes=SIZE)
            result = benchmark(rs.encode_batch, values, range(10))
            assert len(result) == len(values)

        def test_xor_parity_encode(self, benchmark, value):
            code = XorParityCode(k=4, data_size_bytes=SIZE)
            result = benchmark(code.encode_block, value, 4)
            assert len(result) == SIZE // 4

        def test_xor_parity_encode_batch(self, benchmark, values):
            code = XorParityCode(k=4, data_size_bytes=SIZE)
            result = benchmark(code.encode_batch, values, range(5))
            assert len(result) == len(values)

        def test_replication_encode(self, benchmark, value):
            code = ReplicationCode(data_size_bytes=SIZE)
            result = benchmark(code.encode_block, value, 0)
            assert result == value

        def test_rateless_encode(self, benchmark, value):
            code = RatelessXorCode(k=4, data_size_bytes=SIZE, seed=1)
            result = benchmark(code.encode_block, value, 123)
            assert len(result) == SIZE // 4

        def test_rateless_encode_batch(self, benchmark, values):
            code = RatelessXorCode(k=4, data_size_bytes=SIZE, seed=1)
            result = benchmark(code.encode_batch, values, range(8))
            assert len(result) == len(values)

    class TestDecode:
        def test_rs_decode_from_parity(self, benchmark, value):
            rs = ReedSolomonCode(k=4, n=10, data_size_bytes=SIZE)
            blocks = {i: rs.encode_block(value, i) for i in (5, 7, 8, 9)}
            result = benchmark(rs.decode, blocks)
            assert result == value

        def test_rs_decode_systematic_fast_path(self, benchmark, value):
            rs = ReedSolomonCode(k=4, n=10, data_size_bytes=SIZE)
            blocks = {i: rs.encode_block(value, i) for i in range(4)}
            result = benchmark(rs.decode, blocks)
            assert result == value

        def test_rs_decode_batch(self, benchmark, values):
            rs = ReedSolomonCode(k=4, n=10, data_size_bytes=SIZE)
            batch = [
                {i: rs.encode_block(v, i) for i in (5, 7, 8, 9)}
                for v in values
            ]
            result = benchmark(rs.decode_batch, batch)
            assert result == values

        def test_xor_parity_decode_with_rebuild(self, benchmark, value):
            code = XorParityCode(k=4, data_size_bytes=SIZE)
            blocks = {i: code.encode_block(value, i) for i in (0, 1, 3, 4)}
            result = benchmark(code.decode, blocks)
            assert result == value

        def test_rateless_decode(self, benchmark, value):
            code = RatelessXorCode(k=4, data_size_bytes=SIZE, seed=1)
            blocks = {i: code.encode_block(value, i) for i in range(8)}
            result = benchmark(code.decode, blocks)
            assert result == value

    class TestSpeedupBar:
        def test_vectorized_beats_scalar_reference(self, record_table):
            """The acceptance measurement, persisted to results/.

            Dev hardware shows 15-19x; assert a 3x floor so noisy CI
            runners cannot flake while a real regression to the scalar
            path still fails loudly.
            """
            table, speedup, tiling_ratio, _, vs_table = run_cli(quick=True)
            record_table("e11_coding_throughput", table)
            assert speedup >= 3.0, f"vectorized speedup collapsed: {speedup:.1f}x"
            # Column tiling keeps large batches at (or above) the
            # small-batch peak; 0.85 leaves noise headroom — the untiled
            # kernel sat near 0.66 and fails this loudly. The same bar
            # must hold under the nibble kernel (its 16-lane packing
            # changes the cache footprint per tile).
            assert tiling_ratio >= 0.85, (
                f"large-batch throughput fell to {tiling_ratio:.2f}x the "
                "small-batch peak: the L2 dip is back"
            )
            from repro.coding import get_backend

            if get_backend().name == "numpy-nibble":
                # Dev hardware shows ~1.5-2.1x; 1.1 is the no-regression
                # floor (a fall to parity means the nibble path silently
                # degenerated to the table path).
                assert vs_table >= 1.1, (
                    f"nibble kernel only {vs_table:.2f}x numpy-table"
                )


if __name__ == "__main__":
    raise SystemExit(main())
