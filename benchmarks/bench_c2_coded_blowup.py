"""E2 — Corollary 2: coded storage without replica fallback grows with c.

Paper claim: an algorithm that never stores a full replica's worth of bits
in f + 1 base objects pays storage that grows linearly with concurrency.
Measured two ways:

* fair-scheduler peak storage of the coded-only register under a burst of
  c writers — slope should be about one piece (D/k bits) per object per
  extra writer;
* the adversary route with ell = D, where the concurrency arm of Lemma 3
  must be the one that fires (the register never assembles D bits in one
  object).
"""

import pytest

from repro.analysis import format_table, linear_slope
from repro.lowerbound import run_lower_bound_experiment
from repro.registers import CodedOnlyRegister, RegisterSetup
from repro.workloads import WorkloadSpec, run_register_workload

SETUP = RegisterSetup(f=2, k=4, data_size_bytes=32)  # n=8, D=256, piece=64
CS = [1, 2, 3, 4, 6, 8, 12]


def sweep_concurrency():
    peaks = []
    for c in CS:
        spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0, seed=1)
        result = run_register_workload(CodedOnlyRegister, SETUP, spec)
        peaks.append(result.peak_bo_state_bits)
    return peaks


def test_linear_blowup_under_fair_schedule(benchmark, record_table):
    peaks = benchmark.pedantic(sweep_concurrency, rounds=1, iterations=1)
    piece_bits = SETUP.data_size_bits // SETUP.k
    predicted = [(c + 1) * SETUP.n * piece_bits for c in CS]
    slope = linear_slope(CS, peaks)
    rows = [
        [c, peak, pred, f"{peak / pred:.2f}x"]
        for c, peak, pred in zip(CS, peaks, predicted)
    ]
    table = format_table(
        ["c", "peak bo storage(bits)", "(c+1) n D/k", "ratio"], rows
    )
    record_table("E2_corollary2_fair_blowup", table)
    # Shape: linear growth with slope about n * D/k per writer.
    assert slope == pytest.approx(SETUP.n * piece_bits, rel=0.35)
    assert peaks == sorted(peaks)


def test_concurrency_arm_fires_at_ell_d(benchmark, record_table):
    def run():
        return [
            run_lower_bound_experiment(
                CodedOnlyRegister, SETUP, concurrency=c,
                ell_bits=SETUP.data_size_bits,
            )
            for c in (2, 4, 8)
        ]

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for c, outcome in zip((2, 4, 8), outcomes):
        assert outcome.fired == "concurrency", (
            "coded-only never stores D bits in one object, so only the "
            "concurrency arm can fire at ell = D"
        )
        rows.append([c, outcome.fired, outcome.c_plus_count,
                     outcome.storage_bits])
    record_table(
        "E2_corollary2_adversary",
        format_table(["c", "fired", "|C+|", "storage(bits)"], rows),
    )
    storages = [row[3] for row in rows]
    assert storages == sorted(storages)
