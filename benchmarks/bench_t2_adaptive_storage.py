"""E3 — Theorem 2 / Corollary 3: the adaptive register's storage cost.

Paper claim: storage <= min((c+1)(2f+k) D/k, (2f+k)^2 D); we additionally
verify the tighter cap our analysis gives (2 n D — each object holds at
most k pieces plus one replica). For c <= k-1 (Lemma 6 counting the initial
value's piece) the per-write arm is exact.
"""

import pytest

from repro.analysis import format_table
from repro.registers import AdaptiveRegister, RegisterSetup
from repro.workloads import WorkloadSpec, run_register_workload

SETUP = RegisterSetup(f=3, k=4, data_size_bytes=32)  # n=10, D=256, piece=64
CS = [1, 2, 3, 4, 6, 9, 12]


def sweep():
    peaks = []
    for c in CS:
        spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0, seed=2)
        result = run_register_workload(AdaptiveRegister, SETUP, spec)
        peaks.append(result.peak_bo_state_bits)
    return peaks


def test_theorem2_storage_caps(benchmark, record_table):
    peaks = benchmark.pedantic(sweep, rounds=1, iterations=1)
    d = SETUP.data_size_bits
    n, k = SETUP.n, SETUP.k
    rows = []
    for c, peak in zip(CS, peaks):
        per_write_cap = (c + 1) * n * d // k
        replica_cap = 2 * n * d
        # Theorem 2's min() as literally stated over-claims: its first arm
        # comes from Lemma 6, whose premise is c < k - 1 (the initial value
        # occupies one piece slot). Measured storage exceeds that arm at
        # c = k (e.g. 5120 > 3200 bits at c = k = 4) while respecting the
        # lemma-wise caps, which is what we assert. See EXPERIMENTS.md.
        our_cap = per_write_cap if c <= k - 1 else replica_cap
        paper_cap_lemmawise = (
            min(per_write_cap, n * n * d) if c <= k - 1 else n * n * d
        )
        assert peak <= our_cap, f"c={c}: {peak} > {our_cap}"
        assert peak <= paper_cap_lemmawise
        rows.append([c, peak, per_write_cap if c <= k - 1 else "-",
                     replica_cap, paper_cap_lemmawise])
    table = format_table(
        ["c", "peak bo storage(bits)", "(c+1)nD/k (c<=k-1)", "2nD cap",
         "paper cap"],
        rows,
    )
    record_table("E3_theorem2_adaptive_storage", table)
    # Shape: grows while c <= k-1, then saturates at the replica cap.
    saturated = [p for c, p in zip(CS, peaks) if c >= k]
    assert max(saturated) == min(saturated), "expected saturation beyond c=k"
    growing = [p for c, p in zip(CS, peaks) if c <= k - 1]
    assert growing == sorted(growing)


@pytest.mark.parametrize("c", [1, 2, 3])
def test_exact_per_write_arm_below_k(benchmark, record_table, c):
    """For c <= k - 1 every object ends the update round with exactly
    c + 1 pieces (c writers + the initial value): the bound is tight."""
    def run():
        spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0, seed=3)
        return run_register_workload(AdaptiveRegister, SETUP, spec)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    d = SETUP.data_size_bits
    expected = (c + 1) * SETUP.n * d // SETUP.k
    record_table(
        f"E3_tightness_c{c}",
        format_table(
            ["c", "peak(bits)", "(c+1)nD/k"],
            [[c, result.peak_bo_state_bits, expected]],
        ),
    )
    assert result.peak_bo_state_bits == expected
