"""E17 — the sharded keyspace: a million keys over 128 registers.

The north star's missing scale axis: every other experiment drives one
register; this one shards a million-key keyspace across 128 register
instances by consistent hashing and pushes skewed write/read waves
through them (:mod:`repro.keyspace`). The headline question — does the
adaptive scheme's storage advantage survive when concurrency is spread
thin, and how much does it widen when hot keys concentrate it? — is
asserted as a shape, not just reported:

* **Per-shard Theorem 1 floors** — every shard's measured peak
  Definition 2 storage must meet ``min((f+1)D/2, c(D/2+1))`` at that
  shard's own realized concurrency ``c``. Always asserted, every cell.
* **Crossover** — the coded-only/adaptive aggregate peak-storage ratio
  under hot-key skew must strictly exceed the same ratio under uniform
  skew (spread thin, per-shard ``c`` stays near ``wave_size/shards`` and
  the curves track; concentrated, coded-only pays ~``c`` codewords where
  adaptive caps at ``min(f, c) + 1``).

Throughput is the gated metric: aggregate simulation actions/s across
every shard run (the keyspace is ~1800 shard simulations per full
sweep, so scheduler + ledger overhead dominates — a regression here is
a kernel regression).

Results land in ``benchmarks/results/e17_keyspace{,_quick}.json`` (plus
a rendered ``.txt``), and the gate summary in
``benchmarks/results/BENCH_keyspace.json`` — compared against the
committed baseline by ``scripts/check_bench_regression.py`` in CI.

Two entry points:

* ``pytest benchmarks/bench_keyspace.py`` — floors + crossover on the
  quick grid (serial);
* ``python benchmarks/bench_keyspace.py [--quick] [--workers N]`` — the
  timed sweep (pooled, byte-identity inherited from the executor).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.analysis import (
    keyspace_advantage_ratios,
    keyspace_grid,
    keyspace_shape_violations,
    run_keyspace_sweep,
)
from repro.analysis.benchgate import metric, write_bench_summary
from repro.analysis.sweeps import run_keyspace_sweep as serial_sweep

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SEED = 17

#: The full grid: a million keys over 128 shards (each an f=1, k=2,
#: n=4 register), 8 waves x 384 writes + 64 reads, both registers under
#: both skews. Hot-key skew (8 hot keys, 90% of traffic) drives hot
#: shards to c ~ 60 while uniform stays near c ~ wave_size/shards.
FULL = dict(
    keys=(1_000_000,),
    shards=(128,),
    waves=8,
    wave_size=384,
    reads_per_wave=64,
    hot_keys=8,
    hot_weight=0.9,
)

#: CI smoke grid: same shape (both skews, both registers, floors +
#: crossover asserted), two orders of magnitude smaller.
QUICK = dict(
    keys=(5_000,),
    shards=(16,),
    waves=3,
    wave_size=48,
    reads_per_wave=8,
    hot_keys=2,
    hot_weight=0.95,
)


def build_cells(spec: dict) -> tuple:
    return keyspace_grid(
        skews=("uniform", "hotspot"),
        registers=("coded-only", "adaptive"),
        seed=SEED,
        **spec,
    )


def run(
    quick: bool, workers: int = 1, echo=lambda line: None,
    backend: str | None = None,
) -> dict:
    """Run the keyspace sweep; assert floors and the crossover shape.

    ``backend`` pins the GF(2^8) coding backend (pool workers included);
    the measured fields are backend-invariant.
    """
    spec = QUICK if quick else FULL
    cells = build_cells(spec)
    echo(f"keyspace: {len(cells)} cells — {spec['keys'][0]:,} keys over "
         f"{spec['shards'][0]} shards, {spec['waves']} waves x "
         f"{spec['wave_size']} writes + {spec['reads_per_wave']} reads")

    started = time.perf_counter()
    result = run_keyspace_sweep(cells, workers=workers,
                                coding_backend=backend)
    wall_s = time.perf_counter() - started

    violations = keyspace_shape_violations(result)
    assert not violations, "; ".join(violations)

    total_actions = sum(record.steps for record in result.records)
    ratios = keyspace_advantage_ratios(result)
    for record in result.records:
        echo(f"  {record.skew:>8}/{record.register:<10}  "
             f"max_c={record.max_shard_c:<4} "
             f"peak_bo={record.aggregate_peak_bo_state_bits:>9} bits  "
             f"floor_violations={record.floor_violations}")
    for skew, ratio in ratios.items():
        echo(f"  advantage ({skew}): coded-only/adaptive = {ratio:.2f}x")
    echo(f"  {total_actions:,} actions in {wall_s:.2f} s "
         f"({total_actions / wall_s:,.0f} actions/s, workers={workers})")

    return {
        "experiment": "e17_keyspace",
        "quick": quick,
        "workers": workers,
        "cells": len(cells),
        "keys": spec["keys"][0],
        "shards": spec["shards"][0],
        "seconds": round(wall_s, 4),
        "total_actions": total_actions,
        "actions_per_s": round(total_actions / wall_s, 2),
        "advantage_ratios": {k: round(v, 4) for k, v in ratios.items()},
        "records": [
            {
                "skew": record.skew,
                "register": record.register,
                "active_shards": record.active_shards,
                "max_shard_c": record.max_shard_c,
                "distinct_keys": record.distinct_keys,
                "aggregate_peak_bo_state_bits":
                    record.aggregate_peak_bo_state_bits,
                "aggregate_peak_storage_bits":
                    record.aggregate_peak_storage_bits,
                "aggregate_thm1_floor_bits":
                    record.aggregate_thm1_floor_bits,
                "floor_violations": record.floor_violations,
            }
            for record in result.records
        ],
        "floors_hold": True,       # asserted above, every shard
        "crossover_holds": True,   # asserted above (hotspot > uniform)
    }


def render(payload: dict) -> str:
    lines = [
        f"E17: sharded keyspace — {payload['keys']:,} keys over "
        f"{payload['shards']} shards, {payload['cells']} cells",
        "",
        f"{'skew':>8}  {'register':<10}  {'shards hit':>10}  "
        f"{'max c':>5}  {'peak bo bits':>12}  {'thm1 floor':>10}",
    ]
    for record in payload["records"]:
        lines.append(
            f"{record['skew']:>8}  {record['register']:<10}  "
            f"{record['active_shards']:>10}  {record['max_shard_c']:>5}  "
            f"{record['aggregate_peak_bo_state_bits']:>12}  "
            f"{record['aggregate_thm1_floor_bits']:>10}"
        )
    lines.append("")
    for skew, ratio in payload["advantage_ratios"].items():
        lines.append(f"advantage ({skew}): coded-only/adaptive = "
                     f"{ratio:.2f}x")
    lines.append("")
    lines.append(
        f"{payload['total_actions']:,} actions in "
        f"{payload['seconds']:.2f} s = {payload['actions_per_s']:,.0f} "
        f"actions/s (workers={payload['workers']})"
    )
    lines.append("per-shard Theorem 1 floors + hotspot>uniform crossover "
                 "asserted")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="5k keys over 16 shards (CI smoke run)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size (results byte-identical to serial)",
    )
    parser.add_argument(
        "--backend", type=str, default=None,
        help="GF(2^8) coding backend for the run (default: active "
             "backend; results are backend-invariant)",
    )
    args = parser.parse_args(argv)
    payload = run(args.quick, workers=args.workers, echo=print,
                  backend=args.backend)

    table = render(payload)
    print()
    print(table)
    suffix = "_quick" if args.quick else ""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"e17_keyspace{suffix}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    (RESULTS_DIR / f"E17_keyspace{suffix}.txt").write_text(table + "\n")
    write_bench_summary(
        "keyspace",
        {
            "keyspace_actions_per_s": metric(
                payload["actions_per_s"], "actions/s"
            ),
        },
        RESULTS_DIR,
        quick=args.quick,
    )
    return 0


# ---------------------------------------------------------------- pytest


class TestKeyspaceBenchSmoke:
    def test_quick_grid_floors_and_crossover(self, record_table):
        """The quick grid upholds both asserted shapes: every shard meets
        its Theorem 1 floor, and hot-key skew widens the coded-only vs
        adaptive gap (the heavier sweep-axis matrix lives in
        tests/keyspace/test_sweep.py)."""
        result = serial_sweep(build_cells(QUICK))
        assert keyspace_shape_violations(result) == []
        ratios = keyspace_advantage_ratios(result)
        assert ratios["hotspot"] > ratios["uniform"] > 1.0
        record_table(
            "E17_keyspace_pytest",
            result.table()
            + "\n"
            + "\n".join(f"advantage ({skew}): {ratio:.2f}x"
                        for skew, ratio in ratios.items()),
        )

    def test_full_grid_reaches_acceptance_scale(self):
        """The full grid is the acceptance floor: >= 100k keys over
        >= 64 shards, both skews x both registers."""
        cells = build_cells(FULL)
        assert len(cells) == 4
        assert all(c.keys >= 100_000 and c.shards >= 64 for c in cells)


if __name__ == "__main__":
    raise SystemExit(main())
