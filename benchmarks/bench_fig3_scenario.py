"""E7 — Figure 3: the adversary's set dynamics, traced step by step.

The paper's Figure 3 illustrates Ad's bookkeeping on four concurrent writes
with 2D/5 < ell < D: operations move between C- and C+ as their blocks
land, and base objects freeze into F once they hold ell bits. This bench
replays that setting (4 writers, ell = D/2 + D/10), records the evolution
of |F|, |C-|, |C+| at every scheduling decision, and checks the paper's
structural facts:

* Observation 2 — F only grows;
* Definition 7 rule 1 — RMWs of C+ operations never take effect;
* Lemma 3 — the run ends in |F| > f or |C+| = c.
"""

from repro.analysis import format_table, monotone_nondecreasing
from repro.lowerbound import AdAdversary, compute_snapshot
from repro.registers import AdaptiveRegister, CodedOnlyRegister, RegisterSetup
from repro.sim import ActionKind, Simulation
from repro.workloads import make_value

import pytest

SETUP = RegisterSetup(f=3, k=5, data_size_bytes=40)  # n=11, D=320, piece=64
WRITERS = 4


def replay(register_cls):
    sim = Simulation(register_cls(SETUP))
    for index in range(WRITERS):
        client = sim.add_client(f"w{index + 1}")  # w1..w4 as in the figure
        client.enqueue_write(make_value(SETUP, f"fig3-{index}"))
    d = SETUP.data_size_bits
    ell = d // 2 + d // 10  # inside (2D/5, D)
    adversary = AdAdversary(ell_bits=ell)
    timeline = []
    cplus_applies = 0
    for _ in range(2000):
        snapshot = compute_snapshot(sim, ell, adversary._frozen)
        timeline.append(
            (sim.time, len(snapshot.frozen), len(snapshot.c_minus),
             len(snapshot.c_plus))
        )
        if len(snapshot.frozen) > SETUP.f or (
            len(snapshot.c_plus) == WRITERS
        ):
            break
        action = adversary.next_action(sim)
        if action is None:
            break
        if action.kind is ActionKind.APPLY_DELIVER:
            rmw = sim.pending[action.target]
            if rmw.op_uid in adversary.last_snapshot.c_plus:
                cplus_applies += 1
        sim.execute(action)
    return timeline, cplus_applies, ell


@pytest.mark.parametrize(
    "register_cls", [CodedOnlyRegister, AdaptiveRegister], ids=lambda c: c.name
)
def test_figure3_set_dynamics(benchmark, record_table, register_cls):
    timeline, cplus_applies, ell = benchmark.pedantic(
        replay, args=(register_cls,), rounds=1, iterations=1
    )
    frozen_series = [frozen for _, frozen, _, _ in timeline]
    assert monotone_nondecreasing(frozen_series), "Observation 2 violated"
    assert cplus_applies == 0, "rule 1 applied a C+ op's RMW"
    final_time, final_frozen, final_cminus, final_cplus = timeline[-1]
    assert final_frozen > SETUP.f or final_cplus == WRITERS, "Lemma 3 not reached"

    # Record a decimated trace plus the terminal state.
    step = max(1, len(timeline) // 20)
    rows = [list(entry) for entry in timeline[::step]]
    if rows[-1] != list(timeline[-1]):
        rows.append(list(timeline[-1]))
    table = format_table(["time", "|F|", "|C-|", "|C+|"], rows)
    header = (
        f"register={register_cls.name} f={SETUP.f} c={WRITERS} "
        f"D={SETUP.data_size_bits} ell={ell} (2D/5 < ell < D)\n"
    )
    record_table(f"E7_figure3_{register_cls.name}", header + table)
