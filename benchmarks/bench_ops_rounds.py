"""E10 — liveness and operation cost: rounds and RMWs per operation.

Paper claims measured here:

* writes are wait-free and take a constant number of rounds (3 for the
  adaptive register — lines 3-15; 2 for the safe register and ABD);
* reads of FW-terminating registers finish once writes quiesce (one round
  in quiescence), while reads concurrent with writes may retry;
* the safe register's reads are single-round under any concurrency.
"""

import pytest

from repro.analysis import format_table
from repro.registers import (
    ABDRegister,
    AdaptiveRegister,
    CodedOnlyRegister,
    RegisterSetup,
    SafeCodedRegister,
    replication_setup,
)
from repro.sim import FairScheduler, Simulation
from repro.workloads import WorkloadSpec, make_value, run_register_workload

CODED_SETUP = RegisterSetup(f=2, k=2, data_size_bytes=16)
EXPECTED_WRITE_ROUNDS = {
    "adaptive": 3,
    "coded-only": 3,
    "safe-coded": 2,
    "abd": 2,
}


def solo_op_rmws(register_cls, setup, op: str) -> int:
    """RMW applies consumed by one solo operation from quiescence."""
    sim = Simulation(register_cls(setup))
    client = sim.add_client("solo")
    if op == "write":
        client.enqueue_write(make_value(setup, "solo"))
    else:
        client.enqueue_read()
    sim.run(FairScheduler())
    return sim.trace.rmw_count()


def run_matrix():
    registers = [
        (AdaptiveRegister, CODED_SETUP),
        (CodedOnlyRegister, CODED_SETUP),
        (SafeCodedRegister, CODED_SETUP),
        (ABDRegister, replication_setup(f=2, data_size_bytes=16)),
    ]
    rows = []
    for register_cls, setup in registers:
        write_rmws = solo_op_rmws(register_cls, setup, "write")
        read_rmws = solo_op_rmws(register_cls, setup, "read")
        rows.append((register_cls.name, setup.n, write_rmws, read_rmws))
    return rows


def test_solo_operation_cost(benchmark, record_table):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    table_rows = []
    for name, n, write_rmws, read_rmws in rows:
        write_rounds = EXPECTED_WRITE_ROUNDS[name]
        # A solo op applies all n RMWs per round under the fair scheduler.
        assert write_rmws == write_rounds * n, (name, write_rmws)
        assert read_rmws == n, (name, read_rmws)  # quiescent read: 1 round
        table_rows.append([name, n, write_rounds, write_rmws, 1, read_rmws])
    table = format_table(
        ["register", "n", "write rounds", "write RMWs", "read rounds",
         "read RMWs"],
        table_rows,
    )
    record_table("E10_op_rounds", table)


@pytest.mark.parametrize(
    "register_cls,setup",
    [
        (AdaptiveRegister, CODED_SETUP),
        (CodedOnlyRegister, CODED_SETUP),
        (SafeCodedRegister, CODED_SETUP),
        (ABDRegister, replication_setup(f=2, data_size_bytes=16)),
    ],
    ids=lambda x: getattr(x, "name", ""),
)
def test_all_ops_complete_under_contention(benchmark, record_table,
                                           register_cls, setup):
    """FW-termination in practice: a heavy mixed workload fully drains."""
    def run():
        spec = WorkloadSpec(writers=5, writes_per_writer=2, readers=5,
                            reads_per_reader=2, seed=10)
        return run_register_workload(register_cls, setup, spec)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.completed_writes == 10
    assert result.completed_reads == 10
    record_table(
        f"E10_contention_{register_cls.name}",
        format_table(
            ["register", "steps", "RMW applies", "writes", "reads"],
            [[register_cls.name, result.run.steps, result.total_rmw_applies,
              result.completed_writes, result.completed_reads]],
        ),
    )
