"""Shared benchmark fixtures: result recording.

Every benchmark writes its measured-vs-paper table to
``benchmarks/results/<experiment>.txt`` (the files EXPERIMENTS.md quotes)
and echoes it to stdout (visible with ``pytest -s``).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Persist one experiment's output table."""

    def _record(experiment: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _record
