"""E15 — ablation: the GC round is what buys Lemma 8's optimum.

DESIGN.md flags the garbage-collection round (Algorithm 2, lines 11-13)
as a load-bearing design choice. The ablation removes it: without GC,
``storedTS`` never advances, ``Vp`` silts up with the first k writes'
pieces, and every later write stores a full replica — quiescent storage
settles near ``2nD`` instead of ``nD/k``, no matter how sequential the
workload. (The other flagged choice — the replica fallback — is ablated
by the CodedOnlyRegister; benchmark E9.)
"""


from repro.analysis import format_table
from repro.registers import AdaptiveNoGCRegister, AdaptiveRegister, RegisterSetup
from repro.workloads import WorkloadSpec, run_register_workload

SETUP = RegisterSetup(f=2, k=3, data_size_bytes=24)  # n=7, D=192


def sweep():
    results = {}
    for register_cls in (AdaptiveRegister, AdaptiveNoGCRegister):
        per_writes = []
        for total_writes in (1, 3, 6, 10):
            spec = WorkloadSpec(writers=1, writes_per_writer=total_writes,
                                readers=0, seed=4)
            per_writes.append(
                run_register_workload(register_cls, SETUP, spec)
            )
        results[register_cls.name] = per_writes
    return results


def test_gc_ablation(benchmark, record_table):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    d = SETUP.data_size_bits
    optimum = SETUP.n * d // SETUP.k
    rows = []
    for index, total_writes in enumerate((1, 3, 6, 10)):
        with_gc = results["adaptive"][index].final_bo_state_bits
        without_gc = results["adaptive-no-gc"][index].final_bo_state_bits
        rows.append([total_writes, with_gc, without_gc])
        # With GC: exactly the Lemma 8 optimum after every workload.
        assert with_gc == optimum
    table = format_table(
        ["sequential writes", "final bits (with GC)", "final bits (no GC)"],
        rows,
    )
    record_table("E15_gc_ablation", table)
    # Without GC, residue grows and settles near 2nD (k pieces + replica).
    no_gc_finals = [row[2] for row in rows]
    assert no_gc_finals[-1] > 2 * optimum
    assert no_gc_finals[-1] <= 2 * SETUP.n * d
    assert no_gc_finals == sorted(no_gc_finals)


def test_no_gc_register_still_reads_correctly(benchmark):
    """The ablation only costs storage, not correctness."""
    from repro.sim import FairScheduler, Simulation
    from repro.workloads import make_value

    def run():
        sim = Simulation(AdaptiveNoGCRegister(SETUP))
        writer = sim.add_client("w0")
        values = [make_value(SETUP, f"gcless-{i}") for i in range(4)]
        for value in values:
            writer.enqueue_write(value)
        sim.run(FairScheduler())
        reader = sim.add_client("r0")
        reader.enqueue_read()
        sim.run(FairScheduler())
        return sim, values

    sim, values = benchmark.pedantic(run, rounds=1, iterations=1)
    [read] = sim.trace.reads()
    assert read.result == values[-1]
