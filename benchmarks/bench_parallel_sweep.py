"""E14 — parallel sweep execution: process-pool fan-out vs the serial loop.

Sweep cells are independent and seed-deterministic, so the crossover
grids should scale with cores, not with one Python process. This
benchmark drives the parallel executor
(:func:`repro.analysis.executor.run_sweep`) against the serial engine on
a reference scenario grid (two scenarios — the uniform wave and
churn-with-crashes — over an (f, k, c) regime block) and checks the two
contracts the executor makes:

* **Determinism** — the pooled result must be byte-identical to the
  serial one (``to_json(include_timing=False)``) at every worker count,
  crash firing records and overlay curves included. Always asserted, in
  ``--quick`` mode too.
* **Speedup** — at 4 workers the pooled sweep must finish in less than
  half the serial wall-clock (>= 2x, asserted with generous slack and
  only where it can physically hold: full mode on a machine with >= 4
  cores; on smaller hosts and in ``--quick`` mode — whose grid is too
  small to amortise pool startup — the measured ratio is reported but
  not enforced).

Results land in ``benchmarks/results/e14_parallel_sweep{,_quick}.json``
(plus a rendered ``.txt``), and the canonical gate summary in
``benchmarks/results/BENCH_parallel_sweep.json`` — compared against the
committed baseline by ``scripts/check_bench_regression.py`` in CI.

Two entry points:

* ``pytest benchmarks/bench_parallel_sweep.py`` — serial-vs-pooled
  equivalence on a trimmed grid plus journal round-trip (checkpoint
  written, resume recomputes nothing);
* ``python benchmarks/bench_parallel_sweep.py [--quick] [--workers N]``
  — the timed comparison.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

from repro.analysis import (
    Scenario,
    SweepGrid,
    run_sweep,
    sweep_cells,
)
from repro.analysis.benchgate import metric, write_bench_summary
from repro.analysis.sweeps import run_sweep as serial_run_sweep

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SEED = 14
DATA = 48

#: Both scenario shapes of the reference grid: the paper's uniform burst
#: and the churn-with-crashes plan (1 base object + 1 client killed per
#: cell on a seed-derived schedule) — so the determinism assertion covers
#: crash firing records, not just clean cells.
SCENARIOS = (
    Scenario("uniform"),
    Scenario("churn+crash", pattern="churn", ops_per_client=2,
             bo_crashes=1, client_crashes=1),
)

#: The reference grid: 40 points x 2 scenarios = 80 cells, heavy enough
#: that pool startup (one spawn + numpy import per worker) amortises.
FULL = dict(
    registers=("abd", "coded-only", "adaptive"),
    fs=(2, 3),
    ks=(2, 4),
    cs=(1, 2, 4, 8),
)

#: CI smoke grid: 9 points x 2 scenarios = 18 cells. Too small to show
#: real speedup (pool startup dominates); quick mode asserts determinism
#: and journaling only.
QUICK = dict(
    registers=("abd", "coded-only", "adaptive"),
    fs=(2,),
    ks=(2,),
    cs=(1, 2, 4),
)


def build_grid(spec: dict) -> SweepGrid:
    return SweepGrid.cartesian(
        registers=spec["registers"], fs=spec["fs"], ks=spec["ks"],
        cs=spec["cs"], data_sizes=(DATA,), seed=SEED,
    )


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def run(
    quick: bool,
    worker_counts: tuple[int, ...] = (2, 4),
    echo=lambda line: None,
) -> dict:
    """Measure serial vs pooled wall-clock; assert determinism throughout."""
    spec = QUICK if quick else FULL
    grid = build_grid(spec)
    cells = len(sweep_cells(grid, SCENARIOS))
    echo(f"parallel sweep: {cells} cells "
         f"({len(grid)} points x {len(SCENARIOS)} scenarios), "
         f"host cpus={os.cpu_count()}")

    serial, serial_s = _timed(
        lambda: serial_run_sweep(grid, scenarios=SCENARIOS)
    )
    reference = serial.to_json(include_timing=False)
    echo(f"  serial          {serial_s:7.2f} s  "
         f"{cells / serial_s:6.1f} cells/s")

    modes = []
    for workers in worker_counts:
        pooled, pooled_s = _timed(
            lambda: run_sweep(grid, scenarios=SCENARIOS, workers=workers)
        )
        assert pooled.to_json(include_timing=False) == reference, (
            f"pooled sweep at workers={workers} diverged from serial"
        )
        modes.append({
            "workers": workers,
            "seconds": round(pooled_s, 4),
            "cells_per_s": round(cells / pooled_s, 2),
            "speedup_vs_serial": round(serial_s / pooled_s, 3),
        })
        echo(f"  workers={workers:<2}      {pooled_s:7.2f} s  "
             f"{cells / pooled_s:6.1f} cells/s  "
             f"({serial_s / pooled_s:4.2f}x serial, byte-identical)")

    return {
        "experiment": "e14_parallel_sweep",
        "quick": quick,
        "cells": cells,
        "host_cpus": os.cpu_count(),
        "serial": {
            "seconds": round(serial_s, 4),
            "cells_per_s": round(cells / serial_s, 2),
        },
        "pooled": modes,
        "byte_identical": True,  # asserted above for every worker count
    }


def render(payload: dict) -> str:
    lines = [
        f"E14: parallel sweep fan-out — {payload['cells']} cells, "
        f"{payload['host_cpus']} host cpus",
        "",
        f"{'mode':>12}  {'seconds':>9}  {'cells/s':>9}  {'speedup':>8}",
        f"{'serial':>12}  {payload['serial']['seconds']:>9.2f}  "
        f"{payload['serial']['cells_per_s']:>9.1f}  {'1.00x':>8}",
    ]
    for mode in payload["pooled"]:
        lines.append(
            f"{'workers=' + str(mode['workers']):>12}  "
            f"{mode['seconds']:>9.2f}  {mode['cells_per_s']:>9.1f}  "
            f"{mode['speedup_vs_serial']:>7.2f}x"
        )
    lines.append("")
    lines.append("pooled JSON byte-identical to serial at every worker "
                 "count (asserted)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small grid, determinism-only (CI smoke run)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="largest pool size to measure (default 4)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="required speedup at the largest pool (default: 2.0 in full "
             "mode on a >= 4-core host, otherwise report-only)",
    )
    args = parser.parse_args(argv)
    worker_counts = tuple(dict.fromkeys(
        w for w in (2, args.workers) if 2 <= w <= args.workers
    )) or (args.workers,)
    payload = run(args.quick, worker_counts=worker_counts, echo=print)

    min_speedup = args.min_speedup
    if min_speedup is None:
        # The >= 2x bar only binds where it can physically hold: the full
        # grid (quick cells are dwarfed by pool startup) on a host with
        # at least as many cores as workers. Generous slack either way —
        # dev containers show ~3x at 4 workers on 4+ cores.
        enough_cores = (os.cpu_count() or 1) >= max(worker_counts)
        min_speedup = 2.0 if (not args.quick and enough_cores) else 0.0

    table = render(payload)
    print()
    print(table)
    suffix = "_quick" if args.quick else ""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"e14_parallel_sweep{suffix}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    (RESULTS_DIR / f"E14_parallel_sweep{suffix}.txt").write_text(
        table + "\n"
    )
    top = payload["pooled"][-1]
    write_bench_summary(
        "parallel_sweep",
        {
            "serial_cells_per_s": metric(
                payload["serial"]["cells_per_s"], "cells/s"
            ),
            "pooled_cells_per_s": metric(top["cells_per_s"], "cells/s"),
        },
        RESULTS_DIR,
        quick=args.quick,
    )
    if top["speedup_vs_serial"] < min_speedup:
        print(
            f"FAIL: speedup {top['speedup_vs_serial']:.2f}x at "
            f"workers={top['workers']} below bar {min_speedup:.2f}x"
        )
        return 1
    if min_speedup:
        print(f"\nok: {top['speedup_vs_serial']:.2f}x at "
              f"workers={top['workers']} (bar {min_speedup:.2f}x)")
    return 0


# ---------------------------------------------------------------- pytest


TEST_GRID = dict(registers=("abd", "coded-only", "adaptive"),
                 fs=(2,), ks=(2,), cs=(1, 2))


class TestParallelSweepSmoke:
    def test_pooled_matches_serial_with_journal(self, tmp_path):
        """Serial vs 2-worker equivalence plus a checkpoint round-trip:
        the pooled run journals every cell, and resuming from the
        complete journal recomputes nothing (the heavier workers-{1,2,4}
        matrix lives in tests/analysis/test_executor.py)."""
        grid = build_grid(TEST_GRID)
        checkpoint = tmp_path / "sweep.journal.jsonl"
        serial = serial_run_sweep(grid, scenarios=SCENARIOS)
        pooled = run_sweep(grid, scenarios=SCENARIOS, workers=2,
                           checkpoint=checkpoint)
        assert pooled.to_json(include_timing=False) == \
            serial.to_json(include_timing=False)
        cells = len(sweep_cells(grid, SCENARIOS))
        lines = checkpoint.read_text().splitlines()
        assert len(lines) == cells + 1  # header + one line per cell
        resumed = run_sweep(grid, scenarios=SCENARIOS, workers=2,
                            checkpoint=checkpoint, resume=True)
        assert resumed.to_json(include_timing=False) == \
            serial.to_json(include_timing=False)

    def test_reference_grid_spans_both_scenario_kinds(self):
        assert {s.name for s in SCENARIOS} == {"uniform", "churn+crash"}
        assert any(s.has_crashes for s in SCENARIOS)
        assert len(build_grid(FULL)) * len(SCENARIOS) >= 80


if __name__ == "__main__":
    raise SystemExit(main())
