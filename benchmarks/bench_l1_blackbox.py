"""E12 — Lemma 1 / Definition 5: indistinguishability, mechanically.

Paper claim: because the algorithms are black-box, replacing a write's
value with an I-colliding one (I = the write's stored block numbers)
yields a run that clients and base objects cannot distinguish; a solo
reader therefore returns the same value in both runs and may never return
the replaced write's value while it has < D bits stored.

The bench records a run of c concurrent writes, cuts it while the target
write has 1..k-1 pieces in storage, computes the colliding value from the
code's null space, replays the identical action script, compares every
block instance in the two worlds, and runs the solo reader in both.
"""

import pytest

from repro.analysis import format_table
from repro.lowerbound import run_replacement_experiment, stored_indices_of
from repro.registers import AdaptiveRegister, CodedOnlyRegister, RegisterSetup
from repro.sim import FairScheduler, RandomScheduler
from repro.sim.trace import OpKind

SETUP = RegisterSetup(f=2, k=3, data_size_bytes=24)


def cut(low, high):
    def until(sim):
        for op in sim.trace.ops.values():
            if op.kind is OpKind.WRITE and op.client == "w0":
                return low <= len(stored_indices_of(sim, op.op_uid)) <= high
        return False

    return until


@pytest.mark.parametrize(
    "register_cls", [CodedOnlyRegister, AdaptiveRegister], ids=lambda c: c.name
)
def test_lemma1_indistinguishability(benchmark, record_table, register_cls):
    def run():
        reports = []
        for seed, scheduler in [
            (0, FairScheduler()),
            (1, RandomScheduler(1)),
            (2, RandomScheduler(2)),
        ]:
            reports.append(run_replacement_experiment(
                register_cls, SETUP, concurrency=3,
                scheduler=scheduler, until=cut(1, 2), seed=seed,
            ))
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for seed, report in enumerate(reports):
        assert report.lemma1_consistent
        assert report.states_correspond
        assert report.reader_results_equal
        rows.append([
            seed,
            ",".join(map(str, report.stored_indices)),
            report.states_correspond,
            report.reader_results_equal,
            not report.reader_saw_replaced_write,
        ])
    table = format_table(
        ["run", "stored indices I", "Def.5 states match",
         "readers indistinguishable", "replaced value never read"],
        rows,
    )
    record_table(f"E12_lemma1_{register_cls.name}", table)
