"""E13 — Section 3.2: parking data in channels does not evade the bound.

Paper claim: algorithms that keep base-object storage small by letting
pieces ride in the network ([5, 8]) are still subject to Theorem 1,
because the model charges pending-RMW parameters and undelivered responses
as storage ("information in channels is counted").

The channel-parking register stores exactly one piece per object (bo-state
= n D/k, flat in c) yet its Definition 2 cost grows linearly with c — the
in-flight update RMWs carry one piece per object per outstanding write.
"""

import pytest

from repro.analysis import format_table, linear_slope
from repro.registers import ChannelCodedRegister, RegisterSetup
from repro.workloads import WorkloadSpec, run_register_workload

SETUP = RegisterSetup(f=2, k=2, data_size_bytes=16)  # n=6, D=128, piece=64
CS = [1, 2, 3, 4, 6, 8]


def sweep():
    results = []
    for c in CS:
        spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0, seed=3)
        results.append(run_register_workload(ChannelCodedRegister, SETUP, spec))
    return results


def test_channel_parking_still_pays(benchmark, record_table):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    bo_flat = SETUP.n * SETUP.data_size_bits // SETUP.k
    rows = []
    totals = []
    for c, result in zip(CS, results):
        assert result.peak_bo_state_bits == bo_flat  # nodes stay tiny
        totals.append(result.peak_storage_bits)
        rows.append([
            c, result.peak_bo_state_bits, result.peak_storage_bits,
            result.peak_storage_bits - result.peak_bo_state_bits,
        ])
    table = format_table(
        ["c", "bo-state peak(bits)", "Definition 2 peak(bits)",
         "channel share(bits)"],
        rows,
    )
    record_table("E13_channel_parking", table)
    # Total cost grows ~linearly with c even though node storage is flat.
    assert totals == sorted(totals)
    piece_bits = SETUP.data_size_bits // SETUP.k
    slope = linear_slope(CS, totals)
    assert slope == pytest.approx(SETUP.n * piece_bits, rel=0.5)
