"""E16 — the TCP service under fire: fault-plan latency vs clean baseline.

What does a seeded fault plan *cost*? This bench drives the same
loopback cluster twice through the fault proxy — once under
:func:`~repro.faults.plan.clean_plan` (the proxy in the path but firing
nothing, so the baseline pays the interception overhead too) and once
under a reference ``drop+delay`` plan whose horizon spans the whole
workload — and reports per-operation latency percentiles (p50/p99) plus
what the retry machinery did (timeouts, resends, fault firings).

The history must stay strongly regular in both modes: faults move the
latency distribution, never the semantics.

Two entry points:

* ``pytest benchmarks/bench_service_faults.py`` — semantic assertions on
  a small workload;
* ``python benchmarks/bench_service_faults.py [--quick]`` — the timed
  run (quick: 30 writes + 30 reads per mode; full: 120 + 120), writing
  ``benchmarks/results/BENCH_service_faults.json`` for the CI
  regression gate.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import tempfile
import time

from repro.analysis import format_table
from repro.analysis.benchgate import metric, write_bench_summary
from repro.faults import (
    FaultInjector,
    FaultProxyCluster,
    clean_plan,
    seeded_fault_plan,
)
from repro.service import (
    BackoffPolicy,
    LoopbackCluster,
    ServiceClient,
    merge_histories,
)
from repro.spec import check_strong_regularity

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

F = 1
DATA = 16  # D = 128 bits
REPLICAS = ("s0", "s1", "s2")
SEED = 1
RATE = 0.2
TIMEOUT = 0.1  # per-request; small so retries stay cheap in the bench
TICK_S = 0.02


def value_of(index: int) -> bytes:
    return bytes([33 + index % 90]) * DATA


def reference_plan(ops: int):
    """A drop+delay plan whose horizon covers the whole workload, so
    faults keep firing throughout instead of only on the first few
    messages per link."""
    return seeded_fault_plan(
        SEED, replicas=REPLICAS, f=F, profile="drop+delay", rate=RATE,
        horizon=6 * ops,
    )


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


async def run_mode(plan, ops: int) -> dict:
    """One mode: ``ops`` writes then ``ops`` reads through the proxy."""
    injector = FaultInjector(plan)
    with tempfile.TemporaryDirectory(prefix="repro-bench-faults-") as tmp:
        async with LoopbackCluster(F, DATA, tmp) as cluster:
            async with FaultProxyCluster(
                cluster.endpoints, injector, tick_s=TICK_S
            ) as proxies:
                def resilient(name: str) -> ServiceClient:
                    return ServiceClient(
                        name, proxies.endpoints, F, DATA,
                        timeout=TIMEOUT, op_deadline=30.0,
                        backoff=BackoffPolicy(
                            base=TIMEOUT, cap=8 * TIMEOUT, seed=plan.seed,
                        ),
                    )

                writer, reader = resilient("w0"), resilient("r0")
                write_lat: list[float] = []
                read_lat: list[float] = []
                started = time.perf_counter()
                for index in range(ops):
                    t0 = time.perf_counter()
                    await writer.write(value_of(index))
                    write_lat.append(time.perf_counter() - t0)
                write_s = time.perf_counter() - started
                started = time.perf_counter()
                for _ in range(ops):
                    t0 = time.perf_counter()
                    await reader.read()
                    read_lat.append(time.perf_counter() - t0)
                read_s = time.perf_counter() - started
                history = merge_histories([writer, reader])
                retries = writer.stats.timeouts + reader.stats.timeouts
                resent = (
                    writer.stats.resent_messages
                    + reader.stats.resent_messages
                )
                await writer.close()
                await reader.close()
    fired = injector.firing_counts()
    return {
        "ops": ops,
        "write_s": write_s,
        "read_s": read_s,
        "writes_per_s": ops / write_s,
        "reads_per_s": ops / read_s,
        "write_p50_ms": 1e3 * percentile(write_lat, 0.50),
        "write_p99_ms": 1e3 * percentile(write_lat, 0.99),
        "read_p50_ms": 1e3 * percentile(read_lat, 0.50),
        "read_p99_ms": 1e3 * percentile(read_lat, 0.99),
        "retry_timeouts": retries,
        "resent_messages": resent,
        "link_faults_fired": sum(
            count for kind, count in fired.items()
            if not kind.startswith("event:")
        ),
        "regular": check_strong_regularity(history).ok,
    }


async def run_workload(ops: int) -> dict:
    return {
        "clean": await run_mode(clean_plan(REPLICAS, F), ops),
        "faulty": await run_mode(reference_plan(ops), ops),
    }


def check(payload: dict) -> None:
    """The semantic half — asserted in every mode."""
    for mode in ("clean", "faulty"):
        assert payload[mode]["regular"], f"{mode}: history not regular"
    assert payload["clean"]["link_faults_fired"] == 0
    assert payload["clean"]["retry_timeouts"] == 0
    assert payload["faulty"]["link_faults_fired"] > 0


def render(payload: dict) -> str:
    rows = []
    for mode in ("clean", "faulty"):
        stats = payload[mode]
        rows.append([
            mode, stats["ops"],
            f"{stats['write_p50_ms']:.1f}", f"{stats['write_p99_ms']:.1f}",
            f"{stats['read_p50_ms']:.1f}", f"{stats['read_p99_ms']:.1f}",
            stats["retry_timeouts"], stats["link_faults_fired"],
        ])
    table = format_table(
        ["mode", "ops", "w p50 ms", "w p99 ms", "r p50 ms", "r p99 ms",
         "retries", "faults"],
        rows,
    )
    return (
        f"E16: loopback service through the fault proxy — f={F}, "
        f"D={DATA * 8} bits, drop+delay rate={RATE}, seed={SEED}\n\n"
        f"{table}\n\n"
        "both histories strongly regular; clean mode pays only the "
        "proxy hop, faulty mode pays the retry machinery"
    )


def test_faults_move_latency_not_semantics(record_table):
    payload = asyncio.run(run_workload(ops=8))
    check(payload)
    record_table("e16_service_faults", render(payload))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small op counts (CI smoke run)",
    )
    args = parser.parse_args(argv)
    ops = 30 if args.quick else 120
    payload = asyncio.run(run_workload(ops))
    check(payload)

    text = render(payload)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    suffix = "_quick" if args.quick else ""
    (RESULTS_DIR / f"e16_service_faults{suffix}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    (RESULTS_DIR / f"e16_service_faults{suffix}.txt").write_text(
        text + "\n"
    )
    write_bench_summary(
        "service_faults",
        {
            "clean_writes_per_s": metric(
                round(payload["clean"]["writes_per_s"], 1), "ops/s"
            ),
            "faulty_writes_per_s": metric(
                round(payload["faulty"]["writes_per_s"], 1), "ops/s"
            ),
        },
        RESULTS_DIR,
        quick=args.quick,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
