"""E9 — the crossover: adaptive storage = min(replication-like, coded-like).

Paper claim (Theta(min(f, c) D), Section 5): the adaptive register behaves
like a coded register while c < k and like a bounded replica store beyond,
so its curve is the lower envelope's *shape* — flat-after-crossover like
replication, linear-before like coding. The crossover sits at c ~ k.

Since PR 2 this experiment is driven by the regime-sweep engine
(:mod:`repro.analysis.sweeps`); since the scenario axis landed, the engine
is scenario-aware and this benchmark sweeps its grid under the crash-free
uniform writer wave by default — pass ``--with-crashes`` to add the
churn-with-crashes scenario (1 base object + 1 client killed per cell on a
seed-derived schedule) and render a second block of curves per regime.
The full scenario x D-axis matrix lives in ``bench_scenario_sweep.py``.
One :class:`SweepGrid` covers 20+ (n, k) points per run (f in 1..5, k in
{2, 3, 4, 6}, c up to 12), every concurrent-writer wave shares one stacked
encode pass, and the result is serialised to
``benchmarks/results/e9_crossover_sweep.json``. Each curve is rendered
next to the literature overlays:

* ``thm1`` — this paper's Theorem 1 bound ``min((f+1)D/2, c(D/2+1))``;
* ``bks18`` — the Berger–Keidar–Spiegelman integrated bound for
  disintegrated storage, ``min(f+1, c) * D`` (arXiv:1805.06265);
* ``lrc`` — the Cadambe–Mazumdar locality-2 storage floor
  ``n * D / k_max`` (arXiv:1308.3200).

Two entry points:

* ``pytest benchmarks/bench_crossover.py`` — shape assertions on the
  classic (f=3, k=3) curve plus a quick multi-regime sweep;
* ``python benchmarks/bench_crossover.py [--quick] [--with-crashes]`` —
  the full 20-point sweep (``--quick`` trims to 6 points for CI smoke
  runs), printing the overlay curves and writing the JSON result.
"""

from __future__ import annotations

import argparse
import pathlib

from repro.analysis import (
    Scenario,
    SweepGrid,
    SweepResult,
    crossover_shape_violations,
    linear_slope,
    register_uses_k,
    render_crossover_blocks,
    run_sweep,
)
from repro.analysis.benchgate import write_sweep_bench_summary

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

DATA = 48  # D = 384 bits: divisible by every k in the grid
SEED = 9

#: The crash companion of the default uniform wave (``--with-crashes``).
CRASH_SCENARIO = Scenario(
    "churn+crash", pattern="churn", ops_per_client=2,
    bo_crashes=1, client_crashes=1,
)

#: The full regime grid: 20 (n, k) points (5 f-values x 4 k-values).
FULL_GRID = dict(
    registers=("abd", "coded-only", "adaptive"),
    fs=(1, 2, 3, 4, 5),
    ks=(2, 3, 4, 6),
    cs=(1, 2, 4, 8, 12),
)

#: CI smoke grid: 6 (n, k) points, small concurrency span.
QUICK_GRID = dict(
    registers=("abd", "coded-only", "adaptive"),
    fs=(1, 3),
    ks=(2, 3, 4),
    cs=(1, 2, 6),
)

#: The paper's classic single-regime curve (plus the CAS baseline [6]).
CLASSIC_GRID = dict(
    registers=("abd", "coded-only", "cas", "adaptive"),
    fs=(3,),
    ks=(3,),
    cs=(1, 2, 3, 4, 6, 8, 10, 12),
)


def build_grid(spec: dict) -> SweepGrid:
    return SweepGrid.cartesian(
        registers=spec["registers"],
        fs=spec["fs"],
        ks=spec["ks"],
        cs=spec["cs"],
        data_sizes=(DATA,),
        seed=SEED,
    )


def coded_regimes(result: SweepResult) -> list[tuple[int, int]]:
    """The (f, k) regimes of the k-using registers (ABD runs per-f only)."""
    return sorted(
        {(r.f, r.k) for r in result.records if register_uses_k(r.register)}
    )


def render_crossover(result: SweepResult, cs: tuple[int, ...]) -> str:
    """One measured-vs-overlay block per scenario x coded regime (the
    shared :func:`~repro.analysis.sweeps.render_crossover_blocks`)."""
    return render_crossover_blocks(result, cs)


def run(
    quick: bool,
    with_crashes: bool = False,
    echo=lambda line: None,
    workers: int = 1,
    checkpoint: str | None = None,
    resume: bool = False,
) -> tuple[SweepResult, str]:
    """Run the sweep, write results, return (result, rendered text).

    ``workers > 1`` fans the cells out across a process pool (same JSON,
    measured fields byte-identical); ``checkpoint``/``resume`` journal
    completed cells so an interrupted run picks up where it stopped.
    """
    spec = QUICK_GRID if quick else FULL_GRID
    grid = build_grid(spec)
    scenarios = [Scenario("uniform")]
    if with_crashes:
        scenarios.append(CRASH_SCENARIO)
    coded = {(p.n, p.k) for p in grid if register_uses_k(p.register)}
    echo(
        f"regime sweep: {len(grid) * len(scenarios)} runs over {len(coded)} "
        f"coded (n, k) points (+{len(grid.nk_points()) - len(coded)} "
        f"replication) x {len(scenarios)} scenario(s), D={DATA * 8} bits, "
        f"workers={workers}"
    )
    result = run_sweep(
        grid,
        scenarios=scenarios,
        workers=workers,
        checkpoint=checkpoint,
        resume=resume,
        progress=lambda done, total, point: echo(
            f"  [{done}/{total}] {point.register} f={point.f} "
            f"k={point.k} c={point.c}"
        )
        if done % 25 == 0
        else None,
    )
    text = render_crossover(result, spec["cs"])
    suffix = "_quick" if quick else ""
    json_path = RESULTS_DIR / f"e9_crossover_sweep{suffix}.json"
    result.save(json_path)  # creates RESULTS_DIR for the .txt below too
    (RESULTS_DIR / f"E9_crossover_sweep{suffix}.txt").write_text(text + "\n")
    write_sweep_bench_summary("crossover", result, RESULTS_DIR, quick=quick)
    echo(f"JSON result: {json_path}")
    return result, text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="6 (n, k) points instead of 20 (CI smoke run)",
    )
    parser.add_argument(
        "--with-crashes", action="store_true",
        help="also sweep the churn-with-crashes scenario per regime",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size (1 = serial; results byte-identical)",
    )
    parser.add_argument(
        "--checkpoint", type=str, default=None,
        help="JSONL journal path for checkpoint/resume",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from an existing --checkpoint journal",
    )
    args = parser.parse_args(argv)
    result, text = run(
        quick=args.quick, with_crashes=args.with_crashes, echo=print,
        workers=args.workers, checkpoint=args.checkpoint,
        resume=args.resume,
    )
    print()
    print(text)
    # Cross-regime sanity: ABD flat in c everywhere, coded-only growing
    # (failure-adapted slack applies in crash scenarios). Explicit (not
    # assert) so the smoke run fails even under python -O.
    violations = crossover_shape_violations(result)
    if violations:
        for violation in violations:
            print(f"SHAPE VIOLATION: {violation}")
        return 1
    print(f"\nok: {len(coded_regimes(result))} coded (n, k) points, "
          f"{len(result)} runs, shapes hold")
    return 0


# ---------------------------------------------------------------- pytest


def test_grid_covers_twenty_nk_points():
    """The full CLI grid must span >= 20 distinct (n, k) regimes."""
    grid = build_grid(FULL_GRID)
    coded_nk = {
        (point.n, point.k) for point in grid if point.register != "abd"
    }
    assert len(coded_nk) >= 20


def test_quick_sweep_shapes(record_table):
    """Multi-regime smoke: ABD flat, coded-only linear, overlays ordered."""
    result, text = run(quick=True)
    record_table("E9_crossover_multi_regime", text)
    assert crossover_shape_violations(result) == []
    for record in result.records:
        # BKS'18 strengthens Theorem 1; both undercut measured peaks for
        # the regular registers measured here.
        assert record.thm1_bits <= record.disintegrated_bits
        if record.register in ("coded-only", "adaptive"):
            assert record.peak_bo_state_bits >= record.thm1_bits


def test_crossover_shape(benchmark, record_table):
    """The paper's classic f=3, k=3 curve, now via the sweep engine."""
    result = benchmark.pedantic(
        lambda: run_sweep(build_grid(CLASSIC_GRID)), rounds=1, iterations=1
    )
    cs = CLASSIC_GRID["cs"]
    series = {
        register: [
            y
            for _, y in result.series(
                register=register,
                f=3,
                **(dict(k=3) if register_uses_k(register) else {}),
            )
        ]
        for register in CLASSIC_GRID["registers"]
    }
    record_table("E9_crossover", render_crossover(result, cs))
    k = 3
    # CAS, the paper's named baseline [6], also grows linearly with c.
    assert series["cas"] == sorted(series["cas"])
    assert series["cas"][-1] > 3 * series["cas"][0]

    # ABD: flat in c.
    assert len(set(series["abd"])) == 1
    # Coded-only: strictly growing, ~linear.
    assert series["coded-only"] == sorted(series["coded-only"])
    assert series["coded-only"][-1] > 3 * series["coded-only"][0]
    # Adaptive: grows up to the crossover (c ~ k), then saturates.
    before = [p for c, p in zip(cs, series["adaptive"]) if c < k]
    after = [p for c, p in zip(cs, series["adaptive"]) if c >= k + 1]
    assert before == sorted(before)
    assert max(after) == min(after), "adaptive must saturate past c = k"
    # Beyond the crossover, adaptive strictly beats coded-only.
    for i, c in enumerate(cs):
        if c >= 2 * k:
            assert series["adaptive"][i] < series["coded-only"][i]
    # Everything stays O(min(f,c) D): constants differ, shape must hold —
    # adaptive's saturation level is within a constant of ABD's.
    assert max(after) <= 4 * series["abd"][0]
    # Coded-only's slope is about one piece per object per writer.
    assert linear_slope(cs, series["coded-only"]) > 0


if __name__ == "__main__":
    raise SystemExit(main())
