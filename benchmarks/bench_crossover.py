"""E9 — the crossover: adaptive storage = min(replication-like, coded-like).

Paper claim (Theta(min(f, c) D), Section 5): the adaptive register behaves
like a coded register while c < k and like a bounded replica store beyond,
so its curve is the lower envelope's *shape* — flat-after-crossover like
replication, linear-before like coding. The crossover sits at c ~ k.

This is the ablation for the paper's one design choice: what happens with
the replica fallback (adaptive) vs without it (coded-only) vs replicas
only (ABD).
"""

from repro.analysis import format_table, linear_slope
from repro.registers import (
    ABDRegister,
    AdaptiveRegister,
    CASRegister,
    CodedOnlyRegister,
    RegisterSetup,
    replication_setup,
)
from repro.workloads import WorkloadSpec, run_register_workload

F = 3
K = 3
DATA = 48  # D = 384
CS = [1, 2, 3, 4, 6, 8, 10, 12]


def sweep():
    coded_setup = RegisterSetup(f=F, k=K, data_size_bytes=DATA)
    abd_setup = replication_setup(f=F, data_size_bytes=DATA)
    series = {"abd": [], "coded-only": [], "cas": [], "adaptive": []}
    for c in CS:
        spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0, seed=9)
        series["abd"].append(
            run_register_workload(ABDRegister, abd_setup, spec)
            .peak_bo_state_bits
        )
        series["coded-only"].append(
            run_register_workload(CodedOnlyRegister, coded_setup, spec)
            .peak_bo_state_bits
        )
        series["cas"].append(
            run_register_workload(CASRegister, coded_setup, spec)
            .peak_bo_state_bits
        )
        series["adaptive"].append(
            run_register_workload(AdaptiveRegister, coded_setup, spec)
            .peak_bo_state_bits
        )
    return series


def test_crossover_shape(benchmark, record_table):
    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    d = DATA * 8
    rows = [
        [c, series["abd"][i], series["coded-only"][i], series["cas"][i],
         series["adaptive"][i]]
        for i, c in enumerate(CS)
    ]
    table = format_table(
        ["c", "ABD(bits)", "coded-only(bits)", "CAS [6](bits)",
         "adaptive(bits)"],
        rows,
    )
    record_table("E9_crossover", table)
    # CAS, the paper's named baseline [6], also grows linearly with c.
    assert series["cas"] == sorted(series["cas"])
    assert series["cas"][-1] > 3 * series["cas"][0]

    # ABD: flat in c.
    assert len(set(series["abd"])) == 1
    # Coded-only: strictly growing, ~linear.
    assert series["coded-only"] == sorted(series["coded-only"])
    assert series["coded-only"][-1] > 3 * series["coded-only"][0]
    # Adaptive: grows up to the crossover (c ~ k), then saturates.
    before = [p for c, p in zip(CS, series["adaptive"]) if c < K]
    after = [p for c, p in zip(CS, series["adaptive"]) if c >= K + 1]
    assert before == sorted(before)
    assert max(after) == min(after), "adaptive must saturate past c = k"
    # Beyond the crossover, adaptive strictly beats coded-only.
    for i, c in enumerate(CS):
        if c >= 2 * K:
            assert series["adaptive"][i] < series["coded-only"][i]
    # Everything stays O(min(f,c) D): constants differ, shape must hold —
    # adaptive's saturation level is within a constant of ABD's.
    assert max(after) <= 4 * series["abd"][0]
    # Coded-only's slope is about one piece per object per writer.
    assert linear_slope(CS, series["coded-only"]) > 0
