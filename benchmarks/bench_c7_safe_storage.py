"""E5 — Corollary 7: the safe register's storage is exactly nD/k, always.

Paper claim: Appendix E's wait-free strongly safe register costs
``nD/k = (2f/k + 1) D`` bits — under any workload, at peak, regardless of
concurrency. This breaks the Theorem 1 bound (safe < regular), which is the
paper's evidence that the bound genuinely hinges on regularity.
"""

from repro.analysis import format_table
from repro.registers import RegisterSetup, SafeCodedRegister
from repro.sim import RandomScheduler
from repro.workloads import WorkloadSpec, run_register_workload

CONFIGS = [
    (1, 2, 16),
    (2, 2, 16),
    (2, 4, 32),
    (3, 6, 48),
    (4, 8, 64),
]


def sweep():
    results = []
    for f, k, data in CONFIGS:
        setup = RegisterSetup(f=f, k=k, data_size_bytes=data)
        spec = WorkloadSpec(writers=4, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=5)
        result = run_register_workload(
            SafeCodedRegister, setup, spec, scheduler=RandomScheduler(5)
        )
        results.append((setup, result))
    return results


def test_corollary7_exact_storage(benchmark, record_table):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for setup, result in results:
        d = setup.data_size_bits
        expected = setup.n * d // setup.k
        theorem1_at_c4 = min(setup.f, 4) * d // 2
        assert result.peak_bo_state_bits == expected
        assert result.final_bo_state_bits == expected
        rows.append([
            setup.f, setup.k, setup.n, d,
            result.peak_bo_state_bits, expected,
            f"(2f/k+1)D = {(2 * setup.f / setup.k + 1):.1f}D",
            theorem1_at_c4,
        ])
    table = format_table(
        ["f", "k", "n", "D", "peak(bits)", "nD/k", "formula",
         "thm1 bound (c=4)"],
        rows,
    )
    record_table("E5_corollary7_safe_storage", table)
    # With k = 2f the safe register stores 2D — below min(f,c)D/2 for f>4:
    f, k, data = 4, 8, 64
    setup = RegisterSetup(f=f, k=k, data_size_bytes=data)
    safe_cost = setup.n * setup.data_size_bits // setup.k
    assert safe_cost == 2 * setup.data_size_bits
