"""E13 — scenario-diverse sweeps: crash plans, shaped workloads, the D axis.

The paper's bounds are *adversarial*: Theorem 1 and the Section 5 adaptive
bound hold under concurrency, crashes, and arbitrary value sizes D. The
crossover benchmark (E9) measures crash-free uniform writer waves; this
experiment sweeps the same register space along the two axes E9 holds
fixed:

* **Scenario axis** — every grid point runs under four workload shapes:
  the uniform wave, churn-with-crashes (waves of write-then-read clients
  with 1 base object + 1 client killed per cell on a seed-derived
  deterministic schedule), a read-heavy storm, and (full mode) staggered
  writers losing two base objects. Crash cells measure the
  crossover-under-crashes curves the ROADMAP flagged as unmeasured.
* **D axis** — value sizes from 6 to 192 bytes through a
  :class:`~repro.coding.padding.PaddedScheme` (sizes indivisible by k
  included). The bounds are linear in D, so the per-D overhead ratio
  exposes the additive terms the asymptotics hide: the 4-byte length
  prefix, zero padding to the next k multiple, and per-block constants.

Every cell renders next to the Theorem 1 / BKS'18 / Cadambe–Mazumdar
overlays, and the failure-adapted shape checks
(:func:`~repro.analysis.sweeps.crossover_shape_violations`) plus the
Theorem 1 floor are asserted, not just plotted.

Two entry points:

* ``pytest benchmarks/bench_scenario_sweep.py`` — the quick matrix with
  the per-action ledger-vs-reference audit on every scenario x register
  cell, plus byte-identical determinism of a repeated crash sweep;
* ``python benchmarks/bench_scenario_sweep.py [--quick]`` — the full
  matrix (``--quick`` trims regimes and D values for CI smoke runs; the
  smoke run also audits the storage ledger at every action), printing
  per-scenario crossover blocks and the D-axis overhead table, and
  writing JSON + rendered curves to ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import pathlib

import pytest

from repro.analysis import (
    Scenario,
    SweepGrid,
    SweepPoint,
    SweepResult,
    crossover_shape_violations,
    format_table,
    register_uses_k,
    render_crossover_blocks,
    run_sweep,
)
from repro.analysis.benchgate import write_sweep_bench_summary

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SEED = 13
CROSSOVER_DATA = 48  # D = 384 bits for the c-axis blocks

#: The scenario catalog. ``staggered+crash`` only runs in full mode.
SCENARIOS = (
    Scenario("uniform"),
    Scenario("churn+crash", pattern="churn", ops_per_client=2,
             bo_crashes=1, client_crashes=1),
    Scenario("read-heavy", pattern="read-heavy", readers=6,
             reads_per_reader=2),
    Scenario("staggered+crash", pattern="staggered", ops_per_client=2,
             bo_crashes=2),
)

FULL = dict(
    registers=("abd", "coded-only", "adaptive"),
    fs=(2, 3),
    ks=(2, 4),
    cs=(1, 2, 4, 8),
    d_sizes=(6, 12, 24, 48, 96, 192),
    d_point=dict(f=2, k=4, c=4),
    scenarios=SCENARIOS,
)

QUICK = dict(
    registers=("abd", "coded-only", "adaptive"),
    fs=(2,),
    ks=(2,),
    cs=(1, 2, 4),
    d_sizes=(6, 12, 48, 96),
    d_point=dict(f=2, k=4, c=4),
    scenarios=SCENARIOS[:3],
)


def build_grid(spec: dict) -> SweepGrid:
    """Crossover points (fixed D) + padded D-axis points (fixed regime)."""
    crossover = SweepGrid.cartesian(
        registers=spec["registers"],
        fs=spec["fs"],
        ks=spec["ks"],
        cs=spec["cs"],
        data_sizes=(CROSSOVER_DATA,),
        seed=SEED,
    )
    d_axis = [
        SweepPoint(
            register=register, c=spec["d_point"]["c"], f=spec["d_point"]["f"],
            k=spec["d_point"]["k"], data_size_bytes=data, seed=SEED,
            padded=True,
        )
        # ABD never pads (replication shards nothing), so its D cells
        # would render nowhere; sweep the D axis for coded registers only.
        for register in spec["registers"] if register_uses_k(register)
        for data in spec["d_sizes"]
    ]
    return SweepGrid.explicit(list(crossover) + d_axis)


def render_scenario_crossovers(result: SweepResult, spec: dict) -> str:
    """One measured-vs-overlay block per scenario x coded (f, k) regime
    (the crossover-D slice through the shared renderer)."""
    return render_crossover_blocks(
        SweepResult(
            result.select(data_bits=CROSSOVER_DATA * 8, padded=False)
        ),
        spec["cs"],
    )


def render_d_axis(result: SweepResult, spec: dict) -> str:
    """Per-scenario D-axis blocks: peak bits (and bits-per-D) across D."""
    point = spec["d_point"]
    data_bits = [d * 8 for d in spec["d_sizes"]]
    blocks = []
    for scenario in result.scenarios():
        sub = result.select(scenario=scenario, padded=True)
        rows = []
        registers = list(dict.fromkeys(r.register for r in sub))
        for register in registers:
            by_d = {
                r.data_bits: r for r in sub
                if r.register == register
            }
            rows.append(
                [register]
                + [by_d[d].peak_bo_state_bits if d in by_d else "-"
                   for d in data_bits]
            )
            rows.append(
                [f"  {register} bits/D"]
                + [f"{by_d[d].peak_bo_state_bits / d:.2f}" if d in by_d
                   else "-" for d in data_bits]
            )
        coded = {r.data_bits: r for r in sub if r.register == "coded-only"}
        rows.append(
            ["~thm1 (lower bd)"]
            + [coded[d].thm1_bits if d in coded else "-" for d in data_bits]
        )
        header = (
            f"{scenario} D-axis f={point['f']} k={point['k']} "
            f"c={point['c']} (padded)"
        )
        blocks.append(format_table(
            [header] + [f"D={d}" for d in data_bits], rows
        ))
    return "\n\n".join(blocks)


def check_bounds(result: SweepResult) -> list[str]:
    """Assertable bound facts beyond the shape checks; return failures.

    * Theorem 1: every regular coded register's measured peak sits on or
      above ``min((f+1)D/2, c(D/2+1))`` — crash cells included (the bound
      is adversarial; losing <= f objects must not defeat it).
    * Section 5: adaptive stays within a small constant of its
      ``(min(f,c)+1)(n/k)D`` upper bound in every scenario. The bound
      describes settled storage; the mid-run *peak* measured here also
      counts pieces a writer scattered before GC reclaims them, which on
      this matrix reaches 2.67x the bound (f=2, k=4, c=8, uniform) — 3x
      is the asserted ceiling.
    """
    failures = []
    for record in result.records:
        where = (
            f"{record.scenario} {record.register} f={record.f} "
            f"k={record.k} c={record.c} D={record.data_bits}"
        )
        if record.register in ("coded-only", "adaptive"):
            if record.peak_bo_state_bits < record.thm1_bits:
                failures.append(
                    f"below Thm 1 at {where}: {record.peak_bo_state_bits} "
                    f"< {record.thm1_bits}"
                )
        if record.register == "adaptive" and not record.padded:
            if record.peak_bo_state_bits > 3 * record.adaptive_bound_bits:
                failures.append(
                    f"adaptive above 3x Section 5 bound at {where}: "
                    f"{record.peak_bo_state_bits} > "
                    f"3 * {record.adaptive_bound_bits}"
                )
    return failures


def run(
    quick: bool,
    echo=lambda line: None,
    workers: int = 1,
    checkpoint: str | None = None,
    resume: bool = False,
    backend: str | None = None,
) -> tuple[SweepResult, str]:
    """Run the matrix, write results, return (result, rendered text).

    ``workers > 1`` fans the cells out across a process pool (measured
    fields byte-identical to serial); ``checkpoint``/``resume`` journal
    completed cells so an interrupted matrix picks up where it stopped.
    ``backend`` pins the GF(2^8) coding backend for the run (including
    pool workers); the measured fields are backend-invariant, so any
    registered backend must produce the same records.
    """
    spec = QUICK if quick else FULL
    grid = build_grid(spec)
    scenarios = spec["scenarios"]
    echo(
        f"scenario sweep: {len(grid)} grid points x {len(scenarios)} "
        f"scenarios = {len(grid) * len(scenarios)} cells "
        f"({'per-action ledger audit on' if quick else 'audit off'}, "
        f"workers={workers})"
    )
    result = run_sweep(
        grid,
        scenarios=scenarios,
        # The CI smoke re-checks ledger == full-walk reference at every
        # action of every scenario x register cell.
        audit_storage_every=1 if quick else 0,
        workers=workers,
        checkpoint=checkpoint,
        resume=resume,
        coding_backend=backend,
        progress=lambda done, total, point: echo(
            f"  [{done}/{total}] {point.register} f={point.f} k={point.k} "
            f"c={point.c} D={point.data_size_bytes * 8}"
        )
        if done % 50 == 0
        else None,
    )
    text = (
        render_scenario_crossovers(result, spec)
        + "\n\n"
        + render_d_axis(result, spec)
    )
    suffix = "_quick" if quick else ""
    json_path = RESULTS_DIR / f"e13_scenario_sweep{suffix}.json"
    result.save(json_path)
    (RESULTS_DIR / f"E13_scenario_sweep{suffix}.txt").write_text(text + "\n")
    write_sweep_bench_summary("scenario_sweep", result, RESULTS_DIR,
                              quick=quick)
    echo(f"JSON result: {json_path}")
    return result, text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="trimmed matrix with the per-action ledger audit (CI smoke)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size (1 = serial; results byte-identical)",
    )
    parser.add_argument(
        "--checkpoint", type=str, default=None,
        help="JSONL journal path for checkpoint/resume",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from an existing --checkpoint journal",
    )
    parser.add_argument(
        "--backend", type=str, default=None,
        help="GF(2^8) coding backend for the run (default: active "
             "backend; results are backend-invariant)",
    )
    args = parser.parse_args(argv)
    result, text = run(quick=args.quick, echo=print, workers=args.workers,
                       checkpoint=args.checkpoint, resume=args.resume,
                       backend=args.backend)
    print()
    print(text)
    # Explicit (not assert) so the smoke run fails even under python -O.
    problems = crossover_shape_violations(result) + check_bounds(result)
    if problems:
        for problem in problems:
            print(f"VIOLATION: {problem}")
        return 1
    crash_cells = [
        r for r in result.records if r.bo_crashes or r.client_crashes
    ]
    print(
        f"\nok: {len(result)} cells over {len(result.scenarios())} "
        f"scenarios, {len(crash_cells)} crash cells, shapes + Thm 1 floor "
        f"hold"
    )
    return 0


# ---------------------------------------------------------------- pytest


@pytest.fixture(scope="module")
def quick_result():
    result, text = run(quick=True)
    return result, text


def test_quick_matrix_shapes_and_bounds(quick_result, record_table):
    """The CI smoke: every scenario x register cell ran with the
    per-action ledger audit (run(quick=True) sets audit_storage_every=1;
    a ledger divergence raises MeasurementError before we get here), the
    failure-adapted shapes hold, and measured peaks respect Theorem 1 and
    the Section 5 bound — crash cells included."""
    result, text = quick_result
    record_table("E13_scenario_sweep_quick", text)
    assert crossover_shape_violations(result) == []
    assert check_bounds(result) == []


def test_quick_matrix_covers_the_acceptance_axes(quick_result):
    """>= 3 scenarios (uniform, churn-with-crashes, read-heavy) x a
    D-axis series of >= 4 value sizes, with crash cells that really
    crashed."""
    result, _ = quick_result
    assert len(result.scenarios()) >= 3
    assert {"uniform", "churn+crash", "read-heavy"} <= \
        set(result.scenarios())
    d_bits = {r.data_bits for r in result.records if r.padded}
    assert len(d_bits) >= 4
    crash_cells = result.select(scenario="churn+crash")
    assert crash_cells
    assert all(
        r.bo_crashes >= 1 and r.client_crashes >= 1 for r in crash_cells
    )


def test_d_axis_overhead_shrinks_with_d(quick_result):
    """Additive padding/prefix constants dominate small D and wash out at
    large D — the bits-per-data-bit ratio must fall monotonically."""
    result, _ = quick_result
    for scenario in result.scenarios():
        for register in ("coded-only", "adaptive"):
            sub = [
                r for r in result.select(scenario=scenario,
                                         register=register)
                if r.padded
            ]
            ratios = [
                r.peak_bo_state_bits / r.data_bits
                for r in sorted(sub, key=lambda r: r.data_bits)
            ]
            assert ratios == sorted(ratios, reverse=True), (
                f"{scenario}/{register}: {ratios}"
            )


def test_same_seed_quick_sweep_is_byte_identical():
    """Determinism across the whole quick matrix, crash scheduling
    included."""
    spec = dict(QUICK, cs=(1, 2), d_sizes=(6, 48))
    grid = build_grid(spec)
    first = run_sweep(grid, scenarios=spec["scenarios"])
    second = run_sweep(grid, scenarios=spec["scenarios"])
    assert first.to_json(include_timing=False) == \
        second.to_json(include_timing=False)


if __name__ == "__main__":
    raise SystemExit(main())
