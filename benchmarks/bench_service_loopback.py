"""E15 — the TCP service in the loop: loopback throughput + accounting.

The protocol/transport split promises that moving ABD from the simulated
network onto real asyncio TCP sockets changes *performance*, not
*semantics*. This bench drives a loopback cluster (real frames, real
kernel TCP stack, journals on disk) and checks both halves:

* **Semantics** — the live Definition-2 at-rest charge equals the
  simulated deployment's at equal ``(f, D)`` (``(2f+1) D`` bits for
  replication), reads return the freshest acknowledged write, and the
  recorded history passes the strong-regularity checker.
* **Performance** — sequential write and read throughput over loopback
  TCP (each write is two quorum round-trips carrying a full replica
  block; each read is one), summarised in
  ``benchmarks/results/BENCH_service_loopback.json`` and gated against
  the committed baseline by ``scripts/check_bench_regression.py``.

Two entry points:

* ``pytest benchmarks/bench_service_loopback.py`` — the semantic
  assertions on a small workload;
* ``python benchmarks/bench_service_loopback.py [--quick]`` — the timed
  run (quick: 60 writes + 60 reads; full: 400 + 400).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import tempfile
import time

from repro.analysis import format_table
from repro.analysis.benchgate import metric, write_bench_summary
from repro.msgnet import MsgABDSystem
from repro.service import LoopbackCluster, merge_histories
from repro.spec import check_strong_regularity

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

F = 1
DATA = 16  # D = 128 bits


def value_of(index: int) -> bytes:
    return bytes([33 + index % 90]) * DATA


async def run_workload(writes: int, reads: int) -> dict:
    """Timed sequential writes then reads against a loopback cluster."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as tmp:
        async with LoopbackCluster(F, DATA, tmp) as cluster:
            client = cluster.client("w0", timeout=10.0)

            started = time.perf_counter()
            for index in range(writes):
                await client.write(value_of(index))
            write_s = time.perf_counter() - started

            started = time.perf_counter()
            last = None
            for _ in range(reads):
                last = await client.read()
            read_s = time.perf_counter() - started

            at_rest_bits = cluster.server_storage_bits()
            history = client.history()
            await client.close()

    sim = MsgABDSystem(f=F, data_size_bytes=DATA)
    sim.add_writer("w0", value_of(0))
    sim.run()

    return {
        "writes": writes,
        "reads": reads,
        "write_s": write_s,
        "read_s": read_s,
        "writes_per_s": writes / write_s,
        "reads_per_s": reads / read_s,
        "last_read": last,
        "at_rest_bits": at_rest_bits,
        "sim_at_rest_bits": sim.server_storage_bits(),
        "regular": check_strong_regularity(history).ok,
    }


def check(payload: dict) -> None:
    """The semantic half — asserted in every mode."""
    assert payload["last_read"] == value_of(payload["writes"] - 1)
    assert payload["at_rest_bits"] == payload["sim_at_rest_bits"] \
        == (2 * F + 1) * DATA * 8
    assert payload["regular"]


def render(payload: dict) -> str:
    rows = [
        ["write (2 quorum RTT)", payload["writes"],
         f"{payload['writes_per_s']:.0f} ops/s"],
        ["read (1 quorum RTT)", payload["reads"],
         f"{payload['reads_per_s']:.0f} ops/s"],
    ]
    table = format_table(["operation", "count", "loopback throughput"], rows)
    return (
        f"E15: loopback TCP service — f={F}, D={DATA * 8} bits, "
        f"n={2 * F + 1} in-loop servers\n\n{table}\n\n"
        f"at-rest storage: {payload['at_rest_bits']} bits "
        f"(== simulated deployment: {payload['sim_at_rest_bits']}); "
        "history strongly regular"
    )


def test_loopback_service(benchmark, record_table):
    payload = benchmark.pedantic(
        lambda: asyncio.run(run_workload(writes=12, reads=12)),
        rounds=1, iterations=1,
    )
    check(payload)
    record_table("e15_service_loopback", render(payload))


def test_history_across_clients(record_table):
    async def two_clients() -> bool:
        with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as tmp:
            async with LoopbackCluster(F, DATA, tmp) as cluster:
                writer = cluster.client("w0")
                reader = cluster.client("r0")
                await asyncio.gather(
                    *(writer.write(value_of(i)) for i in range(1)),
                    reader.read(),
                )
                history = merge_histories([writer, reader])
                await writer.close()
                await reader.close()
        return check_strong_regularity(history).ok

    assert asyncio.run(two_clients())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small op counts (CI smoke run)",
    )
    args = parser.parse_args(argv)
    writes, reads = (60, 60) if args.quick else (400, 400)
    payload = asyncio.run(run_workload(writes, reads))
    check(payload)

    text = render(payload)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    suffix = "_quick" if args.quick else ""
    out = dict(payload)
    out.pop("last_read")  # bytes: not JSON, asserted above instead
    (RESULTS_DIR / f"e15_service_loopback{suffix}.json").write_text(
        json.dumps(out, indent=2, sort_keys=True) + "\n"
    )
    (RESULTS_DIR / f"e15_service_loopback{suffix}.txt").write_text(
        text + "\n"
    )
    write_bench_summary(
        "service_loopback",
        {
            "writes_per_s": metric(
                round(payload["writes_per_s"], 1), "ops/s"
            ),
            "reads_per_s": metric(
                round(payload["reads_per_s"], 1), "ops/s"
            ),
        },
        RESULTS_DIR,
        quick=args.quick,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
