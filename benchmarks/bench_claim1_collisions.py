"""E8 — Claim 1: below-D index sets always admit colliding values.

Paper claim (pigeonhole): if a write's stored blocks pin fewer than D bits,
two distinct values encode identically on them. For linear codes we verify
constructively over every index subset of each scheme (exhaustively for RS
and XOR parity; sampled for the rateless code's unbounded index space).
"""

import itertools

from repro.analysis import format_table
from repro.coding import RatelessXorCode, ReedSolomonCode, XorParityCode
from repro.lowerbound import verify_claim1

SCHEMES = [
    ReedSolomonCode(k=3, n=7, data_size_bytes=24),
    ReedSolomonCode(k=4, n=10, data_size_bytes=32),
    XorParityCode(k=4, data_size_bytes=32),
]


def exhaustive_subsets(scheme, max_size):
    checks = 0
    for size in range(max_size + 1):
        for indices in itertools.combinations(range(scheme.n), size):
            report = verify_claim1(scheme, indices)
            assert report.consistent_with_claim, (scheme.name, indices)
            if report.premise_holds:
                assert report.collision_valid, (scheme.name, indices)
            checks += 1
    return checks


def run_all():
    counts = []
    for scheme in SCHEMES:
        counts.append(exhaustive_subsets(scheme, scheme.k))
    # Rateless: sample index windows from the unbounded domain.
    rateless = RatelessXorCode(k=5, data_size_bytes=40, seed=11)
    sampled = 0
    for start in (0, 97, 10_000):
        for size in range(rateless.k):
            indices = range(start, start + size)
            report = verify_claim1(rateless, indices)
            assert report.consistent_with_claim
            if report.premise_holds:
                assert report.collision_valid
            sampled += 1
    return counts, sampled


def test_claim1_exhaustive(benchmark, record_table):
    counts, sampled = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [scheme.name, f"k={scheme.k} n={scheme.n}", count, "exhaustive<=k"]
        for scheme, count in zip(SCHEMES, counts)
    ]
    rows.append(["rateless-xor", "k=5 n=inf", sampled, "sampled windows"])
    table = format_table(
        ["scheme", "params", "index sets checked", "mode"], rows
    )
    record_table("E8_claim1_collisions", table)
    assert sum(counts) > 200  # meaningful exhaustive coverage
