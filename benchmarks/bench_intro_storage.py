"""E6 — the introduction's cost comparison at f = 1.

Paper claim (Section 1): "if the data size is D bits and a single failure
needs to be tolerated, erasure-coded storage ideally requires (k+2) D/k
bits for some parameter k > 1 instead of the 3D bits needed for
replication". Measured: quiescent storage of the coded registers (n = k+2
objects holding one D/k piece each) vs ABD's 3 replicas, sweeping k.
"""

from repro.analysis import format_table
from repro.registers import (
    ABDRegister,
    AdaptiveRegister,
    RegisterSetup,
    replication_setup,
)
from repro.workloads import WorkloadSpec, run_register_workload

KS = [2, 3, 4, 6, 8]
DATA = 48  # divisible by every k above; D = 384 bits


def sweep():
    spec = WorkloadSpec(writers=1, writes_per_writer=1, readers=0, seed=6)
    abd = run_register_workload(
        ABDRegister, replication_setup(f=1, data_size_bytes=DATA), spec
    )
    coded = []
    for k in KS:
        setup = RegisterSetup(f=1, k=k, data_size_bytes=DATA)
        coded.append(run_register_workload(AdaptiveRegister, setup, spec))
    return abd, coded


def test_intro_cost_comparison(benchmark, record_table):
    abd, coded = benchmark.pedantic(sweep, rounds=1, iterations=1)
    d = DATA * 8
    assert abd.final_bo_state_bits == 3 * d  # replication: 3D at f=1
    rows = [["replication", "-", abd.final_bo_state_bits, "3D", "-"]]
    for k, result in zip(KS, coded):
        expected = (k + 2) * d // k
        assert result.final_bo_state_bits == expected
        savings = 1 - result.final_bo_state_bits / (3 * d)
        rows.append([
            "adaptive (coded)", k, result.final_bo_state_bits,
            f"(k+2)D/k = {(k + 2) / k:.2f}D", f"{savings:.0%} saved",
        ])
    table = format_table(
        ["register", "k", "quiescent storage(bits)", "formula",
         "vs replication"],
        rows,
    )
    record_table("E6_intro_comparison", table)
    # Coding always beats 3D, and the gap widens with k.
    costs = [r.final_bo_state_bits for r in coded]
    assert all(cost < 3 * d for cost in costs)
    assert costs == sorted(costs, reverse=True)
