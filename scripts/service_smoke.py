#!/usr/bin/env python
"""End-to-end smoke test for the networked ABD storage service.

Exercises both halves of the service layer in under a few seconds and
exits nonzero on the first broken invariant — the quick CI step that
catches "the daemon doesn't even start" class regressions before the
full lifecycle suite runs in nightly:

1. **Loopback half** (in-process servers, real TCP frames): write/read
   round-trip, Definition-2 at-rest bits == ``(2f+1) D``, history
   strongly regular.
2. **Daemon half** (real detached subprocesses): ``serve`` brings up
   ``2f+1`` pid/port-published servers, ``status`` and ``doctor`` report
   healthy and exit 0, a client op lands, double-``serve`` exits 3,
   ``stop`` drains everything, a second ``stop`` exits 4.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--f 1] [--data-size 16]
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.service import (  # noqa: E402
    LoopbackCluster,
    ServiceClient,
    StateDir,
)
from repro.spec import check_strong_regularity  # noqa: E402

FAILURES: list[str] = []


def check(label: str, ok: bool) -> None:
    print(f"{'ok  ' if ok else 'FAIL'} {label}")
    if not ok:
        FAILURES.append(label)


def loopback_half(f: int, data_size: int) -> None:
    async def scenario():
        with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
            async with LoopbackCluster(f, data_size, tmp) as cluster:
                client = cluster.client("w0", timeout=5.0)
                await client.write(b"\x5a" * data_size)
                value = await client.read()
                bits = cluster.server_storage_bits()
                history = client.history()
                await client.close()
        return value, bits, check_strong_regularity(history).ok

    value, bits, regular = asyncio.run(scenario())
    check("loopback: read returns acknowledged write",
          value == b"\x5a" * data_size)
    check("loopback: at-rest bits == (2f+1) D",
          bits == (2 * f + 1) * data_size * 8)
    check("loopback: history strongly regular", regular)


def daemon_half(f: int, data_size: int) -> None:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        state_dir = str(Path(tmp) / "cluster")
        serve = ["serve", "--f", str(f), "--data-size", str(data_size),
                 "--state-dir", state_dir]
        check("daemon: serve exits 0", cli_main(serve) == 0)
        check("daemon: status exits 0",
              cli_main(["status", "--state-dir", state_dir]) == 0)

        state = StateDir(state_dir)
        meta = state.read_meta()
        endpoints = {
            server["name"]: (meta["host"], state.read_port(server["name"]))
            for server in meta["servers"]
        }

        async def one_op():
            client = ServiceClient("w0", endpoints, f, data_size,
                                   timeout=5.0)
            await client.write(b"\xa5" * data_size)
            value = await client.read()
            await client.close()
            return value

        check("daemon: client write/read lands",
              asyncio.run(one_op()) == b"\xa5" * data_size)
        check("daemon: doctor exits 0 (healthy)",
              cli_main(["doctor", "--state-dir", state_dir]) == 0)
        check("daemon: double serve exits 3", cli_main(serve) == 3)
        check("daemon: stop exits 0",
              cli_main(["stop", "--state-dir", state_dir]) == 0)
        check("daemon: second stop exits 4",
              cli_main(["stop", "--state-dir", state_dir]) == 4)
        check("daemon: no live pids remain", state.live_servers() == [])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--f", type=int, default=1)
    parser.add_argument("--data-size", type=int, default=16)
    args = parser.parse_args(argv)
    loopback_half(args.f, args.data_size)
    daemon_half(args.f, args.data_size)
    if FAILURES:
        print(f"\nservice smoke: {len(FAILURES)} check(s) FAILED")
        return 1
    print("\nservice smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
