#!/usr/bin/env python
"""CI bench-regression gate: compare BENCH_*.json summaries to baselines.

Each ``--quick`` benchmark step writes a canonical summary to
``benchmarks/results/BENCH_<name>.json`` (see
:mod:`repro.analysis.benchgate`). This script walks the committed
baselines in ``benchmarks/baselines/``, pairs each with the freshly
measured summary of the same name, and fails (exit 1) when any metric's
implied throughput dropped below ``1 - threshold`` of its baseline —
default threshold 0.40, i.e. a >40% throughput regression.

Usage (what CI runs after the bench smoke steps)::

    PYTHONPATH=src python scripts/check_bench_regression.py

Options let tests and local runs point at synthetic directories::

    python scripts/check_bench_regression.py \\
        --baselines benchmarks/baselines \\
        --results benchmarks/results \\
        --threshold 0.40
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Runnable without an installed package: scripts/ sits next to src/.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.benchgate import (  # noqa: E402
    compare_summaries,
    load_bench_summary,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def check_regressions(
    baselines_dir: str | Path,
    results_dir: str | Path,
    threshold: float = 0.40,
) -> list[str]:
    """All problems across every committed baseline (empty = gate passes).

    A baseline without a matching current summary is itself a failure:
    it means a CI bench step stopped writing its summary, which would
    otherwise silently disable the gate for that bench.
    """
    baselines_dir = Path(baselines_dir)
    results_dir = Path(results_dir)
    baseline_paths = sorted(baselines_dir.glob("BENCH_*.json"))
    if not baseline_paths:
        return [f"no BENCH_*.json baselines found in {baselines_dir}"]
    problems: list[str] = []
    for baseline_path in baseline_paths:
        baseline = load_bench_summary(baseline_path)
        current_path = results_dir / baseline_path.name
        if not current_path.exists():
            problems.append(
                f"{baseline['bench']}: no current summary at "
                f"{current_path} (did the bench step run?)"
            )
            continue
        current = load_bench_summary(current_path)
        problems.extend(compare_summaries(baseline, current, threshold))
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baselines", default=str(REPO_ROOT / "benchmarks" / "baselines"),
        help="directory of committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--results", default=str(REPO_ROOT / "benchmarks" / "results"),
        help="directory the bench steps wrote fresh summaries to",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.40,
        help="fail on throughput below (1 - threshold) x baseline",
    )
    args = parser.parse_args(argv)
    problems = check_regressions(args.baselines, args.results,
                                 args.threshold)
    if problems:
        for problem in problems:
            print(f"BENCH REGRESSION: {problem}")
        return 1
    count = len(sorted(Path(args.baselines).glob("BENCH_*.json")))
    print(
        f"bench gate ok: {count} summaries within "
        f"{args.threshold:.0%} of baseline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
