#!/usr/bin/env python3
"""Fault-tolerance demo: crash base objects and clients mid-operation.

Runs a mixed read/write workload on the adaptive register while a failure
plan crashes ``f`` base objects and one writer at awkward moments, then
verifies (1) every surviving operation completed, (2) the history is still
strongly regular, and (3) storage converged back to the coded optimum.

Run:  python examples/fault_tolerance_demo.py
"""

from repro import (
    AdaptiveRegister,
    FailurePlan,
    FairScheduler,
    RegisterSetup,
    WorkloadSpec,
    check_strong_regularity,
    run_register_workload,
)
from repro.sim import at_time


def main() -> None:
    setup = RegisterSetup(f=2, k=2, data_size_bytes=32)
    spec = WorkloadSpec(writers=3, writes_per_writer=2, readers=3,
                        reads_per_reader=2, seed=21)

    def configure(sim, scheduler):
        return (
            FailurePlan(scheduler)
            .crash_base_object(1, at_time(30))
            .crash_base_object(4, at_time(90))
            .crash_client("w1", at_time(60))
        )

    result = run_register_workload(
        AdaptiveRegister, setup, spec,
        scheduler=FairScheduler(), configure=configure,
    )

    crashed_writer_ops = [
        op for op in result.trace.writes() if op.client == "w1"
    ]
    survivors = [op for op in result.trace.writes() if op.client != "w1"]
    print(f"base objects crashed: 2/{setup.n} (f={setup.f})")
    print(f"writer w1 crashed mid-run; its completed writes: "
          f"{sum(1 for op in crashed_writer_ops if op.complete)}"
          f"/{len(crashed_writer_ops)}")
    print(f"surviving writers completed: "
          f"{sum(1 for op in survivors if op.complete)}/{len(survivors)}")
    print(f"reads completed: {result.completed_reads}"
          f"/{spec.readers * spec.reads_per_reader}")

    report = check_strong_regularity(result.history)
    print(f"history strongly regular: {report.ok}")

    optimum = setup.n * setup.data_size_bits // setup.k
    print(f"peak storage {result.peak_bo_state_bits} bits; "
          f"final {result.final_bo_state_bits} bits "
          f"(live-object optimum {optimum} minus crashed objects' share)")

    assert all(op.complete for op in survivors)
    assert result.completed_reads == 6
    assert report.ok
    print("fault-tolerance demo OK")


if __name__ == "__main__":
    main()
