"""Sweep the adaptive-vs-coded-only-vs-ABD crossover across two regimes.

The paper's Section 5 claim is a curve *shape*: adaptive storage grows
like a coded store while c < k, then saturates like replication. One
SweepGrid declares the whole experiment — registers x (f, k) regimes x
concurrency levels — and run_sweep executes it deterministically, batching
each point's writer wave through one stacked encode pass.

Run with:  PYTHONPATH=src python examples/regime_sweep.py
"""

from repro.analysis import SweepGrid, format_table, run_sweep

# Two (f, k) regimes, concurrency swept through the crossover at c ~ k.
grid = SweepGrid.cartesian(
    registers=("abd", "coded-only", "adaptive"),
    fs=(2,),
    ks=(2, 3),
    cs=(1, 2, 4, 8),
    data_sizes=(48,),  # D = 384 bits
    seed=7,
)

print(f"running {len(grid)} workload points over {grid.nk_points()} ...\n")
result = run_sweep(grid)

# ABD ignores k (it is the k = 1 replication point), so its curve is
# selected per-f and reused in every k block.
regimes = sorted({(r.f, r.k) for r in result.records if r.register != "abd"})
for f, k in regimes:
    n = result.select(f=f, k=k, register="coded-only")[0].n
    cs = [c for c, _ in result.series(f=f, register="abd")]
    rows = [["abd"] + [y for _, y in result.series(f=f, register="abd")]]
    rows += [
        [register] + [y for _, y in result.series(f=f, k=k, register=register)]
        for register in ("coded-only", "adaptive")
    ]
    # Closed-form overlays from the literature ride along in each record.
    reference = {r.c: r for r in result.select(f=f, k=k, register="adaptive")}
    rows.append(["thm1 bound"] + [reference[c].thm1_bits for c in cs])
    rows.append(["bks18 bound"] + [reference[c].disintegrated_bits for c in cs])
    rows.append(["lrc floor"] + [reference[c].lrc_floor_bits for c in cs])
    print(format_table(
        [f"f={f} k={k} n={n}"] + [f"c={c}" for c in cs], rows
    ))
    print()

# The crossover in one sentence: past c ~ k, adaptive stops growing.
for f, k in regimes:
    curve = result.series(f=f, k=k, register="adaptive")
    saturated = {y for c, y in curve if c > k}
    print(f"f={f} k={k}: adaptive saturates at {min(saturated)} bits "
          f"past c = {k} (flat: {len(saturated) == 1})")
