"""Sweep the adaptive-vs-coded-only-vs-ABD crossover across two regimes,
with and without crashes.

The paper's Section 5 claim is a curve *shape*: adaptive storage grows
like a coded store while c < k, then saturates like replication. One
SweepGrid declares the parameter space — registers x (f, k) regimes x
concurrency levels — and a pair of Scenarios declares the workloads: the
crash-free uniform wave, and churn waves losing one base object and one
client mid-run on a seed-derived deterministic schedule. run_sweep
executes every scenario x point cell, batching each cell's writer wave
through one stacked encode pass.

Run with:  PYTHONPATH=src python examples/regime_sweep.py
"""

from repro.analysis import Scenario, SweepGrid, format_table, run_sweep

# Two (f, k) regimes, concurrency swept through the crossover at c ~ k.
grid = SweepGrid.cartesian(
    registers=("abd", "coded-only", "adaptive"),
    fs=(2,),
    ks=(2, 3),
    cs=(1, 2, 4, 8),
    data_sizes=(48,),  # D = 384 bits
    seed=7,
)

# The workload axis: the paper's burst, then the same grid under churn
# with crashes — the bounds are adversarial, so shapes must survive both.
scenarios = (
    Scenario("uniform"),
    Scenario("churn+crash", pattern="churn", ops_per_client=2,
             bo_crashes=1, client_crashes=1),
)

print(f"running {len(grid)} points x {len(scenarios)} scenarios "
      f"over {grid.nk_points()} ...\n")
result = run_sweep(grid, scenarios=scenarios)

# ABD ignores k (it is the k = 1 replication point), so its curve is
# selected per-f and reused in every k block.
regimes = sorted({(r.f, r.k) for r in result.records if r.register != "abd"})
for scenario in result.scenarios():
    sub = result.select(scenario=scenario)
    for f, k in regimes:
        def pick(scenario=scenario, f=f, **kw):
            return result.series(scenario=scenario, f=f, **kw)
        n = [r for r in sub if r.f == f and r.k == k][0].n
        cs = [c for c, _ in pick(register="abd")]
        rows = [["abd"] + [y for _, y in pick(register="abd")]]
        rows += [
            [register] + [y for _, y in pick(k=k, register=register)]
            for register in ("coded-only", "adaptive")
        ]
        # Closed-form overlays from the literature ride along per record.
        reference = {
            r.c: r for r in sub if r.f == f and r.k == k
            and r.register == "adaptive"
        }
        rows.append(["thm1 bound"] + [reference[c].thm1_bits for c in cs])
        rows.append(["bks18 bound"]
                    + [reference[c].disintegrated_bits for c in cs])
        rows.append(["lrc floor"] + [reference[c].lrc_floor_bits for c in cs])
        print(format_table(
            [f"{scenario} f={f} k={k} n={n}"] + [f"c={c}" for c in cs], rows
        ))
        print()

# The crossover in one sentence: past c ~ k, adaptive stops growing —
# with or without crashes.
for scenario in result.scenarios():
    for f, k in regimes:
        curve = result.series(scenario=scenario, f=f, k=k,
                              register="adaptive")
        saturated = {y for c, y in curve if c > k}
        print(f"{scenario} f={f} k={k}: adaptive saturates at "
              f"{min(saturated)} bits past c = {k} "
              f"(flat: {len(saturated) == 1})")
