#!/usr/bin/env python3
"""The lower bound, live: adversary Ad forces Omega(min(f, c) * D) storage.

Runs the paper's Definition 7 adversary against the coded-only register for
a grid of (f, c) and reports where Lemma 3's disjunction fired, the storage
at that instant, and the Theorem 1 bound it must exceed. Also confirms
Corollary 1: no write completes before the bound is realised.

Run:  python examples/adversarial_blowup.py
"""

from repro import RegisterSetup, run_lower_bound_experiment
from repro.analysis import format_table
from repro.registers import CodedOnlyRegister


def main() -> None:
    rows = []
    for f in (2, 3, 4):
        k = f  # the bound-meeting regime
        setup = RegisterSetup(f=f, k=k, data_size_bytes=16 * k)
        for c in (2, 4, 8):
            outcome = run_lower_bound_experiment(
                CodedOnlyRegister, setup, concurrency=c
            )
            assert outcome.bound_satisfied, "Lemma 3 bound violated?!"
            assert outcome.writes_completed == 0, "Corollary 1 violated?!"
            rows.append([
                f, c, setup.data_size_bits,
                outcome.fired,
                outcome.frozen_count,
                outcome.c_plus_count,
                outcome.storage_bits,
                outcome.lemma3_bound_bits,
                f"{outcome.storage_bits / outcome.lemma3_bound_bits:.1f}x",
            ])
    print("Ad with ell = D/2 vs the coded-only register "
          "(c concurrent writes, no write may complete):")
    print(format_table(
        ["f", "c", "D", "fired", "|F|", "|C+|", "storage(bits)",
         "Lemma3 bound", "margin"],
        rows,
    ))
    print(
        "\nEvery row satisfies storage >= min((f+1) D/2, c (D/2+1)) — the\n"
        "executable content of Theorem 1: Omega(min(f, c) * D)."
    )


if __name__ == "__main__":
    main()
