#!/usr/bin/env python3
"""Storage-cost comparison: replication vs coded vs adaptive, sweeping c.

Reproduces the paper's central trade-off table empirically. For each write
concurrency level c, runs a burst of c concurrent writers against:

* ABD replication         — O(fD), flat in c;
* the coded-only register — O(cD), grows with every writer;
* the adaptive register   — O(min(f, c) * D), tracks the lower envelope.

Run:  python examples/storage_cost_comparison.py
"""

from repro import (
    ABDRegister,
    AdaptiveRegister,
    CodedOnlyRegister,
    RegisterSetup,
    WorkloadSpec,
    replication_setup,
    run_register_workload,
)
from repro.analysis import format_table


def peak_bits(register_cls, setup, c: int) -> int:
    spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0, seed=7)
    result = run_register_workload(register_cls, setup, spec)
    return result.peak_bo_state_bits


def main() -> None:
    f = 3
    k = 3  # k = f: the paper's choice for O(min(f, c) D)
    data_size = 48  # D = 384 bits
    coded_setup = RegisterSetup(f=f, k=k, data_size_bytes=data_size)
    abd_setup = replication_setup(f=f, data_size_bytes=data_size)
    d = coded_setup.data_size_bits

    rows = []
    for c in (1, 2, 3, 4, 6, 8, 10):
        abd = peak_bits(ABDRegister, abd_setup, c)
        coded = peak_bits(CodedOnlyRegister, coded_setup, c)
        adaptive = peak_bits(AdaptiveRegister, coded_setup, c)
        rows.append([
            c,
            f"{abd} ({abd / d:.1f}D)",
            f"{coded} ({coded / d:.1f}D)",
            f"{adaptive} ({adaptive / d:.1f}D)",
            f"{min(f, c)}D",
        ])
    print(f"f={f}, k={k}, n={coded_setup.n}, D={d} bits; "
          "peak base-object storage in bits")
    print(format_table(
        ["c", "ABD (replication)", "coded-only", "adaptive (paper)",
         "Theta(min(f,c) D)"],
        rows,
    ))
    print(
        "\nReplication is flat but pays ~(2f+1)D; coded-only grows with c;\n"
        "the adaptive register follows the min of both — Theorem 2."
    )


if __name__ == "__main__":
    main()
