#!/usr/bin/env python3
"""Consistency audit: record histories and check them against the hierarchy.

Shows the three semantic levels the paper distinguishes, on live runs:

1. the adaptive register satisfies *strong regularity* (MWRegWO) under an
   adversarially random schedule;
2. ABD without write-back is regular but NOT atomic — we exhibit a
   new-old inversion history the linearizability checker rejects;
3. the safe register violates regularity under concurrency (a read may
   return v0 mid-write) yet passes the *strong safety* checker.

Run:  python examples/consistency_audit.py
"""

from repro import (
    AdaptiveRegister,
    RandomScheduler,
    RegisterSetup,
    SafeCodedRegister,
    WorkloadSpec,
    check_linearizability,
    check_strong_regularity,
    check_strong_safety,
    check_weak_regularity,
    run_register_workload,
)
from repro.spec import manual_history


def audit_adaptive() -> None:
    setup = RegisterSetup(f=1, k=2, data_size_bytes=16)
    spec = WorkloadSpec(writers=3, writes_per_writer=2, readers=2,
                        reads_per_reader=3, seed=33)
    result = run_register_workload(
        AdaptiveRegister, setup, spec, scheduler=RandomScheduler(33)
    )
    history = result.history
    print("[adaptive register, random schedule]")
    print(f"  ops: {len(history.writes())} writes, {len(history.reads())} reads")
    print(f"  weak regularity:   {check_weak_regularity(history).ok}")
    print(f"  strong regularity: {check_strong_regularity(history).ok}")
    assert check_strong_regularity(history).ok


def audit_regular_but_not_atomic() -> None:
    # The classic new-old inversion: regular registers allow it, atomic
    # ones do not. (ABD without read write-back admits exactly this.)
    history = manual_history([
        ("w1", "w", b"old!", 0, 5),
        ("w2", "w", b"new!", 6, 30),   # slow write, still in flight
        ("r1", "r", b"new!", 8, 12),   # sees the new value early
        ("r2", "r", b"old!", 14, 18),  # then an older value re-appears
    ], v0=b"\x00\x00\x00\x00")
    print("[new-old inversion history]")
    print(f"  weak regularity:   {check_weak_regularity(history).ok}")
    print(f"  linearizability:   {check_linearizability(history).ok}")
    assert check_weak_regularity(history).ok
    assert not check_linearizability(history).ok


def audit_safe() -> None:
    setup = RegisterSetup(f=1, k=3, data_size_bytes=12)
    spec = WorkloadSpec(writers=3, writes_per_writer=2, readers=3,
                        reads_per_reader=2, seed=44)
    result = run_register_workload(
        SafeCodedRegister, setup, spec, scheduler=RandomScheduler(44)
    )
    history = result.history
    v0_reads = sum(1 for op in history.reads() if op.result == history.v0)
    print("[safe register, random schedule]")
    print(f"  strong safety:     {check_strong_safety(history).ok}")
    print(f"  reads returning v0 under concurrency: {v0_reads}"
          f"/{len(history.reads())} (legal for safe, not for regular)")
    assert check_strong_safety(history).ok


def main() -> None:
    audit_adaptive()
    audit_regular_but_not_atomic()
    audit_safe()
    print("consistency audit OK")


if __name__ == "__main__":
    main()
