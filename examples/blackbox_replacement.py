#!/usr/bin/env python3
"""Lemma 1 live: swap a write's value and nobody can tell.

The information-theoretic heart of the lower bound, on a real register:

1. run 3 concurrent writes and cut the run while writer w0's blocks in
   storage pin fewer than D bits;
2. compute a *colliding* value from the Reed-Solomon null space — one that
   encodes identically on exactly the block numbers w0 has in storage;
3. replay the identical schedule with w0 writing the colliding value;
4. diff every block instance in the two worlds (Definition 5), then run a
   solo reader in both.

The reader returns the same bytes in both runs — and therefore can never
return w0's value, because that value differs between the runs. A register
that let a reader return a sub-D-bits write would be caught right here.

Run:  python examples/blackbox_replacement.py
"""

from repro import RegisterSetup, run_replacement_experiment
from repro.lowerbound import stored_indices_of
from repro.registers import AdaptiveRegister, CodedOnlyRegister
from repro.sim import FairScheduler
from repro.sim.trace import OpKind


def cut_while_collidable(sim) -> bool:
    """Stop once w0 has stored 1..k-1 distinct pieces (< D bits)."""
    for op in sim.trace.ops.values():
        if op.kind is OpKind.WRITE and op.client == "w0":
            return 1 <= len(stored_indices_of(sim, op.op_uid)) <= 2
    return False


def main() -> None:
    setup = RegisterSetup(f=2, k=3, data_size_bytes=24)  # D = 192 bits
    for register_cls in (AdaptiveRegister, CodedOnlyRegister):
        report = run_replacement_experiment(
            register_cls, setup, concurrency=3,
            scheduler=FairScheduler(), until=cut_while_collidable, seed=1,
        )
        print(f"[{register_cls.name}]")
        print(f"  w0 wrote            {report.original_value[:8].hex()}…")
        print(f"  colliding value     {report.replacement_value[:8].hex()}…")
        print(f"  stored block numbers I = {list(report.stored_indices)} "
              f"({len(report.stored_indices)} x "
              f"{setup.data_size_bits // setup.k} bits < D = "
              f"{setup.data_size_bits})")
        print(f"  Definition 5 state correspondence: "
              f"{report.states_correspond}")
        print(f"  solo readers indistinguishable:    "
              f"{report.reader_results_equal}")
        print(f"  reader returned w0's value:        "
              f"{report.reader_saw_replaced_write}  (must be False)")
        assert report.lemma1_consistent
    print("black-box replacement OK — Lemma 1's argument holds on both "
          "registers")


if __name__ == "__main__":
    main()
