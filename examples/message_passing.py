#!/usr/bin/env python3
"""ABD over an actual network: the model's origin story.

The paper's shared-memory model abstracts storage nodes reached over an
asynchronous network (the ABD emulation). This example runs the register
in its native message-passing form — server processes, request/reply
messages, adversarially reordered delivery — and shows:

* storage at rest equals the shared-memory model's ``(2f+1) * D`` bits;
* a write round transiently parks one full replica per server *in the
  network*, which the paper's cost model charges (Section 3.2);
* f server crashes are tolerated; f+1 block the system, as they must.

Run:  python examples/message_passing.py
"""

from repro.msgnet import MsgABDSystem, RandomMsgScheduler
from repro.spec import check_strong_regularity


def main() -> None:
    f, data = 2, 32
    system = MsgABDSystem(f=f, data_size_bytes=data)
    print(f"deployed {system.n} server processes (f={f}), D={data * 8} bits")

    # Concurrent writers + readers under randomized message delivery.
    for index in range(3):
        system.add_writer(f"w{index}", bytes([index + 1]) * data)
    for index in range(2):
        system.add_reader(f"r{index}")
    steps = system.run(RandomMsgScheduler(seed=42))
    done = sum(1 for op in system.ops if op.return_time is not None)
    print(f"{steps} network actions; {done}/{len(system.ops)} operations "
          "completed")

    report = check_strong_regularity(system.history())
    print(f"history strongly regular: {report.ok}")

    expected = system.n * data * 8
    print(f"server storage at rest: {system.server_storage_bits()} bits "
          f"(shared-memory ABD: {expected})")

    # Crash f servers: still live.
    system.crash_server("s0")
    system.crash_server("s1")
    system.add_writer("w9", b"\x77" * data)
    system.add_reader("r9")
    system.run(RandomMsgScheduler(seed=43))
    late_ops = [op for op in system.ops if op.client in ("w9", "r9")]
    assert all(op.return_time is not None for op in late_ops)
    read_result = next(op.result for op in late_ops if op.client == "r9")
    print(f"after {f} server crashes: write + read still complete "
          f"(read returned {read_result[:4].hex()}…)")
    assert report.ok
    print("message-passing demo OK")


if __name__ == "__main__":
    main()
