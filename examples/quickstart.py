#!/usr/bin/env python3
"""Quickstart: emulate a reliable register and read your own writes.

Builds the paper's adaptive register (Section 5) over ``n = 2f + k``
simulated fault-prone base objects, writes two values from different
clients, crashes ``f`` base objects, and shows reads still succeed while
storage stays at the coded optimum.

Run:  python examples/quickstart.py
"""

from repro import (
    AdaptiveRegister,
    FairScheduler,
    RegisterSetup,
    Simulation,
    StorageMeter,
    make_value,
)


def main() -> None:
    # Tolerate f = 2 base-object crashes with a 2-of-6 Reed-Solomon code
    # over 64-byte values (D = 512 bits).
    setup = RegisterSetup(f=2, k=2, data_size_bytes=64)
    print(f"register: n={setup.n} base objects, quorum={setup.quorum}, "
          f"D={setup.data_size_bits} bits")

    sim = Simulation(AdaptiveRegister(setup))
    meter = StorageMeter(sim)

    # A client writes; another reads it back.
    alice = sim.add_client("alice")
    value_1 = make_value(setup, "first-document")
    alice.enqueue_write(value_1)
    sim.run(FairScheduler())
    print(f"alice wrote {value_1[:8].hex()}…; "
          f"storage now {meter.bo_only_cost_bits()} bits "
          f"(coded optimum is {setup.n * setup.data_size_bits // setup.k})")

    bob = sim.add_client("bob")
    bob.enqueue_read()
    sim.run(FairScheduler())
    read_op = max(sim.trace.reads(), key=lambda op: op.invoke_time)
    assert read_op.result == value_1
    print(f"bob read    {read_op.result[:8].hex()}… — matches")

    # Crash f base objects; the register keeps working.
    sim.crash_base_object(0)
    sim.crash_base_object(3)
    carol = sim.add_client("carol")
    value_2 = make_value(setup, "second-document")
    carol.enqueue_write(value_2)
    carol.enqueue_read()
    sim.run(FairScheduler())
    read_op = max(sim.trace.reads(), key=lambda op: op.invoke_time)
    assert read_op.result == value_2
    print(f"after crashing {setup.f} base objects: "
          f"carol wrote and read {read_op.result[:8].hex()}… — still live")
    print("quickstart OK")


if __name__ == "__main__":
    main()
