"""Claim 1 tests: constructive I-colliding values across all schemes."""

import itertools

import pytest

from repro.coding import (
    RatelessXorCode,
    ReedSolomonCode,
    ReplicationCode,
    XorParityCode,
)
from repro.errors import ParameterError
from repro.lowerbound import (
    build_colliding_family,
    find_colliding_pair,
    verify_claim1,
    verify_collision,
    xor_bytes,
)

RS = ReedSolomonCode(k=3, n=7, data_size_bytes=24)


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x01\x02", b"\x03\x00") == b"\x02\x02"

    def test_self_inverse(self):
        a, b = b"hello!!!", b"world???"
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            xor_bytes(b"a", b"ab")


class TestFindCollidingPair:
    def test_pair_collides_and_differs(self):
        pair = find_colliding_pair(RS, [0, 4])
        assert pair is not None
        assert verify_collision(RS, [0, 4], pair)

    def test_respects_base_value(self):
        base = bytes(range(24))
        pair = find_colliding_pair(RS, [1, 2], base_value=base)
        assert pair[0] == base
        assert pair[1] != base

    def test_none_when_indices_pin_value(self):
        assert find_colliding_pair(RS, [0, 1, 2]) is None

    def test_collision_invisible_outside_indices_is_false(self):
        # A valid pair must differ on SOME block (else equal values).
        pair = find_colliding_pair(RS, [5, 6])
        differing = [
            i for i in range(RS.n)
            if RS.encode_block(pair[0], i) != RS.encode_block(pair[1], i)
        ]
        assert differing
        assert not set(differing) & {5, 6}


class TestVerifyClaim1:
    @pytest.mark.parametrize("size", [0, 1, 2])
    def test_premise_implies_collision_rs(self, size):
        for indices in itertools.combinations(range(RS.n), size):
            report = verify_claim1(RS, indices)
            assert report.premise_holds  # size < k blocks => < D bits
            assert report.collision_found and report.collision_valid
            assert report.consistent_with_claim

    def test_k_blocks_break_premise(self):
        for indices in itertools.combinations(range(RS.n), RS.k):
            report = verify_claim1(RS, indices)
            assert not report.premise_holds
            assert not report.collision_found
            assert report.consistent_with_claim

    def test_xor_parity_scheme(self):
        code = XorParityCode(k=4, data_size_bytes=32)
        for indices in [(0,), (1, 4), (0, 1, 2)]:
            report = verify_claim1(code, indices)
            assert report.premise_holds
            assert report.collision_valid

    def test_rateless_scheme(self):
        code = RatelessXorCode(k=4, data_size_bytes=32, seed=3)
        report = verify_claim1(code, [10, 20, 30])
        assert report.premise_holds
        assert report.collision_valid

    def test_replication_never_has_premise(self):
        code = ReplicationCode(data_size_bytes=8)
        report = verify_claim1(code, [0])
        # One replica already pins D bits: premise fails, claim vacuous.
        assert not report.premise_holds
        assert report.consistent_with_claim

    def test_duplicate_indices_deduplicated(self):
        report = verify_claim1(RS, [3, 3, 3, 3])
        assert report.stored_bits == RS.block_size_bits(3)
        assert report.premise_holds

    def test_report_records_sizes(self):
        report = verify_claim1(RS, [0, 1])
        assert report.stored_bits == 2 * RS.shard_bytes * 8
        assert report.data_bits == 192


class TestCollidingFamily:
    def test_lemma1_family_construction(self):
        """One colliding pair per 'write', all primary values distinct."""
        index_sets = [[0], [1, 2], [3, 4], []]

        def value_factory(position):
            return bytes([position] * 24)

        family = build_colliding_family(RS, index_sets, value_factory)
        assert len(family) == 4
        primaries = [pair[0] for pair in family]
        assert len(set(primaries)) == 4
        for indices, pair in zip(index_sets, family):
            assert verify_collision(RS, indices, pair)

    def test_family_fails_on_pinned_write(self):
        index_sets = [[0], [0, 1, 2]]  # second set pins the full value
        with pytest.raises(ParameterError):
            build_colliding_family(RS, index_sets, lambda i: bytes([i] * 24))
