"""Theorem 1 / Lemma 3 experiment tests: the storage bound, realised."""

import pytest

from repro.lowerbound import run_lower_bound_experiment
from repro.registers import (
    ABDRegister,
    AdaptiveRegister,
    CodedOnlyRegister,
    RegisterSetup,
    replication_setup,
)

# k = f — the regime where the adaptive algorithm meets the bound.
SETUP = RegisterSetup(f=3, k=3, data_size_bytes=48)  # n=9, D=384, piece=128


class TestLemma3Fires:
    @pytest.mark.parametrize("register_cls", [CodedOnlyRegister, AdaptiveRegister])
    @pytest.mark.parametrize("c", [2, 4, 6])
    def test_disjunction_fires(self, register_cls, c):
        outcome = run_lower_bound_experiment(register_cls, SETUP, concurrency=c)
        assert outcome.fired in ("frozen", "concurrency", "both")
        if outcome.fired in ("frozen", "both"):
            assert outcome.frozen_count > SETUP.f
        if outcome.fired in ("concurrency", "both"):
            assert outcome.c_plus_count == c

    @pytest.mark.parametrize("register_cls", [CodedOnlyRegister, AdaptiveRegister])
    @pytest.mark.parametrize("c", [2, 4, 6])
    def test_storage_meets_lemma3_bound(self, register_cls, c):
        outcome = run_lower_bound_experiment(register_cls, SETUP, concurrency=c)
        assert outcome.bound_satisfied
        assert outcome.storage_bits >= outcome.lemma3_bound_bits

    @pytest.mark.parametrize("c", [2, 4])
    def test_storage_meets_theorem1_bound(self, c):
        """At ell = D/2 the Lemma 3 bound instantiates to min(f,c) D/2."""
        outcome = run_lower_bound_experiment(CodedOnlyRegister, SETUP,
                                             concurrency=c)
        assert outcome.storage_bits >= outcome.theorem1_bound_bits


class TestCorollary1:
    @pytest.mark.parametrize("register_cls", [CodedOnlyRegister, AdaptiveRegister])
    def test_no_write_completes_before_bound_fires(self, register_cls):
        """Corollary 1: under Ad, write completion before the Lemma 3
        state would contradict regularity + lock-freedom."""
        outcome = run_lower_bound_experiment(register_cls, SETUP, concurrency=4)
        assert outcome.writes_completed == 0


class TestReplicationTrivia:
    def test_abd_freezes_instantly(self):
        """Full replicas mean every object holds >= ell = D/2 bits from the
        start: the frozen arm fires at time zero with (2f+1) D storage."""
        setup = replication_setup(f=2, data_size_bytes=32)
        outcome = run_lower_bound_experiment(ABDRegister, setup, concurrency=2)
        assert outcome.fired in ("frozen", "both")
        assert outcome.frozen_count == setup.n
        assert outcome.storage_bits >= (setup.f + 1) * outcome.ell_bits


class TestEllParameter:
    def test_custom_ell(self):
        outcome = run_lower_bound_experiment(
            CodedOnlyRegister, SETUP, concurrency=3,
            ell_bits=SETUP.data_size_bits,  # ell = D: Corollary 2's choice
        )
        assert outcome.ell_bits == SETUP.data_size_bits
        assert outcome.fired != "none"
        # With ell = D, frozen means full-replica-sized objects; the
        # coded-only register never stores D bits in one object, so the
        # concurrency arm must be the one that fires.
        assert outcome.fired == "concurrency"
        assert outcome.c_plus_count == 3

    def test_figure3_ell_band(self):
        """Figure 3 uses 2D/5 < ell < D; any such ell must fire too."""
        ell = SETUP.data_size_bits // 2 + SETUP.data_size_bits // 10
        outcome = run_lower_bound_experiment(
            CodedOnlyRegister, SETUP, concurrency=4, ell_bits=ell
        )
        assert outcome.fired != "none"
        assert outcome.bound_satisfied

    def test_bound_scales_with_c_in_concurrency_regime(self):
        """With ell = D the concurrency arm fires at every c; measured
        storage grows with c."""
        storages = []
        for c in (2, 4, 6):
            outcome = run_lower_bound_experiment(
                CodedOnlyRegister, SETUP, concurrency=c,
                ell_bits=SETUP.data_size_bits,
            )
            storages.append(outcome.storage_bits)
        assert storages[0] < storages[1] < storages[2]


class TestOutcomeAccessors:
    def test_bound_formulas(self):
        outcome = run_lower_bound_experiment(CodedOnlyRegister, SETUP,
                                             concurrency=4)
        d = SETUP.data_size_bits
        ell = d // 2
        assert outcome.lemma3_bound_bits == min(
            (SETUP.f + 1) * ell, 4 * (d - ell + 1)
        )
        assert outcome.theorem1_bound_bits == min(SETUP.f, 4) * d // 2

    def test_snapshot_attached(self):
        outcome = run_lower_bound_experiment(CodedOnlyRegister, SETUP,
                                             concurrency=2)
        assert outcome.snapshot.time == outcome.time
