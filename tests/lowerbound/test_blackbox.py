"""Definition 5 / Lemma 1 tests: scripted replay + value replacement."""

import pytest

from repro.errors import ParameterError
from repro.lowerbound import (
    record_run,
    replay_run,
    run_replacement_experiment,
    stored_indices_of,
)
from repro.registers import AdaptiveRegister, CodedOnlyRegister, RegisterSetup
from repro.sim import FairScheduler, RandomScheduler
from repro.sim.trace import OpKind
from repro.workloads import make_value

SETUP = RegisterSetup(f=2, k=3, data_size_bytes=24)  # n=7, D=192, piece=64


def writer_uid(sim, name="w0"):
    return next(
        op.op_uid
        for op in sim.trace.ops.values()
        if op.kind is OpKind.WRITE and op.client == name
    )


def cut_when_w0_has_pieces(low=1, high=2):
    def until(sim):
        for op in sim.trace.ops.values():
            if op.kind is OpKind.WRITE and op.client == "w0":
                count = len(stored_indices_of(sim, op.op_uid))
                return low <= count <= high
        return False

    return until


class TestRecordReplay:
    def test_replay_reproduces_block_structure(self):
        values = [make_value(SETUP, f"x{i}") for i in range(2)]
        recorded = record_run(
            CodedOnlyRegister, SETUP, values, FairScheduler(),
            until=lambda sim: sim.time >= 40,
        )
        mirror = replay_run(CodedOnlyRegister, SETUP, values, recorded.actions)
        assert mirror.time == recorded.sim.time
        for original_bo, mirror_bo in zip(
            recorded.sim.base_objects, mirror.base_objects
        ):
            assert original_bo.applied_count == mirror_bo.applied_count
            assert original_bo.state == mirror_bo.state

    def test_replay_with_different_value_changes_only_payloads(self):
        values = [make_value(SETUP, "a"), make_value(SETUP, "b")]
        recorded = record_run(
            CodedOnlyRegister, SETUP, values, FairScheduler(),
            until=lambda sim: sim.time >= 40,
        )
        swapped = [make_value(SETUP, "z"), values[1]]
        mirror = replay_run(CodedOnlyRegister, SETUP, swapped, recorded.actions)
        uid = writer_uid(recorded.sim)
        # Same indices stored, same trace shape.
        assert stored_indices_of(recorded.sim, uid) == stored_indices_of(
            mirror, uid
        )
        assert len(mirror.trace.ops) == len(recorded.sim.trace.ops)

    def test_replay_rejects_truncated_divergence(self):
        values = [make_value(SETUP, "a")]
        recorded = record_run(
            CodedOnlyRegister, SETUP, values, FairScheduler(),
            until=lambda sim: sim.time >= 10,
        )
        # Script for a 1-writer run cannot drive a 0-writer system.
        with pytest.raises((ParameterError, Exception)):
            replay_run(CodedOnlyRegister, SETUP, [], recorded.actions)


class TestReplacementExperiment:
    @pytest.mark.parametrize(
        "register_cls", [AdaptiveRegister, CodedOnlyRegister],
        ids=lambda c: c.name,
    )
    def test_lemma1_consistency(self, register_cls):
        report = run_replacement_experiment(
            register_cls, SETUP, concurrency=3,
            scheduler=FairScheduler(), until=cut_when_w0_has_pieces(),
            seed=3,
        )
        assert report.replacement_value is not None
        assert report.states_correspond, "Definition 5 correspondence broken"
        assert report.reader_results_equal, "solo readers distinguished runs"
        assert not report.reader_saw_replaced_write
        assert report.lemma1_consistent

    def test_replacement_value_is_colliding(self):
        report = run_replacement_experiment(
            AdaptiveRegister, SETUP, concurrency=2,
            scheduler=FairScheduler(), until=cut_when_w0_has_pieces(),
            seed=5,
        )
        scheme = SETUP.build_scheme()
        for index in report.stored_indices:
            assert scheme.encode_block(report.original_value, index) == \
                scheme.encode_block(report.replacement_value, index)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_schedules(self, seed):
        report = run_replacement_experiment(
            CodedOnlyRegister, SETUP, concurrency=3,
            scheduler=RandomScheduler(seed),
            until=cut_when_w0_has_pieces(),
            seed=seed,
        )
        assert report.lemma1_consistent

    def test_pinned_write_reports_no_collision(self):
        """Cut after w0 stored >= k distinct pieces: no collision exists and
        the experiment reports the broken premise instead of a claim."""
        report = run_replacement_experiment(
            CodedOnlyRegister, SETUP, concurrency=1,
            scheduler=FairScheduler(),
            until=cut_when_w0_has_pieces(low=3, high=99),
            seed=1,
        )
        assert report.replacement_value is None
        assert len(report.stored_indices) >= SETUP.k
        assert report.lemma1_consistent  # vacuously

    def test_reader_returns_v0_or_other_write(self):
        report = run_replacement_experiment(
            AdaptiveRegister, SETUP, concurrency=3,
            scheduler=FairScheduler(), until=cut_when_w0_has_pieces(),
            seed=7,
        )
        assert report.reader_result is not None
        assert report.reader_result != report.original_value
        assert report.reader_result != report.replacement_value
