"""Adversary Ad tests: set bookkeeping and Definition 7 scheduling rules."""

import pytest

from repro.errors import ParameterError
from repro.lowerbound import AdAdversary, compute_snapshot, outstanding_writes
from repro.registers import CodedOnlyRegister, RegisterSetup
from repro.sim import ActionKind, Simulation
from repro.workloads import make_value

SETUP = RegisterSetup(f=2, k=4, data_size_bytes=32)  # n=8, D=256, piece=64


def adversary_sim(writers: int = 3) -> Simulation:
    sim = Simulation(CodedOnlyRegister(SETUP))
    for index in range(writers):
        client = sim.add_client(f"w{index}")
        client.enqueue_write(make_value(SETUP, f"v{index}"))
    return sim


class TestSnapshot:
    def test_initial_snapshot_empty_sets(self):
        sim = adversary_sim()
        snapshot = compute_snapshot(sim, ell_bits=128, frozen_so_far=set())
        assert snapshot.frozen == frozenset()
        assert snapshot.c_minus == frozenset()  # no writes started yet
        assert snapshot.c_plus == frozenset()

    def test_outstanding_writes_appear_in_c_minus(self):
        sim = adversary_sim(writers=2)
        for client in sim.clients.values():
            sim.step_client(client)
        snapshot = compute_snapshot(sim, ell_bits=128, frozen_so_far=set())
        assert len(snapshot.c_minus) == 2
        assert all(v == 0 for v in snapshot.contributions.values())

    def test_freezing_threshold(self):
        # Initial pieces are 64 bits; ell=64 freezes every object at once.
        sim = adversary_sim()
        snapshot = compute_snapshot(sim, ell_bits=64, frozen_so_far=set())
        assert len(snapshot.frozen) == SETUP.n

    def test_freezing_is_permanent(self):
        """Observation 2: membership of F never reverts."""
        sim = adversary_sim()
        frozen = {3}
        snapshot = compute_snapshot(sim, ell_bits=10_000, frozen_so_far=frozen)
        assert 3 in snapshot.frozen

    def test_outstanding_writes_helper(self):
        sim = adversary_sim(writers=2)
        assert outstanding_writes(sim) == []
        for client in sim.clients.values():
            sim.step_client(client)
        assert len(outstanding_writes(sim)) == 2


class TestSchedulingRules:
    def test_rule1_applies_and_delivers(self):
        sim = adversary_sim(writers=1)
        adversary = AdAdversary(ell_bits=128)
        first = adversary.next_action(sim)
        assert first.kind is ActionKind.STEP_CLIENT  # start the write
        sim.execute(first)
        second = adversary.next_action(sim)
        assert second.kind is ActionKind.APPLY_DELIVER  # readValue RMWs

    def test_rule1_prefers_oldest_pending(self):
        sim = adversary_sim(writers=2)
        adversary = AdAdversary(ell_bits=128)
        sim.execute(adversary.next_action(sim))  # w0 triggers readValue burst
        action = adversary.next_action(sim)
        oldest = min(sim.pending)
        assert action.target == oldest

    def test_rule1_skips_frozen_objects(self):
        sim = adversary_sim(writers=1)
        adversary = AdAdversary(ell_bits=128)
        sim.execute(adversary.next_action(sim))
        adversary._frozen.update(range(SETUP.n))  # freeze everything
        action = adversary.next_action(sim)
        # No RMW is eligible; rule 2 steps a client instead (or nothing).
        assert action is None or action.kind is ActionKind.STEP_CLIENT

    def test_rule2_rotates_fairly(self):
        sim = adversary_sim(writers=3)
        adversary = AdAdversary(ell_bits=SETUP.data_size_bits)
        # Freeze every object so rule 1 never fires; rule 2 must rotate.
        adversary._frozen.update(range(SETUP.n))
        stepped = []
        for _ in range(3):
            action = adversary.next_action(sim)
            assert action.kind is ActionKind.STEP_CLIENT
            stepped.append(action.target)
            sim.execute(action)
        assert set(stepped) == {"w0", "w1", "w2"}

    def test_rejects_nonpositive_ell(self):
        with pytest.raises(ParameterError):
            AdAdversary(ell_bits=0)

    def test_rejects_ell_above_d(self):
        sim = adversary_sim()
        adversary = AdAdversary(ell_bits=SETUP.data_size_bits + 1)
        with pytest.raises(ParameterError):
            adversary.next_action(sim)

    def test_snapshot_exposed_to_drivers(self):
        sim = adversary_sim(writers=1)
        adversary = AdAdversary(ell_bits=128)
        adversary.next_action(sim)
        assert adversary.last_snapshot is not None
        assert adversary.last_snapshot.time == sim.time


class TestStarvation:
    def test_c_plus_writes_never_get_rmws_applied(self):
        """Once a write is in C+, Ad freezes its remaining RMWs."""
        sim = adversary_sim(writers=2)
        adversary = AdAdversary(ell_bits=192)  # D - ell = 64 = one piece
        # Run a while; no write should ever have two pieces applied while
        # in C+ ... equivalently: any op with contribution > 64 must have
        # no further APPLY of its RMWs. Track applies per op.
        applied_after_cplus = []
        for _ in range(300):
            action = adversary.next_action(sim)
            if action is None:
                break
            if action.kind is ActionKind.APPLY_DELIVER:
                rmw = sim.pending[action.target]
                snapshot = adversary.last_snapshot
                if rmw.op_uid in snapshot.c_plus:
                    applied_after_cplus.append(rmw.op_uid)
            sim.execute(action)
        assert not applied_after_cplus
