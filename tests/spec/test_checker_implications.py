"""Cross-checker implication properties on random concurrent histories.

The semantic hierarchy is a chain; the checkers must respect it on every
history, concurrent or not:

    linearizable  =>  strongly regular  =>  weakly regular
    strongly regular  =>  strongly safe

Hypothesis generates arbitrary well-formed histories (including garbage
reads that violate everything — implications are vacuous there, which is
exactly what makes them cheap and strong oracle tests for checker bugs).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.spec import (
    check_linearizability,
    check_strong_regularity,
    check_strong_safety,
    check_weak_regularity,
    manual_history,
)

V0 = b"\x00"
VALUES = [b"\x01", b"\x02", b"\x03", V0]

light = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def concurrent_histories(draw):
    """Random well-formed histories over 3 clients, ops possibly overlapping
    across clients (never within one client)."""
    entries = []
    for client_index in range(draw(st.integers(1, 3))):
        client = f"c{client_index}"
        cursor = draw(st.integers(0, 5))
        for _ in range(draw(st.integers(0, 3))):
            is_write = draw(st.booleans())
            value = draw(st.sampled_from(VALUES))
            duration = draw(st.integers(1, 8))
            complete = draw(st.integers(0, 9)) > 0  # mostly complete
            start = cursor
            end = start + duration if complete else None
            if is_write:
                entries.append((client, "w", value, start, end))
            else:
                entries.append((client, "r", value, start, end))
            if end is None:
                break  # an outstanding op must be the client's last
            cursor = end + 1 + draw(st.integers(0, 4))
    return manual_history(entries, v0=V0)


class TestImplications:
    @light
    @given(concurrent_histories())
    def test_linearizable_implies_strongly_regular(self, history):
        lin = check_linearizability(history, max_states=100_000)
        if lin.note == "budget" or not lin.ok:
            return
        assert check_strong_regularity(history).ok, (
            "linearizable history rejected by the strong-regularity checker"
        )

    @light
    @given(concurrent_histories())
    def test_strongly_regular_implies_weakly_regular(self, history):
        if check_strong_regularity(history).ok:
            assert check_weak_regularity(history).ok

    @light
    @given(concurrent_histories())
    def test_strongly_regular_implies_strongly_safe(self, history):
        if check_strong_regularity(history).ok:
            assert check_strong_safety(history).ok

    @light
    @given(concurrent_histories())
    def test_write_only_histories_pass_everything(self, history):
        if any(op.is_read for op in history.ops):
            return
        assert check_weak_regularity(history).ok
        assert check_strong_regularity(history).ok
        assert check_strong_safety(history).ok
        lin = check_linearizability(history, max_states=100_000)
        assert lin.note == "budget" or lin.ok

    @light
    @given(concurrent_histories())
    def test_checkers_are_deterministic(self, history):
        assert check_strong_regularity(history).ok == \
            check_strong_regularity(history).ok
        assert check_weak_regularity(history).ok == \
            check_weak_regularity(history).ok
