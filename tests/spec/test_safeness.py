"""Strong-safety checker tests.

Safe semantics constrain only reads with *no concurrent writes*; reads that
overlap any write may return anything — including garbage. This is the
loophole Appendix E's algorithm exploits.
"""

from repro.spec import check_strong_safety, manual_history

V0 = b"\x00"


class TestSafePasses:
    def test_quiescent_read_sees_latest(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "r", b"a", 6, 9),
        ], v0=V0)
        assert check_strong_safety(h).ok

    def test_concurrent_read_may_return_anything(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 10),
            ("c2", "r", b"garbage-not-written", 5, 8),
        ], v0=V0)
        assert check_strong_safety(h).ok

    def test_concurrent_read_may_return_v0(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "w", b"b", 8, 20),
            ("c3", "r", V0, 9, 12),
        ], v0=V0)
        assert check_strong_safety(h).ok

    def test_v0_before_any_write(self):
        h = manual_history([
            ("c2", "r", V0, 0, 3),
            ("c1", "w", b"a", 5, 10),
        ], v0=V0)
        assert check_strong_safety(h).ok

    def test_concurrent_writes_allow_either_order(self):
        # Both writes concurrent; later quiescent reads pin one order.
        h = manual_history([
            ("c1", "w", b"a", 0, 10),
            ("c2", "w", b"b", 0, 10),
            ("c3", "r", b"a", 11, 14),
        ], v0=V0)
        assert check_strong_safety(h).ok

    def test_incomplete_write_makes_read_concurrent(self):
        # The unfinished write overlaps the read: read is unconstrained.
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "w", b"b", 6, None),
            ("c3", "r", b"nonsense", 8, 12),
        ], v0=V0)
        assert check_strong_safety(h).ok


class TestSafeViolations:
    def test_quiescent_read_of_unwritten_value(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "r", b"zz", 6, 9),
        ], v0=V0)
        report = check_strong_safety(h)
        assert not report.ok

    def test_quiescent_read_of_stale_value(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c1", "w", b"b", 6, 10),
            ("c2", "r", b"a", 11, 15),
        ], v0=V0)
        assert not check_strong_safety(h).ok

    def test_quiescent_v0_after_write(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "r", V0, 6, 9),
        ], v0=V0)
        assert not check_strong_safety(h).ok

    def test_conflicting_quiescent_reads_cycle(self):
        # Concurrent writes a, b; one later read says a is latest, another
        # (after more writes of neither value... keep it minimal) says b,
        # then a again — forcing a cycle in the write order.
        h = manual_history([
            ("c1", "w", b"a", 0, 10),
            ("c2", "w", b"b", 0, 10),
            ("c3", "r", b"a", 11, 14),
            ("c4", "r", b"b", 15, 18),
            ("c5", "r", b"a", 19, 22),
        ], v0=V0)
        # read(a) then read(b) is fine (b ordered after a? then read(a)
        # would be stale...). With only two writes, reads alternating
        # a, b, a cannot be explained by one write order.
        assert not check_strong_safety(h).ok
