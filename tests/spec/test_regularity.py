"""Regularity-checker tests on hand-crafted histories.

Naming below: ``w(x)@[a,b]`` is a write of x spanning times a..b;
``r->x@[a,b]`` a read returning x.
"""

from repro.spec import (
    check_strong_regularity,
    check_weak_regularity,
    manual_history,
)

V0 = b"\x00"


class TestWeakRegularityPasses:
    def test_read_of_latest_preceding_write(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "r", b"a", 6, 9),
        ], v0=V0)
        assert check_weak_regularity(h).ok

    def test_read_of_concurrent_write(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "w", b"b", 6, 20),
            ("c3", "r", b"b", 7, 9),
        ], v0=V0)
        assert check_weak_regularity(h).ok

    def test_read_of_overwritten_concurrent_value(self):
        # w(a) completes, w(b) concurrent with the read; read may return a.
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "w", b"b", 6, 20),
            ("c3", "r", b"a", 7, 9),
        ], v0=V0)
        assert check_weak_regularity(h).ok

    def test_v0_with_no_preceding_write(self):
        h = manual_history([
            ("c1", "w", b"a", 5, 20),
            ("c2", "r", V0, 0, 8),
        ], v0=V0)
        assert check_weak_regularity(h).ok

    def test_incomplete_write_as_witness(self):
        h = manual_history([
            ("c1", "w", b"a", 0, None),
            ("c2", "r", b"a", 5, 9),
        ], v0=V0)
        assert check_weak_regularity(h).ok

    def test_empty_history(self):
        assert check_weak_regularity(manual_history([], v0=V0)).ok


class TestWeakRegularityViolations:
    def test_unwritten_value(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "r", b"zz", 6, 9),
        ], v0=V0)
        report = check_weak_regularity(h)
        assert not report.ok
        assert report.violations[0].read_uid == 1

    def test_read_of_future_write(self):
        # Write invoked only after the read returned.
        h = manual_history([
            ("c2", "r", b"a", 0, 5),
            ("c1", "w", b"a", 6, 9),
        ], v0=V0)
        assert not check_weak_regularity(h).ok

    def test_stale_read_with_interposed_write(self):
        # w(a) < w(b) < read, yet the read returns a: stale.
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c1", "w", b"b", 6, 10),
            ("c2", "r", b"a", 11, 15),
        ], v0=V0)
        assert not check_weak_regularity(h).ok

    def test_v0_after_completed_write(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "r", V0, 6, 9),
        ], v0=V0)
        assert not check_weak_regularity(h).ok

    def test_incomplete_write_cannot_be_interposed(self):
        # Incomplete w(b) never precedes the read; returning a is fine.
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c3", "w", b"b", 6, None),
            ("c2", "r", b"a", 8, 12),
        ], v0=V0)
        assert check_weak_regularity(h).ok


class TestStrongRegularity:
    def test_single_writer_sequence(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c1", "w", b"b", 6, 10),
            ("c2", "r", b"b", 11, 14),
            ("c3", "r", b"b", 12, 15),
        ], v0=V0)
        report = check_strong_regularity(h)
        assert report.ok
        assert report.witness_order is not None

    def test_new_old_inversion_rejected(self):
        """Two reads order two concurrent writes inconsistently.

        w(a) and w(b) run concurrently; rd1 (after both) returns b, then
        rd2 (after rd1) returns a. Any single write order serving rd1 puts
        a before b; rd2 then needs b before a — a cycle.
        """
        h = manual_history([
            ("c1", "w", b"a", 0, 10),
            ("c2", "w", b"b", 0, 10),
            ("c3", "r", b"b", 11, 14),
            ("c3", "r", b"a", 15, 18),
        ], v0=V0)
        report = check_strong_regularity(h)
        assert not report.ok

    def test_same_order_reads_accepted(self):
        # Both reads agree that b is the later of the concurrent writes.
        h = manual_history([
            ("c1", "w", b"a", 0, 10),
            ("c2", "w", b"b", 0, 10),
            ("c3", "r", b"b", 11, 14),
            ("c3", "r", b"b", 15, 18),
        ], v0=V0)
        assert check_strong_regularity(h).ok

    def test_any_order_of_concurrent_writes_serves_agreeing_reads(self):
        # Reads pin a as the later write; order b < a is consistent.
        h = manual_history([
            ("c1", "w", b"a", 0, 10),
            ("c2", "w", b"b", 0, 10),
            ("c3", "r", b"a", 11, 14),
            ("c4", "r", b"a", 12, 16),
        ], v0=V0)
        report = check_strong_regularity(h)
        assert report.ok
        # The witness order must place b before a.
        assert report.witness_order.index(1) < report.witness_order.index(0)

    def test_weak_violation_propagates(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "r", b"zz", 6, 9),
        ], v0=V0)
        assert not check_strong_regularity(h).ok

    def test_v0_reads_unconstrained(self):
        h = manual_history([
            ("c2", "r", V0, 0, 3),
            ("c1", "w", b"a", 5, 10),
            ("c3", "r", b"a", 11, 14),
        ], v0=V0)
        assert check_strong_regularity(h).ok

    def test_concurrent_read_sandwich(self):
        # A read concurrent with w(b) may return either a or b; two reads
        # that *both* run after w(b) completes must agree.
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "w", b"b", 6, 20),
            ("c3", "r", b"b", 7, 9),
            ("c4", "r", b"a", 8, 10),
        ], v0=V0)
        # rd(b) forces b's "effective" point early; rd(a) needs a after...
        # but both reads are concurrent with w(b): a single order a < b works
        # for rd(a)? rd(a): witness a, writes preceding rd: only a. b does
        # not precede rd(a) so no edge; rd(b): witness b, a precedes rd(b)
        # so a <= b. Order a, b works for both. Accepted.
        assert check_strong_regularity(h).ok

    def test_real_time_write_order_respected(self):
        # rd returns the earlier of two sequential writes after both done.
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "w", b"b", 6, 10),
            ("c3", "r", b"a", 12, 15),
        ], v0=V0)
        assert not check_strong_regularity(h).ok
