"""History model tests: precedence, well-formedness, construction."""

import pytest

from repro.errors import MalformedHistory
from repro.spec import History, manual_history
from repro.sim.trace import OpKind, Trace


class TestPrecedence:
    def test_strict_precedence(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "r", b"a", 6, 9),
        ])
        write, read = h.ops
        assert write.precedes(read)
        assert not read.precedes(write)

    def test_overlap_is_concurrent(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 10),
            ("c2", "r", b"a", 5, 15),
        ])
        write, read = h.ops
        assert write.concurrent_with(read)

    def test_incomplete_never_precedes(self):
        h = manual_history([
            ("c1", "w", b"a", 0, None),
            ("c2", "r", b"a", 100, 110),
        ])
        write, read = h.ops
        assert not write.precedes(read)
        assert not read.precedes(write)
        assert write.concurrent_with(read)

    def test_touching_times_not_preceding(self):
        # return at t, invoke at t: not strictly before.
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "r", b"a", 5, 9),
        ])
        write, read = h.ops
        assert not write.precedes(read)


class TestWellFormedness:
    def test_overlapping_same_client_rejected(self):
        with pytest.raises(MalformedHistory):
            manual_history([
                ("c1", "w", b"a", 0, 10),
                ("c1", "w", b"b", 5, 15),
            ])

    def test_outstanding_then_new_op_rejected(self):
        with pytest.raises(MalformedHistory):
            manual_history([
                ("c1", "w", b"a", 0, None),
                ("c1", "r", b"a", 5, 9),
            ])

    def test_sequential_same_client_accepted(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c1", "w", b"b", 6, 9),
        ])
        assert len(h) == 2

    def test_different_clients_may_overlap(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 10),
            ("c2", "w", b"b", 0, 10),
        ])
        assert len(h.writes()) == 2


class TestQueries:
    def test_writes_of_value(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "w", b"b", 6, 9),
            ("c3", "w", b"a", 10, 12),
        ])
        assert len(h.writes_of_value(b"a")) == 2

    def test_completed_only_filters(self):
        h = manual_history([
            ("c1", "w", b"a", 0, None),
            ("c2", "r", b"a", 1, 3),
            ("c3", "r", b"x", 2, None),
        ])
        assert len(h.writes(completed_only=True)) == 0
        assert len(h.writes(completed_only=False)) == 1
        assert len(h.reads(completed_only=True)) == 1
        assert len(h.reads(completed_only=False)) == 2

    def test_ops_sorted_by_invocation(self):
        h = manual_history([
            ("c1", "w", b"b", 7, 9),
            ("c2", "w", b"a", 0, 5),
        ])
        assert [op.written for op in h.ops] == [b"a", b"b"]


class TestFromTrace:
    def test_roundtrip_through_trace(self):
        trace = Trace()
        trace.record_invoke(1, 0, "c1", OpKind.WRITE, b"val")
        trace.record_return(5, 0, "ok")
        trace.record_invoke(6, 1, "c2", OpKind.READ, None)
        trace.record_return(9, 1, b"val")
        history = History.from_trace(trace, v0=b"\x00")
        assert len(history) == 2
        write, read = history.ops
        assert write.written == b"val"
        assert read.result == b"val"
        assert write.precedes(read)
