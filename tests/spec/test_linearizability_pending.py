"""Pending-write handling in the linearizability checker.

The standard definition lets a linearization include an operation that
never returned (its effect may have taken place). These tests pin the
checker's treatment: incomplete writes are includable, incomplete reads
are droppable, and inclusion respects precedence.
"""

from repro.spec import check_linearizability, manual_history

V0 = b"\x00"


class TestPendingWrites:
    def test_read_of_in_flight_write_is_linearizable(self):
        h = manual_history([
            ("c1", "w", b"a", 0, None),     # never returns
            ("c2", "r", b"a", 5, 9),        # yet its value is visible
        ], v0=V0)
        report = check_linearizability(h)
        assert report.ok
        assert 0 in report.order  # the pending write was included

    def test_pending_write_may_be_excluded(self):
        h = manual_history([
            ("c1", "w", b"a", 0, None),
            ("c2", "r", V0, 5, 9),          # write's effect never seen
        ], v0=V0)
        report = check_linearizability(h)
        assert report.ok
        assert 0 not in (report.order or [])

    def test_two_reads_straddling_pending_write_invert(self):
        """new then old around one pending write: still not atomic."""
        h = manual_history([
            ("c1", "w", b"a", 0, None),
            ("c2", "r", b"a", 5, 9),
            ("c3", "r", V0, 10, 14),        # after the 'a' read: inversion
        ], v0=V0)
        assert not check_linearizability(h).ok

    def test_pending_write_respects_precedence(self):
        """A pending write invoked after a read returned cannot explain it."""
        h = manual_history([
            ("c2", "r", b"a", 0, 4),
            ("c1", "w", b"a", 6, None),     # invoked after the read returned
        ], v0=V0)
        assert not check_linearizability(h).ok

    def test_incomplete_reads_are_dropped(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "r", b"zz", 6, None),    # never returned: no constraint
        ], v0=V0)
        assert check_linearizability(h).ok

    def test_chain_of_pending_writes(self):
        # Two pending writes, reads see them in one consistent order.
        h = manual_history([
            ("c1", "w", b"a", 0, None),
            ("c2", "w", b"b", 0, None),
            ("c3", "r", b"a", 5, 8),
            ("c3", "r", b"b", 9, 12),
        ], v0=V0)
        report = check_linearizability(h)
        assert report.ok
        assert report.order.index(0) < report.order.index(1)
