"""Atomicity-checker tests."""

from repro.spec import check_linearizability, manual_history

V0 = b"\x00"


class TestLinearizable:
    def test_sequential_history(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "r", b"a", 6, 9),
            ("c1", "w", b"b", 10, 15),
            ("c2", "r", b"b", 16, 19),
        ], v0=V0)
        report = check_linearizability(h)
        assert report.ok
        assert report.order is not None
        assert len(report.order) == 4

    def test_concurrent_write_read(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 10),
            ("c2", "r", b"a", 5, 8),
        ], v0=V0)
        assert check_linearizability(h).ok

    def test_concurrent_read_may_miss_write(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 10),
            ("c2", "r", V0, 5, 8),
        ], v0=V0)
        assert check_linearizability(h).ok

    def test_empty_history(self):
        assert check_linearizability(manual_history([], v0=V0)).ok

    def test_read_only_initial(self):
        h = manual_history([("c1", "r", V0, 0, 3)], v0=V0)
        assert check_linearizability(h).ok


class TestNotLinearizable:
    def test_new_old_inversion(self):
        """rd1 sees the new value, later rd2 sees the old one: not atomic,
        though it IS regular — the separation the checkers must make."""
        from repro.spec import check_weak_regularity

        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "w", b"b", 6, 30),
            ("c3", "r", b"b", 8, 12),
            ("c4", "r", b"a", 14, 18),
        ], v0=V0)
        assert check_weak_regularity(h).ok
        assert not check_linearizability(h).ok

    def test_stale_read(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c1", "w", b"b", 6, 10),
            ("c2", "r", b"a", 11, 15),
        ], v0=V0)
        assert not check_linearizability(h).ok

    def test_unwritten_value(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "r", b"zz", 6, 9),
        ], v0=V0)
        assert not check_linearizability(h).ok

    def test_v0_after_write(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "r", V0, 6, 9),
        ], v0=V0)
        assert not check_linearizability(h).ok


class TestSearchBehaviour:
    def test_budget_exhaustion_reports_no_verdict(self):
        # Many concurrent same-value ops blow up the search space; a tiny
        # budget must yield note="budget", not a wrong verdict.
        entries = [("c%d" % i, "w", bytes([i]), 0, 100) for i in range(8)]
        entries += [("r%d" % i, "r", bytes([i]), 0, 100) for i in range(8)]
        h = manual_history(entries, v0=V0)
        report = check_linearizability(h, max_states=3)
        assert report.note == "budget"

    def test_order_respects_precedence(self):
        h = manual_history([
            ("c1", "w", b"a", 0, 5),
            ("c2", "w", b"b", 6, 10),
            ("c3", "r", b"b", 11, 14),
        ], v0=V0)
        report = check_linearizability(h)
        assert report.ok
        assert report.order.index(0) < report.order.index(1)
