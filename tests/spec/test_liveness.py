"""Liveness-report tests."""

from repro.registers import AdaptiveRegister, RegisterSetup
from repro.sim import FailurePlan, FairScheduler, at_time
from repro.spec import analyze_liveness
from repro.workloads import WorkloadSpec, run_register_workload

SETUP = RegisterSetup(f=1, k=2, data_size_bytes=8)


class TestHealthyRuns:
    def test_clean_run_is_fw_terminating(self):
        spec = WorkloadSpec(writers=2, writes_per_writer=1, readers=1,
                            reads_per_reader=1, seed=1)
        result = run_register_workload(AdaptiveRegister, SETUP, spec)
        report = analyze_liveness(result.sim, result.run.quiescent)
        assert report.within_failure_bound
        assert report.writes_wait_free
        assert report.fw_terminating
        assert report.verdict == "consistent with FW-termination"

    def test_crashed_clients_excused(self):
        spec = WorkloadSpec(writers=2, writes_per_writer=1, readers=1,
                            reads_per_reader=1, seed=2)

        def configure(sim, scheduler):
            return FailurePlan(scheduler).crash_client("w0", at_time(10))

        result = run_register_workload(
            AdaptiveRegister, SETUP, spec, configure=configure,
        )
        report = analyze_liveness(result.sim, result.run.quiescent)
        assert "w0" in report.crashed_clients
        assert report.writes_wait_free  # w0's hung write doesn't count


class TestViolations:
    def test_too_many_crashes_is_inconclusive(self):
        spec = WorkloadSpec(writers=1, writes_per_writer=1, readers=0)

        def configure(sim, scheduler):
            plan = FailurePlan(scheduler)
            plan.crash_base_object(0, at_time(0))
            plan.crash_base_object(1, at_time(1))
            return plan

        result = run_register_workload(
            AdaptiveRegister, SETUP, spec, scheduler=FairScheduler(),
            configure=configure, max_steps=5_000,
        )
        report = analyze_liveness(result.sim, result.run.quiescent)
        assert not report.within_failure_bound
        assert "inconclusive" in report.verdict
        # The stuck write is recorded even though the verdict excuses it.
        assert report.incomplete_writes_correct

    def test_non_quiescent_run_is_inconclusive(self):
        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=1,
                            reads_per_reader=1)
        result = run_register_workload(
            AdaptiveRegister, SETUP, spec, max_steps=10,
            require_quiescence=False,
        )
        report = analyze_liveness(result.sim, result.run.quiescent)
        assert report.verdict.startswith("inconclusive")

    def test_hung_correct_write_detected(self):
        """Within the failure bound, an incomplete write by a correct
        client must flip the verdict."""
        spec = WorkloadSpec(writers=1, writes_per_writer=1, readers=0)

        def configure(sim, scheduler):
            # Crash only ONE object (within f=1), but ALSO freeze the run
            # early so the write is genuinely incomplete at quiescence...
            # simplest honest construction: crash f+1? No — that breaks
            # the bound. Instead crash one object and cut the run early
            # with max_steps; quiescent=False -> inconclusive. To get a
            # *quiescent* run with a hung correct write we'd need a buggy
            # register, so simulate the report directly instead.
            return scheduler

        result = run_register_workload(
            AdaptiveRegister, SETUP, spec, configure=configure,
        )
        report = analyze_liveness(result.sim, result.run.quiescent)
        assert report.writes_wait_free  # healthy register: no violation

        # Synthesize the violating report to pin the verdict logic.
        from repro.spec import LivenessReport

        bad = LivenessReport(
            quiescent=True,
            crashed_clients=(),
            crashed_base_objects=1,
            f=1,
            incomplete_writes_correct=(7,),
        )
        assert not bad.writes_wait_free
        assert bad.verdict == "wait-freedom violated for writes"

    def test_hung_read_verdict(self):
        from repro.spec import LivenessReport

        report = LivenessReport(
            quiescent=True,
            crashed_clients=(),
            crashed_base_objects=0,
            f=1,
            incomplete_reads_correct=(9,),
        )
        assert report.writes_wait_free
        assert not report.fw_terminating
        assert report.verdict == "write-wait-free but a correct read hung"
