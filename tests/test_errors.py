"""Exception-hierarchy tests: one base, catchable domains."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for name in (
            "CodingError", "EncodingError", "DecodingError", "ParameterError",
            "SimulationError", "ProtocolError", "SchedulerExhausted",
            "ObjectCrashed", "SpecError", "MalformedHistory",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_coding_domain(self):
        assert issubclass(errors.EncodingError, errors.CodingError)
        assert issubclass(errors.DecodingError, errors.CodingError)

    def test_simulation_domain(self):
        assert issubclass(errors.ProtocolError, errors.SimulationError)
        assert issubclass(errors.SchedulerExhausted, errors.SimulationError)
        assert issubclass(errors.ObjectCrashed, errors.SimulationError)

    def test_parameter_error_is_value_error(self):
        assert issubclass(errors.ParameterError, ValueError)

    def test_spec_domain(self):
        assert issubclass(errors.MalformedHistory, errors.SpecError)

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.DecodingError("boom")
