"""GC-ablation register tests."""

import pytest

from repro.registers import AdaptiveNoGCRegister, AdaptiveRegister, RegisterSetup
from repro.registers.timestamps import TS_ZERO
from repro.sim import FairScheduler, RandomScheduler, Simulation
from repro.spec import check_strong_regularity
from repro.workloads import WorkloadSpec, make_value, run_register_workload

SETUP = RegisterSetup(f=1, k=2, data_size_bytes=8)  # n=4


class TestNoGCBehaviour:
    def test_writes_take_two_rounds(self):
        sim = Simulation(AdaptiveNoGCRegister(SETUP))
        writer = sim.add_client("w0")
        writer.enqueue_write(make_value(SETUP, "x"))
        sim.run(FairScheduler())
        # 2 rounds x n RMWs (no GC round).
        assert sim.trace.rmw_count() == 2 * SETUP.n

    def test_stored_ts_never_advances(self):
        spec = WorkloadSpec(writers=2, writes_per_writer=3, readers=0, seed=1)
        result = run_register_workload(AdaptiveNoGCRegister, SETUP, spec)
        assert all(
            bo.state.stored_ts == TS_ZERO for bo in result.sim.base_objects
        )

    def test_storage_never_shrinks(self):
        spec = WorkloadSpec(writers=1, writes_per_writer=5, readers=0, seed=2)
        result = run_register_workload(AdaptiveNoGCRegister, SETUP, spec)
        optimum = SETUP.n * SETUP.data_size_bits // SETUP.k
        assert result.final_bo_state_bits > optimum
        # Settles at k pieces + one replica (k pieces) per object: 2D each.
        assert result.final_bo_state_bits <= 2 * SETUP.n * SETUP.data_size_bits

    def test_reads_still_return_latest(self):
        sim = Simulation(AdaptiveNoGCRegister(SETUP))
        writer = sim.add_client("w0")
        values = [make_value(SETUP, f"v{i}") for i in range(3)]
        for value in values:
            writer.enqueue_write(value)
        sim.run(FairScheduler())
        reader = sim.add_client("r0")
        reader.enqueue_read()
        sim.run(FairScheduler())
        [read] = sim.trace.reads()
        assert read.result == values[-1]

    @pytest.mark.parametrize("seed", range(6))
    def test_still_strongly_regular(self, seed):
        spec = WorkloadSpec(writers=3, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=seed)
        result = run_register_workload(
            AdaptiveNoGCRegister, SETUP, spec, scheduler=RandomScheduler(seed)
        )
        assert check_strong_regularity(result.history).ok


class TestContrast:
    def test_with_gc_converges_without_does_not(self):
        spec = WorkloadSpec(writers=2, writes_per_writer=3, readers=0, seed=3)
        with_gc = run_register_workload(AdaptiveRegister, SETUP, spec)
        without = run_register_workload(AdaptiveNoGCRegister, SETUP, spec)
        optimum = SETUP.n * SETUP.data_size_bits // SETUP.k
        assert with_gc.final_bo_state_bits == optimum
        assert without.final_bo_state_bits > optimum
