"""Atomic ABD tests: linearizability via read write-back."""

import pytest

from repro.registers import ABDRegister, AtomicABDRegister, replication_setup
from repro.sim import FairScheduler, RandomScheduler, Simulation
from repro.spec import check_linearizability, check_strong_regularity
from repro.workloads import WorkloadSpec, make_value, run_register_workload

SETUP = replication_setup(f=1, data_size_bytes=8)  # n=3: small histories


class TestBasics:
    def test_write_then_read(self):
        sim = Simulation(AtomicABDRegister(SETUP))
        value = make_value(SETUP, "atomic")
        writer = sim.add_client("w0")
        writer.enqueue_write(value)
        assert sim.run(FairScheduler()).quiescent
        reader = sim.add_client("r0")
        reader.enqueue_read()
        sim.run(FairScheduler())
        [read] = sim.trace.reads()
        assert read.result == value

    def test_reads_take_two_rounds(self):
        sim = Simulation(AtomicABDRegister(SETUP))
        reader = sim.add_client("r0")
        reader.enqueue_read()
        sim.run(FairScheduler())
        # Round 1: n reads; round 2: n write-backs.
        assert sim.trace.rmw_count() == 2 * SETUP.n

    def test_storage_unchanged_by_write_back(self):
        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=1)
        result = run_register_workload(AtomicABDRegister, SETUP, spec)
        assert result.peak_bo_state_bits == SETUP.n * SETUP.data_size_bits
        assert result.final_bo_state_bits == SETUP.n * SETUP.data_size_bits


class TestAtomicity:
    @pytest.mark.parametrize("seed", range(15))
    def test_linearizable_under_random_schedules(self, seed):
        spec = WorkloadSpec(writers=2, writes_per_writer=1, readers=2,
                            reads_per_reader=2, seed=seed)
        result = run_register_workload(
            AtomicABDRegister, SETUP, spec, scheduler=RandomScheduler(seed)
        )
        report = check_linearizability(result.history)
        assert report.note != "budget"
        assert report.ok, f"seed {seed}: atomic ABD not linearizable"

    @pytest.mark.parametrize("seed", range(15))
    def test_still_strongly_regular(self, seed):
        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=seed)
        result = run_register_workload(
            AtomicABDRegister, SETUP, spec, scheduler=RandomScheduler(seed)
        )
        assert check_strong_regularity(result.history).ok

    def test_write_back_visible_in_storage_timestamps(self):
        """After a read returns ts, a quorum stores >= ts."""
        sim = Simulation(AtomicABDRegister(SETUP))
        value = make_value(SETUP, "wb")
        writer = sim.add_client("w0")
        writer.enqueue_write(value)
        sim.run(FairScheduler())
        top_ts = max(bo.state.chunk.ts for bo in sim.base_objects)
        reader = sim.add_client("r0")
        reader.enqueue_read()
        sim.run(FairScheduler())
        at_or_above = sum(
            1 for bo in sim.base_objects if bo.state.chunk.ts >= top_ts
        )
        assert at_or_above >= SETUP.quorum


class TestContrastWithPlainABD:
    def test_same_storage_cost(self):
        spec = WorkloadSpec(writers=2, writes_per_writer=1, readers=1,
                            reads_per_reader=1, seed=3)
        plain = run_register_workload(ABDRegister, SETUP, spec)
        atomic = run_register_workload(AtomicABDRegister, SETUP, spec)
        assert plain.peak_bo_state_bits == atomic.peak_bo_state_bits

    def test_atomic_reads_cost_one_extra_round(self):
        def solo_read_rmws(register_cls):
            sim = Simulation(register_cls(SETUP))
            reader = sim.add_client("r0")
            reader.enqueue_read()
            sim.run(FairScheduler())
            return sim.trace.rmw_count()

        assert solo_read_rmws(ABDRegister) == SETUP.n
        assert solo_read_rmws(AtomicABDRegister) == 2 * SETUP.n
