"""CAS register tests: tag/label protocol, atomicity, O(cD) storage."""

import pytest

from repro.registers import RegisterSetup
from repro.registers.base import Chunk, initial_chunk
from repro.registers.cas import (
    CASRegister,
    CASState,
    FinalizeArgs,
    GCArgs,
    Label,
    PreWriteArgs,
    TaggedChunk,
    finalize_rmw,
    gc_rmw,
    pre_write_rmw,
)
from repro.registers.timestamps import TS_ZERO, Timestamp
from repro.sim import FairScheduler, RandomScheduler, Simulation
from repro.spec import check_linearizability, check_strong_regularity
from repro.workloads import WorkloadSpec, make_value, run_register_workload

SETUP = RegisterSetup(f=1, k=2, data_size_bytes=8)  # n=4, quorum=3
SCHEME = SETUP.build_scheme()


def piece(ts_num: int, client: str, index: int = 0) -> Chunk:
    value = make_value(SETUP, f"{ts_num}{client}")
    return Chunk(Timestamp(ts_num, client),
                 initial_chunk(SCHEME, value, index).block)


class TestRMWs:
    def test_pre_write_adds_pre_labelled(self):
        state = CASState((), TS_ZERO)
        new_state, _ = pre_write_rmw(state, PreWriteArgs(piece(1, "a")))
        [tagged] = new_state.pieces
        assert tagged.label is Label.PRE
        assert tagged.ts == Timestamp(1, "a")

    def test_pre_write_idempotent(self):
        state = CASState((), TS_ZERO)
        state, _ = pre_write_rmw(state, PreWriteArgs(piece(1, "a")))
        state, _ = pre_write_rmw(state, PreWriteArgs(piece(1, "a")))
        assert len(state.pieces) == 1

    def test_pieces_accumulate_across_writes(self):
        state = CASState((), TS_ZERO)
        for i in range(5):
            state, _ = pre_write_rmw(state, PreWriteArgs(piece(i + 1, "x")))
        assert len(state.pieces) == 5  # the O(cD) accumulation

    def test_finalize_relabels_and_raises_watermark(self):
        state = CASState(
            (TaggedChunk(piece(2, "b"), Label.PRE),
             TaggedChunk(piece(1, "a"), Label.PRE)),
            TS_ZERO,
        )
        state, _ = finalize_rmw(state, FinalizeArgs(Timestamp(2, "b")))
        labels = {p.ts.num: p.label for p in state.pieces}
        assert labels[2] is Label.FIN
        assert labels[1] is Label.PRE
        assert state.fin_ts == Timestamp(2, "b")

    def test_finalize_unknown_tag_only_raises_watermark(self):
        state = CASState((), TS_ZERO)
        state, _ = finalize_rmw(state, FinalizeArgs(Timestamp(7, "q")))
        assert state.fin_ts == Timestamp(7, "q")

    def test_gc_drops_older(self):
        state = CASState(
            (TaggedChunk(piece(1, "a"), Label.FIN),
             TaggedChunk(piece(3, "c"), Label.PRE)),
            TS_ZERO,
        )
        state, _ = gc_rmw(state, GCArgs(Timestamp(2, "b")))
        assert [p.ts.num for p in state.pieces] == [3]


class TestBehaviour:
    def test_write_then_read(self):
        sim = Simulation(CASRegister(SETUP))
        value = make_value(SETUP, "cas")
        writer = sim.add_client("w0")
        writer.enqueue_write(value)
        assert sim.run(FairScheduler()).quiescent
        reader = sim.add_client("r0")
        reader.enqueue_read()
        sim.run(FairScheduler())
        [read] = sim.trace.reads()
        assert read.result == value

    def test_initial_read_returns_v0(self):
        sim = Simulation(CASRegister(SETUP))
        reader = sim.add_client("r0")
        reader.enqueue_read()
        sim.run(FairScheduler())
        [read] = sim.trace.reads()
        assert read.result == SETUP.v0()

    @pytest.mark.parametrize("seed", range(6))
    def test_all_ops_drain(self, seed):
        spec = WorkloadSpec(writers=3, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=seed)
        result = run_register_workload(
            CASRegister, SETUP, spec, scheduler=RandomScheduler(seed)
        )
        assert result.run.quiescent
        assert result.completed_writes == 6
        assert result.completed_reads == 4


class TestAtomicity:
    @pytest.mark.parametrize("seed", range(12))
    def test_linearizable_fuzz(self, seed):
        spec = WorkloadSpec(writers=2, writes_per_writer=1, readers=2,
                            reads_per_reader=2, seed=seed)
        result = run_register_workload(
            CASRegister, SETUP, spec, scheduler=RandomScheduler(seed * 5 + 2)
        )
        report = check_linearizability(result.history)
        assert report.note != "budget"
        assert report.ok, f"seed {seed}: CAS produced a non-atomic history"

    @pytest.mark.parametrize("seed", range(6))
    def test_strongly_regular_too(self, seed):
        spec = WorkloadSpec(writers=3, writes_per_writer=1, readers=2,
                            reads_per_reader=2, seed=seed)
        result = run_register_workload(
            CASRegister, SETUP, spec, scheduler=RandomScheduler(seed + 31)
        )
        assert check_strong_regularity(result.history).ok


class TestStorage:
    def test_quiescent_storage_is_one_piece_per_object(self):
        spec = WorkloadSpec(writers=3, writes_per_writer=1, readers=0, seed=2)
        result = run_register_workload(CASRegister, SETUP, spec)
        assert result.final_bo_state_bits == (
            SETUP.n * SETUP.data_size_bits // SETUP.k
        )

    def test_peak_grows_with_concurrency(self):
        peaks = []
        for c in (1, 3, 6):
            spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0,
                                seed=1)
            result = run_register_workload(CASRegister, SETUP, spec)
            peaks.append(result.peak_bo_state_bits)
        assert peaks[0] < peaks[1] < peaks[2]

    def test_peak_bounded_by_c_plus_one_pieces(self):
        for c in (2, 4):
            spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0,
                                seed=3)
            result = run_register_workload(CASRegister, SETUP, spec)
            cap = (c + 1) * SETUP.n * SETUP.data_size_bits // SETUP.k
            assert result.peak_bo_state_bits <= cap

    def test_fault_tolerance(self):
        from repro.sim import FailurePlan, at_time

        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=4)

        def configure(sim, scheduler):
            return FailurePlan(scheduler).crash_base_object(1, at_time(25))

        result = run_register_workload(
            CASRegister, SETUP, spec, configure=configure,
        )
        assert result.completed_writes == 4
        assert result.completed_reads == 4
