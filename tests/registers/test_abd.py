"""ABD replication tests: (2f+1)D storage, regularity, concurrency-blind."""

import pytest

from repro.errors import ParameterError
from repro.registers import (
    ABDRegister,
    AdaptiveRegister,
    RegisterSetup,
    replication_setup,
)
from repro.sim import FairScheduler, RandomScheduler, Simulation
from repro.spec import check_linearizability, check_strong_regularity
from repro.workloads import WorkloadSpec, make_value, run_register_workload

SETUP = replication_setup(f=2, data_size_bytes=16)


class TestConstruction:
    def test_requires_replication_setup(self):
        coded = RegisterSetup(f=2, k=2, data_size_bytes=16)
        with pytest.raises(ParameterError):
            ABDRegister(coded)

    def test_n_is_2f_plus_1(self):
        assert SETUP.n == 5
        assert SETUP.quorum == 3


class TestStorage:
    def test_storage_is_2f_plus_1_replicas(self):
        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=1,
                            reads_per_reader=1, seed=2)
        result = run_register_workload(ABDRegister, SETUP, spec)
        expected = SETUP.n * SETUP.data_size_bits
        assert result.peak_bo_state_bits == expected
        assert result.final_bo_state_bits == expected

    @pytest.mark.parametrize("writers", [1, 3, 6])
    def test_storage_independent_of_concurrency(self, writers):
        """Replication's defining property: c does not matter."""
        spec = WorkloadSpec(writers=writers, writes_per_writer=1, readers=0,
                            seed=4)
        result = run_register_workload(ABDRegister, SETUP, spec)
        assert result.peak_bo_state_bits == SETUP.n * SETUP.data_size_bits

    def test_replication_costs_more_than_coding_at_rest(self):
        """The intro's comparison: 3D replication vs (k+2)D/k coded, f=1."""
        abd = replication_setup(f=1, data_size_bytes=24)
        coded = RegisterSetup(f=1, k=3, data_size_bytes=24)
        spec = WorkloadSpec(writers=1, writes_per_writer=1, readers=0)
        abd_result = run_register_workload(ABDRegister, abd, spec)
        coded_result = run_register_workload(AdaptiveRegister, coded, spec)
        d = abd.data_size_bits
        assert abd_result.final_bo_state_bits == 3 * d
        assert coded_result.final_bo_state_bits == (3 + 2) * d // 3
        assert coded_result.final_bo_state_bits < abd_result.final_bo_state_bits


class TestBehaviour:
    def test_write_then_read(self):
        sim = Simulation(ABDRegister(SETUP))
        value = make_value(SETUP, "abd")
        writer = sim.add_client("w0")
        writer.enqueue_write(value)
        assert sim.run(FairScheduler()).quiescent
        reader = sim.add_client("r0")
        reader.enqueue_read()
        sim.run(FairScheduler())
        [read] = sim.trace.reads()
        assert read.result == value

    def test_reads_are_single_round_wait_free(self):
        sim = Simulation(ABDRegister(SETUP))
        reader = sim.add_client("r0")
        reader.enqueue_read()
        sim.run(FairScheduler())
        [read] = sim.trace.reads()
        assert read.complete
        assert read.result == SETUP.v0()

    @pytest.mark.parametrize("seed", range(10))
    def test_strong_regularity_fuzz(self, seed):
        spec = WorkloadSpec(writers=3, writes_per_writer=2, readers=2,
                            reads_per_reader=3, seed=seed)
        result = run_register_workload(
            ABDRegister, SETUP, spec, scheduler=RandomScheduler(seed * 3 + 1)
        )
        assert check_strong_regularity(result.history).ok

    def test_sequential_runs_are_atomic(self):
        from repro.sim import SequentialScheduler

        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=6)
        result = run_register_workload(
            ABDRegister, SETUP, spec, scheduler=SequentialScheduler()
        )
        assert check_linearizability(result.history).ok

    def test_all_ops_complete_under_heavy_concurrency(self):
        spec = WorkloadSpec(writers=6, writes_per_writer=2, readers=4,
                            reads_per_reader=2, seed=8)
        result = run_register_workload(ABDRegister, SETUP, spec)
        assert result.completed_writes == 12
        assert result.completed_reads == 8
