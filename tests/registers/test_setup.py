"""RegisterSetup parameter validation and derived quantities."""

import pytest

from repro.coding import ReedSolomonCode, ReplicationCode
from repro.errors import ParameterError
from repro.registers import RegisterSetup, replication_setup
from repro.registers.base import group_by_timestamp, initial_chunk
from repro.registers.timestamps import TS_ZERO, Timestamp
from repro.registers.base import Chunk


class TestValidation:
    def test_rejects_f_zero(self):
        with pytest.raises(ParameterError):
            RegisterSetup(f=0, k=2, data_size_bytes=8)

    def test_rejects_k_zero(self):
        with pytest.raises(ParameterError):
            RegisterSetup(f=1, k=0, data_size_bytes=8)

    def test_rejects_indivisible_data(self):
        with pytest.raises(ParameterError):
            RegisterSetup(f=1, k=3, data_size_bytes=8)

    def test_rejects_wrong_initial_value_length(self):
        with pytest.raises(ParameterError):
            RegisterSetup(f=1, k=2, data_size_bytes=8, initial_value=b"x")


class TestDerived:
    @pytest.mark.parametrize("f,k,n", [(1, 1, 3), (1, 2, 4), (2, 2, 6),
                                       (3, 3, 9), (2, 4, 8)])
    def test_n_is_2f_plus_k(self, f, k, n):
        setup = RegisterSetup(f=f, k=k, data_size_bytes=k * 4)
        assert setup.n == n
        assert setup.quorum == n - f

    def test_quorum_intersection_contains_k(self):
        """Any two (n-f)-quorums intersect in >= k objects — the Section 5
        fact all correctness arguments use."""
        for f, k in [(1, 1), (1, 3), (2, 2), (3, 4)]:
            setup = RegisterSetup(f=f, k=k, data_size_bytes=k * 4)
            # worst case |A cap B| = 2*quorum - n
            assert 2 * setup.quorum - setup.n >= k

    def test_default_v0_is_zeros(self):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=8)
        assert setup.v0() == bytes(8)

    def test_custom_v0(self):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=4, initial_value=b"abcd")
        assert setup.v0() == b"abcd"

    def test_default_scheme_is_reed_solomon(self):
        setup = RegisterSetup(f=2, k=2, data_size_bytes=8)
        scheme = setup.build_scheme()
        assert isinstance(scheme, ReedSolomonCode)
        assert scheme.k == 2 and scheme.n == 6

    def test_replication_setup(self):
        setup = replication_setup(f=2, data_size_bytes=8)
        assert setup.n == 5
        assert isinstance(setup.build_scheme(), ReplicationCode)

    def test_data_size_bits(self):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=16)
        assert setup.data_size_bits == 128


class TestChunks:
    def test_initial_chunk_has_sentinel_source(self):
        from repro.registers import INITIAL_OP_UID

        setup = RegisterSetup(f=1, k=2, data_size_bytes=8)
        scheme = setup.build_scheme()
        chunk = initial_chunk(scheme, setup.v0(), 3)
        assert chunk.ts == TS_ZERO
        assert chunk.block.source.op_uid == INITIAL_OP_UID
        assert chunk.index == 3
        assert chunk.block.payload == scheme.encode_block(setup.v0(), 3)

    def test_group_by_timestamp_dedupes_indices(self):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=8)
        scheme = setup.build_scheme()
        ts = Timestamp(1, "w")
        chunk_a = Chunk(ts, initial_chunk(scheme, setup.v0(), 0).block)
        chunk_b = Chunk(ts, initial_chunk(scheme, setup.v0(), 0).block)
        chunk_c = Chunk(ts, initial_chunk(scheme, setup.v0(), 1).block)
        grouped = group_by_timestamp([chunk_a, chunk_b, chunk_c])
        assert set(grouped) == {ts}
        assert len(grouped[ts]) == 2  # indices 0 and 1

    def test_group_by_timestamp_separates_writes(self):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=8)
        scheme = setup.build_scheme()
        chunk_a = Chunk(Timestamp(1, "w"), initial_chunk(scheme, setup.v0(), 0).block)
        chunk_b = Chunk(Timestamp(2, "w"), initial_chunk(scheme, setup.v0(), 0).block)
        grouped = group_by_timestamp([chunk_a, chunk_b])
        assert len(grouped) == 2
