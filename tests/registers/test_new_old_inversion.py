"""The classic new-old inversion, constructed deterministically.

Plain ABD (no read write-back) is strongly regular but not atomic; the
atomic variant adds the write-back round. This module *drives* the
separating schedule by hand:

1. a write installs its replica at exactly one object (quorum not yet
   reached — the write stays outstanding);
2. reader r0 samples a quorum containing that object: returns the NEW
   value;
3. reader r1 then samples a quorum avoiding it: plain ABD returns the OLD
   value — a non-linearizable (yet regular) history; atomic ABD's
   write-back makes the same drive return the new value.
"""

from repro.registers import ABDRegister, AtomicABDRegister, replication_setup
from repro.sim import Simulation
from repro.spec import (
    History,
    check_linearizability,
    check_weak_regularity,
)
from repro.workloads import make_value

SETUP = replication_setup(f=1, data_size_bytes=8)  # n=3, quorum=2


def drive_inversion(register_cls):
    """Run the schedule; return (sim, r0_result, r1_result, new_value)."""
    sim = Simulation(register_cls(SETUP))
    value = make_value(SETUP, "new")
    writer = sim.add_client("w0")
    writer.enqueue_write(value)
    # Round 1 of the write: read timestamps, full drain.
    sim.step_client(writer)
    for rmw in list(sim.appliable_rmws()):
        sim.apply_rmw(rmw.rmw_id)
        sim.deliver_response(rmw.rmw_id)
    sim.step_client(writer)  # round 2: triggers update on all 3 objects
    updates = [r for r in sim.appliable_rmws() if r.label == "update"]
    assert len(updates) == 3
    # Apply ONLY object 0's update; objects 1, 2 stay stale. No delivery:
    # the write remains outstanding.
    bo0_update = next(r for r in updates if r.bo_id == 0)
    sim.apply_rmw(bo0_update.rmw_id)

    def solo_read(name, visible_objects):
        reader = sim.add_client(name)
        reader.enqueue_read()
        for _ in range(50):
            if reader.runnable():
                sim.step_client(reader)
            if reader.current is None and reader.completed_ops:
                break
            progressed = False
            for rmw in sim.appliable_rmws():
                if rmw.client_name == name and rmw.bo_id in visible_objects:
                    sim.apply_rmw(rmw.rmw_id)
                    sim.deliver_response(rmw.rmw_id)
                    progressed = True
                    break
            if not progressed and not reader.runnable():
                break
        read_ops = [
            op for op in sim.trace.ops.values()
            if op.client == name and op.kind.value == "read"
        ]
        return read_ops[-1].result if read_ops and read_ops[-1].complete else None

    r0 = solo_read("r0", visible_objects={0, 1})
    r1 = solo_read("r1", visible_objects={1, 2})
    return sim, r0, r1, value


class TestPlainABDInverts:
    def test_inversion_produced(self):
        sim, r0, r1, new_value = drive_inversion(ABDRegister)
        assert r0 == new_value          # saw the half-written new value
        assert r1 == SETUP.v0()         # then the old value re-appeared

    def test_history_regular_but_not_atomic(self):
        sim, r0, r1, _ = drive_inversion(ABDRegister)
        history = History.from_trace(sim.trace, SETUP.v0())
        assert check_weak_regularity(history).ok
        report = check_linearizability(history)
        assert report.note != "budget"
        assert not report.ok


class TestAtomicABDDoesNot:
    def test_write_back_fixes_the_same_drive(self):
        """r0's write-back installs the new value at object 1, which is in
        r1's quorum — r1 must see it."""
        sim, r0, r1, new_value = drive_inversion(AtomicABDRegister)
        assert r0 == new_value
        assert r1 == new_value

    def test_resulting_history_linearizable(self):
        sim, _, _, _ = drive_inversion(AtomicABDRegister)
        history = History.from_trace(sim.trace, SETUP.v0())
        assert check_linearizability(history).ok
