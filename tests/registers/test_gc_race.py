"""Deterministic reproduction of the GC/update straggler race.

Found originally by hypothesis (seed 1287): once a write's update round
has its quorum, the write proceeds to GC while one update RMW is still
pending on a straggler object. If the GC takes effect first, the late
update is ignored (``ts <= storedTS``) and the object ends up holding
**nothing** — below Lemma 8's ``(2f+k)D/k`` residue, while Invariant 1
still guarantees every quorum decodes.

This test drives the exact interleaving by hand, pinning the mechanism
rather than hoping a seed finds it.
"""

from repro.registers import AdaptiveRegister, RegisterSetup, check_invariant1
from repro.sim import Simulation
from repro.storage import StorageMeter
from repro.workloads import make_value

SETUP = RegisterSetup(f=1, k=2, data_size_bytes=8)  # n=4, quorum=3


def drain_label(sim, client, label, skip_bo=None, limit=100):
    """Apply+deliver all pending RMWs with ``label`` except on skip_bo."""
    for _ in range(limit):
        pending = [
            rmw for rmw in sim.appliable_rmws()
            if rmw.label == label and rmw.bo_id != skip_bo
        ]
        if not pending:
            return
        rmw = pending[0]
        sim.apply_rmw(rmw.rmw_id)
        sim.deliver_response(rmw.rmw_id)


def test_gc_beats_straggler_update_and_empties_object():
    sim = Simulation(AdaptiveRegister(SETUP))
    writer = sim.add_client("w0")
    writer.enqueue_write(make_value(SETUP, "race"))

    sim.step_client(writer)                       # round 1 triggers
    drain_label(sim, writer, "readValue")
    sim.step_client(writer)                       # round 2 triggers updates
    # Apply updates on objects 0..2 only; object 3's update stays pending.
    drain_label(sim, writer, "update", skip_bo=3)
    assert writer.runnable()                      # quorum of 3 reached
    sim.step_client(writer)                       # round 3 triggers GC
    # Let the GC take effect on object 3 FIRST...
    gc_on_3 = next(
        rmw for rmw in sim.appliable_rmws()
        if rmw.label == "gc" and rmw.bo_id == 3
    )
    sim.apply_rmw(gc_on_3.rmw_id)
    sim.deliver_response(gc_on_3.rmw_id)
    # ...then the straggler update: it must be ignored (ts <= storedTS).
    update_on_3 = next(
        rmw for rmw in sim.appliable_rmws()
        if rmw.label == "update" and rmw.bo_id == 3
    )
    sim.apply_rmw(update_on_3.rmw_id)
    sim.deliver_response(update_on_3.rmw_id)

    state_3 = sim.base_objects[3].state
    assert state_3.vp == () and state_3.vf == (), (
        "object 3 should be empty: GC deleted the initial piece and the "
        "late update was ignored"
    )

    # Finish the write; total storage is BELOW the Lemma 8 residue...
    drain_label(sim, writer, "gc")
    drain_label(sim, writer, "update")
    sim.step_client(writer)
    assert writer.completed_ops == 1
    meter = StorageMeter(sim)
    residue = SETUP.n * SETUP.data_size_bits // SETUP.k
    assert meter.bo_only_cost_bits() < residue
    # ...but Invariant 1 still holds: every quorum decodes the write.
    assert check_invariant1(sim).ok


def test_in_order_application_leaves_full_residue():
    """Control: the same run with FIFO applies ends at exactly (2f+k)D/k."""
    from repro.sim import FairScheduler

    sim = Simulation(AdaptiveRegister(SETUP))
    writer = sim.add_client("w0")
    writer.enqueue_write(make_value(SETUP, "race"))
    assert sim.run(FairScheduler()).quiescent
    meter = StorageMeter(sim)
    assert meter.bo_only_cost_bits() == (
        SETUP.n * SETUP.data_size_bits // SETUP.k
    )
