"""Registers over padded schemes: arbitrary value sizes end to end."""

import pytest

from repro.coding import PaddedScheme, ReedSolomonCode
from repro.errors import ParameterError
from repro.registers import AdaptiveRegister, RegisterSetup, SafeCodedRegister
from repro.sim import FairScheduler, RandomScheduler, Simulation
from repro.spec import check_strong_regularity
from repro.workloads import WorkloadSpec, make_value, run_register_workload


def padded_setup(f=1, k=3, logical=10) -> RegisterSetup:
    def factory(setup: RegisterSetup):
        return PaddedScheme(
            logical_size_bytes=setup.data_size_bytes,
            k=setup.k,
            inner_factory=lambda padded: ReedSolomonCode(
                k=setup.k, n=setup.n, data_size_bytes=padded
            ),
        )

    return RegisterSetup(f=f, k=k, data_size_bytes=logical,
                         scheme_factory=factory)


class TestSetup:
    def test_indivisible_size_rejected_without_factory(self):
        with pytest.raises(ParameterError):
            RegisterSetup(f=1, k=3, data_size_bytes=10)

    def test_indivisible_size_accepted_with_factory(self):
        setup = padded_setup()
        scheme = setup.build_scheme()
        assert scheme.data_size_bytes == 10
        assert scheme.name == "padded-reed-solomon"


class TestRegisterOverPaddedScheme:
    def test_write_then_read_ten_bytes(self):
        setup = padded_setup()
        sim = Simulation(AdaptiveRegister(setup))
        value = make_value(setup, "odd-sized")
        assert len(value) == 10
        writer = sim.add_client("w0")
        writer.enqueue_write(value)
        assert sim.run(FairScheduler()).quiescent
        reader = sim.add_client("r0")
        reader.enqueue_read()
        sim.run(FairScheduler())
        [read] = sim.trace.reads()
        assert read.result == value
        assert len(read.result) == 10

    @pytest.mark.parametrize("seed", range(5))
    def test_regularity_preserved(self, seed):
        setup = padded_setup()
        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=seed)
        result = run_register_workload(
            AdaptiveRegister, setup, spec, scheduler=RandomScheduler(seed)
        )
        assert check_strong_regularity(result.history).ok

    def test_safe_register_over_padding(self):
        setup = padded_setup(f=2, k=2, logical=7)
        spec = WorkloadSpec(writers=2, writes_per_writer=1, readers=1,
                            reads_per_reader=1, seed=3)
        result = run_register_workload(SafeCodedRegister, setup, spec)
        assert result.run.quiescent
        # Storage is n padded-shard-sized pieces.
        scheme = setup.build_scheme()
        assert result.peak_bo_state_bits == (
            setup.n * scheme.block_size_bits(0)
        )

    def test_storage_counts_padded_bits(self):
        """The meter charges what is actually stored: padded shards."""
        setup = padded_setup(f=1, k=3, logical=10)  # padded to 15 bytes
        spec = WorkloadSpec(writers=1, writes_per_writer=1, readers=0)
        result = run_register_workload(AdaptiveRegister, setup, spec)
        shard_bits = 15 * 8 // 3
        assert result.final_bo_state_bits == setup.n * shard_bits
