"""Coded-only register tests: the O(cD) blow-up the paper critiques."""

import pytest

from repro.analysis import linear_slope
from repro.registers import CodedOnlyRegister, RegisterSetup
from repro.registers.coded_only import (
    CodedOnlyState,
    GCArgs,
    UpdateArgs,
    gc_rmw,
    update_rmw,
)
from repro.registers.base import Chunk, initial_chunk
from repro.registers.timestamps import TS_ZERO, Timestamp
from repro.sim import RandomScheduler
from repro.spec import check_strong_regularity
from repro.workloads import WorkloadSpec, make_value, run_register_workload

SETUP = RegisterSetup(f=1, k=2, data_size_bytes=8)
SCHEME = SETUP.build_scheme()


def piece(ts_num: int, client: str, index: int = 0) -> Chunk:
    value = make_value(SETUP, f"{ts_num}{client}")
    return Chunk(Timestamp(ts_num, client), initial_chunk(SCHEME, value, index).block)


class TestRMWs:
    def test_pieces_accumulate_without_cap(self):
        """No |Vp| < k guard: concurrency piles pieces up — the flaw."""
        state = CodedOnlyState(TS_ZERO, ())
        for i in range(6):
            args = UpdateArgs(
                ts=Timestamp(i + 1, chr(97 + i)),
                stored_ts=TS_ZERO,
                piece=piece(i + 1, chr(97 + i)),
            )
            state, _ = update_rmw(state, args)
        assert len(state.vp) == 6  # > k = 2

    def test_stale_update_ignored(self):
        state = CodedOnlyState(Timestamp(5, "z"), ())
        args = UpdateArgs(ts=Timestamp(3, "a"), stored_ts=TS_ZERO,
                          piece=piece(3, "a"))
        new_state, _ = update_rmw(state, args)
        assert new_state is state

    def test_update_drops_pieces_below_writers_stored_ts(self):
        old = piece(1, "a")
        state = CodedOnlyState(TS_ZERO, (old,))
        args = UpdateArgs(ts=Timestamp(5, "b"), stored_ts=Timestamp(3, "x"),
                          piece=piece(5, "b"))
        new_state, _ = update_rmw(state, args)
        assert old not in new_state.vp

    def test_gc_removes_older_and_raises_ts(self):
        state = CodedOnlyState(TS_ZERO, (piece(1, "a"), piece(4, "b")))
        new_state, _ = gc_rmw(state, GCArgs(ts=Timestamp(3, "c")))
        assert [c.ts.num for c in new_state.vp] == [4]
        assert new_state.stored_ts == Timestamp(3, "c")


class TestBlowUp:
    def test_peak_storage_grows_linearly_with_c(self):
        """The paper's motivating observation, measured."""
        setup = RegisterSetup(f=2, k=4, data_size_bytes=32)
        cs = [1, 2, 3, 4, 6]
        peaks = []
        for c in cs:
            spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0,
                                seed=1)
            result = run_register_workload(CodedOnlyRegister, setup, spec)
            peaks.append(result.peak_bo_state_bits)
        piece_bits = setup.data_size_bits // setup.k
        slope = linear_slope(cs, peaks)
        # Each extra concurrent writer adds about one piece per object.
        assert slope == pytest.approx(setup.n * piece_bits, rel=0.35)
        assert peaks[-1] > peaks[0] * 2

    def test_gc_still_converges(self):
        setup = RegisterSetup(f=2, k=4, data_size_bytes=32)
        spec = WorkloadSpec(writers=5, writes_per_writer=1, readers=0, seed=2)
        result = run_register_workload(CodedOnlyRegister, setup, spec)
        expected = setup.n * setup.data_size_bits // setup.k
        assert result.final_bo_state_bits == expected

    def test_beats_adaptive_only_at_low_concurrency(self):
        """Below k-1 writers both act alike; above, adaptive caps and
        coded-only keeps growing."""
        from repro.registers import AdaptiveRegister

        setup = RegisterSetup(f=2, k=3, data_size_bytes=24)
        for c, coded_should_exceed in [(2, False), (8, True)]:
            spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0,
                                seed=3)
            coded = run_register_workload(CodedOnlyRegister, setup, spec)
            adaptive = run_register_workload(AdaptiveRegister, setup, spec)
            if coded_should_exceed:
                assert coded.peak_bo_state_bits > adaptive.peak_bo_state_bits
            else:
                assert coded.peak_bo_state_bits <= adaptive.peak_bo_state_bits


class TestConsistency:
    @pytest.mark.parametrize("seed", range(10))
    def test_strong_regularity_fuzz(self, seed):
        spec = WorkloadSpec(writers=3, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=seed)
        result = run_register_workload(
            CodedOnlyRegister, SETUP, spec, scheduler=RandomScheduler(seed + 50)
        )
        assert check_strong_regularity(result.history).ok

    @pytest.mark.parametrize("seed", range(5))
    def test_fw_termination(self, seed):
        spec = WorkloadSpec(writers=4, writes_per_writer=2, readers=3,
                            reads_per_reader=2, seed=seed)
        result = run_register_workload(
            CodedOnlyRegister, SETUP, spec, scheduler=RandomScheduler(seed)
        )
        assert result.run.quiescent
        assert result.completed_reads == 6
