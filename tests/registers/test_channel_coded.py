"""Channel-parking register tests: small nodes, charged channels."""

import pytest

from repro.registers import ChannelCodedRegister, RegisterSetup
from repro.registers.channel_coded import (
    ChannelCodedState,
    ConfirmArgs,
    UpdateArgs,
    confirm_rmw,
    update_rmw,
)
from repro.registers.base import Chunk, initial_chunk
from repro.registers.timestamps import TS_ZERO, Timestamp
from repro.sim import FairScheduler, RandomScheduler, Simulation
from repro.spec import check_strong_regularity, check_weak_regularity
from repro.workloads import WorkloadSpec, make_value, run_register_workload

SETUP = RegisterSetup(f=2, k=2, data_size_bytes=16)  # n=6, D=128, piece=64
SCHEME = SETUP.build_scheme()


def piece(ts_num: int, client: str, index: int = 0) -> Chunk:
    value = make_value(SETUP, f"{ts_num}{client}")
    return Chunk(Timestamp(ts_num, client),
                 initial_chunk(SCHEME, value, index).block)


class TestRMWs:
    def test_update_replaces_older(self):
        state = ChannelCodedState(piece(1, "a"), TS_ZERO)
        newer = piece(2, "b")
        new_state, _ = update_rmw(state, UpdateArgs(newer))
        assert new_state.chunk is newer

    def test_update_keeps_newer(self):
        state = ChannelCodedState(piece(5, "z"), TS_ZERO)
        new_state, _ = update_rmw(state, UpdateArgs(piece(2, "a")))
        assert new_state is state

    def test_exactly_one_piece_always(self):
        state = ChannelCodedState(piece(1, "a"), TS_ZERO)
        for i in range(2, 8):
            state, _ = update_rmw(state, UpdateArgs(piece(i, "b")))
        assert isinstance(state.chunk, Chunk)  # single slot, never a set

    def test_confirm_raises_watermark_monotonically(self):
        state = ChannelCodedState(piece(3, "a"), Timestamp(2, "x"))
        state, _ = confirm_rmw(state, ConfirmArgs(Timestamp(5, "y")))
        assert state.stored_ts == Timestamp(5, "y")
        state, _ = confirm_rmw(state, ConfirmArgs(Timestamp(1, "z")))
        assert state.stored_ts == Timestamp(5, "y")


class TestBehaviour:
    def test_write_then_read(self):
        sim = Simulation(ChannelCodedRegister(SETUP))
        value = make_value(SETUP, "cc")
        writer = sim.add_client("w0")
        writer.enqueue_write(value)
        assert sim.run(FairScheduler()).quiescent
        reader = sim.add_client("r0")
        reader.enqueue_read()
        sim.run(FairScheduler())
        [read] = sim.trace.reads()
        assert read.result == value

    @pytest.mark.parametrize("seed", range(10))
    def test_strong_regularity_fuzz(self, seed):
        spec = WorkloadSpec(writers=3, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=seed)
        result = run_register_workload(
            ChannelCodedRegister, SETUP, spec,
            scheduler=RandomScheduler(seed + 17),
        )
        history = result.history
        assert check_weak_regularity(history).ok
        assert check_strong_regularity(history).ok

    @pytest.mark.parametrize("seed", range(5))
    def test_fw_termination(self, seed):
        spec = WorkloadSpec(writers=4, writes_per_writer=2, readers=3,
                            reads_per_reader=2, seed=seed)
        result = run_register_workload(
            ChannelCodedRegister, SETUP, spec, scheduler=RandomScheduler(seed)
        )
        assert result.run.quiescent
        assert result.completed_reads == 6

    def test_survives_f_crashes(self):
        from repro.sim import FailurePlan, at_time

        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=4)

        def configure(sim, scheduler):
            plan = FailurePlan(scheduler)
            plan.crash_base_object(0, at_time(15))
            plan.crash_base_object(4, at_time(45))
            return plan

        result = run_register_workload(
            ChannelCodedRegister, SETUP, spec, configure=configure,
        )
        assert result.completed_writes == 4
        assert result.completed_reads == 4


class TestCostSplit:
    """The Section 3.2 point: node storage flat, total cost grows with c."""

    def test_bo_state_is_always_one_piece_per_object(self):
        for c in (1, 3, 6):
            spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0,
                                seed=c)
            result = run_register_workload(ChannelCodedRegister, SETUP, spec)
            expected = SETUP.n * SETUP.data_size_bits // SETUP.k
            assert result.peak_bo_state_bits == expected
            assert result.final_bo_state_bits == expected

    def test_definition2_cost_grows_with_c(self):
        peaks = []
        for c in (1, 3, 6):
            spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0,
                                seed=1)
            result = run_register_workload(ChannelCodedRegister, SETUP, spec)
            peaks.append(result.peak_storage_bits)
        assert peaks[0] < peaks[1] < peaks[2]

    def test_channel_share_dominates_under_concurrency(self):
        spec = WorkloadSpec(writers=6, writes_per_writer=1, readers=0, seed=2)
        result = run_register_workload(ChannelCodedRegister, SETUP, spec)
        bo_share = result.peak_bo_state_bits
        assert result.peak_storage_bits > 2 * bo_share
