"""Safe register tests: Corollary 7 storage, wait-freedom, strong safety."""

import pytest

from repro.registers import RegisterSetup, SafeCodedRegister
from repro.registers.safe_coded import SafeState, SafeUpdateArgs, update_rmw
from repro.registers.base import Chunk, initial_chunk
from repro.registers.timestamps import Timestamp
from repro.sim import FairScheduler, RandomScheduler, Simulation
from repro.spec import check_strong_safety
from repro.workloads import WorkloadSpec, make_value, run_register_workload

SETUP = RegisterSetup(f=1, k=3, data_size_bytes=12)


def chunk(ts_num: int, client: str, index: int = 0) -> Chunk:
    scheme = SETUP.build_scheme()
    value = make_value(SETUP, f"{ts_num}{client}")
    return Chunk(Timestamp(ts_num, client), initial_chunk(scheme, value, index).block)


class TestUpdateRMW:
    def test_newer_timestamp_overwrites(self):
        state = SafeState(chunk(1, "a"))
        newer = chunk(2, "b")
        new_state, _ = update_rmw(state, SafeUpdateArgs(newer))
        assert new_state.chunk is newer

    def test_older_timestamp_ignored(self):
        state = SafeState(chunk(5, "z"))
        older = chunk(3, "a")
        new_state, _ = update_rmw(state, SafeUpdateArgs(older))
        assert new_state is state

    def test_equal_timestamp_ignored(self):
        state = SafeState(chunk(5, "z"))
        same = chunk(5, "z")
        new_state, _ = update_rmw(state, SafeUpdateArgs(same))
        assert new_state is state


class TestCorollary7Storage:
    def test_storage_is_exactly_n_over_k_times_d(self):
        """nD/k = (2f/k + 1) D bits at all times, not just at rest."""
        spec = WorkloadSpec(writers=3, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=3)
        result = run_register_workload(SafeCodedRegister, SETUP, spec)
        expected = SETUP.n * SETUP.data_size_bits // SETUP.k
        assert result.peak_bo_state_bits == expected
        assert result.final_bo_state_bits == expected

    def test_storage_invariant_under_every_schedule(self):
        expected = SETUP.n * SETUP.data_size_bits // SETUP.k
        for seed in range(5):
            spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=1,
                                reads_per_reader=1, seed=seed)
            result = run_register_workload(
                SafeCodedRegister, SETUP, spec, scheduler=RandomScheduler(seed)
            )
            assert result.peak_bo_state_bits == expected

    def test_below_theorem1_bound(self):
        """The safe register beats Omega(min(f,c) D) — the paper's point
        that the bound needs regularity. With k = 2f the storage is 2D
        while min(f, c) D = f D grows with f."""
        for f in (2, 3, 5, 8):
            setup = RegisterSetup(f=f, k=2 * f, data_size_bytes=2 * f)
            expected = setup.n * setup.data_size_bits // setup.k  # 2D
            theorem1 = min(f, f) * setup.data_size_bits // 2      # fD/2
            assert expected == 2 * setup.data_size_bits
            if f >= 5:  # 2D < fD/2 once f > 4
                assert expected < theorem1


class TestWaitFreedom:
    def test_reads_single_round(self):
        sim = Simulation(SafeCodedRegister(SETUP))
        reader = sim.add_client("r0")
        reader.enqueue_read()
        sim.run(FairScheduler())
        [read] = sim.trace.reads()
        assert read.complete
        # One round = n triggers; no retry loop.
        assert sim.trace.rmw_count() <= SETUP.n

    def test_reads_return_even_under_endless_write_pressure(self):
        """Unlike FW-terminating registers, reads here never loop."""
        spec = WorkloadSpec(writers=4, writes_per_writer=3, readers=2,
                            reads_per_reader=3, seed=5)
        for seed in range(4):
            result = run_register_workload(
                SafeCodedRegister, SETUP, spec, scheduler=RandomScheduler(seed)
            )
            assert result.completed_reads == 6

    def test_write_two_rounds(self):
        sim = Simulation(SafeCodedRegister(SETUP))
        writer = sim.add_client("w0")
        writer.enqueue_write(make_value(SETUP, "x"))
        sim.run(FairScheduler())
        [write] = sim.trace.writes()
        assert write.complete


class TestSafety:
    @pytest.mark.parametrize("seed", range(10))
    def test_strong_safety_fuzz(self, seed):
        spec = WorkloadSpec(writers=3, writes_per_writer=2, readers=3,
                            reads_per_reader=2, seed=seed)
        result = run_register_workload(
            SafeCodedRegister, SETUP, spec, scheduler=RandomScheduler(seed * 13)
        )
        assert check_strong_safety(result.history).ok

    def test_quiescent_read_returns_latest(self):
        sim = Simulation(SafeCodedRegister(SETUP))
        value_a = make_value(SETUP, "a")
        value_b = make_value(SETUP, "b")
        writer = sim.add_client("w0")
        writer.enqueue_write(value_a)
        writer.enqueue_write(value_b)
        assert sim.run(FairScheduler()).quiescent
        reader = sim.add_client("r0")
        reader.enqueue_read()
        sim.run(FairScheduler())
        [read] = sim.trace.reads()
        assert read.result == value_b

    def test_read_concurrent_with_stalled_write_returns_v0(self):
        """Stall a write after 2 of k=3 pieces landed; a solo read then
        finds 3 initial pieces (enough for v0) and returns v0 — legal
        because the read is concurrent with the stalled write."""
        sim = Simulation(SafeCodedRegister(SETUP))  # n=5, quorum=4, k=3
        writer = sim.add_client("w0")
        writer.enqueue_write(make_value(SETUP, "x"))
        sim.step_client(writer)  # round 1: triggers 5 readValue RMWs
        for rmw in list(sim.appliable_rmws()):
            sim.apply_rmw(rmw.rmw_id)
            sim.deliver_response(rmw.rmw_id)
        sim.step_client(writer)  # round 2: triggers 5 update RMWs
        updates = [r for r in sim.appliable_rmws() if r.label == "update"]
        assert len(updates) == 5
        for rmw in updates[:2]:  # objects 0 and 1 get the new pieces
            sim.apply_rmw(rmw.rmw_id)
        # Solo read: full round against the current mixed state.
        reader = sim.add_client("r0")
        reader.enqueue_read()
        sim.step_client(reader)
        for rmw in list(sim.appliable_rmws()):
            if rmw.client_name == "r0":
                sim.apply_rmw(rmw.rmw_id)
                sim.deliver_response(rmw.rmw_id)
        sim.step_client(reader)
        [read] = sim.trace.reads()
        assert read.complete
        # Objects 2, 3, 4 still hold v0 pieces: k = 3 of them decode v0.
        assert read.result == SETUP.v0()
