"""Timestamp ordering tests (Algorithm 1, line 1)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.registers import TS_ZERO, Timestamp, max_timestamp

names = st.text(alphabet="abcxyz", min_size=0, max_size=4)
nums = st.integers(min_value=0, max_value=1000)
timestamps = st.builds(Timestamp, num=nums, client=names)


class TestOrdering:
    def test_lexicographic_num_first(self):
        assert Timestamp(1, "z") < Timestamp(2, "a")

    def test_client_breaks_ties(self):
        assert Timestamp(3, "a") < Timestamp(3, "b")

    def test_zero_is_minimal(self):
        assert TS_ZERO <= Timestamp(0, "")
        assert TS_ZERO < Timestamp(0, "a")
        assert TS_ZERO < Timestamp(1, "")

    @given(timestamps, timestamps)
    def test_total_order(self, a, b):
        assert (a < b) or (b < a) or (a == b)

    @given(timestamps, timestamps, timestamps)
    def test_transitivity(self, a, b, c):
        if a < b and b < c:
            assert a < c

    def test_equality_and_hash(self):
        assert Timestamp(2, "x") == Timestamp(2, "x")
        assert hash(Timestamp(2, "x")) == hash(Timestamp(2, "x"))
        assert len({Timestamp(2, "x"), Timestamp(2, "x")}) == 1


class TestHelpers:
    def test_next_for_is_strictly_larger(self):
        ts = Timestamp(4, "z")
        successor = ts.next_for("a")
        assert successor > ts
        assert successor.num == 5
        assert successor.client == "a"

    @given(st.lists(timestamps, min_size=1, max_size=6))
    def test_max_timestamp(self, values):
        assert max_timestamp(*values) == max(values)

    def test_max_of_nothing_is_zero(self):
        assert max_timestamp() == TS_ZERO
