"""Invariant 1 checker tests (Appendix D's key invariant)."""

import pytest

from repro.registers import (
    AdaptiveRegister,
    CodedOnlyRegister,
    RegisterSetup,
    SafeCodedRegister,
    check_invariant1,
    chunks_in_state,
)
from repro.registers.adaptive import AdaptiveState
from repro.registers.base import initial_chunk
from repro.registers.timestamps import TS_ZERO, Timestamp
from repro.sim import FairScheduler, RandomScheduler, Simulation
from repro.workloads import WorkloadSpec, run_register_workload

SETUP = RegisterSetup(f=2, k=2, data_size_bytes=16)


class TestChunkExtraction:
    def test_adaptive_state(self):
        scheme = SETUP.build_scheme()
        chunk = initial_chunk(scheme, SETUP.v0(), 0)
        state = AdaptiveState(TS_ZERO, (chunk,), (chunk,))
        assert len(chunks_in_state(state)) == 2

    def test_safe_state(self):
        protocol = SafeCodedRegister(SETUP)
        state = protocol.initial_bo_state(3)
        assert len(chunks_in_state(state)) == 1

    def test_opaque_state_is_empty(self):
        assert chunks_in_state(object()) == ()


class TestInvariantHolds:
    def test_initial_states(self):
        sim = Simulation(AdaptiveRegister(SETUP))
        report = check_invariant1(sim)
        assert report.ok
        assert report.subsets_checked > 0

    @pytest.mark.parametrize("register_cls",
                             [AdaptiveRegister, CodedOnlyRegister])
    @pytest.mark.parametrize("seed", range(6))
    def test_holds_throughout_random_runs(self, register_cls, seed):
        """Invariant 1 at every RMW boundary of an adversarial run."""
        protocol = register_cls(SETUP)
        sim = Simulation(protocol)
        spec = WorkloadSpec(writers=3, writes_per_writer=1, readers=1,
                            reads_per_reader=1, seed=seed)
        values = spec.write_values(SETUP)
        for index in range(spec.writers):
            client = sim.add_client(f"w{index}")
            for value in values[f"w{index}"]:
                client.enqueue_write(value)
        reader = sim.add_client("r0")
        reader.enqueue_read()

        failures = []

        def check(simulation, action):
            if not check_invariant1(simulation).ok:
                failures.append(simulation.time)

        sim.run(RandomScheduler(seed), on_action=check)
        assert not failures, f"invariant 1 broken at times {failures[:5]}"

    def test_holds_after_f_crashes(self):
        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=0, seed=3)
        result = run_register_workload(
            AdaptiveRegister, SETUP, spec, scheduler=FairScheduler()
        )
        result.sim.crash_base_object(0)
        result.sim.crash_base_object(1)
        assert check_invariant1(result.sim).ok

    def test_vacuous_beyond_f_crashes(self):
        sim = Simulation(AdaptiveRegister(SETUP))
        for bo_id in range(SETUP.f + 2):
            sim.crash_base_object(bo_id)
        report = check_invariant1(sim)
        assert report.ok
        assert report.subsets_checked == 0


class TestInvariantViolationDetected:
    def test_emptied_quorum_detected(self):
        """Gut k objects' states; some (n-f)-subset must fail."""
        sim = Simulation(AdaptiveRegister(SETUP))
        empty = AdaptiveState(TS_ZERO, (), ())
        # Empty out n - k + 1 objects so no subset retains k pieces of v0.
        for bo_id in range(SETUP.n - SETUP.k + 1):
            sim.base_objects[bo_id].state = empty
        report = check_invariant1(sim)
        assert not report.ok
        assert report.failing_subset is not None

    def test_stale_stored_ts_detected(self):
        """An object advertising storedTS above every stored piece breaks
        the invariant (reads could never satisfy ts >= storedTS)."""
        sim = Simulation(AdaptiveRegister(SETUP))
        future = Timestamp(99, "zz")
        bo = sim.base_objects[0]
        bo.state = AdaptiveState(future, bo.state.vp, bo.state.vf)
        report = check_invariant1(sim)
        assert not report.ok
