"""Adaptive register tests: RMW semantics (pseudocode lines), storage
bounds (Theorem 2 / Corollary 3), GC convergence (Lemma 8), liveness,
consistency fuzzing."""

import pytest

from repro.registers import AdaptiveRegister, RegisterSetup
from repro.registers.adaptive import (
    AdaptiveState,
    GCArgs,
    UpdateArgs,
    gc_rmw,
    read_rmw,
    update_rmw,
)
from repro.registers.base import Chunk, initial_chunk
from repro.registers.timestamps import Timestamp
from repro.sim import FairScheduler, RandomScheduler
from repro.spec import check_strong_regularity, check_weak_regularity
from repro.workloads import WorkloadSpec, make_value, run_register_workload

SETUP = RegisterSetup(f=1, k=2, data_size_bytes=8)
SCHEME = SETUP.build_scheme()


def piece(ts_num: int, client: str, index: int, tag: str = "v") -> Chunk:
    """A chunk of a synthetic write with timestamp (ts_num, client)."""
    value = make_value(SETUP, f"{tag}{ts_num}{client}")
    base = initial_chunk(SCHEME, value, index)
    return Chunk(Timestamp(ts_num, client), base.block)


def replica(ts_num: int, client: str, tag: str = "v") -> tuple[Chunk, ...]:
    return tuple(piece(ts_num, client, j, tag) for j in range(SETUP.k))


def state(stored=(0, ""), vp=(), vf=()):
    return AdaptiveState(Timestamp(*stored), tuple(vp), tuple(vf))


def update_args(ts_num, client, index=0, stored=(0, ""), k=SETUP.k):
    return UpdateArgs(
        ts=Timestamp(ts_num, client),
        stored_ts=Timestamp(*stored),
        piece=piece(ts_num, client, index),
        replica=replica(ts_num, client),
        k=k,
    )


class TestUpdateRMW:
    def test_stale_update_ignored(self):
        """Line 33: ts <= storedTS means a newer write already finished."""
        current = state(stored=(5, "z"))
        new_state, _ = update_rmw(current, update_args(4, "a"))
        assert new_state is current

    def test_piece_stored_when_vp_has_room(self):
        current = state(vp=[piece(1, "a", 0)])
        new_state, _ = update_rmw(current, update_args(2, "b"))
        assert len(new_state.vp) == 2
        assert new_state.vf == ()

    def test_line36_drops_pieces_older_than_stored_ts(self):
        old = piece(1, "a", 0)
        fresh = piece(3, "c", 0)
        current = state(vp=[old, fresh])
        # Writer observed storedTS=(2,""): the ts=1 piece is garbage...
        # but vp is full (k=2), so this goes to the vf branch instead.
        # Use k=3 to exercise line 36 directly.
        args = update_args(4, "d", stored=(2, ""), k=3)
        new_state, _ = update_rmw(current, args)
        assert old not in new_state.vp
        assert fresh in new_state.vp
        assert args.piece in new_state.vp

    def test_full_vp_falls_back_to_replica(self):
        """Line 37-38: vp at capacity, empty vf -> store the full replica."""
        current = state(vp=[piece(1, "a", 0), piece(2, "b", 0)])
        args = update_args(3, "c")
        new_state, _ = update_rmw(current, args)
        assert new_state.vp == current.vp
        assert new_state.vf == args.replica
        assert len(new_state.vf) == SETUP.k

    def test_newer_replica_overwrites_older(self):
        current = state(
            vp=[piece(1, "a", 0), piece(2, "b", 0)],
            vf=replica(3, "c"),
        )
        args = update_args(4, "d")
        new_state, _ = update_rmw(current, args)
        assert new_state.vf == args.replica

    def test_older_write_does_not_replace_newer_replica(self):
        current = state(
            vp=[piece(5, "a", 0), piece(6, "b", 0)],
            vf=replica(7, "c"),
        )
        args = update_args(4, "d", stored=(0, ""))
        new_state, _ = update_rmw(current, args)
        assert new_state.vf == current.vf

    def test_line39_stored_ts_propagates(self):
        current = state(stored=(0, ""), vp=[])
        new_state, _ = update_rmw(current, update_args(9, "a", stored=(6, "x")))
        assert new_state.stored_ts == Timestamp(6, "x")

    def test_stored_ts_never_regresses(self):
        current = state(stored=(8, "z"), vp=[])
        new_state, _ = update_rmw(current, update_args(9, "a", stored=(2, "x")))
        assert new_state.stored_ts == Timestamp(8, "z")

    def test_vp_never_exceeds_k(self):
        current = state()
        for i in range(6):
            current, _ = update_rmw(current, update_args(i + 1, chr(97 + i)))
        assert len(current.vp) <= SETUP.k


class TestGCRMW:
    def test_removes_older_pieces_everywhere(self):
        """Lines 41-42: only chunks at/above the completed ts survive."""
        current = state(
            vp=[piece(1, "a", 0), piece(5, "b", 0)],
            vf=replica(2, "c"),
        )
        args = GCArgs(ts=Timestamp(4, "d"), piece=piece(4, "d", 0))
        new_state, _ = gc_rmw(current, args)
        assert [c.ts.num for c in new_state.vp] == [5]
        assert new_state.vf == ()

    def test_line44_replica_of_own_write_shrinks_to_piece(self):
        current = state(vf=replica(4, "d"))
        args = GCArgs(ts=Timestamp(4, "d"), piece=piece(4, "d", 0))
        new_state, _ = gc_rmw(current, args)
        assert new_state.vf == (args.piece,)

    def test_line45_stored_ts_raised_to_gc_ts(self):
        current = state(stored=(1, "a"))
        args = GCArgs(ts=Timestamp(7, "d"), piece=piece(7, "d", 0))
        new_state, _ = gc_rmw(current, args)
        assert new_state.stored_ts == Timestamp(7, "d")

    def test_read_rmw_returns_everything(self):
        current = state(vp=[piece(1, "a", 0)], vf=replica(2, "b"))
        same_state, response = read_rmw(current, None)
        assert same_state is current
        assert len(response.chunks) == 1 + SETUP.k
        assert response.stored_ts == current.stored_ts


class TestSequentialBehaviour:
    def test_write_then_read(self):
        from repro.sim import Simulation

        sim = Simulation(AdaptiveRegister(SETUP))
        value = make_value(SETUP, "solo")
        writer = sim.add_client("w0")
        writer.enqueue_write(value)
        assert sim.run(FairScheduler()).quiescent
        reader = sim.add_client("r0")
        reader.enqueue_read()
        assert sim.run(FairScheduler()).quiescent
        [read] = [op for op in sim.trace.ops.values() if not op.written]
        assert read.result == value

    def test_read_before_any_write_returns_v0(self):
        spec = WorkloadSpec(writers=0, readers=1, reads_per_reader=1)
        result = run_register_workload(AdaptiveRegister, SETUP, spec)
        [read] = result.trace.reads()
        assert read.result == SETUP.v0()

    def test_writes_take_three_rounds(self):
        spec = WorkloadSpec(writers=1, writes_per_writer=1, readers=0)
        result = run_register_workload(AdaptiveRegister, SETUP, spec)
        # 3 rounds x n triggers happened: at least 3 * quorum applies.
        assert result.total_rmw_applies >= 3 * SETUP.quorum


class TestStorageBounds:
    @pytest.mark.parametrize("c", [1, 2, 3, 5])
    def test_corollary3_bo_storage_bound(self, c):
        """Peak base-object storage respects Theorem 2's caps.

        For ``c <= k - 1`` (Lemma 6's regime, counting the initial value's
        piece) every object fits all pieces in ``Vp``:
        ``(c+1) * n * D / k`` bits. Beyond that the replica fallback caps
        each object at ``2D`` (``k`` pieces + one replica): ``2 n D`` total
        — tighter than the paper's stated ``(2f+k)^2 D``.
        """
        setup = RegisterSetup(f=2, k=3, data_size_bytes=24)
        spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0, seed=5)
        result = run_register_workload(AdaptiveRegister, setup, spec)
        d = setup.data_size_bits
        if c <= setup.k - 1:
            cap = (c + 1) * setup.n * d // setup.k
        else:
            cap = 2 * setup.n * d
        assert result.peak_bo_state_bits <= cap
        assert cap <= setup.n * setup.n * d  # paper's (2f+k)^2 D is looser

    def test_lemma8_gc_converges(self):
        """After all writes complete, storage shrinks to (2f+k) D/k."""
        setup = RegisterSetup(f=2, k=2, data_size_bytes=16)
        spec = WorkloadSpec(writers=4, writes_per_writer=2, readers=0, seed=6)
        result = run_register_workload(AdaptiveRegister, setup, spec)
        assert result.final_bo_state_bits == setup.n * setup.data_size_bits // setup.k

    def test_storage_grows_with_concurrency_until_replica_cap(self):
        setup = RegisterSetup(f=2, k=4, data_size_bytes=32)
        peaks = []
        for c in (1, 2, 3):
            spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0, seed=8)
            result = run_register_workload(AdaptiveRegister, setup, spec)
            peaks.append(result.peak_bo_state_bits)
        assert peaks[0] < peaks[1] <= peaks[2] * 2  # growth then taper


class TestLiveness:
    @pytest.mark.parametrize("seed", range(8))
    def test_fw_termination_under_random_schedules(self, seed):
        spec = WorkloadSpec(writers=3, writes_per_writer=2, readers=3,
                            reads_per_reader=2, seed=seed)
        result = run_register_workload(
            AdaptiveRegister, SETUP, spec, scheduler=RandomScheduler(seed)
        )
        assert result.run.quiescent
        assert result.completed_writes == 6
        assert result.completed_reads == 6


class TestConsistency:
    @pytest.mark.parametrize("seed", range(12))
    def test_strong_regularity_fuzz(self, seed):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=8)
        spec = WorkloadSpec(writers=3, writes_per_writer=2, readers=2,
                            reads_per_reader=3, seed=seed)
        result = run_register_workload(
            AdaptiveRegister, setup, spec, scheduler=RandomScheduler(seed * 7)
        )
        history = result.history
        assert check_weak_regularity(history).ok
        assert check_strong_regularity(history).ok

    def test_reads_decode_real_payloads(self):
        """Reads reconstruct via the erasure code, not via bookkeeping."""
        spec = WorkloadSpec(writers=2, writes_per_writer=1, readers=1,
                            reads_per_reader=1, seed=13)
        result = run_register_workload(AdaptiveRegister, SETUP, spec)
        [read] = result.trace.reads()
        written = {
            op.written for op in result.trace.writes()
        } | {SETUP.v0()}
        assert read.result in written
