"""Fuzz-driver tests, including the seeded nightly-style ``-m fuzz`` sweep."""

import os

import pytest

from repro.registers import (
    ABDRegister,
    AdaptiveRegister,
    CASRegister,
    CodedOnlyRegister,
    RegisterSetup,
    SafeCodedRegister,
    replication_setup,
)
from repro.spec import check_strong_regularity, check_strong_safety
from repro.workloads import fuzz_register

SETUP = RegisterSetup(f=1, k=2, data_size_bytes=8)


class TestFuzzRegister:
    def test_healthy_register_passes(self):
        result = fuzz_register(
            AdaptiveRegister, SETUP, check_strong_regularity,
            runs=5, ops_each=1,
        )
        assert result.ok
        assert result.runs == 5
        assert "all consistent" in result.summary()

    def test_with_crashes(self):
        result = fuzz_register(
            AdaptiveRegister, SETUP, check_strong_regularity,
            runs=4, ops_each=1, crash_objects=1,
        )
        assert result.ok

    def test_crash_budget_enforced(self):
        with pytest.raises(ValueError):
            fuzz_register(
                AdaptiveRegister, SETUP, check_strong_regularity,
                runs=1, crash_objects=SETUP.f + 1,
            )

    def test_with_client_crashes(self):
        """Killing writers/readers mid-run must not break regularity of
        the surviving history (incomplete ops stay pending)."""
        result = fuzz_register(
            AdaptiveRegister, SETUP, check_strong_regularity,
            runs=4, ops_each=1, crash_objects=1, crash_clients=2,
        )
        assert result.ok

    def test_client_crash_budget_enforced(self):
        with pytest.raises(ValueError):
            fuzz_register(
                AdaptiveRegister, SETUP, check_strong_regularity,
                runs=1, writers=2, readers=1, crash_clients=4,
            )

    # The safe register needs enough write pressure to scatter pieces and
    # force a v0 return after some write completed — k=3, 4 writers x 3
    # ops finds violations reliably across seeds.
    PRESSURE_SETUP = RegisterSetup(f=1, k=3, data_size_bytes=12)

    def test_wrong_checker_detects_violations(self):
        """The safe register is not regular: fuzzing it against the
        regularity checker must find failures (reads returning v0 or a
        stale value under concurrency)."""
        result = fuzz_register(
            SafeCodedRegister, self.PRESSURE_SETUP, check_strong_regularity,
            runs=15, writers=4, readers=4, ops_each=3,
        )
        assert not result.ok
        assert "FAILURES" in result.summary()

    def test_right_checker_accepts_safe_register(self):
        result = fuzz_register(
            SafeCodedRegister, self.PRESSURE_SETUP, check_strong_safety,
            runs=15, writers=4, readers=4, ops_each=3,
        )
        assert result.ok

    def test_failures_carry_seeds(self):
        result = fuzz_register(
            SafeCodedRegister, self.PRESSURE_SETUP, check_strong_regularity,
            runs=15, writers=4, readers=4, ops_each=3, base_seed=0,
        )
        assert result.failures
        for failure in result.failures:
            assert 0 <= failure.seed < 15
            assert failure.reason


@pytest.mark.fuzz
class TestFuzzNightly:
    """The seeded nightly-style fuzz sweep (``pytest -m fuzz``).

    Bounded enough (15 runs per cell, small registers) to ride in normal
    CI; the nightly job widens it without code changes via environment
    variables — ``REPRO_FUZZ_RUNS`` / ``REPRO_FUZZ_BASE_SEED`` (the
    nightly workflow sets ``REPRO_FUZZ_RUNS=120``, covering seeds
    100..219). Default seed coverage: every cell fuzzes seeds
    ``BASE_SEED .. BASE_SEED + RUNS - 1`` = **100..114** for each of the
    five registers under three crash mixes — (0 objects, 0 clients),
    (f objects, 0 clients), (1 object, 2 clients) — i.e. seeds 100..114
    x 5 registers x 3 crash mixes, RandomScheduler schedules, via
    :func:`~repro.sim.failures.seeded_crash_schedule`. This exact sweep
    (plus wider shakeouts to seed 2014 and a 40-run adaptive pressure
    cell at f=1, k=3, 5 writers, 3 client crashes) passed with zero
    failures when first wired in — no latent violation surfaced.
    """

    RUNS = int(os.environ.get("REPRO_FUZZ_RUNS", "15"))
    BASE_SEED = int(os.environ.get("REPRO_FUZZ_BASE_SEED", "100"))
    CODED = RegisterSetup(f=2, k=2, data_size_bytes=16)
    ABD = replication_setup(f=2, data_size_bytes=16)

    CELLS = [
        ("adaptive", AdaptiveRegister, CODED, check_strong_regularity),
        ("coded-only", CodedOnlyRegister, CODED, check_strong_regularity),
        ("cas", CASRegister, CODED, check_strong_regularity),
        ("abd", ABDRegister, ABD, check_strong_regularity),
        ("safe", SafeCodedRegister, CODED, check_strong_safety),
    ]
    CRASH_MIXES = [(0, 0), (2, 0), (1, 2)]

    @pytest.mark.parametrize("name,register_cls,setup,checker", CELLS,
                             ids=[cell[0] for cell in CELLS])
    @pytest.mark.parametrize("crash_objects,crash_clients", CRASH_MIXES)
    def test_seeded_sweep_is_consistent(
        self, name, register_cls, setup, checker, crash_objects,
        crash_clients,
    ):
        result = fuzz_register(
            register_cls, setup, checker,
            runs=self.RUNS,
            crash_objects=crash_objects,
            crash_clients=crash_clients,
            base_seed=self.BASE_SEED,
        )
        assert result.ok, result.summary()
        assert result.runs == self.RUNS


class TestFuzzCLI:
    def test_fuzz_command_passes_for_adaptive(self, capsys):
        from repro.cli import main

        code = main(["fuzz", "--register", "adaptive", "--f", "1",
                     "--k", "2", "--data-size", "8", "--runs", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all consistent" in out
