"""Fuzz-driver tests."""

import pytest

from repro.registers import (
    AdaptiveRegister,
    RegisterSetup,
    SafeCodedRegister,
)
from repro.spec import check_strong_regularity, check_strong_safety
from repro.workloads import fuzz_register

SETUP = RegisterSetup(f=1, k=2, data_size_bytes=8)


class TestFuzzRegister:
    def test_healthy_register_passes(self):
        result = fuzz_register(
            AdaptiveRegister, SETUP, check_strong_regularity,
            runs=5, ops_each=1,
        )
        assert result.ok
        assert result.runs == 5
        assert "all consistent" in result.summary()

    def test_with_crashes(self):
        result = fuzz_register(
            AdaptiveRegister, SETUP, check_strong_regularity,
            runs=4, ops_each=1, crash_objects=1,
        )
        assert result.ok

    def test_crash_budget_enforced(self):
        with pytest.raises(ValueError):
            fuzz_register(
                AdaptiveRegister, SETUP, check_strong_regularity,
                runs=1, crash_objects=SETUP.f + 1,
            )

    # The safe register needs enough write pressure to scatter pieces and
    # force a v0 return after some write completed — k=3, 4 writers x 3
    # ops finds violations reliably across seeds.
    PRESSURE_SETUP = RegisterSetup(f=1, k=3, data_size_bytes=12)

    def test_wrong_checker_detects_violations(self):
        """The safe register is not regular: fuzzing it against the
        regularity checker must find failures (reads returning v0 or a
        stale value under concurrency)."""
        result = fuzz_register(
            SafeCodedRegister, self.PRESSURE_SETUP, check_strong_regularity,
            runs=15, writers=4, readers=4, ops_each=3,
        )
        assert not result.ok
        assert "FAILURES" in result.summary()

    def test_right_checker_accepts_safe_register(self):
        result = fuzz_register(
            SafeCodedRegister, self.PRESSURE_SETUP, check_strong_safety,
            runs=15, writers=4, readers=4, ops_each=3,
        )
        assert result.ok

    def test_failures_carry_seeds(self):
        result = fuzz_register(
            SafeCodedRegister, self.PRESSURE_SETUP, check_strong_regularity,
            runs=15, writers=4, readers=4, ops_each=3, base_seed=0,
        )
        assert result.failures
        for failure in result.failures:
            assert 0 <= failure.seed < 15
            assert failure.reason


class TestFuzzCLI:
    def test_fuzz_command_passes_for_adaptive(self, capsys):
        from repro.cli import main

        code = main(["fuzz", "--register", "adaptive", "--f", "1",
                     "--k", "2", "--data-size", "8", "--runs", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all consistent" in out
