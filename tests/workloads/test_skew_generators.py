"""Tests for the key-skew streams feeding the sharded keyspace."""

import math

import pytest

from repro.errors import ParameterError
from repro.workloads import (
    KEY_SKEWS,
    cumulative_weights,
    hotspot_weights,
    sample_keys,
    skew_weights,
    uniform_weights,
    unit_interval,
    zipf_weights,
)


class TestWeightVectors:
    @pytest.mark.parametrize("skew", KEY_SKEWS)
    def test_every_skew_is_a_normalized_distribution(self, skew):
        weights = skew_weights(skew, 100, hot_keys=5)
        assert len(weights) == 100
        assert all(w > 0 for w in weights)
        assert math.isclose(sum(weights), 1.0, rel_tol=1e-12)

    def test_uniform_is_flat(self):
        assert uniform_weights(4) == [0.25] * 4

    def test_zipf_is_strictly_decreasing_in_rank(self):
        weights = zipf_weights(50, s=1.1)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_zipf_follows_the_power_law(self):
        weights = zipf_weights(100, s=2.0)
        # w_r / w_2r = (2r)^s / r^s = 2^s for every rank r.
        for rank in (1, 5, 10):
            ratio = weights[rank - 1] / weights[2 * rank - 1]
            assert math.isclose(ratio, 2.0 ** 2.0, rel_tol=1e-12)

    def test_hotspot_mass_split(self):
        weights = hotspot_weights(100, hot_keys=4, hot_weight=0.9)
        assert math.isclose(sum(weights[:4]), 0.9, rel_tol=1e-12)
        assert math.isclose(sum(weights[4:]), 0.1, rel_tol=1e-12)
        assert len(set(weights[:4])) == 1
        assert len(set(weights[4:])) == 1

    def test_hotspot_all_hot_degenerates_to_uniform(self):
        assert hotspot_weights(8, hot_keys=8) == uniform_weights(8)

    def test_rejections(self):
        with pytest.raises(ParameterError):
            uniform_weights(0)
        with pytest.raises(ParameterError):
            zipf_weights(10, s=0)
        with pytest.raises(ParameterError):
            hotspot_weights(10, hot_keys=0)
        with pytest.raises(ParameterError):
            hotspot_weights(10, hot_keys=4, hot_weight=1.0)
        with pytest.raises(ParameterError):
            skew_weights("pareto", 10)
        with pytest.raises(ParameterError):
            cumulative_weights([])


class TestSampling:
    def test_unit_interval_is_deterministic_and_in_range(self):
        draws = [unit_interval(7, f"t.{i}") for i in range(200)]
        assert draws == [unit_interval(7, f"t.{i}") for i in range(200)]
        assert all(0 <= d < 1 for d in draws)
        assert len(set(draws)) == 200

    def test_sample_keys_is_a_pure_function_of_seed_and_tag(self):
        cum = cumulative_weights(zipf_weights(64))
        assert sample_keys(cum, 50, 3, "w") == sample_keys(cum, 50, 3, "w")
        assert sample_keys(cum, 50, 3, "w") != sample_keys(cum, 50, 4, "w")
        assert sample_keys(cum, 50, 3, "w") != sample_keys(cum, 50, 3, "r")

    def test_cumulative_table_ends_at_exactly_one(self):
        cum = cumulative_weights(zipf_weights(1000, s=1.1))
        assert cum[-1] == 1.0
        assert all(a < b for a, b in zip(cum, cum[1:]))

    def test_samples_stay_in_key_range(self):
        cum = cumulative_weights(uniform_weights(32))
        keys = sample_keys(cum, 500, 0, "range")
        assert all(0 <= k < 32 for k in keys)

    def test_hotspot_empirical_frequencies(self):
        """~90% of draws land in the hot set when hot_weight = 0.9."""
        cum = cumulative_weights(hotspot_weights(256, hot_keys=4,
                                                 hot_weight=0.9))
        keys = sample_keys(cum, 2000, 11, "freq")
        hot_fraction = sum(1 for k in keys if k < 4) / len(keys)
        assert 0.85 < hot_fraction < 0.95

    def test_zipf_empirical_head_dominates_tail(self):
        cum = cumulative_weights(zipf_weights(1000, s=1.2))
        keys = sample_keys(cum, 2000, 5, "zipf")
        head = sum(1 for k in keys if k < 10)
        tail = sum(1 for k in keys if k >= 500)
        assert head > tail

    def test_negative_count_rejected(self):
        cum = cumulative_weights(uniform_weights(4))
        with pytest.raises(ParameterError):
            sample_keys(cum, -1, 0, "x")
