"""Workload generator and runner tests."""

import pytest

from repro.errors import SchedulerExhausted
from repro.registers import (
    ABDRegister,
    AdaptiveRegister,
    CASRegister,
    CodedOnlyRegister,
    RegisterSetup,
    SafeCodedRegister,
    replication_setup,
)
from repro.sim import FairScheduler, RandomScheduler
from repro.workloads import (
    WorkloadSpec,
    make_value,
    run_register_workload,
)

SETUP = RegisterSetup(f=1, k=2, data_size_bytes=16)


class TestMakeValue:
    def test_deterministic(self):
        assert make_value(SETUP, "a", 1) == make_value(SETUP, "a", 1)

    def test_distinct_tags_distinct_values(self):
        values = {make_value(SETUP, f"t{i}") for i in range(50)}
        assert len(values) == 50

    def test_seed_changes_values(self):
        assert make_value(SETUP, "a", 1) != make_value(SETUP, "a", 2)

    def test_length_matches_register_width(self):
        wide = RegisterSetup(f=1, k=2, data_size_bytes=100)
        assert len(make_value(wide, "x")) == 100


class TestWorkloadSpec:
    def test_concurrency_equals_writers(self):
        spec = WorkloadSpec(writers=5)
        assert spec.concurrency == 5

    def test_write_values_shape(self):
        spec = WorkloadSpec(writers=2, writes_per_writer=3)
        values = spec.write_values(SETUP)
        assert set(values) == {"w0", "w1"}
        assert all(len(per_writer) == 3 for per_writer in values.values())

    def test_all_values_distinct(self):
        spec = WorkloadSpec(writers=3, writes_per_writer=3)
        values = spec.write_values(SETUP)
        flat = [v for per_writer in values.values() for v in per_writer]
        assert len(set(flat)) == len(flat)


class TestRunner:
    def test_result_counts(self):
        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=2,
                            reads_per_reader=1, seed=1)
        result = run_register_workload(AdaptiveRegister, SETUP, spec)
        assert result.completed_writes == 4
        assert result.completed_reads == 2
        assert result.run.quiescent

    def test_deterministic_given_seeded_scheduler(self):
        spec = WorkloadSpec(writers=2, writes_per_writer=1, readers=1,
                            reads_per_reader=1, seed=5)
        first = run_register_workload(
            AdaptiveRegister, SETUP, spec, scheduler=RandomScheduler(9)
        )
        second = run_register_workload(
            AdaptiveRegister, SETUP, spec, scheduler=RandomScheduler(9)
        )
        assert first.peak_storage_bits == second.peak_storage_bits
        assert first.run.steps == second.run.steps

    def test_budget_exhaustion_raises_when_required(self):
        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=1,
                            reads_per_reader=1)
        with pytest.raises(SchedulerExhausted):
            run_register_workload(
                AdaptiveRegister, SETUP, spec, max_steps=10,
            )

    def test_budget_exhaustion_tolerated_when_not_required(self):
        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=1,
                            reads_per_reader=1)
        result = run_register_workload(
            AdaptiveRegister, SETUP, spec, max_steps=10,
            require_quiescence=False,
        )
        assert result.run.exhausted

    def test_history_property(self):
        spec = WorkloadSpec(writers=1, writes_per_writer=1, readers=1,
                            reads_per_reader=1, seed=2)
        result = run_register_workload(AdaptiveRegister, SETUP, spec)
        history = result.history
        assert len(history.writes()) == 1
        assert len(history.reads()) == 1
        assert history.v0 == SETUP.v0()

    def test_configure_hook_wraps_scheduler(self):
        spec = WorkloadSpec(writers=1, writes_per_writer=1, readers=0)
        seen = {}

        def configure(sim, scheduler):
            seen["sim"] = sim
            seen["scheduler"] = scheduler
            return scheduler

        base = FairScheduler()
        run_register_workload(
            AdaptiveRegister, SETUP, spec, scheduler=base, configure=configure
        )
        assert seen["scheduler"] is base
        assert seen["sim"].protocol.name == "adaptive"

    def test_zero_workload_is_quiescent(self):
        spec = WorkloadSpec(writers=0, readers=0)
        result = run_register_workload(AdaptiveRegister, SETUP, spec)
        assert result.run.quiescent
        assert result.run.steps == 0


class TestEncodePriming:
    """The batched write-wave encode must be measurement-invisible."""

    def _measurements(self, result):
        return (
            result.peak_storage_bits,
            result.peak_bo_state_bits,
            result.final_bo_state_bits,
            result.run.steps,
            result.completed_writes,
            result.completed_reads,
        )

    @pytest.mark.parametrize(
        "register_cls, setup",
        [
            (AdaptiveRegister, SETUP),
            (CodedOnlyRegister, SETUP),
            (CASRegister, SETUP),
            (SafeCodedRegister, SETUP),
            (ABDRegister, replication_setup(f=1, data_size_bytes=16)),
        ],
    )
    def test_priming_changes_no_measurement(self, register_cls, setup):
        spec = WorkloadSpec(writers=6, writes_per_writer=2, readers=2,
                            reads_per_reader=1, seed=3)
        primed = run_register_workload(register_cls, setup, spec)
        lazy = run_register_workload(
            register_cls, setup, spec, prime_encodes=False
        )
        assert self._measurements(primed) == self._measurements(lazy)

    def test_replication_scheme_skips_the_plan(self):
        # ABD's "encode" is a copy: no stacked pass to share, no plan.
        spec = WorkloadSpec(writers=4, writes_per_writer=1, readers=0, seed=3)
        result = run_register_workload(
            ABDRegister, replication_setup(f=1, data_size_bytes=16), spec
        )
        assert result.sim.encode_plan is None

    def test_wave_shares_one_stacked_encode_pass(self):
        spec = WorkloadSpec(writers=8, writes_per_writer=1, readers=0, seed=3)
        result = run_register_workload(AdaptiveRegister, SETUP, spec)
        plan = result.sim.encode_plan
        assert plan is not None
        assert len(plan) == 8  # one cached codeword per distinct value

    def test_single_write_skips_the_plan(self):
        spec = WorkloadSpec(writers=1, writes_per_writer=1, readers=0, seed=3)
        result = run_register_workload(AdaptiveRegister, SETUP, spec)
        assert result.sim.encode_plan is None

    def test_plan_disabled_on_request(self):
        spec = WorkloadSpec(writers=4, writes_per_writer=1, readers=0, seed=3)
        result = run_register_workload(
            AdaptiveRegister, SETUP, spec, prime_encodes=False
        )
        assert result.sim.encode_plan is None


class TestDecodeSharing:
    """The shared read-side decode pass must be measurement-invisible."""

    def _observables(self, result):
        return (
            result.peak_storage_bits,
            result.peak_bo_state_bits,
            result.final_bo_state_bits,
            result.run.steps,
            result.completed_writes,
            result.completed_reads,
            [(op.op_uid, op.kind, op.result, op.invoke_time, op.return_time)
             for op in result.trace.ops.values()],
        )

    @pytest.mark.parametrize(
        "register_cls, setup",
        [
            (AdaptiveRegister, SETUP),
            (CodedOnlyRegister, SETUP),
            (CASRegister, SETUP),
            (SafeCodedRegister, SETUP),
            (ABDRegister, replication_setup(f=1, data_size_bytes=16)),
        ],
    )
    def test_sharing_changes_no_observable(self, register_cls, setup):
        spec = WorkloadSpec(writers=3, writes_per_writer=1, readers=4,
                            reads_per_reader=2, seed=5)
        shared = run_register_workload(register_cls, setup, spec)
        unshared = run_register_workload(
            register_cls, setup, spec, share_decodes=False
        )
        assert self._observables(shared) == self._observables(unshared)

    def test_read_storm_hits_the_shared_pass(self):
        """Readers of one quiescent codeword share a single decode."""
        spec = WorkloadSpec(writers=1, writes_per_writer=1, readers=6,
                            reads_per_reader=2, seed=1)
        result = run_register_workload(AdaptiveRegister, SETUP, spec)
        cache = result.sim.decode_cache
        assert cache is not None
        assert cache.hits > 0

    def test_sharing_disabled_on_request(self):
        spec = WorkloadSpec(writers=1, writes_per_writer=1, readers=1)
        result = run_register_workload(
            AdaptiveRegister, SETUP, spec, share_decodes=False
        )
        assert result.sim.decode_cache is None
