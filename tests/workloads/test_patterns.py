"""Workload-pattern tests: staggered, read-heavy, churn.

Since the scenario-sweep engine, :class:`PatternRun` is measurement-
compatible with :class:`WorkloadResult` — the parity tests here pin the
shared surface (``spec``, peak breakdown, ``history``) that lets analysis
code consume either without ``isinstance`` branching.
"""

import pytest

from repro.registers import (
    AdaptiveRegister,
    CodedOnlyRegister,
    RegisterSetup,
    SafeCodedRegister,
)
from repro.spec import History, check_strong_regularity, check_strong_safety
from repro.storage import StorageMeter
from repro.workloads import (
    WorkloadSpec,
    churn,
    read_heavy,
    run_register_workload,
    staggered_writers,
)

SETUP = RegisterSetup(f=1, k=2, data_size_bytes=8)


class TestStaggered:
    def test_drains_completely(self):
        run = staggered_writers(AdaptiveRegister, SETUP, writers=3,
                                writes_each=2)
        assert run.drain().quiescent
        assert run.completed_writes == run.expected_writes == 6

    def test_gc_holds_under_sustained_load(self):
        run = staggered_writers(AdaptiveRegister, SETUP, writers=4,
                                writes_each=3)
        run.drain()
        meter = StorageMeter(run.sim)
        assert meter.bo_only_cost_bits() == (
            SETUP.n * SETUP.data_size_bits // SETUP.k
        )

    def test_regular_history(self):
        run = staggered_writers(CodedOnlyRegister, SETUP, writers=3,
                                writes_each=2, seed=5)
        run.drain()
        history = History.from_trace(run.sim.trace, SETUP.v0())
        assert check_strong_regularity(history).ok


class TestReadHeavy:
    @pytest.mark.parametrize("register_cls",
                             [AdaptiveRegister, SafeCodedRegister])
    def test_many_readers_drain(self, register_cls):
        run = read_heavy(register_cls, SETUP, readers=6, reads_each=3)
        assert run.drain().quiescent
        assert run.completed_reads == run.expected_reads == 18
        assert run.completed_writes == 1

    def test_safe_register_histories_stay_safe(self):
        run = read_heavy(SafeCodedRegister, SETUP, readers=4, reads_each=2,
                         writers=2, seed=3)
        run.drain()
        history = History.from_trace(run.sim.trace, SETUP.v0())
        assert check_strong_safety(history).ok


class TestChurn:
    def test_waves_complete(self):
        run = churn(AdaptiveRegister, SETUP, waves=3, clients_per_wave=2)
        assert run.drain().quiescent
        assert run.completed_writes == run.expected_writes == 6
        assert run.completed_reads == run.expected_reads == 6

    def test_nothing_runs_before_drain(self):
        """Waves are drain-time phases, so crash plans installed at drain
        can span wave boundaries; the builder must not run anything."""
        run = churn(AdaptiveRegister, SETUP, waves=2, clients_per_wave=2)
        assert run.completed_writes == 0
        assert len(run.phases) == 2
        run.drain()
        assert run.phases == []
        assert run.completed_writes == 4

    def test_later_waves_read_recent_values(self):
        """Each read-after-own-write in a drained wave returns a value from
        its own wave or a concurrent client — never an ancient one."""
        run = churn(AdaptiveRegister, SETUP, waves=3, clients_per_wave=1,
                    seed=7)
        run.drain()
        reads = sorted(
            (op for op in run.sim.trace.reads() if op.complete),
            key=lambda op: op.invoke_time,
        )
        writes_by_value = {
            op.written: op for op in run.sim.trace.writes()
        }
        for read in reads:
            writer = writes_by_value.get(read.result)
            assert writer is not None, "read returned an unwritten value"
            # The matching write must not belong to a later wave.
            assert writer.invoke_time <= read.return_time

    def test_churn_history_regular(self):
        run = churn(CodedOnlyRegister, SETUP, waves=2, clients_per_wave=2,
                    seed=9)
        run.drain()
        history = History.from_trace(run.sim.trace, SETUP.v0())
        assert check_strong_regularity(history).ok

    def test_timestamps_propagate_across_waves(self):
        run = churn(AdaptiveRegister, SETUP, waves=3, clients_per_wave=1)
        run.drain()
        top = max(bo.state.stored_ts for bo in run.sim.base_objects)
        assert top.num >= 3  # at least one ts per wave


class TestWorkloadResultParity:
    """PatternRun exposes the WorkloadResult measurement surface."""

    def test_spec_describes_schedule_shape(self):
        run = staggered_writers(AdaptiveRegister, SETUP, writers=3,
                                writes_each=2, seed=4)
        assert run.spec == WorkloadSpec(writers=3, writes_per_writer=2,
                                        readers=0, seed=4)
        run = read_heavy(AdaptiveRegister, SETUP, readers=5, reads_each=2,
                         writers=2, seed=4)
        assert run.spec == WorkloadSpec(writers=2, writes_per_writer=1,
                                        readers=5, reads_per_reader=2,
                                        seed=4)

    def test_drain_measures_peaks_like_the_runner(self):
        """A single-write-per-writer staggered run is the uniform wave;
        both paths must measure identical peaks."""
        uniform = run_register_workload(
            AdaptiveRegister, SETUP,
            WorkloadSpec(writers=3, writes_per_writer=1, readers=0, seed=2),
        )
        pattern = staggered_writers(AdaptiveRegister, SETUP, writers=3,
                                    writes_each=1, seed=2)
        pattern.drain()
        # Staggered values use different tags, so peaks agree as shapes,
        # not bytes: same sizes everywhere means identical bit counts.
        assert pattern.peak_bo_state_bits == uniform.peak_bo_state_bits
        assert pattern.peak_storage_bits == uniform.peak_storage_bits
        assert pattern.final_bo_state_bits == uniform.final_bo_state_bits

    def test_drain_is_idempotent(self):
        run = churn(AdaptiveRegister, SETUP, waves=2, clients_per_wave=1)
        first = run.drain()
        assert run.drain() is first

    def test_history_and_series_available(self):
        run = read_heavy(AdaptiveRegister, SETUP, readers=2, reads_each=1)
        run.drain(keep_series=True)
        assert check_strong_regularity(run.history).ok
        assert run.series, "keep_series must record the Definition 2 curve"
        assert run.peak_storage_bits == max(bits for _, bits in run.series)

    def test_pattern_sims_share_the_coding_fast_paths(self):
        """Builders install the runner's BatchEncodePlan/DecodeShareCache."""
        run = churn(AdaptiveRegister, SETUP, waves=2, clients_per_wave=2)
        assert run.sim.encode_plan is not None
        assert len(run.sim.encode_plan) == 4  # every wave's values, one pass
        assert run.sim.decode_cache is not None
        writes_only = staggered_writers(AdaptiveRegister, SETUP, writers=2)
        assert writes_only.sim.encode_plan is not None
        assert writes_only.sim.decode_cache is None
