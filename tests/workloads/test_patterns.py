"""Workload-pattern tests: staggered, read-heavy, churn."""

import pytest

from repro.registers import (
    AdaptiveRegister,
    CodedOnlyRegister,
    RegisterSetup,
    SafeCodedRegister,
)
from repro.spec import History, check_strong_regularity, check_strong_safety
from repro.storage import StorageMeter
from repro.workloads import churn, read_heavy, staggered_writers

SETUP = RegisterSetup(f=1, k=2, data_size_bytes=8)


class TestStaggered:
    def test_drains_completely(self):
        run = staggered_writers(AdaptiveRegister, SETUP, writers=3,
                                writes_each=2)
        assert run.drain().quiescent
        assert run.completed_writes == run.expected_writes == 6

    def test_gc_holds_under_sustained_load(self):
        run = staggered_writers(AdaptiveRegister, SETUP, writers=4,
                                writes_each=3)
        run.drain()
        meter = StorageMeter(run.sim)
        assert meter.bo_only_cost_bits() == (
            SETUP.n * SETUP.data_size_bits // SETUP.k
        )

    def test_regular_history(self):
        run = staggered_writers(CodedOnlyRegister, SETUP, writers=3,
                                writes_each=2, seed=5)
        run.drain()
        history = History.from_trace(run.sim.trace, SETUP.v0())
        assert check_strong_regularity(history).ok


class TestReadHeavy:
    @pytest.mark.parametrize("register_cls",
                             [AdaptiveRegister, SafeCodedRegister])
    def test_many_readers_drain(self, register_cls):
        run = read_heavy(register_cls, SETUP, readers=6, reads_each=3)
        assert run.drain().quiescent
        assert run.completed_reads == run.expected_reads == 18
        assert run.completed_writes == 1

    def test_safe_register_histories_stay_safe(self):
        run = read_heavy(SafeCodedRegister, SETUP, readers=4, reads_each=2,
                         writers=2, seed=3)
        run.drain()
        history = History.from_trace(run.sim.trace, SETUP.v0())
        assert check_strong_safety(history).ok


class TestChurn:
    def test_waves_complete(self):
        run = churn(AdaptiveRegister, SETUP, waves=3, clients_per_wave=2)
        assert run.completed_writes == run.expected_writes == 6
        assert run.completed_reads == run.expected_reads == 6

    def test_later_waves_read_recent_values(self):
        """Each read-after-own-write in a drained wave returns a value from
        its own wave or a concurrent client — never an ancient one."""
        run = churn(AdaptiveRegister, SETUP, waves=3, clients_per_wave=1,
                    seed=7)
        reads = sorted(
            (op for op in run.sim.trace.reads() if op.complete),
            key=lambda op: op.invoke_time,
        )
        writes_by_value = {
            op.written: op for op in run.sim.trace.writes()
        }
        for read in reads:
            writer = writes_by_value.get(read.result)
            assert writer is not None, "read returned an unwritten value"
            # The matching write must not belong to a later wave.
            assert writer.invoke_time <= read.return_time

    def test_churn_history_regular(self):
        run = churn(CodedOnlyRegister, SETUP, waves=2, clients_per_wave=2,
                    seed=9)
        history = History.from_trace(run.sim.trace, SETUP.v0())
        assert check_strong_regularity(history).ok

    def test_timestamps_propagate_across_waves(self):
        run = churn(AdaptiveRegister, SETUP, waves=3, clients_per_wave=1)
        top = max(bo.state.stored_ts for bo in run.sim.base_objects)
        assert top.num >= 3  # at least one ts per wave
