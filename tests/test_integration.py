"""Cross-module integration: the full matrix, end to end.

Each test wires registers + schedulers + failures + checkers + the meter
together the way a downstream user would, and asserts the paper-level
facts (semantics, storage formulas, liveness) hold simultaneously.
"""

import pytest

from repro import (
    ABDRegister,
    AdaptiveRegister,
    AtomicABDRegister,
    CodedOnlyRegister,
    FailurePlan,
    FairScheduler,
    RandomScheduler,
    RegisterSetup,
    SafeCodedRegister,
    WorkloadSpec,
    analyze_liveness,
    check_strong_regularity,
    check_strong_safety,
    check_weak_regularity,
    replication_setup,
    run_register_workload,
)
from repro.sim import at_time

CODED_REGISTERS = [AdaptiveRegister, CodedOnlyRegister, SafeCodedRegister]
CHECKERS = {
    AdaptiveRegister: check_strong_regularity,
    CodedOnlyRegister: check_strong_regularity,
    SafeCodedRegister: check_strong_safety,
    ABDRegister: check_strong_regularity,
    AtomicABDRegister: check_strong_regularity,
}


def setup_for(register_cls, f=2, k=2, data=16):
    if register_cls in (ABDRegister, AtomicABDRegister):
        return replication_setup(f=f, data_size_bytes=data)
    return RegisterSetup(f=f, k=k, data_size_bytes=data)


class TestFullMatrix:
    @pytest.mark.parametrize("register_cls", list(CHECKERS),
                             ids=lambda c: c.name)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_semantics_liveness_storage_together(self, register_cls, seed):
        setup = setup_for(register_cls)
        spec = WorkloadSpec(writers=3, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=seed)
        result = run_register_workload(
            register_cls, setup, spec, scheduler=RandomScheduler(seed * 11)
        )
        # 1. Everything drained.
        assert result.run.quiescent
        assert result.completed_writes == 6
        assert result.completed_reads == 4
        # 2. Claimed consistency level holds.
        assert CHECKERS[register_cls](result.history).ok
        # 3. Weak regularity is implied everywhere except the safe register.
        if register_cls is not SafeCodedRegister:
            assert check_weak_regularity(result.history).ok
        # 4. Liveness report is clean.
        liveness = analyze_liveness(result.sim, result.run.quiescent)
        assert liveness.fw_terminating
        # 5. Storage never exceeded the register's coarse envelope.
        d = setup.data_size_bits
        envelope = {
            "adaptive": 2 * setup.n * d,
            "coded-only": (spec.writers + 1) * setup.n * d // setup.k,
            "safe-coded": setup.n * d // setup.k,
            "abd": setup.n * d,
            "abd-atomic": setup.n * d,
        }[register_cls.name]
        assert result.peak_bo_state_bits <= envelope

    @pytest.mark.parametrize("register_cls", CODED_REGISTERS,
                             ids=lambda c: c.name)
    def test_with_crashes_everything_still_holds(self, register_cls):
        setup = setup_for(register_cls, f=2, k=2)
        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=4)

        def configure(sim, scheduler):
            plan = FailurePlan(scheduler)
            plan.crash_base_object(0, at_time(20))
            plan.crash_base_object(5, at_time(60))
            return plan

        result = run_register_workload(
            register_cls, setup, spec, scheduler=FairScheduler(),
            configure=configure,
        )
        assert result.run.quiescent
        assert result.completed_writes == 4
        assert result.completed_reads == 4
        assert CHECKERS[register_cls](result.history).ok


class TestScaleSweep:
    @pytest.mark.parametrize("f,k", [(1, 1), (1, 4), (3, 2), (4, 4)])
    def test_parameter_corners(self, f, k):
        setup = RegisterSetup(f=f, k=k, data_size_bytes=4 * k)
        spec = WorkloadSpec(writers=2, writes_per_writer=1, readers=1,
                            reads_per_reader=1, seed=6)
        result = run_register_workload(AdaptiveRegister, setup, spec)
        assert result.run.quiescent
        assert check_strong_regularity(result.history).ok
        assert result.final_bo_state_bits == setup.n * setup.data_size_bits // k

    def test_large_values(self):
        """Payloads are real bytes end to end: push a 4 KiB value through."""
        setup = RegisterSetup(f=1, k=2, data_size_bytes=4096)
        spec = WorkloadSpec(writers=1, writes_per_writer=1, readers=1,
                            reads_per_reader=1, seed=8)
        result = run_register_workload(AdaptiveRegister, setup, spec)
        assert result.run.quiescent
        [read] = result.trace.reads()
        written = {op.written for op in result.trace.writes()}
        assert read.result in written | {setup.v0()}
        assert len(read.result) == 4096

    def test_many_clients(self):
        setup = RegisterSetup(f=2, k=3, data_size_bytes=24)
        spec = WorkloadSpec(writers=10, writes_per_writer=1, readers=5,
                            reads_per_reader=1, seed=9)
        result = run_register_workload(CodedOnlyRegister, setup, spec)
        assert result.completed_writes == 10
        assert result.completed_reads == 5


class TestCrossRegisterFacts:
    def test_storage_hierarchy_at_rest(self):
        """safe < adaptive-quiescent < ABD for the same (f, D), k=f."""
        f, data = 3, 48
        coded = RegisterSetup(f=f, k=f, data_size_bytes=data)
        abd = replication_setup(f=f, data_size_bytes=data)
        spec = WorkloadSpec(writers=1, writes_per_writer=1, readers=0, seed=2)
        safe = run_register_workload(SafeCodedRegister, coded, spec)
        adaptive = run_register_workload(AdaptiveRegister, coded, spec)
        abd_run = run_register_workload(ABDRegister, abd, spec)
        assert safe.final_bo_state_bits == adaptive.final_bo_state_bits
        assert adaptive.final_bo_state_bits < abd_run.final_bo_state_bits

    def test_same_history_different_verdicts(self):
        """One adversarial schedule, every register: each passes its own
        bar, demonstrating the semantics are properties of algorithms,
        not of the checker."""
        for register_cls in CODED_REGISTERS:
            setup = setup_for(register_cls)
            spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=2,
                                reads_per_reader=2, seed=12)
            result = run_register_workload(
                register_cls, setup, spec, scheduler=RandomScheduler(99)
            )
            assert CHECKERS[register_cls](result.history).ok
