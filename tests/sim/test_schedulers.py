"""Scheduler policy tests: fairness, determinism, sequentiality."""

from repro.registers import AdaptiveRegister, RegisterSetup
from repro.sim import (
    ActionKind,
    FairScheduler,
    RandomScheduler,
    SequentialScheduler,
)
from repro.workloads import WorkloadSpec, run_register_workload
from tests.helpers import counter_sim


def loaded_sim(writers: int = 3, ops_each: int = 2):
    sim = counter_sim()
    for index in range(writers):
        client = sim.add_client(f"w{index}")
        for _ in range(ops_each):
            client.enqueue_write(bytes(8))
    return sim


class TestFairScheduler:
    def test_completes_all_operations(self):
        sim = loaded_sim()
        result = sim.run(FairScheduler())
        assert result.quiescent
        assert all(client.completed_ops == 2 for client in sim.clients.values())

    def test_every_client_gets_steps(self):
        sim = loaded_sim(writers=4, ops_each=1)
        sim.run(FairScheduler())
        steppers = {
            op.client for op in sim.trace.completed_ops()
        }
        assert steppers == {"w0", "w1", "w2", "w3"}

    def test_no_rmw_starves(self):
        """Every triggered RMW is eventually applied under fairness."""
        sim = loaded_sim(writers=2, ops_each=1)
        sim.run(FairScheduler())
        assert not sim.pending
        assert not sim.applied

    def test_rotates_categories(self):
        sim = loaded_sim(writers=2, ops_each=1)
        scheduler = FairScheduler()
        kinds = []
        for _ in range(12):
            action = scheduler.next_action(sim)
            if action is None:
                break
            kinds.append(action.kind)
            sim.execute(action)
        # Both memory actions and client steps must appear early on.
        assert ActionKind.STEP_CLIENT in kinds
        assert ActionKind.APPLY in kinds


class TestRandomScheduler:
    def test_same_seed_same_run(self):
        runs = []
        for _ in range(2):
            sim = loaded_sim()
            sim.run(RandomScheduler(seed=42))
            runs.append(
                [(op.op_uid, op.invoke_time, op.return_time)
                 for op in sim.trace.ops.values()]
            )
        assert runs[0] == runs[1]

    def test_different_seeds_usually_differ(self):
        timings = set()
        for seed in range(6):
            sim = loaded_sim()
            sim.run(RandomScheduler(seed=seed))
            timings.add(
                tuple(
                    (op.op_uid, op.return_time) for op in sim.trace.ops.values()
                )
            )
        assert len(timings) > 1

    def test_completes_all_operations(self):
        for seed in range(5):
            sim = loaded_sim()
            result = sim.run(RandomScheduler(seed=seed), max_steps=100_000)
            assert result.quiescent, f"seed {seed} did not quiesce"


class TestSequentialScheduler:
    def test_produces_sequential_history(self):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=8)
        result = run_register_workload(
            AdaptiveRegister,
            setup,
            WorkloadSpec(writers=3, writes_per_writer=2, readers=2,
                         reads_per_reader=1),
            scheduler=SequentialScheduler(),
        )
        ops = sorted(result.trace.ops.values(), key=lambda op: op.invoke_time)
        for earlier, later in zip(ops, ops[1:]):
            assert earlier.return_time < later.invoke_time, (
                "sequential scheduler produced overlapping operations"
            )

    def test_sequential_reads_see_latest_write(self):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=8)
        spec = WorkloadSpec(writers=2, writes_per_writer=1, readers=1,
                            reads_per_reader=1)
        result = run_register_workload(
            AdaptiveRegister, setup, spec, scheduler=SequentialScheduler()
        )
        ops = sorted(result.trace.ops.values(), key=lambda op: op.invoke_time)
        last_written = None
        for op in ops:
            if op.kind.value == "write":
                last_written = op.written
            else:
                assert op.result == (last_written or setup.v0())


class TestSchedulerReuse:
    """Schedulers hold per-simulation state; reuse must reset it."""

    def test_fair_scheduler_reusable_across_simulations(self):
        scheduler = FairScheduler()
        first = counter_sim()
        client = first.add_client("w0")
        client.enqueue_write(bytes(8))
        first.crash_client("w0")
        assert first.run(scheduler).quiescent
        # Same client name, fresh simulation: the crashed-w0 bookkeeping
        # from the first run must not starve the second run's w0.
        second = counter_sim()
        client = second.add_client("w0")
        client.enqueue_write(bytes(8))
        result = second.run(scheduler)
        assert result.quiescent
        assert client.completed_ops == 1

    def test_sequential_scheduler_reusable_across_simulations(self):
        scheduler = SequentialScheduler()
        first = counter_sim()
        client = first.add_client("w0")
        client.enqueue_write(bytes(8))
        assert first.run(scheduler).quiescent
        # Different client name, same client count.
        second = counter_sim()
        client = second.add_client("other")
        client.enqueue_write(bytes(8))
        result = second.run(scheduler)
        assert result.quiescent
        assert client.completed_ops == 1
