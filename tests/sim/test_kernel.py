"""Kernel lifecycle tests: trigger/apply/deliver, crashes, waits, runs."""

import pytest

from repro.errors import ParameterError, ProtocolError
from repro.sim import (
    Action,
    ActionKind,
    FairScheduler,
    RMWStatus,
    Simulation,
)
from repro.sim.trace import EventKind, OpKind
from tests.helpers import CounterProtocol, counter_sim, small_setup


def start_write(sim: Simulation, name: str = "w0"):
    """Enqueue one write and step the client once (triggers its RMWs)."""
    client = sim.add_client(name)
    client.enqueue_write(bytes(8))
    sim.step_client(client)
    return client


class TestTriggerApplyDeliver:
    def test_trigger_registers_pending(self):
        sim = counter_sim()
        start_write(sim)
        assert len(sim.pending) == sim.protocol.n
        assert all(
            rmw.handle.status is RMWStatus.PENDING for rmw in sim.pending.values()
        )

    def test_trigger_does_not_change_state(self):
        sim = counter_sim()
        start_write(sim)
        assert all(bo.state.value == 0 for bo in sim.base_objects)

    def test_apply_mutates_exactly_one_object(self):
        sim = counter_sim()
        start_write(sim)
        first = sim.appliable_rmws()[0]
        sim.apply_rmw(first.rmw_id)
        changed = [bo.bo_id for bo in sim.base_objects if bo.state.value == 1]
        assert changed == [first.bo_id]

    def test_apply_moves_to_applied_queue(self):
        sim = counter_sim()
        start_write(sim)
        first = sim.appliable_rmws()[0]
        sim.apply_rmw(first.rmw_id)
        assert first.rmw_id in sim.applied
        assert first.rmw_id not in sim.pending
        assert first.handle.status is RMWStatus.APPLIED

    def test_response_not_visible_until_delivery(self):
        sim = counter_sim()
        start_write(sim)
        first = sim.appliable_rmws()[0]
        sim.apply_rmw(first.rmw_id)
        assert first.handle.response is None
        sim.deliver_response(first.rmw_id)
        assert first.handle.response == 1
        assert first.handle.status is RMWStatus.DELIVERED

    def test_apply_unknown_rmw_raises(self):
        sim = counter_sim()
        with pytest.raises(ProtocolError):
            sim.apply_rmw(99)

    def test_deliver_unknown_rmw_raises(self):
        sim = counter_sim()
        with pytest.raises(ProtocolError):
            sim.deliver_response(99)

    def test_double_apply_raises(self):
        sim = counter_sim()
        start_write(sim)
        first = sim.appliable_rmws()[0]
        sim.apply_rmw(first.rmw_id)
        with pytest.raises(ProtocolError):
            sim.apply_rmw(first.rmw_id)

    def test_time_advances_per_action(self):
        sim = counter_sim()
        before = sim.time
        start_write(sim)
        assert sim.time == before + 1

    def test_apply_deliver_action(self):
        sim = counter_sim()
        start_write(sim)
        first = sim.appliable_rmws()[0]
        sim.execute(Action(ActionKind.APPLY_DELIVER, first.rmw_id))
        assert first.handle.status is RMWStatus.DELIVERED


class TestWaits:
    def test_client_blocks_until_quorum(self):
        sim = counter_sim(f=1, k=2)  # n=4, quorum=3
        client = start_write(sim)
        assert not client.runnable()
        rmws = sim.appliable_rmws()
        for rmw in rmws[:2]:
            sim.apply_rmw(rmw.rmw_id)
            sim.deliver_response(rmw.rmw_id)
        assert not client.runnable()
        sim.apply_rmw(rmws[2].rmw_id)
        sim.deliver_response(rmws[2].rmw_id)
        assert client.runnable()

    def test_op_completes_after_wait_satisfied(self):
        sim = counter_sim()
        client = start_write(sim)
        for rmw in sim.appliable_rmws():
            sim.apply_rmw(rmw.rmw_id)
        for rmw_id in list(sim.applied):
            sim.deliver_response(rmw_id)
        sim.step_client(client)
        assert client.current is None
        assert client.completed_ops == 1
        [op] = sim.trace.completed_ops()
        assert op.result == "ok"

    def test_unsatisfiable_wait_raises_when_strict(self):
        sim = counter_sim(f=1, k=2)  # n=4, quorum=3
        client = start_write(sim)
        sim.crash_base_object(0)
        sim.crash_base_object(1)  # only 2 objects left < quorum
        with pytest.raises(ProtocolError):
            sim.step_client(client)

    def test_unsatisfiable_wait_tolerated_when_lenient(self):
        protocol = CounterProtocol(small_setup(f=1, k=2))
        sim = Simulation(protocol, strict_waits=False)
        client = start_write(sim)
        sim.crash_base_object(0)
        sim.crash_base_object(1)
        sim.step_client(client)  # no-op, no exception
        assert client.current is not None


class TestCrashes:
    def test_bo_crash_drops_pending(self):
        sim = counter_sim()
        start_write(sim)
        victim = sim.appliable_rmws()[0]
        sim.crash_base_object(victim.bo_id)
        assert victim.handle.status is RMWStatus.DROPPED
        assert victim.rmw_id not in sim.pending

    def test_bo_crash_drops_undelivered_response(self):
        sim = counter_sim()
        start_write(sim)
        victim = sim.appliable_rmws()[0]
        sim.apply_rmw(victim.rmw_id)
        sim.crash_base_object(victim.bo_id)
        assert victim.handle.status is RMWStatus.DROPPED
        assert victim.rmw_id not in sim.applied

    def test_trigger_on_crashed_bo_is_dropped(self):
        sim = counter_sim()
        sim.crash_base_object(0)
        client = start_write(sim)
        dropped = [
            h for h in client.current.handles if h.status is RMWStatus.DROPPED
        ]
        assert [h.bo_id for h in dropped] == [0]

    def test_crashed_client_not_runnable(self):
        sim = counter_sim()
        client = start_write(sim)
        sim.crash_client("w0")
        assert not client.runnable()
        assert client not in sim.runnable_clients()

    def test_crashed_clients_rmws_still_apply(self):
        """The paper's model: triggered RMWs survive client crashes."""
        sim = counter_sim()
        start_write(sim)
        sim.crash_client("w0")
        rmw = sim.appliable_rmws()[0]
        sim.apply_rmw(rmw.rmw_id)
        assert sim.base_objects[rmw.bo_id].state.value == 1

    def test_response_to_crashed_client_dropped(self):
        sim = counter_sim()
        start_write(sim)
        rmw = sim.appliable_rmws()[0]
        sim.apply_rmw(rmw.rmw_id)
        sim.crash_client("w0")
        assert not sim.deliverable_responses()
        sim.deliver_response(rmw.rmw_id)  # direct call: dropped, not delivered
        assert rmw.handle.status is RMWStatus.DROPPED

    def test_stepping_crashed_client_raises(self):
        sim = counter_sim()
        client = start_write(sim)
        sim.crash_client("w0")
        with pytest.raises(ProtocolError):
            sim.step_client(client)

    def test_crash_events_traced(self):
        sim = counter_sim()
        sim.add_client("w0")
        sim.crash_base_object(2)
        sim.crash_client("w0")
        assert len(sim.trace.events_of_kind(EventKind.CRASH_BO)) == 1
        assert len(sim.trace.events_of_kind(EventKind.CRASH_CLIENT)) == 1


class TestEnabledActions:
    def test_initially_quiescent(self):
        sim = counter_sim()
        assert sim.quiescent()

    def test_enqueued_op_enables_step(self):
        sim = counter_sim()
        client = sim.add_client("w0")
        client.enqueue_write(bytes(8))
        kinds = {action.kind for action in sim.enabled_actions()}
        assert kinds == {ActionKind.STEP_CLIENT}

    def test_pending_rmws_enable_apply(self):
        sim = counter_sim()
        start_write(sim)
        kinds = {action.kind for action in sim.enabled_actions()}
        assert ActionKind.APPLY in kinds

    def test_duplicate_client_name_rejected(self):
        sim = counter_sim()
        sim.add_client("x")
        with pytest.raises(ParameterError):
            sim.add_client("x")

    def test_trigger_on_unknown_bo_rejected(self):
        sim = counter_sim()
        client = sim.add_client("w0")
        client.enqueue_write(bytes(8))
        # Build a context manually to bypass protocol code.
        sim.step_client(client)
        ctx = client.current
        with pytest.raises(ProtocolError):
            ctx.trigger(999, lambda s, a: (s, None), None)


class TestRun:
    def test_run_to_quiescence(self):
        sim = counter_sim()
        client = sim.add_client("w0")
        client.enqueue_write(bytes(8))
        client.enqueue_write(bytes(8))
        result = sim.run(FairScheduler())
        assert result.quiescent
        assert client.completed_ops == 2

    def test_counter_reads_see_writes(self):
        sim = counter_sim()
        writer = sim.add_client("w0")
        writer.enqueue_write(bytes(8))
        sim.run(FairScheduler())
        reader = sim.add_client("r0")
        reader.enqueue_read()
        sim.run(FairScheduler())
        [read_op] = [op for op in sim.trace.ops.values() if op.kind is OpKind.READ]
        assert read_op.result == 1

    def test_until_predicate_stops_run(self):
        sim = counter_sim()
        client = sim.add_client("w0")
        client.enqueue_write(bytes(8))
        result = sim.run(FairScheduler(), until=lambda s: s.time >= 3)
        assert result.stopped_by_predicate
        assert sim.time >= 3

    def test_max_steps_exhaustion_reported(self):
        sim = counter_sim()
        client = sim.add_client("w0")
        for _ in range(50):
            client.enqueue_write(bytes(8))
        result = sim.run(FairScheduler(), max_steps=5)
        assert result.exhausted
        assert result.steps == 5

    def test_on_action_called_every_step(self):
        sim = counter_sim()
        client = sim.add_client("w0")
        client.enqueue_write(bytes(8))
        calls = []
        result = sim.run(FairScheduler(), on_action=lambda s, a: calls.append(a))
        assert len(calls) == result.steps
