"""Failure-injection tests: registers must survive up to f crashes."""

import pytest

from repro.registers import (
    ABDRegister,
    AdaptiveRegister,
    CodedOnlyRegister,
    RegisterSetup,
    SafeCodedRegister,
    replication_setup,
)
from repro.errors import ParameterError
from repro.sim import (
    FailurePlan,
    FairScheduler,
    after_ops_complete,
    at_time,
    seeded_crash_schedule,
)
from repro.spec import check_strong_regularity, check_strong_safety
from repro.workloads import WorkloadSpec, run_register_workload


def with_bo_crashes(crash_ids, when_factory=at_time, when_arg=5):
    """Configure hook: crash the given base objects mid-run."""

    def configure(sim, scheduler):
        plan = FailurePlan(scheduler)
        for offset, bo_id in enumerate(crash_ids):
            plan.crash_base_object(bo_id, when_factory(when_arg + offset))
        return plan

    return configure


class TestRegistersSurviveFCrashes:
    @pytest.mark.parametrize(
        "register_cls", [AdaptiveRegister, CodedOnlyRegister, SafeCodedRegister]
    )
    def test_coded_registers_with_f_crashes(self, register_cls):
        setup = RegisterSetup(f=2, k=2, data_size_bytes=16)
        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=1)
        result = run_register_workload(
            register_cls,
            setup,
            spec,
            scheduler=FairScheduler(),
            configure=with_bo_crashes([0, 3]),
        )
        assert result.run.quiescent
        assert result.completed_writes == 4
        assert result.completed_reads == 4

    def test_abd_with_f_crashes(self):
        setup = replication_setup(f=2, data_size_bytes=16)
        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=1)
        result = run_register_workload(
            ABDRegister,
            setup,
            spec,
            scheduler=FairScheduler(),
            configure=with_bo_crashes([1, 4]),
        )
        assert result.run.quiescent
        assert result.completed_reads == 4

    def test_consistency_preserved_under_crashes(self):
        setup = RegisterSetup(f=2, k=2, data_size_bytes=16)
        spec = WorkloadSpec(writers=3, writes_per_writer=1, readers=2,
                            reads_per_reader=2, seed=3)
        result = run_register_workload(
            AdaptiveRegister,
            setup,
            spec,
            scheduler=FairScheduler(),
            configure=with_bo_crashes([2, 5]),
        )
        assert check_strong_regularity(result.history).ok

    def test_safe_register_safety_under_crashes(self):
        setup = RegisterSetup(f=1, k=3, data_size_bytes=15)
        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=2,
                            reads_per_reader=2, seed=9)
        result = run_register_workload(
            SafeCodedRegister,
            setup,
            spec,
            scheduler=FairScheduler(),
            configure=with_bo_crashes([4]),
        )
        assert check_strong_safety(result.history).ok

    def test_crash_after_ops_complete_predicate(self):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=8)
        spec = WorkloadSpec(writers=2, writes_per_writer=2, readers=1,
                            reads_per_reader=1)
        result = run_register_workload(
            AdaptiveRegister,
            setup,
            spec,
            scheduler=FairScheduler(),
            configure=with_bo_crashes([0], when_factory=after_ops_complete,
                                      when_arg=2),
        )
        assert result.run.quiescent
        assert result.sim.crashed_base_objects() == 1


class TestClientCrashes:
    def test_writer_crash_mid_write_does_not_block_others(self):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=8)
        spec = WorkloadSpec(writers=3, writes_per_writer=1, readers=1,
                            reads_per_reader=1, seed=2)

        def configure(sim, scheduler):
            return FailurePlan(scheduler).crash_client("w0", at_time(10))

        result = run_register_workload(
            AdaptiveRegister, setup, spec, scheduler=FairScheduler(),
            configure=configure,
        )
        assert result.run.quiescent
        # w1 and w2 completed; w0 may or may not have.
        survivors = [
            op for op in result.trace.writes()
            if op.client in ("w1", "w2")
        ]
        assert all(op.complete for op in survivors)
        assert result.completed_reads == 1

    def test_consistency_with_crashed_writer(self):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=8)
        spec = WorkloadSpec(writers=3, writes_per_writer=1, readers=2,
                            reads_per_reader=2, seed=7)

        def configure(sim, scheduler):
            return FailurePlan(scheduler).crash_client("w1", at_time(25))

        result = run_register_workload(
            AdaptiveRegister, setup, spec, scheduler=FairScheduler(),
            configure=configure,
        )
        assert check_strong_regularity(result.history).ok


class TestSeededCrashSchedule:
    def test_deterministic_and_distinct(self):
        first = seeded_crash_schedule(
            7, bo_count=6, bo_crashes=3,
            client_names=("w0", "w1", "w2"), client_crashes=2,
        )
        assert first == seeded_crash_schedule(
            7, bo_count=6, bo_crashes=3,
            client_names=("w0", "w1", "w2"), client_crashes=2,
        )
        assert first != seeded_crash_schedule(
            8, bo_count=6, bo_crashes=3,
            client_names=("w0", "w1", "w2"), client_crashes=2,
        )
        bo_ids = [bo for bo, _ in first.bo_victims]
        names = [name for name, _ in first.client_victims]
        assert len(set(bo_ids)) == 3 and set(bo_ids) <= set(range(6))
        assert len(set(names)) == 2 and set(names) <= {"w0", "w1", "w2"}
        times = [t for _, t in first.bo_victims + first.client_victims]
        assert len(set(times)) == len(times)  # no two crashes share a time
        assert len(first) == 5

    def test_install_realises_the_schedule(self):
        schedule = seeded_crash_schedule(3, bo_count=4, bo_crashes=2)
        plan = schedule.install(FairScheduler())
        assert [c.bo_id for c in plan.bo_crashes] == \
            [bo for bo, _ in schedule.bo_victims]
        assert plan.fired_bo_crashes == 0  # nothing fired yet

    @pytest.mark.parametrize("kwargs", [
        dict(bo_count=2, bo_crashes=3),
        dict(bo_count=4, bo_crashes=-1),
        dict(bo_count=4, bo_crashes=0, client_names=("w0",),
             client_crashes=2),
        dict(bo_count=4, bo_crashes=1, spacing=0),
        dict(bo_count=4, bo_crashes=1, start=-1),
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            seeded_crash_schedule(0, **kwargs)


class TestBeyondF:
    def test_more_than_f_crashes_block_liveness(self):
        """With f+1 crashes a quorum never forms; the write blocks forever.

        The run still quiesces (the blocked client is not runnable and
        nothing else is enabled) but the operation never returns — exactly
        the asynchronous model's behaviour when the failure bound is broken.
        """
        setup = RegisterSetup(f=1, k=2, data_size_bytes=8)
        spec = WorkloadSpec(writers=1, writes_per_writer=1, readers=0)

        def configure(sim, scheduler):
            plan = FailurePlan(scheduler)
            plan.crash_base_object(0, at_time(0))
            plan.crash_base_object(1, at_time(1))
            return plan

        result = run_register_workload(
            AdaptiveRegister, setup, spec, scheduler=FairScheduler(),
            configure=configure, max_steps=5_000,
        )
        assert result.run.quiescent
        assert result.completed_writes == 0
        [write_op] = result.trace.writes()
        assert not write_op.complete
