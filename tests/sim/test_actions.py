"""Unit tests for action/wait primitives."""

from repro.sim.actions import (
    Action,
    ActionKind,
    Pause,
    RMWHandle,
    RMWStatus,
    WaitResponses,
)


def handle(status=RMWStatus.PENDING, rmw_id=0):
    h = RMWHandle(rmw_id=rmw_id, bo_id=0, op_uid=0, label="t")
    h.status = status
    return h


class TestWaitResponses:
    def test_satisfied_counts_delivered_only(self):
        handles = [
            handle(RMWStatus.DELIVERED),
            handle(RMWStatus.APPLIED),
            handle(RMWStatus.PENDING),
        ]
        assert WaitResponses(handles, 1).satisfied()
        assert not WaitResponses(handles, 2).satisfied()

    def test_zero_need_always_satisfied(self):
        assert WaitResponses([], 0).satisfied()

    def test_unsatisfiable_when_drops_exceed_slack(self):
        handles = [
            handle(RMWStatus.DROPPED),
            handle(RMWStatus.DROPPED),
            handle(RMWStatus.PENDING),
        ]
        assert WaitResponses(handles, 2).unsatisfiable()
        assert not WaitResponses(handles, 1).unsatisfiable()

    def test_applied_counts_as_potentially_respondable(self):
        handles = [handle(RMWStatus.APPLIED), handle(RMWStatus.DROPPED)]
        wait = WaitResponses(handles, 1)
        assert not wait.unsatisfiable()
        assert not wait.satisfied()

    def test_responded_property(self):
        assert handle(RMWStatus.DELIVERED).responded
        for status in (RMWStatus.PENDING, RMWStatus.APPLIED, RMWStatus.DROPPED):
            assert not handle(status).responded


class TestPause:
    def test_always_satisfied(self):
        pause = Pause()
        assert pause.satisfied()
        assert not pause.unsatisfiable()


class TestAction:
    def test_equality_and_hash(self):
        a = Action(ActionKind.APPLY, 3)
        b = Action(ActionKind.APPLY, 3)
        assert a == b
        assert hash(a) == hash(b)
        assert Action(ActionKind.DELIVER, 3) != a

    def test_kinds_are_distinct(self):
        assert len({kind.value for kind in ActionKind}) == 4
