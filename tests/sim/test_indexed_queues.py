"""Indexed kernel queues vs the definitional (filter + sort) queries.

The kernel's O(1) accessors (`first_appliable`, `first_deliverable`,
per-client variants, counts, nth-sampling arrays) must agree with the
reference definitions — "pending RMWs on live objects, oldest first" and
"applied RMWs of live clients, oldest first" — at every step of arbitrary
schedules, including crashes.
"""

import random

import pytest

from repro.registers import RegisterSetup, SafeCodedRegister
from repro.sim import RandomScheduler, Simulation
from repro.workloads import WorkloadSpec, make_value


def reference_appliable(sim):
    return sorted(
        (r for r in sim.pending.values()
         if not sim.base_objects[r.bo_id].crashed),
        key=lambda r: r.rmw_id,
    )


def reference_deliverable(sim):
    return sorted(
        (r for r in sim.applied.values()
         if not sim.clients[r.client_name].crashed),
        key=lambda r: r.rmw_id,
    )


def assert_queues_match_reference(sim):
    appliable = reference_appliable(sim)
    deliverable = reference_deliverable(sim)
    assert sim.appliable_rmws() == appliable
    assert sim.deliverable_responses() == deliverable
    assert sim.appliable_count() == len(appliable)
    assert sim.deliverable_count() == len(deliverable)
    first = sim.first_appliable()
    assert first is (appliable[0] if appliable else None)
    first_del = sim.first_deliverable()
    assert first_del is (deliverable[0] if deliverable else None)
    # The sampling arrays cover exactly the same sets (order-free).
    assert {sim.appliable_nth(i).rmw_id for i in range(len(appliable))} == \
        {r.rmw_id for r in appliable}
    assert {sim.deliverable_nth(i).rmw_id for i in range(len(deliverable))} \
        == {r.rmw_id for r in deliverable}
    for name, client in sim.clients.items():
        own_appliable = [r for r in appliable if r.client_name == name]
        assert sim.first_appliable_for(name) is (
            own_appliable[0] if own_appliable else None
        )
        own_deliverable = [r for r in deliverable if r.client_name == name]
        assert sim.first_deliverable_for(name) is (
            own_deliverable[0] if own_deliverable else None
        )


def loaded_sim():
    setup = RegisterSetup(f=1, k=2, data_size_bytes=16)
    sim = Simulation(SafeCodedRegister(setup))
    values = WorkloadSpec(writers=3, writes_per_writer=1).write_values(setup)
    for name, writes in values.items():
        client = sim.add_client(name)
        for value in writes:
            client.enqueue_write(value)
    reader = sim.add_client("r0")
    reader.enqueue_read()
    return sim


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_indices_match_reference_under_random_schedule_with_crashes(seed):
    sim = loaded_sim()
    scheduler = RandomScheduler(seed=seed)
    rng = random.Random(1000 + seed)
    crashed_bos = 0
    for _ in range(300):
        action = scheduler.next_action(sim)
        if action is None:
            break
        sim.execute(action)
        roll = rng.random()
        if roll < 0.03 and crashed_bos < sim.protocol.setup.f:
            sim.crash_base_object(rng.randrange(len(sim.base_objects)))
            crashed_bos = sim.crashed_base_objects()
        elif roll < 0.05:
            name = rng.choice(list(sim.clients))
            if not sim.clients[name].crashed:
                sim.crash_client(name)
        assert_queues_match_reference(sim)
    assert_queues_match_reference(sim)


def test_pending_only_ever_holds_live_objects():
    """The invariant `appliable_rmws` rides on: crashes purge pending."""
    sim = loaded_sim()
    for client in list(sim.clients.values()):
        if client.queue:
            sim.step_client(client)
    assert sim.pending
    sim.crash_base_object(0)
    assert all(rmw.bo_id != 0 for rmw in sim.pending.values())
    # Ids are monotone, so dict order is oldest-first without sorting.
    ids = [rmw.rmw_id for rmw in sim.pending.values()]
    assert ids == sorted(ids)


def test_first_deliverable_skips_crashed_clients_lazily():
    setup = RegisterSetup(f=1, k=2, data_size_bytes=16)
    sim = Simulation(SafeCodedRegister(setup))
    for name in ("w0", "w1"):
        client = sim.add_client(name)
        client.enqueue_write(make_value(setup, name))
        sim.step_client(client)
    first = sim.first_appliable_for("w0")
    second = sim.first_appliable_for("w1")
    assert first.rmw_id < second.rmw_id
    sim.apply_rmw(first.rmw_id)
    sim.apply_rmw(second.rmw_id)
    sim.crash_client(first.client_name)
    assert sim.first_deliverable() is sim.applied[second.rmw_id]
    assert sim.first_deliverable_for(first.client_name) is None
    assert_queues_match_reference(sim)


def test_deliverable_count_tracks_apply_deliver_crash():
    sim = loaded_sim()
    for client in list(sim.clients.values()):
        if client.queue:
            sim.step_client(client)
    assert sim.deliverable_count() == 0
    rmws = sim.appliable_rmws()[:3]
    for rmw in rmws:
        sim.apply_rmw(rmw.rmw_id)
    assert sim.deliverable_count() == 3
    sim.deliver_response(rmws[0].rmw_id)
    assert sim.deliverable_count() == 2
    sim.crash_client(rmws[1].client_name)
    assert sim.deliverable_count() == len(reference_deliverable(sim))
