"""Trace-recording tests."""

from repro.sim.trace import EventKind, OpKind, OpRecord, Trace


class TestOpRecord:
    def test_complete_flag(self):
        record = OpRecord(0, "c", OpKind.WRITE, invoke_time=1)
        assert not record.complete
        record.return_time = 5
        assert record.complete

    def test_precedes(self):
        first = OpRecord(0, "a", OpKind.WRITE, invoke_time=0, return_time=3)
        second = OpRecord(1, "b", OpKind.READ, invoke_time=4, return_time=8)
        assert first.precedes(second)
        assert not second.precedes(first)

    def test_incomplete_never_precedes(self):
        first = OpRecord(0, "a", OpKind.WRITE, invoke_time=0)
        second = OpRecord(1, "b", OpKind.READ, invoke_time=9, return_time=10)
        assert not first.precedes(second)


class TestTrace:
    def test_invoke_return_cycle(self):
        trace = Trace()
        record = trace.record_invoke(1, 0, "c1", OpKind.WRITE, b"v")
        assert record.invoke_time == 1
        assert not record.complete
        trace.record_return(7, 0, "ok")
        assert record.return_time == 7
        assert record.result == "ok"
        assert trace.completed_ops() == [record]

    def test_writes_and_reads_split(self):
        trace = Trace()
        trace.record_invoke(1, 0, "c1", OpKind.WRITE, b"v")
        trace.record_invoke(2, 1, "c2", OpKind.READ, None)
        assert len(trace.writes()) == 1
        assert len(trace.reads()) == 1

    def test_events_of_kind(self):
        trace = Trace()
        trace.event(1, EventKind.TRIGGER, rmw=0)
        trace.event(2, EventKind.APPLY, rmw=0)
        trace.event(3, EventKind.APPLY, rmw=1)
        assert len(trace.events_of_kind(EventKind.APPLY)) == 2
        assert trace.rmw_count() == 2

    def test_keep_events_false_drops_events_not_ops(self):
        trace = Trace(keep_events=False)
        trace.event(1, EventKind.TRIGGER, rmw=0)
        record = trace.record_invoke(2, 0, "c1", OpKind.WRITE, b"v")
        assert trace.events == []
        assert trace.ops[0] is record

    def test_event_details_preserved(self):
        trace = Trace()
        trace.event(4, EventKind.DELIVER, rmw=9, client="c3")
        [event] = trace.events
        assert event.time == 4
        assert event.details == {"rmw": 9, "client": "c3"}
