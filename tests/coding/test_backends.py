"""Cross-backend contract tests for the GF(2^8) kernel registry.

Every registered backend must produce byte-identical ``gf_matmul``
results — the backends differ only in how fast they multiply. The suite
runs the full shape zoo (1-row, non-tile-aligned, wider than a tile,
degenerate coefficients) against the ``numpy-table`` reference and
round-trips every coding scheme under every backend, so installing an
optional kernel (numba) extends coverage automatically.
"""

import os

import numpy as np
import pytest

from repro.coding import (
    PaddedScheme,
    RatelessXorCode,
    ReedSolomonCode,
    ReplicationCode,
    XorParityCode,
    available_backends,
    get_backend,
    use_backend,
)
from repro.coding.backends import DEFAULT_BACKEND, ENV_VAR, reset_backend
from repro.coding.gf256 import TILE_COLUMNS, gf_matmul, gf_mul
from repro.errors import ParameterError


@pytest.fixture(autouse=True)
def restore_backend():
    """Leave the process on whatever backend it entered the test with."""
    original = get_backend().name
    yield
    use_backend(original)


# ------------------------------------------------------------- registry


class TestRegistry:
    def test_both_numpy_backends_always_registered(self):
        names = available_backends()
        assert "numpy-table" in names
        assert "numpy-nibble" in names
        assert names == tuple(sorted(names))

    def test_default_backend_is_nibble(self):
        assert DEFAULT_BACKEND == "numpy-nibble"

    def test_use_backend_switches_and_returns(self):
        backend = use_backend("numpy-table")
        assert backend.name == "numpy-table"
        assert get_backend() is backend
        assert use_backend("numpy-nibble").name == "numpy-nibble"

    def test_unknown_backend_lists_the_alternatives(self):
        with pytest.raises(ParameterError, match="numpy-nibble"):
            use_backend("simd-of-the-gaps")

    def test_env_override_resolved_lazily(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy-table")
        reset_backend()
        assert get_backend().name == "numpy-table"

    def test_bad_env_value_raises_on_first_use(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "not-a-kernel")
        reset_backend()
        with pytest.raises(ParameterError, match="not-a-kernel"):
            get_backend()
        # use_backend() recovers the process from the bad env value.
        assert use_backend("numpy-nibble").name == "numpy-nibble"

    def test_backend_descriptions_are_nonempty(self):
        for name in available_backends():
            assert use_backend(name).description


# ------------------------------------------------ gf_matmul byte parity


def reference_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """O(rows * inner * width) scalar reference, independent of every
    backend's vector tricks."""
    rows, inner = a.shape
    width = b.shape[1]
    out = np.zeros((rows, width), dtype=np.uint8)
    for r in range(rows):
        for i in range(inner):
            coefficient = int(a[r, i])
            if coefficient == 0:
                continue
            out[r] ^= np.frombuffer(
                bytes(gf_mul(coefficient, int(x)) for x in b[i]),
                dtype=np.uint8,
            )
    return out


def random_operands(rng, rows, inner, width):
    a = rng.integers(0, 256, size=(rows, inner), dtype=np.uint8)
    b = rng.integers(0, 256, size=(inner, width), dtype=np.uint8)
    return a, b


SHAPES = (
    (1, 1, 1),          # minimal
    (1, 16, 1000),      # single row (dedicated kernel path)
    (3, 5, 97),         # nothing aligned to anything
    (16, 16, 4096),     # exactly one 16-row group
    (17, 16, 1000),     # one full group + a 1-row tail group
    (32, 16, 4096),     # RS(16, 32) encode shape
    (8, 4, TILE_COLUMNS + 5),  # wider than one tile
)


class TestCrossBackendParity:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_all_backends_match_scalar_reference(self, shape):
        rng = np.random.default_rng(sum(shape))
        a, b = random_operands(rng, *shape)
        expected = reference_matmul(a, b)
        for name in available_backends():
            use_backend(name)
            assert gf_matmul(a, b).tobytes() == expected.tobytes(), name

    @pytest.mark.parametrize("tile", (1, 7, 97, 4096))
    def test_tile_size_never_changes_bytes(self, tile):
        rng = np.random.default_rng(tile)
        a, b = random_operands(rng, 20, 8, 1000)
        expected = reference_matmul(a, b)
        for name in available_backends():
            use_backend(name)
            assert gf_matmul(a, b, tile_columns=tile).tobytes() == \
                expected.tobytes(), name

    def test_degenerate_coefficients(self):
        """All-zero rows, identity rows, and repeated rows hit every
        kernel's skip/copy fast paths."""
        rng = np.random.default_rng(5)
        b = rng.integers(0, 256, size=(4, 333), dtype=np.uint8)
        a = np.zeros((6, 4), dtype=np.uint8)
        a[1] = (1, 0, 0, 0)          # pure copy
        a[2] = (1, 1, 1, 1)          # pure XOR
        a[3] = (0, 7, 0, 0)          # single multiply
        a[4] = a[3]                  # repeated row
        expected = reference_matmul(a, b)
        for name in available_backends():
            use_backend(name)
            assert gf_matmul(a, b).tobytes() == expected.tobytes(), name

    def test_empty_operands_short_circuit(self):
        for name in available_backends():
            use_backend(name)
            assert gf_matmul(
                np.zeros((3, 4), dtype=np.uint8),
                np.zeros((4, 0), dtype=np.uint8),
            ).shape == (3, 0)
            assert gf_matmul(
                np.zeros((0, 4), dtype=np.uint8),
                np.zeros((4, 9), dtype=np.uint8),
            ).shape == (0, 9)

    def test_readonly_and_noncontiguous_operands(self):
        rng = np.random.default_rng(11)
        a, b = random_operands(rng, 8, 8, 600)
        a.setflags(write=False)
        b_strided = np.ascontiguousarray(b.T).T  # non-C-contiguous view
        expected = reference_matmul(a, b)
        for name in available_backends():
            use_backend(name)
            assert gf_matmul(a, b_strided).tobytes() == \
                expected.tobytes(), name

    def test_validation_happens_before_dispatch(self):
        """The wrapper owns validation; backends assume clean operands,
        so the same errors fire whichever kernel is active."""
        good = np.zeros((2, 2), dtype=np.uint8)
        for name in available_backends():
            use_backend(name)
            with pytest.raises(ParameterError, match="uint8"):
                gf_matmul(good.astype(np.uint16), good)
            with pytest.raises(ParameterError, match="2-D"):
                gf_matmul(good, np.zeros(4, dtype=np.uint8))
            with pytest.raises(ParameterError, match="shape"):
                gf_matmul(good, np.zeros((3, 5), dtype=np.uint8))
            with pytest.raises(ParameterError, match="tile_columns"):
                gf_matmul(good, good, tile_columns=0)


# ------------------------------------------------- scheme round-trips


SIZE = 64


def five_schemes():
    """(scheme, encode indices, decode subset) for all five families.

    Rateless has no ``n`` and decodes from whatever masks happen to be
    independent, so it keeps every block; the MDS schemes decode from
    the last ``min_blocks_to_decode`` indices (all-parity for RS).
    """
    rs = ReedSolomonCode(k=4, n=8, data_size_bytes=SIZE)
    xor = XorParityCode(k=4, data_size_bytes=SIZE)
    rateless = RatelessXorCode(k=4, data_size_bytes=SIZE, seed=1)
    replication = ReplicationCode(data_size_bytes=SIZE, n=3)
    padded = PaddedScheme(
        SIZE - 3, k=4,
        inner_factory=lambda padded_bytes: ReedSolomonCode(
            k=4, n=8, data_size_bytes=padded_bytes
        ),
    )
    return (
        (rs, range(8), (4, 5, 6, 7)),
        (xor, range(5), (1, 2, 3, 4)),
        (rateless, range(8), tuple(range(8))),
        (replication, range(3), (2,)),
        (padded, range(8), (4, 5, 6, 7)),
    )


class TestSchemesUnderEveryBackend:
    def test_round_trip_under_each_backend(self):
        for name in available_backends():
            use_backend(name)
            for scheme, indices, subset in five_schemes():
                value = os.urandom(scheme.data_size_bytes)
                blocks = scheme.encode_many(value, indices)
                decoded = scheme.decode({i: blocks[i] for i in subset})
                assert decoded == value, (name, scheme.name)

    def test_codewords_identical_across_backends(self):
        """The backend is invisible in the bytes: every scheme emits the
        same codeword whichever kernel computed it."""
        values = {scheme.name: os.urandom(scheme.data_size_bytes)
                  for scheme, _, _ in five_schemes()}
        codewords = {}
        for name in available_backends():
            use_backend(name)
            for scheme, indices, _ in five_schemes():
                blocks = scheme.encode_many(values[scheme.name], indices)
                codewords.setdefault(scheme.name, []).append(blocks)
        for scheme_name, per_backend in codewords.items():
            first = per_backend[0]
            for other in per_backend[1:]:
                assert other == first, scheme_name

    def test_batch_equals_scalar_shims_under_each_backend(self):
        rs = ReedSolomonCode(k=4, n=8, data_size_bytes=SIZE)
        values = [os.urandom(SIZE) for _ in range(3)]
        for name in available_backends():
            use_backend(name)
            batch = rs.encode_batch(values, range(rs.n))
            for value, codeword in zip(values, batch):
                assert rs.encode_many(value, range(rs.n)) == codeword
