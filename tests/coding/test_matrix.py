"""Tests for dense GF(2^8) linear algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding import matrix as gfmat
from repro.coding.gf256 import gf_mul
from repro.errors import ParameterError


def random_matrix(draw, rows, cols):
    element = st.integers(min_value=0, max_value=255)
    return draw(
        st.lists(
            st.lists(element, min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )


small_square = st.integers(min_value=1, max_value=5)


@st.composite
def square_matrices(draw):
    size = draw(small_square)
    return random_matrix(draw, size, size)


class TestBasics:
    def test_identity(self):
        assert gfmat.identity(2) == [[1, 0], [0, 1]]

    def test_zeros(self):
        assert gfmat.zeros(2, 3) == [[0, 0, 0], [0, 0, 0]]

    def test_vandermonde_rows_are_geometric(self):
        vander = gfmat.vandermonde(4, 3)
        assert vander[0] == [1, 0, 0]  # point 0
        assert vander[1] == [1, 1, 1]  # point 1
        assert vander[2][1] == 2  # point 2, power 1

    def test_vandermonde_too_many_points(self):
        with pytest.raises(ParameterError):
            gfmat.vandermonde(257, 2)


class TestMul:
    def test_identity_is_neutral(self):
        matrix = [[3, 7], [1, 255]]
        assert gfmat.mat_mul(gfmat.identity(2), matrix) == matrix
        assert gfmat.mat_mul(matrix, gfmat.identity(2)) == matrix

    def test_known_product(self):
        a = [[2, 0], [0, 3]]
        b = [[5, 1], [1, 0]]
        expected = [
            [gf_mul(2, 5), gf_mul(2, 1)],
            [gf_mul(3, 1), 0],
        ]
        assert gfmat.mat_mul(a, b) == expected

    def test_shape_mismatch_raises(self):
        with pytest.raises(ParameterError):
            gfmat.mat_mul([[1, 2]], [[1, 2]])

    def test_mat_vec_matches_mat_mul(self):
        matrix = [[1, 2, 3], [4, 5, 6]]
        vector = [7, 8, 9]
        column = [[v] for v in vector]
        expected = [row[0] for row in gfmat.mat_mul(matrix, column)]
        assert gfmat.mat_vec(matrix, vector) == expected

    def test_mat_vec_shape_mismatch(self):
        with pytest.raises(ParameterError):
            gfmat.mat_vec([[1, 2]], [1, 2, 3])


class TestInverse:
    @given(square_matrices())
    def test_inverse_property(self, matrix):
        size = len(matrix)
        if gfmat.rank(matrix) < size:
            with pytest.raises(ParameterError):
                gfmat.mat_inv(matrix)
            return
        inverse = gfmat.mat_inv(matrix)
        assert gfmat.mat_mul(matrix, inverse) == gfmat.identity(size)
        assert gfmat.mat_mul(inverse, matrix) == gfmat.identity(size)

    def test_singular_raises(self):
        with pytest.raises(ParameterError):
            gfmat.mat_inv([[1, 1], [1, 1]])

    def test_non_square_raises(self):
        with pytest.raises(ParameterError):
            gfmat.mat_inv([[1, 2, 3], [4, 5, 6]])

    def test_vandermonde_submatrices_invertible(self):
        vander = gfmat.vandermonde(8, 4)
        import itertools

        for rows in itertools.combinations(range(8), 4):
            submatrix = [vander[r] for r in rows]
            inverse = gfmat.mat_inv(submatrix)
            assert gfmat.mat_mul(submatrix, inverse) == gfmat.identity(4)


class TestRank:
    def test_empty(self):
        assert gfmat.rank([]) == 0

    def test_identity_full_rank(self):
        assert gfmat.rank(gfmat.identity(4)) == 4

    def test_repeated_rows(self):
        assert gfmat.rank([[1, 2], [1, 2], [2, 4]]) == 1

    def test_zero_matrix(self):
        assert gfmat.rank(gfmat.zeros(3, 3)) == 0

    @given(square_matrices())
    def test_rank_at_most_dimensions(self, matrix):
        assert gfmat.rank(matrix) <= min(len(matrix), len(matrix[0]))


class TestNullSpace:
    def test_empty_matrix_gives_unit_vector(self):
        assert gfmat.null_space_vector([], 3) == [1, 0, 0]

    def test_zero_cols(self):
        assert gfmat.null_space_vector([], 0) is None

    def test_full_rank_has_no_kernel(self):
        assert gfmat.null_space_vector(gfmat.identity(3), 3) is None

    def test_inconsistent_cols_raises(self):
        with pytest.raises(ParameterError):
            gfmat.null_space_vector([[1, 2]], 3)

    @given(st.data())
    def test_kernel_vector_annihilates(self, data):
        cols = data.draw(st.integers(min_value=1, max_value=5))
        rows = data.draw(st.integers(min_value=0, max_value=3))
        matrix = random_matrix(data.draw, rows, cols) if rows else []
        kernel = gfmat.null_space_vector(matrix, cols)
        if kernel is None:
            assert matrix and gfmat.rank(matrix) == cols
            return
        assert any(kernel)
        if matrix:
            assert gfmat.mat_vec(matrix, kernel) == [0] * len(matrix)

    def test_underdetermined_always_has_kernel(self):
        matrix = [[1, 2, 3], [4, 5, 6]]
        kernel = gfmat.null_space_vector(matrix, 3)
        assert kernel is not None
        assert gfmat.mat_vec(matrix, kernel) == [0, 0]
