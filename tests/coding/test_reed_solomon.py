"""Tests for the systematic Reed-Solomon code."""

import itertools
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import ReedSolomonCode
from repro.errors import DecodingError, EncodingError, ParameterError


@pytest.fixture
def rs():
    return ReedSolomonCode(k=3, n=7, data_size_bytes=24)


class TestConstruction:
    def test_rejects_n_above_256(self):
        with pytest.raises(ParameterError):
            ReedSolomonCode(k=2, n=257, data_size_bytes=16)

    def test_rejects_k_below_one(self):
        with pytest.raises(ParameterError):
            ReedSolomonCode(k=0, n=4, data_size_bytes=16)

    def test_rejects_n_below_k(self):
        with pytest.raises(ParameterError):
            ReedSolomonCode(k=5, n=4, data_size_bytes=20)

    def test_rejects_indivisible_data_size(self):
        with pytest.raises(ParameterError):
            ReedSolomonCode(k=3, n=5, data_size_bytes=16)

    def test_systematic_generator(self, rs):
        for index in range(rs.k):
            row = rs.generator_row(index)
            assert row == [1 if j == index else 0 for j in range(rs.k)]

    def test_block_size_is_shard_size(self, rs):
        for index in range(rs.n):
            assert rs.block_size_bits(index) == rs.shard_bytes * 8

    def test_min_blocks_to_decode(self, rs):
        assert rs.min_blocks_to_decode() == rs.k


class TestRoundtrip:
    def test_systematic_blocks_are_shards(self, rs):
        value = bytes(range(24))
        shards = rs.shards(value)
        for index in range(rs.k):
            assert rs.encode_block(value, index) == shards[index]

    def test_every_k_subset_decodes(self, rs):
        value = os.urandom(24)
        blocks = rs.encode_many(value, range(rs.n))
        for subset in itertools.combinations(range(rs.n), rs.k):
            chosen = {index: blocks[index] for index in subset}
            assert rs.decode(chosen) == value

    def test_more_than_k_blocks_decode(self, rs):
        value = os.urandom(24)
        blocks = rs.encode_many(value, range(rs.n))
        assert rs.decode(blocks) == value

    def test_fewer_than_k_blocks_return_none(self, rs):
        value = os.urandom(24)
        blocks = rs.encode_many(value, [0, 5])
        assert rs.decode(blocks) is None

    def test_empty_decode_returns_none(self, rs):
        assert rs.decode({}) is None

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=24, max_size=24))
    def test_roundtrip_property(self, value):
        rs = ReedSolomonCode(k=3, n=7, data_size_bytes=24)
        blocks = rs.encode_many(value, [1, 3, 6])
        assert rs.decode(blocks) == value

    @pytest.mark.parametrize("k,n", [(1, 3), (2, 4), (2, 6), (4, 9), (5, 11)])
    def test_parameter_sweep(self, k, n):
        data_size = 4 * k
        rs = ReedSolomonCode(k=k, n=n, data_size_bytes=data_size)
        value = os.urandom(data_size)
        blocks = rs.encode_many(value, range(n))
        # Decode from the last k blocks (all parity for n >= 2k).
        chosen = {index: blocks[index] for index in range(n - k, n)}
        assert rs.decode(chosen) == value


class TestValidation:
    def test_wrong_value_length_raises(self, rs):
        with pytest.raises(EncodingError):
            rs.encode_block(b"short", 0)

    def test_index_out_of_range_raises(self, rs):
        value = bytes(24)
        with pytest.raises(ParameterError):
            rs.encode_block(value, 7)
        with pytest.raises(ParameterError):
            rs.encode_block(value, -1)

    def test_decode_rejects_bad_payload_size(self, rs):
        with pytest.raises(DecodingError):
            rs.decode({0: b"x"})

    def test_decode_rejects_bad_index(self, rs):
        with pytest.raises(ParameterError):
            rs.decode({9: bytes(rs.shard_bytes)})


class TestCollisions:
    def test_no_collision_with_k_blocks(self, rs):
        assert rs.collision_delta([0, 1, 2]) is None
        assert rs.collision_delta([2, 4, 6]) is None

    def test_collision_exists_below_k_blocks(self, rs):
        delta = rs.collision_delta([0, 6])
        assert delta is not None
        assert any(delta)

    def test_collision_delta_is_invisible_on_indices(self, rs):
        value = os.urandom(24)
        indices = [1, 5]
        delta = rs.collision_delta(indices)
        other = bytes(a ^ b for a, b in zip(value, delta))
        assert other != value
        for index in indices:
            assert rs.encode_block(value, index) == rs.encode_block(other, index)

    def test_collision_delta_changes_other_blocks(self, rs):
        # MDS: if the delta were invisible on k indices, values would be equal.
        value = bytes(24)
        indices = [0, 1]
        delta = rs.collision_delta(indices)
        other = bytes(a ^ b for a, b in zip(value, delta))
        changed = [
            index
            for index in range(rs.n)
            if rs.encode_block(value, index) != rs.encode_block(other, index)
        ]
        assert changed  # some block must differ, else decode would be ambiguous

    def test_empty_index_set_collides(self, rs):
        assert rs.collision_delta([]) is not None

    def test_duplicate_indices_count_once(self, rs):
        # Two copies of one block pin only one block's worth of bits.
        assert rs.collision_delta([3, 3, 3]) is not None


class TestDecodeCache:
    def test_cache_reused(self, rs):
        value = os.urandom(24)
        blocks = rs.encode_many(value, [1, 2, 4])
        assert rs.decode(blocks) == value
        assert (1, 2, 4) in rs._decode_cache
        assert rs.decode(blocks) == value

    def test_cache_bounded_by_limit(self, rs):
        value = os.urandom(24)
        patterns = list(itertools.combinations(range(1, rs.n), rs.k))
        rs.DECODE_CACHE_LIMIT = 4
        assert len(patterns) > rs.DECODE_CACHE_LIMIT  # sanity
        for pattern in patterns:
            blocks = rs.encode_many(value, pattern)
            assert rs.decode(blocks) == value
            assert len(rs._decode_cache) <= 4

    def test_least_recently_used_pattern_evicted(self, rs):
        value = os.urandom(24)
        rs.DECODE_CACHE_LIMIT = 2
        first, second, third = (1, 2, 4), (2, 3, 5), (3, 4, 6)
        rs.decode(rs.encode_many(value, first))
        rs.decode(rs.encode_many(value, second))
        # Touch `first` so `second` becomes the least recently used...
        rs.decode(rs.encode_many(value, first))
        rs.decode(rs.encode_many(value, third))  # ...and is evicted here.
        assert set(rs._decode_cache) == {first, third}

    def test_eviction_does_not_change_decodes(self, rs):
        value = os.urandom(24)
        rs.DECODE_CACHE_LIMIT = 1
        for pattern in itertools.combinations(range(rs.n), rs.k):
            assert rs.decode(rs.encode_many(value, pattern)) == value

    def test_batch_decode_respects_limit(self, rs):
        values = [os.urandom(24) for _ in range(6)]
        rs.DECODE_CACHE_LIMIT = 2
        batch = [
            rs.encode_many(value, pattern)
            for value, pattern in zip(
                values, itertools.cycle([(1, 2, 4), (2, 3, 5), (3, 4, 6)])
            )
        ]
        assert rs.decode_batch(batch) == values
        assert len(rs._decode_cache) <= 2
