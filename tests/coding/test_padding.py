"""Padding-adapter tests: arbitrary value sizes over MDS codes."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import PaddedScheme, ReedSolomonCode, padded_size
from repro.errors import DecodingError, EncodingError


def rs_factory(n):
    def factory(padded_bytes):
        return ReedSolomonCode(k=3, n=n, data_size_bytes=padded_bytes)

    return factory


@pytest.fixture
def scheme():
    return PaddedScheme(logical_size_bytes=10, k=3, inner_factory=rs_factory(7))


class TestPaddedSize:
    def test_already_aligned(self):
        # 10 + 4-byte prefix = 14 -> pad to 15 for k=3.
        assert padded_size(10, 3) == 15

    def test_exact_multiple(self):
        assert padded_size(8, 4) == 12  # 8+4 = 12, already divisible

    def test_k_one_never_pads(self):
        assert padded_size(7, 1) == 11


class TestRoundtrip:
    def test_basic(self, scheme):
        value = os.urandom(10)
        blocks = scheme.encode_many(value, [0, 3, 6])
        assert scheme.decode(blocks) == value

    def test_insufficient_blocks(self, scheme):
        value = os.urandom(10)
        blocks = scheme.encode_many(value, [0, 1])
        assert scheme.decode(blocks) is None

    def test_wrong_length_rejected(self, scheme):
        with pytest.raises(EncodingError):
            scheme.encode_block(b"short", 0)

    def test_name_reflects_inner(self, scheme):
        assert scheme.name == "padded-reed-solomon"

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=40), st.data())
    def test_any_size_roundtrips(self, size, data):
        scheme = PaddedScheme(logical_size_bytes=size, k=3,
                              inner_factory=rs_factory(7))
        value = data.draw(st.binary(min_size=size, max_size=size))
        blocks = scheme.encode_many(value, [1, 4, 5])
        assert scheme.decode(blocks) == value

    def test_trailing_zeros_preserved(self):
        """Padding must not eat genuine trailing zero bytes."""
        scheme = PaddedScheme(logical_size_bytes=7, k=3,
                              inner_factory=rs_factory(7))
        value = b"abc\x00\x00\x00\x00"
        blocks = scheme.encode_many(value, [0, 1, 2])
        assert scheme.decode(blocks) == value


class TestSymmetry:
    def test_block_sizes_value_independent(self, scheme):
        a = bytes(10)
        b = os.urandom(10)
        for index in range(7):
            assert len(scheme.encode_block(a, index)) == \
                len(scheme.encode_block(b, index))
            assert scheme.block_size_bits(index) == \
                scheme.inner.block_size_bits(index)


class TestCollisions:
    def test_collision_when_usable(self):
        # Large logical region: most kernel vectors stay inside it.
        scheme = PaddedScheme(logical_size_bytes=26, k=3,
                              inner_factory=rs_factory(7))
        delta = scheme.collision_delta([0])
        if delta is not None:
            value = os.urandom(26)
            other = bytes(a ^ b for a, b in zip(value, delta))
            assert scheme.encode_block(value, 0) == scheme.encode_block(other, 0)

    def test_no_collision_at_k_blocks(self, scheme):
        assert scheme.collision_delta([0, 1, 2]) is None

    def test_prefix_touching_delta_suppressed(self):
        """If the only kernel vector flips prefix bytes, the adapter must
        report no collision rather than a value-domain-escaping one."""
        # shard 0 of the inner scheme contains the 4-byte prefix; a kernel
        # vector on shard 0's byte 0 would flip the prefix.
        scheme = PaddedScheme(logical_size_bytes=10, k=3,
                              inner_factory=rs_factory(7))
        delta = scheme.collision_delta([1, 2])  # kernel lives in shard 0
        # Either None (suppressed) or a valid logical-region delta.
        if delta is not None:
            value = os.urandom(10)
            other = bytes(a ^ b for a, b in zip(value, delta))
            for index in (1, 2):
                assert scheme.encode_block(value, index) == \
                    scheme.encode_block(other, index)


class TestValidation:
    def test_decoded_prefix_mismatch_raises(self, scheme):
        other = PaddedScheme(logical_size_bytes=11, k=3,
                             inner_factory=rs_factory(7))
        # 11 + 4 = 15 too: same padded size, different logical size.
        value = os.urandom(11)
        blocks = other.encode_many(value, [0, 1, 2])
        with pytest.raises(DecodingError):
            scheme.decode(blocks)
