"""Field-axiom and table-consistency tests for GF(2^8) arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding import gf256
from repro.errors import ParameterError

field_elements = st.integers(min_value=0, max_value=255)
nonzero_elements = st.integers(min_value=1, max_value=255)


class TestTables:
    def test_exp_table_starts_at_one(self):
        assert gf256._EXP[0] == 1

    def test_exp_table_wraps_with_period_255(self):
        for i in range(255):
            assert gf256._EXP[i] == gf256._EXP[i + 255]

    def test_log_exp_roundtrip(self):
        for value in range(1, 256):
            assert gf256._EXP[gf256._LOG[value]] == value

    def test_exp_values_cover_all_nonzero(self):
        assert sorted(set(gf256._EXP[:255])) == list(range(1, 256))

    def test_generator_is_primitive(self):
        seen = set()
        value = 1
        for _ in range(255):
            seen.add(value)
            value = gf256._mul_no_table(value, gf256.GENERATOR)
        assert len(seen) == 255


class TestScalarOps:
    def test_add_is_xor(self):
        assert gf256.gf_add(0b1010, 0b0110) == 0b1100

    def test_mul_zero(self):
        for a in range(256):
            assert gf256.gf_mul(a, 0) == 0
            assert gf256.gf_mul(0, a) == 0

    def test_mul_one_is_identity(self):
        for a in range(256):
            assert gf256.gf_mul(a, 1) == a

    def test_mul_matches_peasant_multiplication(self):
        for a in [0, 1, 2, 3, 91, 160, 255]:
            for b in [0, 1, 5, 77, 128, 254, 255]:
                assert gf256.gf_mul(a, b) == gf256._mul_no_table(a, b)

    @given(field_elements, field_elements)
    def test_mul_commutative(self, a, b):
        assert gf256.gf_mul(a, b) == gf256.gf_mul(b, a)

    @given(field_elements, field_elements, field_elements)
    def test_mul_associative(self, a, b, c):
        left = gf256.gf_mul(gf256.gf_mul(a, b), c)
        right = gf256.gf_mul(a, gf256.gf_mul(b, c))
        assert left == right

    @given(field_elements, field_elements, field_elements)
    def test_distributive(self, a, b, c):
        left = gf256.gf_mul(a, b ^ c)
        right = gf256.gf_mul(a, b) ^ gf256.gf_mul(a, c)
        assert left == right

    @given(nonzero_elements)
    def test_inverse(self, a):
        assert gf256.gf_mul(a, gf256.gf_inv(a)) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.gf_inv(0)

    @given(field_elements, nonzero_elements)
    def test_div_is_mul_by_inverse(self, a, b):
        assert gf256.gf_div(a, b) == gf256.gf_mul(a, gf256.gf_inv(b))

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.gf_div(7, 0)

    @given(nonzero_elements, st.integers(min_value=0, max_value=600))
    def test_pow_matches_repeated_mul(self, a, exponent):
        expected = 1
        for _ in range(exponent):
            expected = gf256.gf_mul(expected, a)
        assert gf256.gf_pow(a, exponent) == expected

    def test_pow_zero_base(self):
        assert gf256.gf_pow(0, 0) == 1
        assert gf256.gf_pow(0, 5) == 0

    def test_pow_negative_raises(self):
        with pytest.raises(ParameterError):
            gf256.gf_pow(3, -1)


class TestVectorOps:
    @given(field_elements, st.binary(min_size=1, max_size=64))
    def test_mul_bytes_matches_scalar(self, scalar, data):
        array = np.frombuffer(data, dtype=np.uint8)
        result = gf256.gf_mul_bytes(scalar, array)
        expected = [gf256.gf_mul(scalar, int(byte)) for byte in data]
        assert list(result) == expected

    @given(field_elements, st.binary(min_size=1, max_size=64))
    def test_addmul_bytes_matches_scalar(self, scalar, data):
        array = np.frombuffer(data, dtype=np.uint8)
        accumulator = np.zeros(len(data), dtype=np.uint8)
        gf256.gf_addmul_bytes(accumulator, scalar, array)
        expected = [gf256.gf_mul(scalar, int(byte)) for byte in data]
        assert list(accumulator) == expected

    def test_addmul_scalar_zero_is_noop(self):
        accumulator = np.array([1, 2, 3], dtype=np.uint8)
        gf256.gf_addmul_bytes(accumulator, 0, np.array([9, 9, 9], dtype=np.uint8))
        assert list(accumulator) == [1, 2, 3]

    def test_addmul_scalar_one_is_xor(self):
        accumulator = np.array([1, 2, 3], dtype=np.uint8)
        gf256.gf_addmul_bytes(accumulator, 1, np.array([4, 4, 4], dtype=np.uint8))
        assert list(accumulator) == [5, 6, 7]

    def test_mul_bytes_returns_new_array(self):
        data = np.array([1, 2], dtype=np.uint8)
        result = gf256.gf_mul_bytes(1, data)
        result[0] = 99
        assert data[0] == 1


class TestPolyEval:
    def test_constant_polynomial(self):
        assert gf256.gf_poly_eval([42], 7) == 42

    def test_linear_polynomial(self):
        # p(x) = 3 + 2x at x = 5 -> 3 ^ (2 * 5)
        assert gf256.gf_poly_eval([3, 2], 5) == 3 ^ gf256.gf_mul(2, 5)

    @given(
        st.lists(field_elements, min_size=1, max_size=8),
        field_elements,
    )
    def test_matches_power_expansion(self, coefficients, x):
        expected = 0
        for power, coefficient in enumerate(coefficients):
            expected ^= gf256.gf_mul(coefficient, gf256.gf_pow(x, power))
        assert gf256.gf_poly_eval(coefficients, x) == expected
