"""Field-axiom and table-consistency tests for GF(2^8) arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding import gf256
from repro.errors import ParameterError

field_elements = st.integers(min_value=0, max_value=255)
nonzero_elements = st.integers(min_value=1, max_value=255)


class TestTables:
    def test_exp_table_starts_at_one(self):
        assert gf256._EXP[0] == 1

    def test_exp_table_wraps_with_period_255(self):
        for i in range(255):
            assert gf256._EXP[i] == gf256._EXP[i + 255]

    def test_log_exp_roundtrip(self):
        for value in range(1, 256):
            assert gf256._EXP[gf256._LOG[value]] == value

    def test_exp_values_cover_all_nonzero(self):
        assert sorted(set(gf256._EXP[:255])) == list(range(1, 256))

    def test_generator_is_primitive(self):
        seen = set()
        value = 1
        for _ in range(255):
            seen.add(value)
            value = gf256._mul_no_table(value, gf256.GENERATOR)
        assert len(seen) == 255


class TestScalarOps:
    def test_add_is_xor(self):
        assert gf256.gf_add(0b1010, 0b0110) == 0b1100

    def test_mul_zero(self):
        for a in range(256):
            assert gf256.gf_mul(a, 0) == 0
            assert gf256.gf_mul(0, a) == 0

    def test_mul_one_is_identity(self):
        for a in range(256):
            assert gf256.gf_mul(a, 1) == a

    def test_mul_matches_peasant_multiplication(self):
        for a in [0, 1, 2, 3, 91, 160, 255]:
            for b in [0, 1, 5, 77, 128, 254, 255]:
                assert gf256.gf_mul(a, b) == gf256._mul_no_table(a, b)

    @given(field_elements, field_elements)
    def test_mul_commutative(self, a, b):
        assert gf256.gf_mul(a, b) == gf256.gf_mul(b, a)

    @given(field_elements, field_elements, field_elements)
    def test_mul_associative(self, a, b, c):
        left = gf256.gf_mul(gf256.gf_mul(a, b), c)
        right = gf256.gf_mul(a, gf256.gf_mul(b, c))
        assert left == right

    @given(field_elements, field_elements, field_elements)
    def test_distributive(self, a, b, c):
        left = gf256.gf_mul(a, b ^ c)
        right = gf256.gf_mul(a, b) ^ gf256.gf_mul(a, c)
        assert left == right

    @given(nonzero_elements)
    def test_inverse(self, a):
        assert gf256.gf_mul(a, gf256.gf_inv(a)) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.gf_inv(0)

    @given(field_elements, nonzero_elements)
    def test_div_is_mul_by_inverse(self, a, b):
        assert gf256.gf_div(a, b) == gf256.gf_mul(a, gf256.gf_inv(b))

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.gf_div(7, 0)

    @given(nonzero_elements, st.integers(min_value=0, max_value=600))
    def test_pow_matches_repeated_mul(self, a, exponent):
        expected = 1
        for _ in range(exponent):
            expected = gf256.gf_mul(expected, a)
        assert gf256.gf_pow(a, exponent) == expected

    def test_pow_zero_base(self):
        assert gf256.gf_pow(0, 0) == 1
        assert gf256.gf_pow(0, 5) == 0

    def test_pow_negative_raises(self):
        with pytest.raises(ParameterError):
            gf256.gf_pow(3, -1)


class TestVectorOps:
    @given(field_elements, st.binary(min_size=1, max_size=64))
    def test_mul_bytes_matches_scalar(self, scalar, data):
        array = np.frombuffer(data, dtype=np.uint8)
        result = gf256.gf_mul_bytes(scalar, array)
        expected = [gf256.gf_mul(scalar, int(byte)) for byte in data]
        assert list(result) == expected

    @given(field_elements, st.binary(min_size=1, max_size=64))
    def test_addmul_bytes_matches_scalar(self, scalar, data):
        array = np.frombuffer(data, dtype=np.uint8)
        accumulator = np.zeros(len(data), dtype=np.uint8)
        gf256.gf_addmul_bytes(accumulator, scalar, array)
        expected = [gf256.gf_mul(scalar, int(byte)) for byte in data]
        assert list(accumulator) == expected

    def test_addmul_scalar_zero_is_noop(self):
        accumulator = np.array([1, 2, 3], dtype=np.uint8)
        gf256.gf_addmul_bytes(accumulator, 0, np.array([9, 9, 9], dtype=np.uint8))
        assert list(accumulator) == [1, 2, 3]

    def test_addmul_scalar_one_is_xor(self):
        accumulator = np.array([1, 2, 3], dtype=np.uint8)
        gf256.gf_addmul_bytes(accumulator, 1, np.array([4, 4, 4], dtype=np.uint8))
        assert list(accumulator) == [5, 6, 7]

    def test_mul_bytes_returns_new_array(self):
        data = np.array([1, 2], dtype=np.uint8)
        result = gf256.gf_mul_bytes(1, data)
        result[0] = 99
        assert data[0] == 1


class TestMulTable:
    def test_full_table_matches_scalar_mul(self):
        table = gf256._MUL_TABLE
        for a in range(256):
            for b in range(0, 256, 7):
                assert int(table[a, b]) == gf256.gf_mul(a, b)

    def test_table_symmetry(self):
        assert np.array_equal(gf256._MUL_TABLE, gf256._MUL_TABLE.T)

    def test_zero_row_and_identity_row(self):
        assert not gf256._MUL_TABLE[0].any()
        assert list(gf256._MUL_TABLE[1]) == list(range(256))


class TestInputValidation:
    def test_mul_bytes_rejects_wrong_dtype(self):
        with pytest.raises(ParameterError, match="uint8"):
            gf256.gf_mul_bytes(3, np.array([1, 2], dtype=np.int64))

    def test_mul_bytes_rejects_non_array(self):
        with pytest.raises(ParameterError, match="numpy array"):
            gf256.gf_mul_bytes(3, [1, 2, 3])

    def test_mul_bytes_rejects_out_of_range_scalar(self):
        data = np.array([1], dtype=np.uint8)
        with pytest.raises(ParameterError):
            gf256.gf_mul_bytes(256, data)
        with pytest.raises(ParameterError):
            gf256.gf_mul_bytes(-1, data)

    def test_mul_bytes_accepts_readonly_input(self):
        readonly = np.frombuffer(b"\x01\x02\x03", dtype=np.uint8)
        assert not readonly.flags.writeable
        for scalar in (0, 1, 7):
            result = gf256.gf_mul_bytes(scalar, readonly)
            assert result.flags.writeable
            assert list(result) == [
                gf256.gf_mul(scalar, byte) for byte in (1, 2, 3)
            ]

    def test_mul_bytes_accepts_non_contiguous_input(self):
        data = np.arange(16, dtype=np.uint8)[::2]
        assert not data.flags.c_contiguous
        result = gf256.gf_mul_bytes(9, data)
        assert list(result) == [gf256.gf_mul(9, int(v)) for v in data]

    def test_addmul_bytes_rejects_wrong_accumulator_dtype(self):
        with pytest.raises(ParameterError, match="accumulator"):
            gf256.gf_addmul_bytes(
                np.zeros(2, dtype=np.int32), 3, np.zeros(2, dtype=np.uint8)
            )


class TestMatmul:
    @given(
        st.integers(1, 6), st.integers(1, 6), st.integers(1, 6),
        st.randoms(use_true_random=False),
    )
    def test_matches_scalar_inner_products(self, m, k, w, rnd):
        a = np.array(
            [[rnd.randrange(256) for _ in range(k)] for _ in range(m)],
            dtype=np.uint8,
        )
        b = np.array(
            [[rnd.randrange(256) for _ in range(w)] for _ in range(k)],
            dtype=np.uint8,
        )
        product = gf256.gf_matmul(a, b)
        assert product.shape == (m, w)
        for i in range(m):
            for j in range(w):
                expected = 0
                for t in range(k):
                    expected ^= gf256.gf_mul(int(a[i, t]), int(b[t, j]))
                assert int(product[i, j]) == expected

    def test_wide_product_spans_multiple_lane_groups(self):
        # 20 rows forces the packed kernel across three uint64 groups.
        rng = np.random.default_rng(7)
        a = rng.integers(0, 256, (20, 5), dtype=np.uint8)
        b = rng.integers(0, 256, (5, 33), dtype=np.uint8)
        product = gf256.gf_matmul(a, b)
        for i in (0, 7, 8, 15, 16, 19):
            row = gf256.gf_matmul(a[i: i + 1], b)
            assert np.array_equal(product[i], row[0])

    def test_identity_is_noop(self):
        rng = np.random.default_rng(0)
        b = rng.integers(0, 256, (4, 10), dtype=np.uint8)
        identity = np.eye(4, dtype=np.uint8)
        assert np.array_equal(gf256.gf_matmul(identity, b), b)

    def test_accepts_readonly_and_non_contiguous_operands(self):
        a = np.frombuffer(bytes(range(6)), dtype=np.uint8).reshape(2, 3)
        b = np.arange(24, dtype=np.uint8).reshape(3, 8)[:, ::2]
        product = gf256.gf_matmul(a, b)
        assert product.shape == (2, 4)

    def test_shape_mismatch_raises(self):
        a = np.zeros((2, 3), dtype=np.uint8)
        b = np.zeros((4, 5), dtype=np.uint8)
        with pytest.raises(ParameterError, match="shape mismatch"):
            gf256.gf_matmul(a, b)

    def test_non_2d_raises(self):
        with pytest.raises(ParameterError, match="2-D"):
            gf256.gf_matmul(
                np.zeros(3, dtype=np.uint8), np.zeros((3, 1), dtype=np.uint8)
            )

    def test_wrong_dtype_raises(self):
        with pytest.raises(ParameterError, match="uint8"):
            gf256.gf_matmul(
                np.zeros((2, 2), dtype=np.int16),
                np.zeros((2, 2), dtype=np.uint8),
            )

    def test_zero_width_operand(self):
        a = np.ones((3, 2), dtype=np.uint8)
        b = np.zeros((2, 0), dtype=np.uint8)
        assert gf256.gf_matmul(a, b).shape == (3, 0)

    def test_all_zero_row_group(self):
        # A group of >= 8 all-zero output rows must short-circuit to zeros.
        a = np.zeros((10, 3), dtype=np.uint8)
        a[9, 0] = 5
        b = np.arange(9, dtype=np.uint8).reshape(3, 3)
        product = gf256.gf_matmul(a, b)
        assert not product[:8].any()
        assert product[9].any()


class TestMatmulTiling:
    """The column-tiled kernel must be bit-identical to the untiled one.

    ``tile_columns >= width`` degenerates to a single tile (the untiled
    reference); every smaller positive tile must reproduce it exactly,
    including tiles that do not divide the width.
    """

    @pytest.mark.parametrize("batch", [1, 2, 3, 7, 8, 16, 31, 64, 100, 128])
    def test_batch_sizes_match_untiled(self, batch):
        # Stacked-codeword layout: width = batch * shard_bytes, as produced
        # by encode_batch; shard size 48 makes widths non-multiples of the
        # test tiles below.
        rng = np.random.default_rng(batch)
        shard_bytes = 48
        a = rng.integers(0, 256, (12, 5), dtype=np.uint8)
        b = rng.integers(0, 256, (5, batch * shard_bytes), dtype=np.uint8)
        untiled = gf256.gf_matmul(a, b, tile_columns=b.shape[1])
        for tile in (1, 7, 64, 1000):
            tiled = gf256.gf_matmul(a, b, tile_columns=tile)
            assert np.array_equal(tiled, untiled), (batch, tile)

    @pytest.mark.parametrize("tile", [1, 3, 17, 100])
    def test_single_row_path_matches_untiled(self, tile):
        rng = np.random.default_rng(tile)
        a = rng.integers(0, 256, (1, 6), dtype=np.uint8)
        b = rng.integers(0, 256, (6, 131), dtype=np.uint8)
        untiled = gf256.gf_matmul(a, b, tile_columns=131)
        assert np.array_equal(gf256.gf_matmul(a, b, tile_columns=tile), untiled)

    def test_default_tile_matches_explicit_untiled(self):
        # Width beyond TILE_COLUMNS exercises the default multi-tile path.
        rng = np.random.default_rng(3)
        width = gf256.TILE_COLUMNS + 13
        a = rng.integers(0, 256, (9, 4), dtype=np.uint8)
        b = rng.integers(0, 256, (4, width), dtype=np.uint8)
        untiled = gf256.gf_matmul(a, b, tile_columns=width)
        assert np.array_equal(gf256.gf_matmul(a, b), untiled)

    def test_non_positive_tile_raises(self):
        a = np.ones((2, 2), dtype=np.uint8)
        with pytest.raises(ParameterError, match="tile_columns"):
            gf256.gf_matmul(a, a, tile_columns=0)


class TestPolyEval:
    def test_constant_polynomial(self):
        assert gf256.gf_poly_eval([42], 7) == 42

    def test_linear_polynomial(self):
        # p(x) = 3 + 2x at x = 5 -> 3 ^ (2 * 5)
        assert gf256.gf_poly_eval([3, 2], 5) == 3 ^ gf256.gf_mul(2, 5)

    @given(
        st.lists(field_elements, min_size=1, max_size=8),
        field_elements,
    )
    def test_matches_power_expansion(self, coefficients, x):
        expected = 0
        for power, coefficient in enumerate(coefficients):
            expected ^= gf256.gf_mul(coefficient, gf256.gf_pow(x, power))
        assert gf256.gf_poly_eval(coefficients, x) == expected
