"""Tests for the encode/decode oracles and the symmetry assumption."""

import os

import pytest

from repro.coding import (
    BatchEncodePlan,
    DecodeOracle,
    EncodeOracle,
    RatelessXorCode,
    ReedSolomonCode,
    ReplicationCode,
    XorParityCode,
)
from repro.errors import ProtocolError

ALL_SCHEMES = [
    ReedSolomonCode(k=3, n=7, data_size_bytes=24),
    XorParityCode(k=4, data_size_bytes=32),
    ReplicationCode(data_size_bytes=16),
    RatelessXorCode(k=4, data_size_bytes=32, seed=1),
]


class TestEncodeOracle:
    def test_blocks_carry_source_tags(self):
        scheme = ReedSolomonCode(k=2, n=4, data_size_bytes=8)
        oracle = EncodeOracle(scheme, os.urandom(8), op_uid=17)
        block = oracle.get(3)
        assert block.source.op_uid == 17
        assert block.source.index == 3
        assert block.index == 3

    def test_block_sizes_match_scheme(self):
        scheme = ReedSolomonCode(k=2, n=4, data_size_bytes=8)
        oracle = EncodeOracle(scheme, os.urandom(8), op_uid=1)
        for index in range(4):
            assert oracle.get(index).size_bits == scheme.block_size_bits(index)

    def test_get_is_idempotent(self):
        scheme = ReedSolomonCode(k=2, n=4, data_size_bytes=8)
        oracle = EncodeOracle(scheme, os.urandom(8), op_uid=1)
        assert oracle.get(2) is oracle.get(2)

    def test_get_many_preserves_order(self):
        scheme = ReedSolomonCode(k=2, n=4, data_size_bytes=8)
        oracle = EncodeOracle(scheme, os.urandom(8), op_uid=1)
        blocks = oracle.get_many([3, 0, 2])
        assert [block.index for block in blocks] == [3, 0, 2]

    def test_expired_oracle_raises(self):
        scheme = ReplicationCode(data_size_bytes=4)
        oracle = EncodeOracle(scheme, bytes(4), op_uid=1)
        oracle.expire()
        with pytest.raises(ProtocolError):
            oracle.get(0)

    def test_payloads_match_direct_encoding(self):
        scheme = XorParityCode(k=2, data_size_bytes=8)
        value = os.urandom(8)
        oracle = EncodeOracle(scheme, value, op_uid=5)
        for index in range(3):
            assert oracle.get(index).payload == scheme.encode_block(value, index)


class TestBatchEncodePlan:
    def test_primed_blocks_identical_to_lazy_encoding(self):
        scheme = ReedSolomonCode(k=2, n=6, data_size_bytes=8)
        values = [os.urandom(8) for _ in range(5)]
        plan = BatchEncodePlan(scheme, values, range(6))
        for uid, value in enumerate(values):
            primed = EncodeOracle(scheme, value, op_uid=uid)
            assert plan.prime(primed)
            lazy = EncodeOracle(scheme, value, op_uid=uid)
            assert primed.get_many(range(6)) == lazy.get_many(range(6))

    def test_primed_blocks_carry_each_oracles_uid(self):
        scheme = ReedSolomonCode(k=2, n=4, data_size_bytes=8)
        value = os.urandom(8)
        plan = BatchEncodePlan(scheme, [value, value], range(4))
        first = EncodeOracle(scheme, value, op_uid=1)
        second = EncodeOracle(scheme, value, op_uid=2)
        plan.prime(first)
        plan.prime(second)
        assert first.get(3).payload == second.get(3).payload
        assert first.get(3).source.op_uid == 1
        assert second.get(3).source.op_uid == 2

    def test_unknown_value_left_lazy(self):
        scheme = ReedSolomonCode(k=2, n=4, data_size_bytes=8)
        plan = BatchEncodePlan(scheme, [os.urandom(8)], range(4))
        oracle = EncodeOracle(scheme, os.urandom(8), op_uid=0)
        assert not plan.prime(oracle)
        assert oracle._blocks == {}

    def test_foreign_scheme_left_lazy(self):
        scheme = ReedSolomonCode(k=2, n=4, data_size_bytes=8)
        twin = ReedSolomonCode(k=2, n=4, data_size_bytes=8)
        value = os.urandom(8)
        plan = BatchEncodePlan(scheme, [value], range(4))
        assert not plan.prime(EncodeOracle(twin, value, op_uid=0))

    def test_duplicate_values_encoded_once(self):
        scheme = ReedSolomonCode(k=2, n=4, data_size_bytes=8)
        value = os.urandom(8)
        plan = BatchEncodePlan(scheme, [value] * 10, range(4))
        assert len(plan) == 1


class TestDecodeOracle:
    def test_push_and_done_roundtrip(self):
        scheme = ReedSolomonCode(k=2, n=4, data_size_bytes=8)
        value = os.urandom(8)
        encoder = EncodeOracle(scheme, value, op_uid=9)
        decoder = DecodeOracle(scheme)
        decoder.push(encoder.get(1))
        decoder.push(encoder.get(3))
        assert decoder.done() == value
        assert decoder.expired

    def test_done_with_insufficient_blocks_returns_none(self):
        scheme = ReedSolomonCode(k=2, n=4, data_size_bytes=8)
        encoder = EncodeOracle(scheme, os.urandom(8), op_uid=9)
        decoder = DecodeOracle(scheme)
        decoder.push(encoder.get(1))
        assert decoder.done() is None

    def test_attempts_are_independent(self):
        scheme = ReedSolomonCode(k=2, n=4, data_size_bytes=8)
        value_a, value_b = os.urandom(8), os.urandom(8)
        encoder_a = EncodeOracle(scheme, value_a, op_uid=1)
        encoder_b = EncodeOracle(scheme, value_b, op_uid=2)
        decoder = DecodeOracle(scheme)
        decoder.push(encoder_a.get(0), attempt=0)
        decoder.push(encoder_a.get(1), attempt=0)
        decoder.push(encoder_b.get(0), attempt=1)
        decoder.push(encoder_b.get(1), attempt=1)
        assert decoder.peek(attempt=0) == value_a
        assert decoder.done(attempt=1) == value_b

    def test_peek_does_not_expire(self):
        scheme = ReplicationCode(data_size_bytes=4)
        encoder = EncodeOracle(scheme, b"abcd", op_uid=1)
        decoder = DecodeOracle(scheme)
        decoder.push(encoder.get(0))
        assert decoder.peek() == b"abcd"
        assert not decoder.expired
        assert decoder.done() == b"abcd"

    def test_expired_push_raises(self):
        scheme = ReplicationCode(data_size_bytes=4)
        encoder = EncodeOracle(scheme, b"abcd", op_uid=1)
        decoder = DecodeOracle(scheme)
        decoder.push(encoder.get(0))
        decoder.done()
        with pytest.raises(ProtocolError):
            decoder.push(encoder.get(1))

    def test_blocks_in_counts_distinct_indices(self):
        scheme = ReplicationCode(data_size_bytes=4)
        encoder = EncodeOracle(scheme, b"abcd", op_uid=1)
        decoder = DecodeOracle(scheme)
        decoder.push(encoder.get(0))
        decoder.push(encoder.get(0))
        decoder.push(encoder.get(2))
        assert decoder.blocks_in() == 2

    def test_push_payload(self):
        scheme = ReplicationCode(data_size_bytes=4)
        decoder = DecodeOracle(scheme)
        decoder.push_payload(0, b"wxyz")
        assert decoder.done() == b"wxyz"


class TestSymmetry:
    """Definition 3: block sizes must not depend on the encoded value."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_block_sizes_value_independent(self, scheme):
        value_a = bytes(scheme.data_size_bytes)
        value_b = os.urandom(scheme.data_size_bytes)
        index_limit = min(8, getattr(scheme, "n", None) or 8)
        for index in range(index_limit):
            block_a = scheme.encode_block(value_a, index)
            block_b = scheme.encode_block(value_b, index)
            assert len(block_a) == len(block_b)
            assert len(block_a) * 8 == scheme.block_size_bits(index)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_total_bits_deduplicates(self, scheme):
        single = scheme.total_bits([0])
        assert scheme.total_bits([0, 0, 0]) == single


class TestDecodeShareCache:
    def test_rejects_non_positive_bound(self):
        import pytest

        from repro.coding import DecodeShareCache, ReedSolomonCode
        from repro.errors import ParameterError

        scheme = ReedSolomonCode(k=2, n=4, data_size_bytes=8)
        with pytest.raises(ParameterError):
            DecodeShareCache(scheme, max_entries=0)

    def test_caches_undecodable_none_results(self):
        from repro.coding import DecodeShareCache, ReedSolomonCode

        scheme = ReedSolomonCode(k=2, n=4, data_size_bytes=8)
        cache = DecodeShareCache(scheme)
        blocks = dict(list(scheme.encode_many(bytes(8), [0]).items()))
        assert cache.decode(blocks) is None  # < k blocks: undecodable
        assert cache.decode(blocks) is None
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_bounds_entries(self):
        from repro.coding import DecodeShareCache, ReedSolomonCode

        scheme = ReedSolomonCode(k=2, n=4, data_size_bytes=8)
        cache = DecodeShareCache(scheme, max_entries=2)
        for byte in range(4):
            value = bytes([byte]) * 8
            cache.decode(scheme.encode_many(value, [0, 1]))
        assert len(cache._cache) <= 2
