"""Tests for XOR-parity, replication, and rateless codes."""

import itertools
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import RatelessXorCode, ReplicationCode, XorParityCode
from repro.errors import DecodingError, ParameterError


class TestXorParity:
    @pytest.fixture
    def code(self):
        return XorParityCode(k=4, data_size_bytes=32)

    def test_n_is_k_plus_one(self, code):
        assert code.n == 5

    def test_parity_block_is_xor_of_shards(self, code):
        value = os.urandom(32)
        shards = code.shards(value)
        parity = code.encode_block(value, 4)
        expected = bytes(a ^ b ^ c ^ d for a, b, c, d in zip(*shards))
        assert parity == expected

    def test_all_data_blocks_decode(self, code):
        value = os.urandom(32)
        blocks = code.encode_many(value, range(4))
        assert code.decode(blocks) == value

    def test_every_k_subset_decodes(self, code):
        value = os.urandom(32)
        blocks = code.encode_many(value, range(5))
        for subset in itertools.combinations(range(5), 4):
            assert code.decode({i: blocks[i] for i in subset}) == value

    def test_insufficient_blocks_return_none(self, code):
        value = os.urandom(32)
        blocks = code.encode_many(value, [0, 1, 4])
        assert code.decode(blocks) is None

    def test_collision_without_parity(self, code):
        value = os.urandom(32)
        indices = [0, 2]
        delta = code.collision_delta(indices)
        other = bytes(a ^ b for a, b in zip(value, delta))
        for index in indices:
            assert code.encode_block(value, index) == code.encode_block(other, index)

    def test_collision_with_parity_present(self, code):
        value = os.urandom(32)
        indices = [1, 4]  # one data block and the parity
        delta = code.collision_delta(indices)
        other = bytes(a ^ b for a, b in zip(value, delta))
        for index in indices:
            assert code.encode_block(value, index) == code.encode_block(other, index)

    def test_no_collision_with_k_blocks(self, code):
        assert code.collision_delta([0, 1, 2, 4]) is None

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=32, max_size=32))
    def test_roundtrip_property(self, value):
        code = XorParityCode(k=4, data_size_bytes=32)
        blocks = code.encode_many(value, [0, 2, 3, 4])
        assert code.decode(blocks) == value


class TestReplication:
    @pytest.fixture
    def code(self):
        return ReplicationCode(data_size_bytes=16)

    def test_every_block_is_the_value(self, code):
        value = os.urandom(16)
        for index in (0, 1, 17, 10_000):
            assert code.encode_block(value, index) == value

    def test_single_block_decodes(self, code):
        value = os.urandom(16)
        assert code.decode({42: value}) == value

    def test_block_size_is_full_value(self, code):
        assert code.block_size_bits(0) == 128

    def test_empty_decode_returns_none(self, code):
        assert code.decode({}) is None

    def test_disagreeing_replicas_raise(self, code):
        with pytest.raises(DecodingError):
            code.decode({0: b"a" * 16, 1: b"b" * 16})

    def test_wrong_replica_length_raises(self, code):
        with pytest.raises(DecodingError):
            code.decode({0: b"short"})

    def test_bounded_variant_rejects_large_index(self):
        code = ReplicationCode(data_size_bytes=16, n=3)
        with pytest.raises(ParameterError):
            code.encode_block(bytes(16), 3)

    def test_negative_index_rejected(self, code):
        with pytest.raises(ParameterError):
            code.encode_block(bytes(16), -1)

    def test_no_collision_on_nonempty_set(self, code):
        assert code.collision_delta([0]) is None
        assert code.collision_delta([3, 9]) is None

    def test_empty_set_collides(self, code):
        delta = code.collision_delta([])
        assert delta is not None and any(delta)


class TestRateless:
    @pytest.fixture
    def code(self):
        return RatelessXorCode(k=4, data_size_bytes=32, seed=5)

    def test_masks_are_deterministic(self, code):
        again = RatelessXorCode(k=4, data_size_bytes=32, seed=5)
        assert [code.mask(i) for i in range(50)] == [again.mask(i) for i in range(50)]

    def test_masks_depend_on_seed(self, code):
        other = RatelessXorCode(k=4, data_size_bytes=32, seed=6)
        masks_a = [code.mask(i) for i in range(50)]
        masks_b = [other.mask(i) for i in range(50)]
        assert masks_a != masks_b

    def test_masks_are_nonzero(self, code):
        for index in range(200):
            assert code.mask(index) != 0

    def test_unbounded_index_space(self, code):
        value = os.urandom(32)
        block = code.encode_block(value, 10**9)
        assert len(block) == code.shard_bytes

    def test_roundtrip_with_enough_blocks(self, code):
        value = os.urandom(32)
        blocks = code.encode_many(value, range(16))
        assert code.decode(blocks) == value

    def test_decode_returns_none_when_rank_deficient(self, code):
        value = os.urandom(32)
        # A single block can never span GF(2)^4.
        blocks = code.encode_many(value, [0])
        assert code.decode(blocks) is None

    def test_block_is_xor_of_masked_shards(self, code):
        value = os.urandom(32)
        shards = np.frombuffer(value, dtype=np.uint8).reshape(
            code.k, code.shard_bytes
        )
        for index in range(20):
            mask = code.mask(index)
            expected = bytearray(code.shard_bytes)
            for shard_index in range(code.k):
                if mask & (1 << shard_index):
                    for pos in range(code.shard_bytes):
                        expected[pos] ^= int(shards[shard_index][pos])
            assert code.encode_block(value, index) == bytes(expected)

    def test_symmetric_block_size(self, code):
        sizes = {code.block_size_bits(i) for i in range(100)}
        assert sizes == {code.shard_bytes * 8}

    def test_collision_delta_invisible(self, code):
        value = os.urandom(32)
        indices = [3, 7]
        delta = code.collision_delta(indices)
        assert delta is not None
        other = bytes(a ^ b for a, b in zip(value, delta))
        assert other != value
        for index in indices:
            assert code.encode_block(value, index) == code.encode_block(other, index)

    def test_no_collision_when_masks_span(self, code):
        # Find a set of indices whose masks span GF(2)^4, then expect None.
        indices = []
        basis: dict[int, int] = {}
        index = 0
        while len(basis) < code.k:
            mask = code.mask(index)
            reduced = mask
            while reduced:
                pivot = reduced.bit_length() - 1
                if pivot not in basis:
                    basis[pivot] = reduced
                    indices.append(index)
                    break
                reduced ^= basis[pivot]
            index += 1
        assert code.collision_delta(indices) is None

    def test_bad_payload_size_raises(self, code):
        with pytest.raises(DecodingError):
            code.decode({0: b"x"})

    def test_rejects_indivisible_size(self):
        with pytest.raises(ParameterError):
            RatelessXorCode(k=3, data_size_bytes=32)

    @settings(max_examples=15, deadline=None)
    @given(st.binary(min_size=32, max_size=32), st.integers(0, 1000))
    def test_roundtrip_property(self, value, seed):
        code = RatelessXorCode(k=4, data_size_bytes=32, seed=seed)
        blocks = code.encode_many(value, range(20))
        assert code.decode(blocks) == value
