"""Batch-API tests: encode_batch/decode_batch agree with the scalar paths.

The vectorized engine must be *indistinguishable* from per-block encoding:
``encode_batch`` yields byte-identical blocks to ``encode_block``, and
``decode_batch`` round-trips (or returns the same ``None``) under every
erasure pattern up to ``f`` erased blocks.
"""

import itertools
import os

import pytest

from repro.coding import (
    EncodeOracle,
    PaddedScheme,
    RatelessXorCode,
    ReedSolomonCode,
    ReplicationCode,
    XorParityCode,
    prime_encode_oracles,
)
from repro.errors import ProtocolError


def rs_scheme():
    return ReedSolomonCode(k=3, n=7, data_size_bytes=24)


def padded_scheme():
    return PaddedScheme(
        logical_size_bytes=29,
        k=3,
        inner_factory=lambda size: ReedSolomonCode(k=3, n=7, data_size_bytes=size),
    )


BATCHED_SCHEMES = [
    rs_scheme(),
    XorParityCode(k=4, data_size_bytes=32),
    ReplicationCode(data_size_bytes=16, n=5),
    RatelessXorCode(k=4, data_size_bytes=32, seed=1),
    padded_scheme(),
]


def indices_for(scheme):
    """A full 'codeword' worth of indices for any scheme shape."""
    n = getattr(scheme, "n", None)
    if n is None and hasattr(scheme, "inner"):
        n = scheme.inner.n
    if n is None:
        n = scheme.k + 4  # rateless: k source-spanning blocks plus slack
    return list(range(n))


def values_for(scheme, count):
    return [os.urandom(scheme.data_size_bytes) for _ in range(count)]


class TestEncodeBatchAgreesWithScalar:
    @pytest.mark.parametrize("scheme", BATCHED_SCHEMES, ids=lambda s: s.name)
    def test_blocks_identical_to_encode_block(self, scheme):
        values = values_for(scheme, 5)
        indices = indices_for(scheme)
        batch = scheme.encode_batch(values, indices)
        assert len(batch) == len(values)
        for value, blocks in zip(values, batch):
            for index in indices:
                assert blocks[index] == scheme.encode_block(value, index)

    @pytest.mark.parametrize("scheme", BATCHED_SCHEMES, ids=lambda s: s.name)
    def test_encode_many_identical_to_encode_block(self, scheme):
        value = values_for(scheme, 1)[0]
        indices = indices_for(scheme)
        blocks = scheme.encode_many(value, indices)
        assert set(blocks) == set(indices)
        for index in indices:
            assert blocks[index] == scheme.encode_block(value, index)

    def test_empty_batch(self):
        scheme = rs_scheme()
        assert scheme.encode_batch([], range(scheme.n)) == []

    def test_single_value_batch_matches_encode_many(self):
        scheme = rs_scheme()
        value = values_for(scheme, 1)[0]
        [blocks] = scheme.encode_batch([value], range(scheme.n))
        assert blocks == scheme.encode_many(value, range(scheme.n))


class TestDecodeBatchRoundTrip:
    def erasure_patterns(self, n, f):
        """Every way of erasing up to ``f`` of the ``n`` blocks."""
        for erased_count in range(f + 1):
            for erased in itertools.combinations(range(n), erased_count):
                yield frozenset(range(n)) - frozenset(erased)

    @pytest.mark.parametrize(
        "scheme,f",
        [(rs_scheme(), 4), (XorParityCode(k=4, data_size_bytes=32), 1),
         (ReplicationCode(data_size_bytes=16, n=5), 4), (padded_scheme(), 4)],
        ids=["reed-solomon", "xor-parity", "replication", "padded-rs"],
    )
    def test_round_trip_under_every_erasure_pattern(self, scheme, f):
        n = indices_for(scheme)[-1] + 1
        values = values_for(scheme, 3)
        encoded = scheme.encode_batch(values, range(n))
        patterns = list(self.erasure_patterns(n, f))
        # Each value cycles through every pattern; all in one batch call.
        batch, expected = [], []
        for pattern_index, pattern in enumerate(patterns):
            value = values[pattern_index % len(values)]
            blocks = encoded[pattern_index % len(values)]
            batch.append({i: blocks[i] for i in pattern})
            expected.append(value)
        decoded = scheme.decode_batch(batch)
        assert decoded == expected

    def test_rs_undecodable_entries_return_none(self):
        scheme = rs_scheme()
        values = values_for(scheme, 2)
        encoded = scheme.encode_batch(values, range(scheme.n))
        batch = [
            {i: encoded[0][i] for i in (0, 1)},       # < k blocks
            {i: encoded[1][i] for i in (2, 4, 6)},    # decodable
            {},                                        # nothing at all
        ]
        assert scheme.decode_batch(batch) == [None, values[1], None]

    def test_rateless_batch_matches_sequential_decode(self):
        scheme = RatelessXorCode(k=4, data_size_bytes=32, seed=3)
        values = values_for(scheme, 4)
        index_pool = list(range(12))
        batch = []
        for j, value in enumerate(values):
            chosen = index_pool[j: j + 5]
            batch.append(
                {i: scheme.encode_block(value, i) for i in chosen}
            )
        batch.append({0: scheme.encode_block(values[0], 0)})  # rank-deficient
        sequential = [scheme.decode(blocks) for blocks in batch]
        assert scheme.decode_batch(batch) == sequential

    def test_mixed_patterns_group_correctly(self):
        # Several entries share a pattern, several don't; grouping must not
        # leak payloads across entries.
        scheme = rs_scheme()
        values = values_for(scheme, 6)
        encoded = scheme.encode_batch(values, range(scheme.n))
        patterns = [(0, 1, 2), (4, 5, 6), (0, 1, 2), (1, 3, 5), (4, 5, 6),
                    (0, 2, 4)]
        batch = [
            {i: encoded[j][i] for i in pattern}
            for j, pattern in enumerate(patterns)
        ]
        assert scheme.decode_batch(batch) == values


class TestOracleBatching:
    def test_get_many_matches_get(self):
        scheme = rs_scheme()
        value = values_for(scheme, 1)[0]
        batched = EncodeOracle(scheme, value, op_uid=1)
        lazy = EncodeOracle(scheme, value, op_uid=1)
        blocks = batched.get_many(range(scheme.n))
        for index in range(scheme.n):
            assert blocks[index].payload == lazy.get(index).payload
            assert blocks[index].source == lazy.get(index).source

    def test_get_many_caches_and_returns_identical_objects(self):
        scheme = rs_scheme()
        oracle = EncodeOracle(scheme, values_for(scheme, 1)[0], op_uid=9)
        first = oracle.get_many([0, 5])
        assert oracle.get(5) is first[1]
        assert oracle.get_many([5, 0]) == [first[1], first[0]]

    def test_get_many_after_expiry_raises(self):
        scheme = rs_scheme()
        oracle = EncodeOracle(scheme, values_for(scheme, 1)[0], op_uid=2)
        oracle.expire()
        with pytest.raises(ProtocolError):
            oracle.get_many([0])

    def test_prime_encode_oracles_shares_one_pass(self):
        scheme = rs_scheme()
        values = values_for(scheme, 4)
        oracles = [
            EncodeOracle(scheme, value, op_uid=uid)
            for uid, value in enumerate(values)
        ]
        prime_encode_oracles(oracles, range(scheme.n))
        for value, oracle in zip(values, oracles):
            for index in range(scheme.n):
                assert oracle.get(index).payload == scheme.encode_block(
                    value, index
                )

    def test_prime_encode_oracles_mixed_schemes(self):
        schemes = [rs_scheme(), XorParityCode(k=4, data_size_bytes=32)]
        oracles = [
            EncodeOracle(scheme, os.urandom(scheme.data_size_bytes), op_uid=i)
            for i, scheme in enumerate(schemes)
        ]
        prime_encode_oracles(oracles, [0, 1, 2])
        for scheme, oracle in zip(schemes, oracles):
            for index in (0, 1, 2):
                block = oracle.get(index)
                assert block.payload == scheme.encode_block(
                    oracle._value, index
                )

    def test_prime_expired_oracle_raises(self):
        scheme = rs_scheme()
        oracle = EncodeOracle(scheme, values_for(scheme, 1)[0], op_uid=0)
        oracle.expire()
        with pytest.raises(ProtocolError):
            prime_encode_oracles([oracle], [0])
