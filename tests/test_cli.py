"""CLI tests: every subcommand, happy path and failure signalling."""

import pytest

from repro.cli import main


class TestCompare:
    def test_prints_table(self, capsys):
        code = main(["compare", "--f", "1", "--k", "2", "--data-size", "8",
                     "--max-c", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "abd" in out and "adaptive" in out
        assert out.count("\n") >= 5  # header + separator + 3 rows


class TestLowerBound:
    def test_theorem_holds(self, capsys):
        code = main(["lowerbound", "--f", "2", "--k", "2",
                     "--data-size", "16", "--c", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "theorem 1: HOLDS" in out

    def test_custom_ell(self, capsys):
        code = main(["lowerbound", "--f", "2", "--k", "4",
                     "--data-size", "32", "--c", "3", "--ell", "256"])
        assert code == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_register_choice(self, capsys):
        code = main(["lowerbound", "--register", "adaptive", "--f", "2",
                     "--k", "2", "--data-size", "16", "--c", "2"])
        assert code == 0


class TestAudit:
    @pytest.mark.parametrize("register", ["adaptive", "coded-only", "abd"])
    def test_regular_registers_pass(self, capsys, register):
        code = main(["audit", "--register", register, "--f", "1", "--k", "2",
                     "--data-size", "8", "--writers", "2", "--readers", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "pass" in out

    def test_safe_register_checked_for_safety(self, capsys):
        code = main(["audit", "--register", "safe", "--f", "1", "--k", "2",
                     "--data-size", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "strong safety" in out

    def test_atomic_register_checked_for_linearizability(self, capsys):
        code = main(["audit", "--register", "abd-atomic", "--f", "1",
                     "--data-size", "8", "--writers", "2", "--readers", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "linearizability" in out


class TestClaim1:
    def test_default_holds(self, capsys):
        code = main(["claim1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "claim 1: HOLDS" in out

    def test_empty_index_set(self, capsys):
        code = main(["claim1", "--indices", ""])
        assert code == 0

    def test_pinned_indices_vacuous(self, capsys):
        code = main(["claim1", "--k", "2", "--n", "4", "--data-size", "8",
                     "--indices", "0,1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "False" in out  # premise fails; claim vacuously holds


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_register_rejected(self):
        with pytest.raises(SystemExit):
            main(["audit", "--register", "nonsense"])
