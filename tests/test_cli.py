"""CLI tests: every subcommand, happy path and failure signalling."""

import pytest

from repro.cli import main


class TestCompare:
    def test_prints_table(self, capsys):
        code = main(["compare", "--f", "1", "--k", "2", "--data-size", "8",
                     "--max-c", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "abd" in out and "adaptive" in out
        assert out.count("\n") >= 5  # header + separator + 3 rows


class TestLowerBound:
    def test_theorem_holds(self, capsys):
        code = main(["lowerbound", "--f", "2", "--k", "2",
                     "--data-size", "16", "--c", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "theorem 1: HOLDS" in out

    def test_custom_ell(self, capsys):
        code = main(["lowerbound", "--f", "2", "--k", "4",
                     "--data-size", "32", "--c", "3", "--ell", "256"])
        assert code == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_register_choice(self, capsys):
        code = main(["lowerbound", "--register", "adaptive", "--f", "2",
                     "--k", "2", "--data-size", "16", "--c", "2"])
        assert code == 0


class TestAudit:
    @pytest.mark.parametrize("register", ["adaptive", "coded-only", "abd"])
    def test_regular_registers_pass(self, capsys, register):
        code = main(["audit", "--register", register, "--f", "1", "--k", "2",
                     "--data-size", "8", "--writers", "2", "--readers", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "pass" in out

    def test_safe_register_checked_for_safety(self, capsys):
        code = main(["audit", "--register", "safe", "--f", "1", "--k", "2",
                     "--data-size", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "strong safety" in out

    def test_atomic_register_checked_for_linearizability(self, capsys):
        code = main(["audit", "--register", "abd-atomic", "--f", "1",
                     "--data-size", "8", "--writers", "2", "--readers", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "linearizability" in out


class TestClaim1:
    def test_default_holds(self, capsys):
        code = main(["claim1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "claim 1: HOLDS" in out

    def test_empty_index_set(self, capsys):
        code = main(["claim1", "--indices", ""])
        assert code == 0

    def test_pinned_indices_vacuous(self, capsys):
        code = main(["claim1", "--k", "2", "--n", "4", "--data-size", "8",
                     "--indices", "0,1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "False" in out  # premise fails; claim vacuously holds


class TestSweep:
    def test_prints_table_and_passes_shapes(self, capsys):
        code = main(["sweep", "--fs", "1", "--ks", "2", "--cs", "1,2",
                     "--data-sizes", "16"])
        out = capsys.readouterr().out
        assert code == 0
        assert "peak_bo_state_bits" in out
        assert "abd" in out and "adaptive" in out

    def test_writes_json_and_journal_then_resumes(self, capsys, tmp_path):
        output = tmp_path / "sweep.json"
        checkpoint = tmp_path / "sweep.journal.jsonl"
        args = ["sweep", "--registers", "adaptive", "--fs", "1",
                "--ks", "2", "--cs", "1,2", "--data-sizes", "16",
                "--output", str(output), "--checkpoint", str(checkpoint)]
        assert main(args) == 0
        assert output.exists()
        assert checkpoint.exists()
        first = output.read_text()
        # Second invocation resumes from the complete journal and must
        # reproduce the same measured table.
        assert main(args + ["--resume"]) == 0
        from repro.analysis import SweepResult

        before = SweepResult.from_json(first)
        after = SweepResult.load(output)
        assert before.to_json(include_timing=False) == \
            after.to_json(include_timing=False)

    def test_with_crashes_runs_both_scenarios(self, capsys):
        code = main(["sweep", "--registers", "adaptive", "--fs", "1",
                     "--ks", "2", "--cs", "1", "--data-sizes", "16",
                     "--with-crashes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "churn+crash" in out


class TestKeyspace:
    ARGS = ["keyspace", "--keys", "256", "--shards", "8",
            "--waves", "2", "--wave-size", "32", "--hot-keys", "2",
            "--hot-weight", "0.95", "--vnodes", "16",
            "--reads-per-wave", "2"]

    def test_prints_table_advantages_and_passes_shapes(self, capsys):
        code = main(self.ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "aggregate_peak_bo_state_bits" in out
        assert "hotspot" in out and "uniform" in out
        assert "coded-only/adaptive" in out

    def test_writes_json(self, capsys, tmp_path):
        output = tmp_path / "keyspace.json"
        assert main(self.ARGS + ["--output", str(output)]) == 0
        from repro.analysis import KeyspaceSweepResult

        loaded = KeyspaceSweepResult.load(output)
        assert len(loaded) == 4

    def test_unknown_skew_rejected(self, capsys):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            main(self.ARGS + ["--skews", "pareto"])


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_register_rejected(self):
        with pytest.raises(SystemExit):
            main(["audit", "--register", "nonsense"])
