"""Storage-meter tests: Definitions 2 and 6 wired into the kernel."""

from repro.registers import (
    AdaptiveRegister,
    RegisterSetup,
    SafeCodedRegister,
)
from repro.sim import FairScheduler, Simulation
from repro.storage import PeakTracker, StorageMeter
from repro.workloads import WorkloadSpec, make_value, run_register_workload


def fresh_sim(f=1, k=2, data=16, register_cls=SafeCodedRegister):
    setup = RegisterSetup(f=f, k=k, data_size_bytes=data)
    protocol = register_cls(setup)
    return Simulation(protocol), setup


class TestInitialCost:
    def test_initial_state_is_n_pieces(self):
        sim, setup = fresh_sim()
        meter = StorageMeter(sim)
        expected = setup.n * setup.data_size_bits // setup.k
        assert meter.cost_bits() == expected
        assert meter.bo_only_cost_bits() == expected

    def test_per_object_bits(self):
        sim, setup = fresh_sim()
        meter = StorageMeter(sim)
        shard_bits = setup.data_size_bits // setup.k
        for bo_id in range(setup.n):
            assert meter.bo_bits(bo_id) == shard_bits


class TestChannelAccounting:
    def test_pending_args_counted(self):
        """Triggered-but-unapplied RMW parameters are client state (Def. 2)."""
        sim, setup = fresh_sim()
        meter = StorageMeter(sim)
        base = meter.cost_bits()
        client = sim.add_client("w0")
        client.enqueue_write(make_value(setup, "x"))
        sim.step_client(client)   # round 1: readValue triggers carry no blocks
        assert meter.breakdown().pending_args_bits == 0
        # Drain round 1, step to round 2 (update RMWs carry pieces).
        while client.blocked_wait() is not None:
            rmw = sim.appliable_rmws()[0]
            sim.apply_rmw(rmw.rmw_id)
            sim.deliver_response(rmw.rmw_id)
        sim.step_client(client)
        pending_bits = meter.breakdown().pending_args_bits
        shard_bits = setup.data_size_bits // setup.k
        assert pending_bits == setup.n * shard_bits
        assert meter.cost_bits() >= base + pending_bits

    def test_undelivered_response_blocks_counted(self):
        """Responses that took effect but were not delivered are bo state."""
        sim, setup = fresh_sim()
        meter = StorageMeter(sim)
        client = sim.add_client("r0")
        client.enqueue_read()
        sim.step_client(client)  # triggers read RMWs on all objects
        rmw = sim.appliable_rmws()[0]
        before = meter.bo_bits(rmw.bo_id)
        sim.apply_rmw(rmw.rmw_id)
        shard_bits = setup.data_size_bits // setup.k
        # The response carries a copy of the object's chunk.
        assert meter.bo_bits(rmw.bo_id) == before + shard_bits
        assert meter.breakdown().undelivered_response_bits == shard_bits
        sim.deliver_response(rmw.rmw_id)
        assert meter.bo_bits(rmw.bo_id) == before

    def test_crashed_bo_holds_no_bits(self):
        sim, setup = fresh_sim()
        meter = StorageMeter(sim)
        sim.crash_base_object(0)
        assert meter.bo_bits(0) == 0
        expected = (setup.n - 1) * setup.data_size_bits // setup.k
        assert meter.cost_bits() == expected


class TestOpContribution:
    def test_initial_value_contribution(self):
        from repro.registers.base import INITIAL_OP_UID

        sim, setup = fresh_sim()
        meter = StorageMeter(sim)
        # v0 has n distinct pieces across the objects: n * D/k bits.
        expected = setup.n * setup.data_size_bits // setup.k
        assert meter.op_contribution_bits(INITIAL_OP_UID) == expected

    def test_bo_subset_restriction(self):
        from repro.registers.base import INITIAL_OP_UID

        sim, setup = fresh_sim()
        meter = StorageMeter(sim)
        shard_bits = setup.data_size_bits // setup.k
        assert meter.op_contribution_bits(
            INITIAL_OP_UID, bo_subset=[0, 1]
        ) == 2 * shard_bits

    def test_write_contribution_grows_with_applies(self):
        sim, setup = fresh_sim(register_cls=AdaptiveRegister)
        meter = StorageMeter(sim)
        client = sim.add_client("w0")
        client.enqueue_write(make_value(setup, "y"))
        sim.step_client(client)
        # Drain round 1.
        while client.blocked_wait() is not None:
            rmw = sim.appliable_rmws()[0]
            sim.apply_rmw(rmw.rmw_id)
            sim.deliver_response(rmw.rmw_id)
        sim.step_client(client)  # round 2 triggers updates
        op_uid = client.current.op_uid
        assert meter.op_contribution_bits(op_uid) == 0
        shard_bits = setup.data_size_bits // setup.k
        # Round 1 may have left a straggler readValue RMW pending; pick the
        # first *update* RMW (the one that deposits a piece).
        update = next(
            rmw for rmw in sim.appliable_rmws() if rmw.label == "update"
        )
        sim.apply_rmw(update.rmw_id)
        assert meter.op_contribution_bits(op_uid) == shard_bits

    def test_contribution_of_unknown_op_is_zero(self):
        sim, _ = fresh_sim()
        assert StorageMeter(sim).op_contribution_bits(12345) == 0


class TestPeakTracker:
    def test_peak_at_least_final(self):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=16)
        result = run_register_workload(
            AdaptiveRegister,
            setup,
            WorkloadSpec(writers=2, writes_per_writer=1, readers=1,
                         reads_per_reader=1),
            scheduler=FairScheduler(),
        )
        assert result.peak_storage_bits >= result.final_bo_state_bits
        assert result.peak_storage_bits >= result.peak_bo_state_bits

    def test_series_collection(self):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=16)
        result = run_register_workload(
            AdaptiveRegister,
            setup,
            WorkloadSpec(writers=1, writes_per_writer=1, readers=0),
            keep_series=True,
        )
        assert result.series
        assert max(point[1] for point in result.series) == result.peak_storage_bits

    def test_tracker_standalone(self):
        sim, setup = fresh_sim()
        meter = StorageMeter(sim)
        tracker = PeakTracker(meter)
        assert tracker.peak_bits == meter.cost_bits()
