"""Incremental storage ledger vs the full-walk reference meter.

The tentpole invariant of the O(1)-per-action loop: at *every* scheduler
action, for every register, under crashes and random schedules, the
delta-maintained :class:`StorageLedger` reports bit-identical Definition 2
numbers to :class:`ReferenceStorageMeter`'s full state walk.
"""

import pytest

from repro.errors import MeasurementError
from repro.registers import (
    ABDRegister,
    AdaptiveRegister,
    CASRegister,
    CodedOnlyRegister,
    RegisterSetup,
    SafeCodedRegister,
    replication_setup,
)
from repro.sim import (
    FailurePlan,
    RandomScheduler,
    Simulation,
    at_time,
    seeded_crash_schedule,
)
from repro.storage import ReferenceStorageMeter, StorageMeter
from repro.workloads import (
    WorkloadSpec,
    churn,
    make_value,
    run_register_workload,
    staggered_writers,
)

CODED_SETUP = RegisterSetup(f=2, k=2, data_size_bytes=16)

REGISTERS = [
    (ABDRegister, replication_setup(f=2, data_size_bytes=16)),
    (CodedOnlyRegister, CODED_SETUP),
    (CASRegister, CODED_SETUP),
    (AdaptiveRegister, CODED_SETUP),
    (SafeCodedRegister, CODED_SETUP),
]


def assert_ledger_matches_reference(sim):
    """Ledger == full walk: breakdown fields and every per-object count."""
    ledger = StorageMeter(sim)
    reference = ReferenceStorageMeter(sim)
    assert ledger.breakdown() == reference.breakdown()
    for bo in sim.base_objects:
        assert ledger.bo_bits(bo.bo_id) == reference.bo_bits(bo.bo_id), (
            f"bo {bo.bo_id} diverged"
        )


class TestRandomizedParity:
    """All five registers x RandomScheduler x crash plans, every action."""

    @pytest.mark.parametrize("register_cls,setup", REGISTERS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_ledger_equals_full_walk_at_every_action(
        self, register_cls, setup, seed
    ):
        spec = WorkloadSpec(
            writers=2, writes_per_writer=2, readers=2, reads_per_reader=1,
            seed=seed,
        )

        def configure(sim, scheduler):
            # Crash one base object mid-run and one client early; both
            # exercise the ledger's drop paths while work is in flight.
            plan = FailurePlan(scheduler)
            plan.crash_base_object(0, at_time(7 + seed))
            plan.crash_client("w0", at_time(11 + seed))
            return plan

        result = run_register_workload(
            register_cls,
            setup,
            spec,
            scheduler=RandomScheduler(seed=seed),
            configure=configure,
            require_quiescence=False,
            audit_storage_every=1,
        )
        assert_ledger_matches_reference(result.sim)
        # The audited run must have made real progress to be meaningful.
        assert result.run.steps > 10

    @pytest.mark.parametrize("register_cls,setup", REGISTERS)
    def test_parity_after_fair_quiescent_run(self, register_cls, setup):
        result = run_register_workload(
            register_cls,
            setup,
            WorkloadSpec(writers=3, writes_per_writer=1, readers=2,
                         reads_per_reader=1),
            audit_storage_every=5,
        )
        assert result.run.quiescent
        assert_ledger_matches_reference(result.sim)


class TestPatternScenarioParity:
    """Pattern workloads (churn, staggered) x every register x crash
    injection: the ledger must equal the full walk at *every* action, not
    just under uniform writer waves — the scenario-sweep engine drives
    exactly these shapes (``audit_storage_every=1`` re-checks ledger ==
    reference after each scheduler action; a divergence raises
    :class:`~repro.errors.MeasurementError` mid-run)."""

    @pytest.mark.parametrize("register_cls,setup", REGISTERS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_churn_with_crashes_audits_every_action(
        self, register_cls, setup, seed
    ):
        run = churn(register_cls, setup, waves=2, clients_per_wave=2,
                    seed=seed)
        schedule = seeded_crash_schedule(
            seed, bo_count=setup.n, bo_crashes=1,
            client_names=("c0-0", "c0-1"), client_crashes=1,
        )
        result = run.drain(
            configure=lambda sim, sch: schedule.install(sch),
            audit_storage_every=1,
        )
        assert result.quiescent
        assert_ledger_matches_reference(run.sim)
        assert run.sim.crashed_base_objects() == 1

    @pytest.mark.parametrize("register_cls,setup", REGISTERS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_staggered_with_crashes_audits_every_action(
        self, register_cls, setup, seed
    ):
        run = staggered_writers(register_cls, setup, writers=3,
                                writes_each=2, seed=seed)
        schedule = seeded_crash_schedule(
            seed, bo_count=setup.n, bo_crashes=2,
            client_names=("sw0", "sw1", "sw2"), client_crashes=1,
        )
        result = run.drain(
            scheduler=RandomScheduler(seed=seed),
            configure=lambda sim, sch: schedule.install(sch),
            audit_storage_every=1,
        )
        assert result.quiescent
        assert_ledger_matches_reference(run.sim)
        # Crash-free peaks would count all n objects; the audited run
        # must really have killed its scheduled victims.
        assert run.sim.crashed_base_objects() == 2


class TestCrashEdgeCases:
    def fresh(self, register_cls=SafeCodedRegister):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=16)
        sim = Simulation(register_cls(setup))
        return sim, setup

    def start_write(self, sim, setup, name="w0"):
        client = sim.add_client(name)
        client.enqueue_write(make_value(setup, name))
        sim.step_client(client)
        return client

    def test_bo_crash_with_undelivered_response(self):
        """Crash after apply but before delivery drops the response bits."""
        sim, setup = self.fresh()
        client = sim.add_client("r0")
        client.enqueue_read()
        sim.step_client(client)
        rmw = sim.appliable_rmws()[0]
        sim.apply_rmw(rmw.rmw_id)
        assert StorageMeter(sim).breakdown().undelivered_response_bits > 0
        assert_ledger_matches_reference(sim)
        sim.crash_base_object(rmw.bo_id)
        assert StorageMeter(sim).breakdown().undelivered_response_bits == 0
        assert StorageMeter(sim).bo_bits(rmw.bo_id) == 0
        assert_ledger_matches_reference(sim)

    def test_trigger_on_crashed_object_counts_nothing(self):
        sim, setup = self.fresh()
        sim.crash_base_object(0)
        before = StorageMeter(sim).breakdown()
        self.start_write(sim, setup)
        # The dropped trigger on object 0 must not enter the args ledger.
        assert_ledger_matches_reference(sim)
        after = StorageMeter(sim).breakdown()
        assert after.bo_state_bits == before.bo_state_bits

    def test_client_crash_keeps_responses_in_storage(self):
        """A crashed client's applied-but-undelivered responses stay billed
        to the base object until dropped at delivery (Definition 2)."""
        sim, setup = self.fresh()
        self.start_write(sim, setup)
        rmw = sim.appliable_rmws()[0]
        sim.apply_rmw(rmw.rmw_id)
        sim.crash_client("w0")
        assert_ledger_matches_reference(sim)
        sim.deliver_response(rmw.rmw_id)  # drop path
        assert_ledger_matches_reference(sim)

    def test_double_bo_crash_is_idempotent(self):
        sim, setup = self.fresh()
        self.start_write(sim, setup)
        sim.crash_base_object(1)
        sim.crash_base_object(1)
        assert_ledger_matches_reference(sim)

    def test_pending_args_of_crashed_client_still_counted(self):
        """Triggered RMWs survive client crashes; so do their parameters."""
        sim, setup = self.fresh()
        self.start_write(sim, setup)
        sim.crash_client("w0")
        assert_ledger_matches_reference(sim)
        # The surviving pending RMWs may still take effect.
        rmw = sim.appliable_rmws()[0]
        sim.apply_rmw(rmw.rmw_id)
        assert_ledger_matches_reference(sim)


class TestAuditAndResync:
    def test_audit_passes_on_clean_sim(self):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=16)
        sim = Simulation(SafeCodedRegister(setup))
        StorageMeter(sim).audit()

    def test_audit_detects_out_of_band_mutation(self):
        """Rewriting state behind the kernel's back must be caught."""
        setup = RegisterSetup(f=1, k=2, data_size_bytes=16)
        sim = Simulation(SafeCodedRegister(setup))
        meter = StorageMeter(sim)
        meter.audit()
        sim.base_objects[0].state = None  # whitebox tampering
        with pytest.raises(MeasurementError):
            meter.audit()

    def test_resync_recovers_from_out_of_band_mutation(self):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=16)
        sim = Simulation(SafeCodedRegister(setup))
        meter = StorageMeter(sim)
        sim.base_objects[0].state = None
        sim.storage_ledger.resync()
        meter.audit()
        assert_ledger_matches_reference(sim)

    def test_ledger_attaches_mid_run(self):
        """A ledger created after actions seeds from the live state."""
        setup = RegisterSetup(f=1, k=2, data_size_bytes=16)
        sim = Simulation(SafeCodedRegister(setup))
        client = sim.add_client("w0")
        client.enqueue_write(make_value(setup, "w0"))
        sim.step_client(client)
        rmw = sim.appliable_rmws()[0]
        sim.apply_rmw(rmw.rmw_id)
        # First meter access happens only now.
        assert_ledger_matches_reference(sim)
