"""Block-discovery tests: structural traversal and Definition 6 dedup."""

from dataclasses import dataclass

from repro.coding.oracles import BlockSource, CodeBlock
from repro.storage import (
    collect_blocks,
    distinct_source_bits,
    distinct_source_bits_many,
    sources_present,
    total_bits,
)


def block(op_uid: int, index: int, size_bits: int = 64) -> CodeBlock:
    return CodeBlock(
        payload=bytes(size_bits // 8),
        index=index,
        source=BlockSource(op_uid, index),
        size_bits=size_bits,
    )


@dataclass(frozen=True)
class Holder:
    name: str
    inner: object


class TestCollectBlocks:
    def test_bare_block(self):
        b = block(1, 0)
        assert list(collect_blocks(b)) == [b]

    def test_none_and_scalars_are_empty(self):
        for leaf in (None, 5, 2.5, True, "text", b"bytes", bytearray(b"x")):
            assert list(collect_blocks(leaf)) == []

    def test_list_and_tuple(self):
        blocks = [block(1, 0), block(1, 1)]
        assert list(collect_blocks(blocks)) == blocks
        assert list(collect_blocks(tuple(blocks))) == blocks

    def test_dict_values_only(self):
        b = block(2, 3)
        found = list(collect_blocks({"key": b, "other": 7}))
        assert found == [b]

    def test_nested_dataclass(self):
        b = block(4, 1)
        holder = Holder("outer", Holder("inner", [b, None]))
        assert list(collect_blocks(holder)) == [b]

    def test_set_traversal(self):
        b = block(5, 2)
        assert list(collect_blocks({b})) == [b]

    def test_deep_mixed_structure(self):
        b1, b2, b3 = block(1, 0), block(1, 1), block(2, 0)
        structure = {"a": [b1, (b2,)], "b": Holder("x", {"c": b3})}
        found = set(collect_blocks(structure))
        assert found == {b1, b2, b3}

    def test_opaque_object_is_leaf(self):
        class Opaque:
            pass

        assert list(collect_blocks(Opaque())) == []


class TestAccounting:
    def test_total_bits_sums_sizes(self):
        blocks = [block(1, 0, 64), block(1, 1, 128)]
        assert total_bits(blocks) == 192

    def test_distinct_source_bits_dedupes_indices(self):
        # Two instances of block (op=1, i=0) pin the same information.
        blocks = [block(1, 0), block(1, 0), block(1, 1)]
        assert distinct_source_bits(blocks, op_uid=1) == 128

    def test_distinct_source_bits_filters_by_op(self):
        blocks = [block(1, 0), block(2, 0), block(2, 1)]
        assert distinct_source_bits(blocks, op_uid=2) == 128
        assert distinct_source_bits(blocks, op_uid=1) == 64
        assert distinct_source_bits(blocks, op_uid=3) == 0

    def test_sources_present(self):
        blocks = [block(1, 0), block(2, 5)]
        assert sources_present(blocks) == {
            BlockSource(1, 0),
            BlockSource(2, 5),
        }

    def test_distinct_source_bits_many_matches_per_op_calls(self):
        blocks = [block(1, 0), block(1, 0), block(2, 0), block(2, 1),
                  block(3, 4, 32)]
        uids = [1, 2, 3, 4]
        batched = distinct_source_bits_many(blocks, uids)
        assert batched == {
            uid: distinct_source_bits(blocks, uid) for uid in uids
        }

    def test_distinct_source_bits_many_empty_uid_set(self):
        assert distinct_source_bits_many([block(1, 0)], []) == {}


class TestIterativeWalk:
    def test_deep_nesting_does_not_hit_recursion_limit(self):
        """A GC-free register accreting one wrapper per write must still be
        meterable: the walk is an explicit stack, not recursion."""
        leaf = block(7, 0)
        nested: object = leaf
        for _ in range(10_000):
            nested = [nested]
        assert [b.source.op_uid for b in collect_blocks(nested)] == [7]
        assert total_bits(nested) == leaf.size_bits

    def test_preorder_matches_construction_order(self):
        """The iterative walk preserves the recursive DFS pre-order."""
        first, second, third = block(1, 0), block(1, 1), block(1, 2)
        structure = {
            "a": [first, (second,)],
            "b": Holder("h", third),
        }
        assert list(collect_blocks(structure)) == [first, second, third]

    def test_dataclass_field_cache_survives_many_instances(self):
        holders = [Holder(str(i), block(i, 0)) for i in range(50)]
        assert len(list(collect_blocks(holders))) == 50
