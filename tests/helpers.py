"""Shared test fixtures: a minimal protocol and run helpers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.registers.base import RegisterProtocol, RegisterSetup
from repro.sim.actions import WaitResponses
from repro.sim.kernel import Simulation


@dataclass(frozen=True)
class CounterState:
    """Trivial base-object state for kernel lifecycle tests."""

    value: int


def increment_rmw(state: CounterState, args: int) -> tuple[CounterState, int]:
    """Add ``args`` to the counter; respond with the new value."""
    new = CounterState(state.value + args)
    return new, new.value


def read_counter_rmw(state: CounterState, args: None) -> tuple[CounterState, int]:
    return state, state.value


class CounterProtocol(RegisterProtocol):
    """Not a register at all — a counter used to unit-test the kernel.

    ``write`` increments every base object by 1 and waits for a quorum;
    ``read`` collects a quorum of counter values and returns their max.
    """

    name = "counter"

    def initial_bo_state(self, bo_id: int) -> CounterState:
        return CounterState(0)

    def write_gen(self, ctx, value):
        handles = [
            ctx.trigger(bo_id, increment_rmw, 1, label="inc")
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        return "ok"

    def read_gen(self, ctx):
        handles = [
            ctx.trigger(bo_id, read_counter_rmw, None, label="get")
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        values = [handle.response for handle in handles if handle.responded]
        return max(values)


def small_setup(f: int = 1, k: int = 2, data_size_bytes: int = 8) -> RegisterSetup:
    return RegisterSetup(f=f, k=k, data_size_bytes=data_size_bytes)


def counter_sim(f: int = 1, k: int = 2) -> Simulation:
    return Simulation(CounterProtocol(small_setup(f=f, k=k)))
