"""Message-passing simulator tests."""

import pytest

from repro.coding.oracles import BlockSource, CodeBlock
from repro.errors import ProtocolError, SimulationError
from repro.msgnet import (
    FairMsgScheduler,
    Network,
    RandomMsgScheduler,
    Receive,
    run_network,
)


def echo_body(process):
    """Reply to every message with its payload."""
    while True:
        message = yield Receive()
        process.send(message.sender, ("echo", message.payload))


def one_shot_body(process, recipient, payload, results):
    process.send(recipient, payload)
    message = yield Receive()
    results.append(message.payload)


class TestTransport:
    def test_send_and_deliver(self):
        network = Network()
        a = network.add_process("a")
        b = network.add_process("b")
        results = []
        b.start(echo_body(b))
        a.start(one_shot_body(a, "b", "hello", results))
        run_network(network, FairMsgScheduler())
        assert results == [("echo", "hello")]

    def test_messages_pending_until_delivered(self):
        network = Network()
        network.add_process("a")
        b = network.add_process("b")
        b.start(echo_body(b))
        network.send("a", "b", "x")
        assert len(network.in_flight) == 1
        [message] = network.deliverable()
        network.deliver(message.msg_id)
        assert not network.in_flight

    def test_send_to_unknown_process_raises(self):
        network = Network()
        network.add_process("a")
        with pytest.raises(ProtocolError):
            network.send("a", "ghost", "x")

    def test_duplicate_process_rejected(self):
        network = Network()
        network.add_process("a")
        with pytest.raises(SimulationError):
            network.add_process("a")

    def test_no_fifo_assumed(self):
        """A scheduler may reorder same-link messages arbitrarily."""
        network = Network()
        received = []

        def sink_body(process):
            while True:
                message = yield Receive()
                received.append(message.payload)

        sink = network.add_process("sink")
        sink.start(sink_body(sink))
        network.add_process("src")
        network.send("src", "sink", 1)
        network.send("src", "sink", 2)
        # Deliver in reverse order: allowed.
        ids = sorted(network.in_flight)
        network.deliver(ids[1])
        sink.step()
        network.deliver(ids[0])
        sink.step()
        assert received == [2, 1]


class TestCrashes:
    def test_crashed_recipient_drops_in_flight(self):
        network = Network()
        network.add_process("a")
        network.add_process("b")
        network.send("a", "b", "x")
        network.crash_process("b")
        assert not network.in_flight
        assert not network.deliverable()

    def test_send_to_crashed_is_dropped_silently(self):
        network = Network()
        network.add_process("a")
        network.add_process("b")
        network.crash_process("b")
        network.send("a", "b", "x")
        assert not network.in_flight

    def test_crashed_process_not_runnable(self):
        network = Network()
        a = network.add_process("a")
        a.start(echo_body(a))
        network.crash_process("a")
        assert not a.runnable()


class TestScheduling:
    def test_quiescence(self):
        network = Network()
        assert network.quiescent()

    def test_fair_scheduler_drains_ping_pong(self):
        network = Network()
        results = []
        b = network.add_process("b")
        b.start(echo_body(b))
        for index in range(3):
            name = f"a{index}"
            a = network.add_process(name)
            a.start(one_shot_body(a, "b", index, results))
        steps = run_network(network, FairMsgScheduler())
        assert steps > 0
        assert sorted(payload for _, payload in results) == [0, 1, 2]

    def test_random_scheduler_deterministic_per_seed(self):
        def run_once(seed):
            network = Network()
            results = []
            b = network.add_process("b")
            b.start(echo_body(b))
            a = network.add_process("a")
            a.start(one_shot_body(a, "b", "x", results))
            steps = run_network(network, RandomMsgScheduler(seed))
            return steps, results

        assert run_once(5) == run_once(5)


class TestStorageInFlight:
    def test_code_blocks_in_messages_are_charged(self):
        network = Network()
        network.add_process("a")
        network.add_process("b")
        block = CodeBlock(
            payload=bytes(8), index=0, source=BlockSource(1, 0), size_bits=64
        )
        network.send("a", "b", ("write", block))
        assert network.storage_bits_in_flight() == 64
        [message] = network.deliverable()
        network.deliver(message.msg_id)
        assert network.storage_bits_in_flight() == 0

    def test_metadata_messages_are_free(self):
        network = Network()
        network.add_process("a")
        network.add_process("b")
        network.send("a", "b", ("read-ts", 7, "meta"))
        assert network.storage_bits_in_flight() == 0
