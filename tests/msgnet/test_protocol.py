"""Unit tests for the sans-I/O ABD protocol machines.

These drive :mod:`repro.msgnet.protocol` directly — no network, no
sockets, no scheduler — by feeding payloads by hand and asserting on the
returned outgoing messages and the decision log. Both transports (the
simulated :class:`~repro.msgnet.network.Network` and the asyncio TCP
service) run exactly these machines, so every property proven here holds
for both.
"""

import pytest

from repro.coding.replication import ReplicationCode
from repro.errors import ProtocolError
from repro.msgnet.protocol import (
    PING,
    READ,
    READ_TS,
    REPLY_ACK,
    REPLY_PONG,
    REPLY_STATUS,
    REPLY_TS,
    REPLY_VALUE,
    STATUS,
    WRITE,
    ReadOperation,
    ServerProtocol,
    WriteOperation,
)
from repro.registers.timestamps import TS_ZERO, Timestamp

D = 8
SERVERS = ["s0", "s1", "s2"]
MAJORITY = 2


def make_scheme(n: int = 3) -> ReplicationCode:
    return ReplicationCode(D, n=n)


def make_server(index: int = 0, **kwargs) -> ServerProtocol:
    return ServerProtocol(
        f"s{index}", make_scheme(), index, bytes(D), **kwargs
    )


def block_for(value: bytes, index: int, op_uid: int = 7):
    writer = WriteOperation(
        "w", op_uid, value, make_scheme(), SERVERS, MAJORITY
    )
    return writer._block_for(index)


class TestServerProtocol:
    def test_read_ts_returns_current_timestamp(self):
        server = make_server()
        [(recipient, reply)] = server.handle("c", (READ_TS, (0, 1)))
        assert recipient == "c"
        assert reply == (REPLY_TS, (0, 1), TS_ZERO)

    def test_write_adopts_strictly_newer(self):
        server = make_server()
        ts = Timestamp(1, "w")
        block = block_for(b"x" * D, 0)
        [(_, reply)] = server.handle("c", (WRITE, (0, 2), ts, block))
        assert reply == (REPLY_ACK, (0, 2))
        assert server.state.ts == ts
        assert server.state.block == block
        assert server.applied_count == 1

    def test_equal_ts_replay_acked_without_apply(self):
        server = make_server()
        ts = Timestamp(1, "w")
        server.handle("c", (WRITE, (0, 2), ts, block_for(b"x" * D, 0)))
        stale = block_for(b"y" * D, 0)
        [(_, reply)] = server.handle("c", (WRITE, (0, 2), ts, stale))
        assert reply == (REPLY_ACK, (0, 2))  # retried write is safe
        assert server.state.block != stale  # ...but state is untouched
        assert server.applied_count == 1

    def test_older_ts_ignored(self):
        server = make_server()
        server.handle(
            "c", (WRITE, (0, 2), Timestamp(5, "w"), block_for(b"x" * D, 0))
        )
        server.handle(
            "c", (WRITE, (1, 2), Timestamp(3, "v"), block_for(b"y" * D, 0))
        )
        assert server.state.ts == Timestamp(5, "w")

    def test_read_returns_ts_and_block(self):
        server = make_server()
        ts = Timestamp(2, "w")
        block = block_for(b"z" * D, 0)
        server.handle("c", (WRITE, (0, 2), ts, block))
        [(_, reply)] = server.handle("r", (READ, (9, 1)))
        assert reply == (REPLY_VALUE, (9, 1), ts, block)

    def test_status_reports_bits_and_applied_count(self):
        server = make_server()
        [(_, reply)] = server.handle("c", (STATUS, ("admin", 0)))
        tag, _rid, ts, size_bits, applied = reply
        assert tag == REPLY_STATUS
        assert ts == TS_ZERO
        assert size_bits == D * 8
        assert applied == 0

    def test_ping_pongs(self):
        server = make_server()
        [(_, reply)] = server.handle("c", (PING, (0, 0)))
        assert reply == (REPLY_PONG, (0, 0))

    def test_unknown_tag_raises(self):
        server = make_server()
        with pytest.raises(ProtocolError):
            server.handle("c", ("gossip", (0, 1)))

    def test_on_apply_fires_before_ack(self):
        """The write-ahead contract: journal append precedes the ack."""
        events = []
        server = make_server(on_apply=lambda ts, block: events.append(
            ("applied", ts.num)
        ))
        replies = server.handle(
            "c", (WRITE, (0, 2), Timestamp(1, "w"), block_for(b"x" * D, 0))
        )
        events.append(("acked", replies[0][1][0]))
        assert events == [("applied", 1), ("acked", REPLY_ACK)]

    def test_on_apply_skipped_for_replay(self):
        applies = []
        server = make_server(on_apply=lambda ts, block: applies.append(ts))
        ts = Timestamp(1, "w")
        server.handle("c", (WRITE, (0, 2), ts, block_for(b"x" * D, 0)))
        server.handle("c", (WRITE, (0, 2), ts, block_for(b"x" * D, 0)))
        assert len(applies) == 1


class TestWriteOperation:
    def make(self, decisions=None):
        return WriteOperation(
            "w", 3, b"v" * D, make_scheme(), SERVERS, MAJORITY,
            decisions=decisions,
        )

    def test_start_broadcasts_read_ts(self):
        op = self.make()
        outgoing = op.start()
        assert [recipient for recipient, _ in outgoing] == SERVERS
        assert all(p == (READ_TS, (3, 1)) for _, p in outgoing)

    def test_two_phase_happy_path(self):
        decisions = []
        op = self.make(decisions)
        op.start()
        assert op.on_message("s0", (REPLY_TS, (3, 1), TS_ZERO)) == []
        phase2 = op.on_message("s1", (REPLY_TS, (3, 1), Timestamp(4, "u")))
        # Phase 1 quorum reached: next ts above everything seen, block
        # per server index.
        assert [r for r, _ in phase2] == SERVERS
        assert all(p[0] == WRITE and p[2] == Timestamp(5, "w")
                   for _, p in phase2)
        assert not op.done
        op.on_message("s2", (REPLY_ACK, (3, 2)))
        op.on_message("s0", (REPLY_ACK, (3, 2)))
        assert op.done and op.result == "ok"
        assert decisions == [
            ("phase1-quorum", 3, 2),
            ("choose-ts", 3, 5, "w"),
            ("phase2-quorum", 3, 2),
        ]

    def test_duplicate_replies_do_not_complete_quorum(self):
        op = self.make()
        op.start()
        op.on_message("s0", (REPLY_TS, (3, 1), TS_ZERO))
        assert op.on_message("s0", (REPLY_TS, (3, 1), TS_ZERO)) == []
        assert op.chosen_ts is None  # still one distinct responder

    def test_mismatched_request_id_ignored(self):
        op = self.make()
        op.start()
        assert op.on_message("s0", (REPLY_TS, (99, 1), TS_ZERO)) == []
        assert op.on_message("s0", (REPLY_ACK, (3, 1))) == []

    def test_resend_targets_only_silent_servers(self):
        op = self.make()
        op.start()
        op.on_message("s1", (REPLY_TS, (3, 1), TS_ZERO))
        resent = op.resend()
        assert [recipient for recipient, _ in resent] == ["s0", "s2"]
        assert all(p == (READ_TS, (3, 1)) for _, p in resent)

    def test_resend_after_done_is_empty(self):
        op = self.make()
        op.start()
        for name in SERVERS[:2]:
            op.on_message(name, (REPLY_TS, (3, 1), TS_ZERO))
        for name in SERVERS[:2]:
            op.on_message(name, (REPLY_ACK, (3, 2)))
        assert op.done and op.resend() == []

    def test_late_phase1_reply_after_quorum_is_ignored(self):
        op = self.make()
        op.start()
        op.on_message("s0", (REPLY_TS, (3, 1), TS_ZERO))
        op.on_message("s1", (REPLY_TS, (3, 1), TS_ZERO))
        # s2's straggler phase-1 reply must not restart phase 2.
        assert op.on_message("s2", (REPLY_TS, (3, 1), Timestamp(9, "x"))) == []
        assert op.chosen_ts == Timestamp(1, "w")


class TestReadOperation:
    def test_selects_freshest_replica(self):
        decisions = []
        op = ReadOperation(
            "r", 6, make_scheme(), SERVERS, MAJORITY, decisions=decisions
        )
        op.start()
        old = block_for(b"o" * D, 0, op_uid=1)
        new = block_for(b"n" * D, 1, op_uid=2)
        op.on_message("s0", (REPLY_VALUE, (6, 1), Timestamp(1, "a"), old))
        op.on_message("s1", (REPLY_VALUE, (6, 1), Timestamp(2, "b"), new))
        assert op.done
        assert op.result == b"n" * D
        assert decisions == [("read-quorum", 6, 2), ("read-select", 6, 2, "b")]

    def test_initial_read_returns_v0(self):
        scheme = make_scheme()
        op = ReadOperation("r", 0, scheme, SERVERS, MAJORITY)
        op.start()
        initial = block_for(bytes(D), 0, op_uid=-1)
        op.on_message("s0", (REPLY_VALUE, (0, 1), TS_ZERO, initial))
        op.on_message("s2", (REPLY_VALUE, (0, 1), TS_ZERO, initial))
        assert op.result == bytes(D)


class TestDeliveryReplay:
    def test_sim_deliveries_replay_through_fresh_machines(self):
        """The recorded delivery log is sufficient to re-drive fresh
        machines to the same result — the replay half of the parity
        story."""
        from repro.msgnet import MsgABDSystem

        system = MsgABDSystem(f=1, data_size_bytes=D)
        system.add_writer("w0", b"q" * D)
        system.run()
        system.add_reader("r0")
        system.run()

        fresh = ReadOperation(
            "r0", 1, make_scheme(), system.server_names, system.majority
        )
        fresh.start()
        for sender, payload in system.deliveries["r0"]:
            fresh.on_message(sender, payload)
        [read] = [op for op in system.ops if op.kind.value == "read"]
        assert fresh.done and fresh.result == read.result == b"q" * D
