"""Message-passing ABD tests + equivalence with the shared-memory model."""

import pytest

from repro.msgnet import FairMsgScheduler, MsgABDSystem, RandomMsgScheduler
from repro.registers import ABDRegister, replication_setup
from repro.spec import check_strong_regularity, check_weak_regularity
from repro.workloads import WorkloadSpec, run_register_workload


def value_of(tag: str, size: int = 16) -> bytes:
    return (tag.encode() * size)[:size]


class TestBasics:
    def test_write_then_read(self):
        system = MsgABDSystem(f=2, data_size_bytes=16)
        system.add_writer("w0", value_of("a"))
        system.run()
        system.add_reader("r0")
        system.run()
        [read] = [op for op in system.ops if op.kind.value == "read"]
        assert read.result == value_of("a")

    def test_initial_read_returns_v0(self):
        system = MsgABDSystem(f=1, data_size_bytes=8)
        system.add_reader("r0")
        system.run()
        [read] = system.ops
        assert read.result == bytes(8)

    def test_all_ops_complete(self):
        system = MsgABDSystem(f=2, data_size_bytes=16)
        for index in range(3):
            system.add_writer(f"w{index}", value_of(str(index)))
        for index in range(2):
            system.add_reader(f"r{index}")
        system.run()
        assert all(op.return_time is not None for op in system.ops)

    def test_concurrent_ops_under_random_delivery(self):
        for seed in range(5):
            system = MsgABDSystem(f=2, data_size_bytes=16)
            for index in range(3):
                system.add_writer(f"w{index}", value_of(str(index)))
            system.add_reader("r0")
            system.run(RandomMsgScheduler(seed))
            assert all(op.return_time is not None for op in system.ops)


class TestFaultTolerance:
    def test_survives_f_server_crashes(self):
        system = MsgABDSystem(f=2, data_size_bytes=16)
        system.crash_server("s0")
        system.crash_server("s3")
        system.add_writer("w0", value_of("x"))
        system.run()
        system.add_reader("r0")
        system.run()
        [read] = [op for op in system.ops if op.kind.value == "read"]
        assert read.result == value_of("x")

    def test_blocks_beyond_f_crashes(self):
        system = MsgABDSystem(f=1, data_size_bytes=8)
        system.crash_server("s0")
        system.crash_server("s1")  # 2 > f: no majority remains
        system.add_writer("w0", value_of("x", 8))
        system.run(max_steps=10_000)
        [write] = system.ops
        assert write.return_time is None  # blocked forever, as it must be


class TestConsistency:
    @pytest.mark.parametrize("seed", range(8))
    def test_strongly_regular_histories(self, seed):
        system = MsgABDSystem(f=2, data_size_bytes=16)
        for index in range(3):
            system.add_writer(f"w{index}", value_of(str(index)))
        for index in range(2):
            system.add_reader(f"r{index}")
        system.run(RandomMsgScheduler(seed))
        history = system.history()
        assert check_weak_regularity(history).ok
        assert check_strong_regularity(history).ok


class TestStorageEquivalence:
    """The reduction the paper's model rests on, measured both ways."""

    def test_server_storage_matches_shared_memory_abd(self):
        f, data = 2, 16
        system = MsgABDSystem(f=f, data_size_bytes=data)
        system.add_writer("w0", value_of("q"))
        system.run()
        expected = (2 * f + 1) * data * 8
        assert system.server_storage_bits() == expected

        setup = replication_setup(f=f, data_size_bytes=data)
        spec = WorkloadSpec(writers=1, writes_per_writer=1, readers=0)
        shared = run_register_workload(ABDRegister, setup, spec)
        assert shared.final_bo_state_bits == expected

    def test_replicas_ride_the_network_mid_write(self):
        system = MsgABDSystem(f=1, data_size_bytes=16)
        system.add_writer("w0", value_of("z"))
        # Drain phase 1 only: deliver read-ts requests and replies until
        # the writer sends its write messages, then stop.
        scheduler = FairMsgScheduler()
        for _ in range(1000):
            if system.network.storage_bits_in_flight() > 0:
                break
            action = scheduler.next_action(system.network)
            assert action is not None
            kind, target = action
            if kind == "deliver":
                system.network.deliver(target)
            else:
                system.network.processes[target].step()
        in_flight = system.network.storage_bits_in_flight()
        assert in_flight == system.n * 16 * 8  # one replica per server
        assert system.total_storage_bits() == (
            system.server_storage_bits() + in_flight
        )

    def test_crashed_server_bits_not_counted(self):
        system = MsgABDSystem(f=2, data_size_bytes=16)
        before = system.server_storage_bits()
        system.crash_server("s1")
        assert system.server_storage_bits() == before - 16 * 8
