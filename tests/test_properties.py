"""Hypothesis property tests across module boundaries.

These go beyond per-module unit properties: they generate random register
configurations, workloads, and schedules and assert the paper's invariants
wholesale.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    AdaptiveRegister,
    CodedOnlyRegister,
    RandomScheduler,
    RegisterSetup,
    SafeCodedRegister,
    WorkloadSpec,
    check_strong_regularity,
    check_strong_safety,
    check_weak_regularity,
    run_register_workload,
)
from repro.coding import ReedSolomonCode
from repro.lowerbound import verify_claim1
from repro.spec import manual_history
from repro.spec.histories import History

light = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

configs = st.tuples(
    st.integers(min_value=1, max_value=3),   # f
    st.integers(min_value=1, max_value=4),   # k
    st.integers(min_value=1, max_value=4),   # writers
    st.integers(min_value=0, max_value=2),   # readers
    st.integers(min_value=0, max_value=10_000),  # schedule seed
)


class TestRegisterInvariants:
    @light
    @given(configs)
    def test_adaptive_always_strongly_regular_and_gc_exact(self, config):
        f, k, writers, readers, seed = config
        setup = RegisterSetup(f=f, k=k, data_size_bytes=4 * k)
        spec = WorkloadSpec(writers=writers, writes_per_writer=1,
                            readers=readers, reads_per_reader=1, seed=seed)
        result = run_register_workload(
            AdaptiveRegister, setup, spec, scheduler=RandomScheduler(seed)
        )
        assert result.run.quiescent
        assert check_strong_regularity(result.history).ok
        # Lemma 8 (upper bound: a straggler update losing the race against
        # its own GC can leave an object empty under arbitrary schedules):
        assert result.final_bo_state_bits <= (
            setup.n * setup.data_size_bits // setup.k
        )
        # ...but Invariant 1 must hold regardless: every quorum decodes.
        from repro.registers import check_invariant1

        assert check_invariant1(result.sim).ok

    @light
    @given(configs)
    def test_safe_register_storage_invariant(self, config):
        f, k, writers, readers, seed = config
        setup = RegisterSetup(f=f, k=k, data_size_bytes=4 * k)
        spec = WorkloadSpec(writers=writers, writes_per_writer=1,
                            readers=readers, reads_per_reader=1, seed=seed)
        result = run_register_workload(
            SafeCodedRegister, setup, spec, scheduler=RandomScheduler(seed)
        )
        expected = setup.n * setup.data_size_bits // setup.k
        assert result.peak_bo_state_bits == expected
        assert check_strong_safety(result.history).ok

    @light
    @given(configs)
    def test_coded_only_peak_formula(self, config):
        f, k, writers, readers, seed = config
        setup = RegisterSetup(f=f, k=k, data_size_bytes=4 * k)
        spec = WorkloadSpec(writers=writers, writes_per_writer=1,
                            readers=readers, reads_per_reader=1, seed=seed)
        result = run_register_workload(
            CodedOnlyRegister, setup, spec, scheduler=RandomScheduler(seed)
        )
        cap = (writers + 1) * setup.n * setup.data_size_bits // setup.k
        assert result.peak_bo_state_bits <= cap


class TestClaim1Property:
    @light
    @given(
        st.integers(min_value=2, max_value=6),
        st.data(),
    )
    def test_random_index_sets(self, k, data):
        n = data.draw(st.integers(min_value=k, max_value=2 * k + 4))
        scheme = ReedSolomonCode(k=k, n=n, data_size_bytes=4 * k)
        size = data.draw(st.integers(min_value=0, max_value=min(n, k + 1)))
        indices = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size, max_size=size,
            )
        )
        report = verify_claim1(scheme, indices)
        assert report.consistent_with_claim
        # Sharpness both ways for MDS codes:
        if len(set(indices)) < k:
            assert report.collision_valid
        else:
            assert not report.collision_found


class TestCheckerMetamorphic:
    """Metamorphic properties of the history checkers."""

    ops_strategy = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),    # client id
            st.booleans(),                            # is write
            st.integers(min_value=0, max_value=3),    # value id
            st.integers(min_value=0, max_value=30),   # invoke
            st.integers(min_value=1, max_value=15),   # duration
        ),
        min_size=0, max_size=6,
    )

    @staticmethod
    def build_sequential(entries):
        """Serialise generated ops into a sequential well-formed history."""
        time = 0
        rows = []
        last_value = b"\x00"
        for client, is_write, value_id, _invoke, _duration in entries:
            value = bytes([value_id + 1])
            if is_write:
                rows.append((f"c{client}", "w", value, time, time + 1))
                last_value = value
            else:
                rows.append((f"c{client}", "r", last_value, time, time + 1))
            time += 2
        return manual_history(rows, v0=b"\x00")

    @light
    @given(ops_strategy)
    def test_sequential_histories_pass_everything(self, entries):
        history = self.build_sequential(entries)
        assert check_weak_regularity(history).ok
        assert check_strong_regularity(history).ok
        assert check_strong_safety(history).ok

    @light
    @given(ops_strategy)
    def test_weak_implied_by_strong(self, entries):
        history = self.build_sequential(entries)
        strong = check_strong_regularity(history)
        if strong.ok:
            assert check_weak_regularity(history).ok

    @light
    @given(ops_strategy, st.integers(min_value=1, max_value=50))
    def test_time_shift_invariance(self, entries, shift):
        """Uniformly shifting all times never changes any verdict."""
        history = self.build_sequential(entries)
        shifted = History(
            [
                type(op)(
                    op.op_uid, op.client, op.kind, op.written, op.result,
                    op.invoke_time + shift,
                    None if op.return_time is None else op.return_time + shift,
                )
                for op in history.ops
            ],
            history.v0,
        )
        assert check_weak_regularity(history).ok == \
            check_weak_regularity(shifted).ok
        assert check_strong_regularity(history).ok == \
            check_strong_regularity(shifted).ok


class TestDeterminismProperty:
    @light
    @given(st.integers(min_value=0, max_value=10_000))
    def test_same_seed_same_everything(self, seed):
        setup = RegisterSetup(f=1, k=2, data_size_bytes=8)
        spec = WorkloadSpec(writers=2, writes_per_writer=1, readers=1,
                            reads_per_reader=1, seed=seed)

        def run():
            return run_register_workload(
                AdaptiveRegister, setup, spec,
                scheduler=RandomScheduler(seed),
            )

        first, second = run(), run()
        assert first.peak_storage_bits == second.peak_storage_bits
        assert first.run.steps == second.run.steps
        firsts = [(o.op_uid, o.return_time) for o in first.trace.ops.values()]
        seconds = [(o.op_uid, o.return_time) for o in second.trace.ops.values()]
        assert firsts == seconds
