"""Shared fixtures for the chaos (seeded fault-injection) suite.

Every test below this directory gets the ``chaos`` marker. Modules that
open real sockets (the TCP proxy, parity, and client-resilience tests)
additionally get the ``service`` marker and are skipped when the sandbox
cannot bind a loopback socket, mirroring ``tests/service/conftest.py``.
"""

import asyncio
import socket

import pytest

#: Modules in this directory that need real loopback sockets.
_SOCKET_MODULES = {
    "test_tcp_chaos", "test_transport_parity", "test_client_resilience",
    "test_schedule_realization",
}


def _loopback_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
        return True
    except OSError:
        return False


_LOOPBACK_OK = _loopback_available()


def pytest_collection_modifyitems(config, items):
    skip = pytest.mark.skip(reason="cannot bind loopback sockets here")
    for item in items:
        if item.path.parent.name == "faults" or "/faults/" in str(item.path):
            item.add_marker(pytest.mark.chaos)
            if item.path.stem in _SOCKET_MODULES:
                item.add_marker(pytest.mark.service)
                if not _LOOPBACK_OK:
                    item.add_marker(skip)


@pytest.fixture
def run():
    """Run a coroutine to completion on a fresh event loop."""
    return asyncio.run


REPLICAS = ("s0", "s1", "s2")


@pytest.fixture
def replicas():
    """The standard f=1 deployment layout the fault plans target."""
    return REPLICAS
