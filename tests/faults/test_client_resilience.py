"""The resilient TCP client: backoff, deadlines, health, diagnostics.

Covers the satellite requirements directly: seeded-jitter backoff is
deterministic per seed, the per-operation deadline bounds wall-clock
time against a black-holed majority (distinct from the per-request
timeout), replica health demotes repeat offenders out of first contact
and rehabilitates them on reply, and :class:`~repro.errors.QuorumTimeout`
carries structured diagnostics.
"""

import asyncio
import time

import pytest

from repro.errors import ParameterError, QuorumTimeout
from repro.service import BackoffPolicy, HealthTracker, ServiceClient

DATA_SIZE = 8


class TestBackoffDeterminism:
    def test_same_seed_same_sequence(self):
        first = BackoffPolicy(seed=7).sequence(8, scope="w0:1")
        second = BackoffPolicy(seed=7).sequence(8, scope="w0:1")
        assert first == second

    def test_different_seed_different_sequence(self):
        assert (
            BackoffPolicy(seed=7).sequence(8, scope="w0:1")
            != BackoffPolicy(seed=8).sequence(8, scope="w0:1")
        )

    def test_different_scope_different_jitter(self):
        policy = BackoffPolicy(seed=7)
        assert policy.sequence(8, scope="w0:1") != policy.sequence(
            8, scope="w0:2"
        )

    def test_no_jitter_is_pure_exponential(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=1.0, jitter=0.0)
        assert policy.sequence(5) == [0.1, 0.2, 0.4, 0.8, 1.0]

    def test_jitter_bounded_and_growing(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=10.0, jitter=0.25,
                               seed=3)
        for attempt in range(6):
            raw = min(0.1 * 2.0 ** attempt, 10.0)
            delay = policy.delay(attempt, scope="x")
            assert raw <= delay <= raw * 1.25

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ParameterError):
            BackoffPolicy(base=0.0)
        with pytest.raises(ParameterError):
            BackoffPolicy(cap=0.01)
        with pytest.raises(ParameterError):
            BackoffPolicy(jitter=1.5)


class TestHealthTracker:
    def make(self, **kwargs):
        clock = {"now": 0.0}
        kwargs.setdefault("demote_after", 3)
        kwargs.setdefault("cooldown_s", 5.0)
        tracker = HealthTracker(
            ["s0", "s1", "s2"], clock=lambda: clock["now"], **kwargs
        )
        return tracker, clock

    def test_demotion_after_consecutive_silences(self):
        tracker, _clock = self.make()
        for _ in range(2):
            tracker.mark_silent("s0")
        assert not tracker.demoted("s0")
        tracker.mark_silent("s0")
        assert tracker.demoted("s0")
        assert tracker.demotions == 1

    def test_repeat_silence_does_not_recount_demotion(self):
        tracker, _clock = self.make()
        for _ in range(6):
            tracker.mark_silent("s0")
        assert tracker.demotions == 1

    def test_cooldown_puts_the_replica_on_probation(self):
        tracker, clock = self.make(cooldown_s=5.0)
        for _ in range(3):
            tracker.mark_silent("s0")
        assert tracker.demoted("s0")
        clock["now"] = 6.0
        assert not tracker.demoted("s0")  # probed again after cooldown

    def test_reply_rehabilitates_immediately(self):
        tracker, _clock = self.make()
        for _ in range(3):
            tracker.mark_silent("s0")
        tracker.mark_reply("s0")
        assert not tracker.demoted("s0")
        assert tracker.replicas["s0"].consecutive_failures == 0

    def test_first_contact_never_shrinks_below_majority(self):
        tracker, _clock = self.make()
        for name in ("s0", "s1"):
            for _ in range(3):
                tracker.mark_silent(name)
        # One healthy replica < majority of 2: contact everyone.
        assert tracker.first_contact(["s0", "s1", "s2"], 2) == [
            "s0", "s1", "s2"
        ]
        tracker.mark_reply("s1")
        # Two healthy >= majority: skip the demoted one.
        assert tracker.first_contact(["s0", "s1", "s2"], 2) == ["s1", "s2"]

    def test_snapshot_shape(self):
        tracker, _clock = self.make()
        tracker.mark_reply("s1")
        snapshot = tracker.snapshot()
        assert set(snapshot) == {"s0", "s1", "s2"}
        assert snapshot["s1"]["replies"] == 1
        assert snapshot["s1"]["demoted"] is False


async def _black_hole_cluster():
    """Three 'replicas' that accept, read, and never answer."""

    async def swallow(reader, writer):
        try:
            await reader.read(-1)
        finally:
            writer.close()

    servers = []
    endpoints = {}
    for name in ("s0", "s1", "s2"):
        server = await asyncio.start_server(swallow, "127.0.0.1", 0)
        servers.append(server)
        endpoints[name] = ("127.0.0.1", server.sockets[0].getsockname()[1])
    return servers, endpoints


class TestDeadlineBudget:
    def test_op_deadline_bounds_wall_clock(self, run):
        """With every replica silent, the operation fails at the deadline
        — not after ``timeout * retries`` of open-ended resend rounds."""

        async def scenario():
            servers, endpoints = await _black_hole_cluster()
            client = ServiceClient(
                "c0", endpoints, 1, DATA_SIZE,
                timeout=0.05, retries=100, op_deadline=0.5,
                backoff=BackoffPolicy(base=0.05, cap=0.2, seed=0),
            )
            started = time.monotonic()
            try:
                with pytest.raises(QuorumTimeout) as excinfo:
                    await client.write(b"x" * DATA_SIZE)
                return time.monotonic() - started, excinfo.value, client
            finally:
                await client.close()
                for server in servers:
                    server.close()
                await asyncio.gather(*(
                    server.wait_closed() for server in servers
                ))

        elapsed, error, client = run(scenario())
        assert elapsed < 3.0  # nowhere near timeout * retries
        assert error.deadline_s == 0.5
        assert error.client == "c0"
        assert error.op_kind == "write"
        assert error.needed == 2
        assert set(error.silent) == {"s0", "s1", "s2"}
        assert error.answered == ()
        assert error.attempts >= 1
        assert error.elapsed_s >= 0.4
        # The retry machinery kept books while failing.
        assert client.stats.timeouts == error.attempts
        assert client.stats.delays  # backoff waits were recorded

    def test_deadline_validation(self):
        with pytest.raises(ParameterError):
            ServiceClient(
                "c0",
                {"s0": ("h", 1), "s1": ("h", 2), "s2": ("h", 3)},
                1, DATA_SIZE, op_deadline=0.0,
            )

    def test_silent_replicas_get_demoted(self, run):
        async def scenario():
            servers, endpoints = await _black_hole_cluster()
            client = ServiceClient(
                "c0", endpoints, 1, DATA_SIZE,
                timeout=0.03, retries=100, op_deadline=0.4,
                backoff=BackoffPolicy(base=0.03, cap=0.1, seed=0),
                health=HealthTracker(
                    list(endpoints), demote_after=2, cooldown_s=30.0,
                ),
            )
            try:
                with pytest.raises(QuorumTimeout):
                    await client.write(b"y" * DATA_SIZE)
                return client
            finally:
                await client.close()
                for server in servers:
                    server.close()

        client = run(scenario())
        assert client.health.demotions == 3  # every replica stayed silent
        for name in ("s0", "s1", "s2"):
            assert client.health.replicas[name].retries >= 2
