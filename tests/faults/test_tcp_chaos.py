"""Chaos over real sockets: the fault proxy in front of a live cluster.

The ISSUE's lock: linearizability and strong regularity over *real
socket histories* under every fault mode with at most ``f``
effectively-faulty replicas, and liveness — every operation completes —
once faults heal, driven by the resilient client (seeded backoff,
operation deadlines, health tracking).
"""

import pytest

from repro.faults import (
    FAULT_PROFILES,
    clean_plan,
    run_tcp_chaos,
    seeded_fault_plan,
)

REPLICAS = ("s0", "s1", "s2")
DATA_SIZE = 8
TICK_S = 0.02


def plan_for(profile: str, seed: int = 1):
    return seeded_fault_plan(
        seed, replicas=REPLICAS, f=1, profile=profile,
        rate=0.4, start=4, window=10,
    )


@pytest.mark.parametrize("profile", FAULT_PROFILES)
def test_socket_history_stays_consistent(profile, run, tmp_path):
    report = run(run_tcp_chaos(
        plan_for(profile), DATA_SIZE, tmp_path, tick_s=TICK_S,
    ))
    assert report.failures == 0, f"{profile}: operations failed"
    assert report.ops == 12  # liveness: all 2w+2r x 3 ops returned
    assert report.linearizable, f"{profile}: history not linearizable"
    assert report.strongly_regular


def test_clean_plan_needs_no_retries(run, tmp_path):
    report = run(run_tcp_chaos(
        clean_plan(REPLICAS, 1), DATA_SIZE, tmp_path, tick_s=TICK_S,
    ))
    assert report.failures == 0
    assert sum(report.firing_counts.values()) == 0
    assert report.window_drops == 0
    assert report.retry_timeouts == 0


def test_windows_open_and_heal_on_schedule(run, tmp_path):
    """Crash + partition events each fire exactly once over sockets.

    (Whether any *traffic* hits a window is timing-dependent — window
    drops are excluded from parity for exactly that reason — but the
    events themselves are tick-scheduled and must fire even if the
    workload finishes early.)
    """
    report = run(run_tcp_chaos(
        plan_for("partition+crash", seed=1), DATA_SIZE, tmp_path,
        tick_s=TICK_S,
    ))
    assert report.failures == 0
    for kind in ("partition", "heal", "crash", "revive"):
        assert report.firing_counts[f"event:{kind}"] == 1
    # Liveness once faults heal: nothing a <= f window can do stops the
    # resilient client from finishing every operation.
    assert report.ops == 12
    assert report.linearizable and report.strongly_regular
