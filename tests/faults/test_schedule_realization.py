"""Regression lock for the seed-7 parity break, at the injector seam.

The chaos suite's full-workload parity runs are end-to-end; this module
pins the property the bugfix restored at unit level: the **compiled
per-link fault schedule of the seed-7 chaos plan is realized
identically** by both injector paths — :class:`FaultyNetwork.send` (the
simulated transport) and the :class:`FaultProxyCluster` frame pump (the
TCP transport) — with no cluster, client, or chaos workload involved.

Both paths are driven with a saturating per-link message stream of a
window-free twin of the seed-7 plan (windows and slowdowns do not enter
:meth:`FaultPlan.compile`, asserted below), and the exact ``(link, seq)
-> kind`` realization is compared against the compiled schedule — the
delay rows are the ones the seed-7 bug dropped over TCP.
"""

import asyncio
import dataclasses

from repro.faults.plan import (
    FaultInjector,
    client_link,
    seeded_fault_plan,
    server_link,
)
from repro.faults.simnet import FaultyNetwork
from repro.faults.tcp import FaultProxyCluster
from repro.service.framing import read_frame, write_frame

REPLICAS = ("s0", "s1", "s2")
TICK_S = 0.01


def seed7_plan():
    """The exact plan of ``test_parity_holds_across_seeds[7]``."""
    return seeded_fault_plan(
        7, replicas=REPLICAS, f=1, profile="chaos",
        rate=0.4, start=4, window=10,
    )


def windowless_twin(plan):
    """The same link schedule with no windows or slowdowns to dodge."""
    return dataclasses.replace(
        plan, partitions=(), crashes=(), slowdowns={},
    )


def compiled_kinds(plan, kind=None):
    """``{link: {seq: kind}}`` from the plan, optionally one kind only."""
    return {
        link: {
            seq: decision.kind
            for seq, decision in schedule.items()
            if kind is None or decision.kind == kind
        }
        for link, schedule in plan.compile().items()
    }


class RecordingInjector(FaultInjector):
    """A FaultInjector that records exactly which (link, seq) fired."""

    def __init__(self, plan):
        super().__init__(plan)
        self.realized = {link: {} for link in self.schedules}

    def on_send(self, link):
        decision = super().on_send(link)
        if decision is not None:
            self.realized[link][self.link_seq(link)] = decision.kind
        return decision

    def realized_kind(self, kind):
        return {
            link: {
                seq: fired for seq, fired in fires.items() if fired == kind
            }
            for link, fires in self.realized.items()
        }


def test_windowless_twin_compiles_identically():
    plan = seed7_plan()
    assert windowless_twin(plan).compile() == plan.compile()


def test_seed7_plan_schedules_the_famous_delay():
    """The bug's shape: the last s1->c delay sits at the horizon edge."""
    plan = seed7_plan()
    delays = compiled_kinds(plan, "delay")
    assert delays[server_link("s1")], "seed 7 schedules s1->c delays"
    assert max(delays[server_link("s1")]) == plan.horizon


def realize_on_sim(plan):
    """Push ``horizon`` messages per link through FaultyNetwork.send."""
    injector = RecordingInjector(plan)
    network = FaultyNetwork(injector)
    network.add_process("c")
    for name in plan.replicas:
        network.add_process(name)
    for round_number in range(plan.horizon):
        for name in plan.replicas:
            network.send("c", name, ("ping", round_number))
            network.send(name, "c", ("pong", round_number))
    return injector


async def realize_on_tcp(plan):
    """Push frames through real proxy sockets until every link saturates.

    Each replica's upstream is a one-line echo server, so every request
    frame the proxy forwards produces exactly one reply frame through the
    ``sN->c`` pump — the reply-link traffic the seed-7 workload ran out
    of.
    """
    injector = RecordingInjector(plan)
    echoes = {}

    async def echo(reader, writer):
        while True:
            frame = await read_frame(reader)
            if frame is None:
                break
            await write_frame(writer, frame)

    endpoints = {}
    for name in plan.replicas:
        server = await asyncio.start_server(echo, "127.0.0.1", 0)
        echoes[name] = server
        endpoints[name] = ("127.0.0.1", server.sockets[0].getsockname()[1])
    try:
        async with FaultProxyCluster(
            endpoints, injector, tick_s=TICK_S
        ) as proxies:
            writers = {}
            for name, (host, port) in proxies.endpoints.items():
                _reader, writer = await asyncio.open_connection(host, port)
                writers[name] = writer
            try:
                loop = asyncio.get_running_loop()
                for name in plan.replicas:
                    request_link = client_link(name)
                    reply_link = server_link(name)
                    deadline = loop.time() + 5.0
                    sent = 0
                    # Requests consume their link's seq as the pump reads
                    # each frame; replies trail (delays and reorders park
                    # them), so pace the writes and poll both links.
                    while (
                        injector.link_seq(request_link) < plan.horizon
                        or injector.link_seq(reply_link) < plan.horizon
                    ):
                        assert loop.time() < deadline, (
                            f"{name} links never saturated: "
                            f"{request_link}@{injector.link_seq(request_link)} "
                            f"{reply_link}@{injector.link_seq(reply_link)}"
                        )
                        if sent < 6 * plan.horizon:
                            await write_frame(writers[name], b"ping")
                            sent += 1
                        await asyncio.sleep(TICK_S)
            finally:
                for writer in writers.values():
                    writer.close()
    finally:
        for server in echoes.values():
            server.close()
            await server.wait_closed()
    return injector


def test_seed7_delay_schedule_realized_identically(run):
    plan = windowless_twin(seed7_plan())
    sim = realize_on_sim(plan)
    tcp = run(realize_on_tcp(plan))
    # The satellite claim: the per-link *delay* schedule — the rows the
    # seed-7 bug dropped — is realized identically on both paths.
    assert sim.realized_kind("delay") == compiled_kinds(plan, "delay")
    assert tcp.realized_kind("delay") == compiled_kinds(plan, "delay")
    # And in fact the whole realization matches the compiled plan.
    assert sim.realized == compiled_kinds(plan)
    assert tcp.realized == compiled_kinds(plan)
    assert sim.firing_counts() == tcp.firing_counts()
