"""Fault-plan derivation: deterministic, validated, JSON-portable."""

import pytest

from repro.errors import FaultPlanError
from repro.faults import (
    FAULT_PROFILES,
    LINK_FAULT_KINDS,
    CrashWindow,
    FaultInjector,
    FaultPlan,
    LinkFaults,
    Partition,
    clean_plan,
    seeded_fault_plan,
)

REPLICAS = ("s0", "s1", "s2")


def chaos_plan(seed: int = 1, **kwargs) -> FaultPlan:
    kwargs.setdefault("rate", 0.4)
    return seeded_fault_plan(seed, replicas=REPLICAS, f=1, **kwargs)


class TestDeterminism:
    def test_compile_is_a_pure_function_of_the_seed(self):
        first = chaos_plan(seed=3).compile()
        second = chaos_plan(seed=3).compile()
        assert first == second

    def test_different_seeds_give_different_schedules(self):
        assert chaos_plan(seed=0).compile() != chaos_plan(seed=1).compile()

    def test_injectors_share_the_plan_schedule(self):
        plan = chaos_plan(seed=5)
        assert FaultInjector(plan).schedules == FaultInjector(plan).schedules

    def test_seeded_victims_are_stable(self):
        first, second = chaos_plan(seed=9), chaos_plan(seed=9)
        assert first.slowdowns == second.slowdowns
        assert first.partitions == second.partitions
        assert first.crashes == second.crashes

    def test_planned_counts_match_the_compiled_schedule(self):
        plan = chaos_plan(seed=2)
        counts = plan.planned_counts()
        assert set(counts) == set(LINK_FAULT_KINDS)
        total = sum(
            len(schedule) for schedule in plan.compile().values()
        )
        assert sum(counts.values()) == total > 0


class TestValidation:
    def test_rates_must_stay_in_unit_interval(self):
        with pytest.raises(FaultPlanError):
            LinkFaults(drop=1.5).validate()

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(FaultPlanError):
            LinkFaults(drop=0.7, delay=0.5).validate()

    def test_unknown_link_pattern_rejected(self):
        with pytest.raises(FaultPlanError, match="match nothing"):
            FaultPlan(
                seed=0, replicas=REPLICAS, f=1,
                links={"c->s9": LinkFaults(drop=0.5)},
            )

    def test_partition_cannot_exceed_the_budget(self):
        with pytest.raises(FaultPlanError, match="budget"):
            FaultPlan(
                seed=0, replicas=REPLICAS, f=1,
                partitions=(Partition(("s0", "s1"), 5, 10),),
            )

    def test_overlapping_windows_cannot_exceed_the_budget(self):
        with pytest.raises(FaultPlanError, match="budget"):
            FaultPlan(
                seed=0, replicas=REPLICAS, f=1,
                partitions=(Partition(("s0",), 5, 15),),
                crashes=(CrashWindow("s1", 10, 20),),
            )

    def test_empty_partition_window_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(
                seed=0, replicas=REPLICAS, f=1,
                partitions=(Partition(("s0",), 10, 10),),
            )

    def test_revive_must_follow_crash(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(
                seed=0, replicas=REPLICAS, f=1,
                crashes=(CrashWindow("s0", 10, 5),),
            )

    def test_slowdown_names_must_exist(self):
        with pytest.raises(FaultPlanError, match="unknown"):
            FaultPlan(seed=0, replicas=REPLICAS, f=1, slowdowns={"s9": 3})

    def test_unknown_profile_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault profile"):
            seeded_fault_plan(0, replicas=REPLICAS, f=1, profile="gremlins")


class TestJsonRoundtrip:
    def test_roundtrip_preserves_the_plan(self):
        plan = chaos_plan(seed=4)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_save_load(self, tmp_path):
        plan = chaos_plan(seed=6)
        path = tmp_path / "faults.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text("{not json")
        with pytest.raises(FaultPlanError, match="corrupt"):
            FaultPlan.load(path)

    def test_unsupported_version_raises(self):
        with pytest.raises(FaultPlanError, match="version"):
            FaultPlan.from_json({"version": 99})


class TestProfiles:
    def test_every_named_profile_builds(self):
        for profile in FAULT_PROFILES:
            plan = seeded_fault_plan(
                1, replicas=REPLICAS, f=1, profile=profile
            )
            assert not plan.quiet

    def test_message_profile_splits_the_rate(self):
        plan = seeded_fault_plan(
            1, replicas=REPLICAS, f=1, profile="drop+delay", rate=0.4
        )
        spec = plan.links["*"]
        assert spec.drop == pytest.approx(0.2)
        assert spec.delay == pytest.approx(0.2)
        assert spec.duplicate == spec.reorder == 0.0

    def test_windowed_profiles_respect_the_budget(self):
        plan = seeded_fault_plan(
            1, replicas=REPLICAS, f=1, profile="partition+crash"
        )
        (partition,) = plan.partitions
        (crash,) = plan.crashes
        assert len(partition.servers) <= plan.f
        assert crash.crash >= partition.heal  # windows never overlap

    def test_clean_plan_is_quiet(self):
        plan = clean_plan(REPLICAS, 1)
        assert plan.quiet
        assert sum(plan.planned_counts().values()) == 0
        assert "quiet" in plan.describe()


class TestInjectorEvents:
    def test_timed_events_fire_exactly_once(self):
        plan = seeded_fault_plan(
            1, replicas=REPLICAS, f=1, profile="partition+crash"
        )
        injector = FaultInjector(plan)
        injector.advance_to(plan.heals_by() + 1)
        injector.advance_to(plan.heals_by() + 50)  # idempotent
        counts = injector.firing_counts()
        for kind in ("partition", "heal", "crash", "revive"):
            assert counts[f"event:{kind}"] == 1

    def test_unavailable_tracks_the_window(self):
        plan = FaultPlan(
            seed=0, replicas=REPLICAS, f=1,
            crashes=(CrashWindow("s1", 5, 9),),
        )
        injector = FaultInjector(plan)
        assert not injector.unavailable("s1")
        injector.advance_to(5)
        assert injector.unavailable("s1")
        assert not injector.unavailable("s0")
        injector.advance_to(9)
        assert not injector.unavailable("s1")
