"""Chaos on the simulated network: every mode, consistency + liveness.

Each profile runs a concurrent workload through
:func:`repro.faults.chaos.run_sim_chaos` — every operation must return
(liveness once faults heal), the merged history must be linearizable and
strongly regular, and the injector must fire *exactly* the schedule the
plan compiled (saturation: the workload outlasts the horizon and the run
outlives every window).
"""

import pytest

from repro.faults import (
    FAULT_PROFILES,
    FaultInjector,
    clean_plan,
    run_sim_chaos,
    seeded_fault_plan,
)

REPLICAS = ("s0", "s1", "s2")
DATA_SIZE = 8


def plan_for(profile: str, seed: int = 1):
    return seeded_fault_plan(
        seed, replicas=REPLICAS, f=1, profile=profile,
        rate=0.4, start=4, window=10,
    )


def expected_counts(plan):
    counts = dict(plan.planned_counts())
    for kind in ("partition", "heal", "crash", "revive"):
        counts[f"event:{kind}"] = 0
    for _tick, kind, _subject in plan.timed_events():
        counts[f"event:{kind}"] += 1
    return counts


@pytest.mark.parametrize("profile", FAULT_PROFILES)
class TestEveryFaultMode:
    def test_all_operations_complete(self, profile):
        report = run_sim_chaos(plan_for(profile), DATA_SIZE)
        assert report.failures == 0
        assert report.ops == 12  # 2 writers + 2 readers, 3 ops each

    def test_history_is_consistent(self, profile):
        report = run_sim_chaos(plan_for(profile), DATA_SIZE)
        assert report.linearizable
        assert report.strongly_regular

    def test_firing_counts_match_the_plan_exactly(self, profile):
        plan = plan_for(profile)
        report = run_sim_chaos(plan, DATA_SIZE)
        assert report.firing_counts == expected_counts(plan)


class TestDeterminism:
    def test_same_seed_fires_the_same_schedule(self):
        first = run_sim_chaos(plan_for("chaos", seed=7), DATA_SIZE)
        second = run_sim_chaos(plan_for("chaos", seed=7), DATA_SIZE)
        assert first.firing_counts == second.firing_counts
        assert first.ops == second.ops

    def test_clean_plan_fires_nothing(self):
        report = run_sim_chaos(clean_plan(REPLICAS, 1), DATA_SIZE)
        assert report.failures == 0
        assert sum(report.firing_counts.values()) == 0
        assert report.window_drops == 0
        assert report.resent_messages == 0


class TestLivenessUnderLoss:
    def test_drop_heavy_plan_still_completes_via_resends(self):
        plan = seeded_fault_plan(
            3, replicas=REPLICAS, f=1, profile="drop", rate=0.6,
        )
        report = run_sim_chaos(plan, DATA_SIZE)
        assert report.failures == 0
        assert report.linearizable
        # Losses actually happened and the resend loop recovered them.
        assert FaultInjector(plan).plan.planned_counts()["drop"] > 0
        assert report.firing_counts["drop"] > 0
