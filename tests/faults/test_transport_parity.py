"""The tentpole claim: one seeded plan, identical firing on both worlds.

For the same :class:`~repro.faults.plan.FaultPlan`, the simulated
network and the TCP fault proxy must fire the *identical* fault
schedule — same drops, same delays, same duplicates, same reorders,
same window events — summarised by
:meth:`~repro.faults.plan.FaultInjector.firing_counts` and compared
exactly. Window drops are traffic-dependent and excluded by design.
"""

import os

import pytest

from repro.faults import (
    FAULT_PROFILES,
    run_chaos_experiment,
    run_tcp_chaos,
    seeded_fault_plan,
)

REPLICAS = ("s0", "s1", "s2")
DATA_SIZE = 8
TICK_S = 0.02


def _parity_matrix():
    """(profile, seed) cells for the widened nightly parity sweep.

    Empty (the whole test skips) unless ``REPRO_PARITY_SEEDS=LOW:HIGH``
    is set — tier-1 already covers every profile at seed 1 plus the
    chaos profile at the two seeds with regression history; the nightly
    chaos suite sets ``REPRO_PARITY_SEEDS=0:10`` to sweep seeds 0-9
    across *all* profiles.
    """
    span = os.environ.get("REPRO_PARITY_SEEDS")
    if not span:
        return []
    low, _sep, high = span.partition(":")
    seeds = range(int(low), int(high)) if high else range(int(span))
    return [
        (profile, seed) for profile in FAULT_PROFILES for seed in seeds
    ]


def plan_for(profile: str, seed: int):
    return seeded_fault_plan(
        seed, replicas=REPLICAS, f=1, profile=profile,
        rate=0.4, start=4, window=10,
    )


def expected_counts(plan):
    counts = dict(plan.planned_counts())
    for kind in ("partition", "heal", "crash", "revive"):
        counts[f"event:{kind}"] = 0
    for _tick, kind, _subject in plan.timed_events():
        counts[f"event:{kind}"] += 1
    return counts


@pytest.mark.parametrize("profile", FAULT_PROFILES)
def test_sim_and_tcp_fire_the_same_schedule(profile, tmp_path):
    plan = plan_for(profile, seed=1)
    report = run_chaos_experiment(
        plan, DATA_SIZE, tmp_path, transport="both", tick_s=TICK_S,
    )
    assert report.sim.firing_counts == report.tcp.firing_counts
    # Not merely equal to each other — equal to the compiled plan: the
    # workload saturates every link horizon and outlives every window.
    assert report.sim.firing_counts == expected_counts(plan)
    assert report.parity_ok
    assert report.ok, report.to_json()


@pytest.mark.parametrize("seed", [0, 7])
def test_parity_holds_across_seeds(seed, tmp_path):
    # Seed 7 is the regression seed: its plan schedules an s1->c delay
    # at the horizon edge that the TCP runner used to leave unfired.
    plan = plan_for("chaos", seed=seed)
    report = run_chaos_experiment(
        plan, DATA_SIZE, tmp_path, transport="both", tick_s=TICK_S,
    )
    assert report.sim.firing_counts == report.tcp.firing_counts
    assert report.ok, report.to_json()


@pytest.mark.parametrize(
    "profile,seed", _parity_matrix(),
    ids=[f"{profile}-{seed}" for profile, seed in _parity_matrix()],
)
def test_parity_matrix_nightly(profile, seed, tmp_path):
    """Seeds 0-9 x every profile — enabled by REPRO_PARITY_SEEDS."""
    plan = plan_for(profile, seed=seed)
    report = run_chaos_experiment(
        plan, DATA_SIZE, tmp_path, transport="both", tick_s=TICK_S,
    )
    assert report.sim.firing_counts == report.tcp.firing_counts
    assert report.ok, report.to_json()


def test_tcp_firing_schedule_is_seed_stable(run, tmp_path):
    """Two socket runs of the same plan fire identical counts."""
    plan = plan_for("chaos", seed=1)
    first = run(run_tcp_chaos(
        plan, DATA_SIZE, tmp_path / "a", tick_s=TICK_S,
    ))
    second = run(run_tcp_chaos(
        plan, DATA_SIZE, tmp_path / "b", tick_s=TICK_S,
    ))
    assert first.firing_counts == second.firing_counts
    assert first.firing_counts == expected_counts(plan)


def test_single_transport_reports_have_no_parity_claim(tmp_path):
    plan = plan_for("drop", seed=1)
    report = run_chaos_experiment(
        plan, DATA_SIZE, tmp_path, transport="sim",
    )
    assert report.tcp is None
    assert report.parity_ok  # nothing to compare
    assert report.ok
