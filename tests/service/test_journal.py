"""Replica journal: the crash-recovery substrate, CheckpointError semantics."""

import json

import pytest

from repro.coding.oracles import BlockSource, CodeBlock
from repro.errors import CheckpointError, JournalError
from repro.registers.timestamps import Timestamp
from repro.service.journal import (
    JOURNAL_MAGIC,
    JOURNAL_VERSION,
    ReplicaJournal,
    replica_signature,
)

SIG = replica_signature("s0", 0, 1, 8, "replication")


def block(tag: bytes, op_uid: int):
    payload = tag * 8
    return CodeBlock(
        payload=payload, index=0,
        source=BlockSource(op_uid, 0), size_bits=len(payload) * 8,
    )


def journal_with(path, entries):
    journal = ReplicaJournal(path, SIG)
    journal.open_for_append()
    for num, client, blk in entries:
        journal.append(Timestamp(num, client), blk)
    journal.close()
    return journal


class TestRoundTrip:
    def test_append_then_load(self, tmp_path):
        journal = journal_with(tmp_path / "j.jsonl", [
            (1, "w0", block(b"a", 1)),
            (2, "w1", block(b"b", 2)),
        ])
        entries = journal.load()
        assert [ts for ts, _ in entries] == [
            Timestamp(1, "w0"), Timestamp(2, "w1"),
        ]
        assert entries[1][1] == block(b"b", 2)

    def test_missing_file_loads_empty(self, tmp_path):
        assert ReplicaJournal(tmp_path / "absent.jsonl", SIG).load() == []

    def test_recovered_is_maximum_entry(self, tmp_path):
        journal = journal_with(tmp_path / "j.jsonl", [
            (1, "w0", block(b"a", 1)),
            (3, "w1", block(b"c", 3)),
            (2, "w0", block(b"b", 2)),  # out of order on purpose
        ])
        ts, blk = journal.recovered()
        assert ts == Timestamp(3, "w1")
        assert blk == block(b"c", 3)

    def test_recovered_none_when_empty(self, tmp_path):
        journal = ReplicaJournal(tmp_path / "j.jsonl", SIG)
        journal.open_for_append()  # header only
        journal.close()
        assert journal.recovered() is None

    def test_reopen_appends_after_existing_entries(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal_with(path, [(1, "w0", block(b"a", 1))])
        second = ReplicaJournal(path, SIG)
        second.open_for_append()
        second.append(Timestamp(2, "w1"), block(b"b", 2))
        second.close()
        assert second.entry_count() == 2


class TestCrashArtifacts:
    def test_truncated_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal_with(path, [(1, "w0", block(b"a", 1)),
                            (2, "w1", block(b"b", 2))])
        text = path.read_text()
        path.write_text(text[:-10])  # SIGKILL mid-append
        entries = ReplicaJournal(path, SIG).load()
        assert [ts for ts, _ in entries] == [Timestamp(1, "w0")]

    def test_open_for_append_trims_partial_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal_with(path, [(1, "w0", block(b"a", 1))])
        with open(path, "a") as handle:
            handle.write('{"ts": [2, "w1"], "blo')  # torn write
        journal = ReplicaJournal(path, SIG)
        journal.open_for_append()
        journal.append(Timestamp(3, "w2"), block(b"c", 3))
        journal.close()
        # The torn line is gone; the new entry parses cleanly.
        assert [ts for ts, _ in journal.load()] == [
            Timestamp(1, "w0"), Timestamp(3, "w2"),
        ]


class TestCorruption:
    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal_with(path, [(1, "w0", block(b"a", 1)),
                            (2, "w1", block(b"b", 2))])
        lines = path.read_text().splitlines()
        lines[1] = "}}corrupt{{"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError):
            ReplicaJournal(path, SIG).load()

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"ts": [1, "w0"]}\n')
        with pytest.raises(JournalError, match="missing header"):
            ReplicaJournal(path, SIG).load()

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json.dumps({
            "journal": JOURNAL_MAGIC,
            "journal_version": JOURNAL_VERSION + 1,
            "signature": SIG,
        }) + "\n")
        with pytest.raises(JournalError, match="version"):
            ReplicaJournal(path, SIG).load()

    def test_foreign_signature_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal_with(path, [(1, "w0", block(b"a", 1))])
        other = replica_signature("s1", 1, 1, 8, "replication")
        with pytest.raises(JournalError, match="different replica"):
            ReplicaJournal(path, other).load()

    def test_malformed_entry_fields_raise(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal_with(path, [(1, "w0", block(b"a", 1))])
        with open(path, "a") as handle:
            handle.write('{"ts": [2, "w1"], "block": {"p": "!!!"}}\n')
            handle.write('{"ts": [3, "w2"], "block": null}\n')
        with pytest.raises(JournalError, match="malformed"):
            ReplicaJournal(path, SIG).load()

    def test_journal_error_is_checkpoint_error(self):
        # Journal-aware callers can catch either failure domain.
        assert issubclass(JournalError, CheckpointError)


class TestSignature:
    @pytest.mark.parametrize("change", [
        {"name": "s1"}, {"index": 1}, {"f": 2},
        {"data_size_bytes": 16}, {"scheme": "rs"},
    ])
    def test_every_config_field_is_pinned(self, change):
        base = dict(name="s0", index=0, f=1, data_size_bytes=8,
                    scheme="replication")
        assert replica_signature(**base) != replica_signature(
            **{**base, **change}
        )
