"""Sim-vs-TCP parity: one protocol, two transports, identical decisions.

The tentpole invariant of the protocol/transport split: the simulated
:class:`~repro.msgnet.abd.MsgABDSystem` and the asyncio TCP service run
the *same* machine classes, and for a seeded sequential schedule they
log the *same* quorum/timestamp decisions — ``("choose-ts", ...)``,
``("read-select", ...)`` and friends. Any fork of protocol logic between
the two transports shows up here as a decision-log diff.

Determinism argument for sequential schedules: every majority quorum
intersects the previous write's quorum, so the maximum timestamp any
quorum observes is the latest written one regardless of which servers
answered first — the decisions are a function of the schedule alone.
"""

import random

import repro.msgnet.protocol as protocol_module
import repro.service.client as client_module
import repro.service.server as server_module
from repro.msgnet import MsgABDSystem
from repro.msgnet.protocol import ReadOperation, ServerProtocol, WriteOperation

D = 8


def seeded_schedule(seed: int, length: int = 8):
    rng = random.Random(seed)
    schedule = [("write", bytes([65 + seed]) * D)]  # start with a write
    while len(schedule) < length:
        if rng.random() < 0.5:
            value = bytes([rng.randrange(33, 126)]) * D
            schedule.append(("write", value))
        else:
            schedule.append(("read", None))
    return schedule


def sim_decisions(schedule):
    system = MsgABDSystem(f=1, data_size_bytes=D)
    for index, (kind, value) in enumerate(schedule):
        if kind == "write":
            system.add_writer(f"c{index}", value)
        else:
            system.add_reader(f"c{index}")
        system.run()  # sequential: quiesce between operations
    return system.decisions, [op.result for op in system.ops]


async def tcp_decisions(cluster, schedule):
    decisions: list[tuple] = []
    results = []
    for index, (kind, value) in enumerate(schedule):
        client = cluster.client(f"c{index}", timeout=5.0)
        client.decisions = decisions  # one shared log, like the sim
        client._next_op_uid = index  # align uids with the sim's counter
        if kind == "write":
            results.append(await client.write(value))
        else:
            results.append(await client.read())
        await client.close()
    return decisions, results


class TestStructuralParity:
    def test_both_transports_share_the_machine_classes(self):
        """Zero protocol forks: the service imports the sim's classes,
        not copies of them."""
        assert server_module.ServerProtocol is ServerProtocol
        assert client_module.WriteOperation is WriteOperation
        assert client_module.ReadOperation is ReadOperation
        assert protocol_module.ServerProtocol is ServerProtocol

    def test_live_server_runs_a_protocol_instance(self, loopback, run):
        async def scenario():
            async with loopback() as cluster:
                return [
                    type(server.protocol)
                    for server in cluster.servers.values()
                ]

        assert run(scenario()) == [ServerProtocol] * 3


class TestDecisionParity:
    def test_seeded_schedules_produce_identical_decisions(
        self, loopback, run
    ):
        for seed in (0, 1, 2):
            schedule = seeded_schedule(seed)
            expected_decisions, expected_results = sim_decisions(schedule)

            async def scenario(s=schedule):
                async with loopback(name=f"cluster{seed}") as cluster:
                    return await tcp_decisions(cluster, s)

            actual_decisions, actual_results = run(scenario())
            assert actual_decisions == expected_decisions, (
                f"seed {seed}: transports diverged"
            )
            assert actual_results == expected_results

    def test_storage_accounting_matches_sim_at_rest(self, loopback, run):
        """Equal (f, D) deployments report equal Definition-2 at-rest
        bits — the live ledger agrees with the simulated meter."""
        schedule = seeded_schedule(3, length=5)
        system = MsgABDSystem(f=1, data_size_bytes=D)
        for index, (kind, value) in enumerate(schedule):
            if kind == "write":
                system.add_writer(f"c{index}", value)
            else:
                system.add_reader(f"c{index}")
            system.run()

        async def scenario():
            async with loopback() as cluster:
                await tcp_decisions(cluster, schedule)
                return cluster.server_storage_bits()

        assert run(scenario()) == system.server_storage_bits() == 3 * D * 8
