"""Golden-output tests for the daemon CLI.

The serve/status/doctor/stop outputs are compared verbatim against
checked-in golden files after normalizing the run-specific parts: the
state-dir path, pids, ports, and table padding. Regenerate the goldens
with ``REPRO_UPDATE_GOLDENS=1 pytest tests/service/test_cli_golden.py``
after an intentional format change.
"""

import asyncio
import os
import re
from pathlib import Path

from repro.cli import main
from repro.service import ServiceClient, StateDir

GOLDEN = Path(__file__).parent / "golden"

D = 8  # bytes -> the goldens talk about a 64-bit register


def normalize(text: str, state_dir, tokens: dict[str, str]) -> str:
    """Replace run-specific values with stable placeholders."""
    for value, placeholder in sorted(
        tokens.items(), key=lambda item: -len(item[0])
    ):
        text = text.replace(value, placeholder)
    text = text.replace(str(state_dir), "STATEDIR")
    text = re.sub(r"[ \t]+", " ", text)  # table padding varies with pids
    text = re.sub(r"-{2,}", "--", text)  # ruler width varies with pids
    text = re.sub(r"\b\d+s ago\b", "AGE ago", text)  # last-seen ages
    # The active/registered backend set varies with the environment
    # (numba registers only where installed, REPRO_CODING_BACKEND may
    # override), so the backend report collapses to stable placeholders.
    text = re.sub(
        r"\S+ \(available: [^)]+\)", "BACKEND (available: BACKENDS)", text
    )
    return "\n".join(line.rstrip() for line in text.splitlines()) + "\n"


def expect(name: str, actual: str) -> None:
    path = GOLDEN / name
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        path.parent.mkdir(exist_ok=True)
        path.write_text(actual)
        return
    assert actual == path.read_text(), f"golden mismatch: {path}"


def runtime_tokens(state_dir) -> dict[str, str]:
    state = StateDir(state_dir)
    tokens: dict[str, str] = {}
    for server in state.read_meta()["servers"]:
        name = server["name"]
        pid = state.read_pid(name)
        port = state.read_port(name)
        if pid is not None:
            tokens[str(pid)] = f"PID-{name}"
        if port is not None:
            tokens[str(port)] = f"PORT-{name}"
    return tokens


class TestGoldenLifecycle:
    def test_full_lifecycle_output(self, tmp_path, capsys):
        state_dir = tmp_path / "cluster"

        code = main(["serve", "--f", "1", "--data-size", str(D),
                     "--state-dir", str(state_dir)])
        out = capsys.readouterr().out
        assert code == 0
        expect("serve.txt", normalize(out, state_dir, {}))

        # One deterministic write so ts/applied columns are non-trivial.
        state = StateDir(state_dir)
        meta = state.read_meta()
        endpoints = {
            server["name"]: (meta["host"], state.read_port(server["name"]))
            for server in meta["servers"]
        }

        async def one_write():
            client = ServiceClient("w0", endpoints, 1, D, timeout=5.0)
            await client.write(b"golden!!")
            await client.close()

        asyncio.run(one_write())
        tokens = runtime_tokens(state_dir)

        code = main(["status", "--state-dir", str(state_dir)])
        out = capsys.readouterr().out
        assert code == 0
        expect("status.txt", normalize(out, state_dir, tokens))

        code = main(["doctor", "--state-dir", str(state_dir)])
        out = capsys.readouterr().out
        assert code == 0
        expect("doctor.txt", normalize(out, state_dir, tokens))

        code = main(["serve", "--f", "1", "--data-size", str(D),
                     "--state-dir", str(state_dir)])
        err = capsys.readouterr().err
        assert code == 3
        expect("serve_already_running.txt",
               normalize(err, state_dir, tokens))

        code = main(["stop", "--state-dir", str(state_dir)])
        out = capsys.readouterr().out
        assert code == 0
        expect("stop.txt", normalize(out, state_dir, tokens))

        code = main(["status", "--state-dir", str(state_dir)])
        err = capsys.readouterr().err
        assert code == 4
        expect("status_not_running.txt", normalize(err, state_dir, tokens))

    def test_stop_never_started_output(self, tmp_path, capsys):
        state_dir = tmp_path / "missing"
        code = main(["stop", "--state-dir", str(state_dir)])
        err = capsys.readouterr().err
        assert code == 4
        expect("stop_never_started.txt", normalize(err, state_dir, {}))
