"""Shared fixtures for the networked-service suite.

Every test below this directory gets the ``service`` marker (real
sockets, some real subprocesses — deselect with ``-m "not service"``),
and the whole directory is skipped when the sandbox cannot bind a
loopback socket at all.
"""

import asyncio
import socket

import pytest

from repro.service import LoopbackCluster, merge_histories


def _loopback_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
        return True
    except OSError:
        return False


_LOOPBACK_OK = _loopback_available()


def pytest_collection_modifyitems(config, items):
    skip = pytest.mark.skip(reason="cannot bind loopback sockets here")
    for item in items:
        if item.path.parent.name == "service" or "/service/" in str(item.path):
            item.add_marker(pytest.mark.service)
            if not _LOOPBACK_OK:
                item.add_marker(skip)


@pytest.fixture
def run():
    """Run a coroutine to completion on a fresh event loop."""
    return asyncio.run


@pytest.fixture
def loopback(tmp_path):
    """An async context manager factory for in-process clusters."""

    def factory(f: int = 1, data_size_bytes: int = 8,
                name: str = "cluster", **kwargs):
        return LoopbackCluster(
            f, data_size_bytes, tmp_path / name, **kwargs
        )

    return factory


def checked_history(clients, v0=None):
    """Merged history from live clients, ready for the spec checkers."""
    return merge_histories(clients, v0)
