"""Crash recovery: SIGKILL mid-write, journal restart, linearizable after."""

import asyncio
import os
import signal

import pytest

from repro.errors import JournalError
from repro.registers.timestamps import Timestamp
from repro.service import (
    ReplicaServer,
    ServerConfig,
    ServiceClient,
    StateDir,
    cluster_status,
    restart_dead,
    start_cluster,
    stop_cluster,
)
from repro.service.statedir import pid_alive
from repro.spec import check_linearizability, check_strong_regularity


def sigkill(state: StateDir, name: str) -> None:
    pid = state.read_pid(name)
    os.kill(pid, signal.SIGKILL)
    while pid_alive(pid):  # reaped by pid 1; zombie counts as dead
        pass


class TestDaemonRecovery:
    def test_sigkill_f_servers_midwave_then_restart(self, tmp_path, run):
        """Kill f servers with a write wave in flight; revive them from
        their journals; the revived state is timestamp-consistent and
        subsequent reads linearize with everything acknowledged."""
        state_dir = tmp_path / "cluster"
        start_cluster(state_dir, f=1, data_size_bytes=8)
        state = StateDir(state_dir)
        meta = state.read_meta()
        endpoints = {
            server["name"]: (meta["host"], state.read_port(server["name"]))
            for server in meta["servers"]
        }
        try:
            async def wave_with_crash():
                writer = ServiceClient("w0", endpoints, 1, 8, timeout=5.0)
                await writer.write(b"wave-00!")
                await writer.write(b"wave-01!")
                # Crash one server (the full f budget) mid-wave...
                sigkill(state, "s0")
                # ...the wave keeps completing against the live majority.
                await writer.write(b"wave-02!")
                await writer.write(b"wave-03!")
                await writer.close()
                return writer

            writer = run(wave_with_crash())
            assert not state.server_alive("s0")

            revived = restart_dead(state_dir)
            assert revived == ["s0"]

            # Revived state is ts-consistent: nobody is ahead of the max,
            # and s0 recovered a real journaled timestamp.
            _meta, view = cluster_status(state_dir)
            assert view.alive_count == 3
            assert view.timestamp_consistent()
            s0 = next(s for s in view.statuses if s.name == "s0")
            assert s0.ts is not None and s0.ts.num >= 2  # pre-crash writes

            async def read_after():
                # Fresh endpoints: the revived s0 is on a new port.
                fresh = {
                    server["name"]: (
                        meta["host"], state.read_port(server["name"])
                    )
                    for server in meta["servers"]
                }
                reader = ServiceClient("r0", fresh, 1, 8, timeout=5.0)
                value = await reader.read()
                await reader.close()
                return reader, value

            reader, value = run(read_after())
            assert value == b"wave-03!"

            from repro.service import merge_histories
            history = merge_histories([writer, reader])
            assert check_linearizability(history).ok
            assert check_strong_regularity(history).ok
        finally:
            stop_cluster(state_dir)

    def test_full_cluster_restart_recovers_all_journals(self, tmp_path, run):
        state_dir = tmp_path / "cluster"
        start_cluster(state_dir, f=1, data_size_bytes=8)
        state = StateDir(state_dir)
        meta = state.read_meta()
        endpoints = {
            server["name"]: (meta["host"], state.read_port(server["name"]))
            for server in meta["servers"]
        }

        async def write_then_close():
            client = ServiceClient("w0", endpoints, 1, 8, timeout=5.0)
            await client.write(b"persist!")
            await client.close()

        run(write_then_close())
        for name in ("s0", "s1", "s2"):  # hard-crash the whole cluster
            sigkill(state, name)

        # start_cluster over the all-dead dir is the recovery path.
        start_cluster(state_dir, f=1, data_size_bytes=8)
        try:
            _meta, view = cluster_status(state_dir)
            assert view.alive_count == 3
            assert view.max_ts == Timestamp(1, "w0")

            async def read_back():
                fresh = {
                    server["name"]: (
                        meta["host"], state.read_port(server["name"])
                    )
                    for server in meta["servers"]
                }
                client = ServiceClient("r0", fresh, 1, 8, timeout=5.0)
                value = await client.read()
                await client.close()
                return value

            assert run(read_back()) == b"persist!"
        finally:
            stop_cluster(state_dir)


class TestLoopbackRecovery:
    def test_acknowledged_write_survives_abrupt_stop(self, loopback, run):
        """Write-ahead contract at the server object level: the journal
        already holds any write the client saw acknowledged, so a server
        rebuilt over the same state dir resumes at that state."""

        async def scenario():
            cluster = loopback()
            async with cluster:
                client = cluster.client("w0")
                await client.write(b"ackd-one")
                await client.close()
                config = cluster.servers["s0"].config
            # Cluster fully stopped; rebuild s0 alone from its journal.
            reborn = ReplicaServer(ServerConfig(
                name=config.name, index=config.index, f=config.f,
                data_size_bytes=config.data_size_bytes,
                state_dir=config.state_dir,
            ))
            await reborn.start()
            ts = reborn.protocol.state.ts
            await reborn.drain()
            return ts

        assert run(scenario()) == Timestamp(1, "w0")

    def test_corrupted_journal_refuses_to_start(self, tmp_path, run):
        config = ServerConfig(
            name="s0", index=0, f=1, data_size_bytes=8,
            state_dir=str(tmp_path / "cluster"),
        )

        async def write_and_stop():
            server = ReplicaServer(config)
            await server.start()
            server.protocol.handle("c", (
                "write", (0, 2), Timestamp(1, "w0"),
                _block(server, b"x" * 8),
            ))
            await server.drain()

        run(write_and_stop())
        journal = StateDir(config.state_dir).journal_path("s0")
        lines = journal.read_text().splitlines()
        lines[1] = "{{not json"  # corrupt a *non-final* line: no tolerance
        lines.append('{"ts": [9, "zz"], "block": {"p": "AA=="}}')
        journal.write_text("\n".join(lines) + "\n")

        async def try_restart():
            await ReplicaServer(config).start()

        with pytest.raises(JournalError):
            run(try_restart())

    def test_foreign_journal_refuses_to_start(self, tmp_path, run):
        state_dir = str(tmp_path / "cluster")

        async def start_stop(config):
            server = ReplicaServer(config)
            await server.start()
            await server.drain()

        run(start_stop(ServerConfig(
            name="s0", index=0, f=1, data_size_bytes=8, state_dir=state_dir,
        )))
        # Same file, different replica shape (f=2 -> n=5): must refuse.
        with pytest.raises(JournalError, match="different replica"):
            run(start_stop(ServerConfig(
                name="s0", index=0, f=2, data_size_bytes=8,
                state_dir=state_dir,
            )))


def _block(server, value):
    from repro.coding.oracles import BlockSource, CodeBlock

    index = server.config.index
    return CodeBlock(
        payload=server.scheme.encode_block(value, index),
        index=index,
        source=BlockSource(0, index),
        size_bits=server.scheme.block_size_bits(index),
    )
