"""Daemon lifecycle: real subprocesses, pidfiles, drain, exit codes."""

import asyncio

import pytest

from repro.cli import main
from repro.errors import AlreadyRunningError, NotRunningError
from repro.service import (
    EXIT_ALREADY_RUNNING,
    EXIT_NOT_RUNNING,
    EXIT_OK,
    ServiceClient,
    StateDir,
    cluster_status,
    start_cluster,
    stop_cluster,
)


def endpoints_of(state_dir):
    state = StateDir(state_dir)
    meta = state.read_meta()
    return meta, {
        server["name"]: (meta["host"], state.read_port(server["name"]))
        for server in meta["servers"]
    }


class TestLifecycle:
    def test_start_serve_stop_roundtrip(self, tmp_path, run):
        state_dir = tmp_path / "cluster"
        meta = start_cluster(state_dir, f=1, data_size_bytes=8)
        try:
            assert len(meta["servers"]) == 3
            state = StateDir(state_dir)
            assert sorted(state.live_servers()) == ["s0", "s1", "s2"]

            _meta, endpoints = endpoints_of(state_dir)

            async def one_write_one_read():
                client = ServiceClient("w0", endpoints, 1, 8)
                try:
                    await client.write(b"abcdefgh")
                    return await client.read()
                finally:
                    await client.close()

            assert run(one_write_one_read()) == b"abcdefgh"

            _meta, view = cluster_status(state_dir)
            assert view.quorum_available
            assert view.server_storage_bits == 3 * 64
        finally:
            report = stop_cluster(state_dir)
        assert [outcome for _n, _p, outcome in report] == ["stopped"] * 3
        assert StateDir(state_dir).live_servers() == []
        # Runtime files are gone; journals persist for recovery.
        assert not state.pid_path("s0").exists()
        assert state.journal_path("s0").exists()

    def test_concurrent_clients_against_daemon(self, tmp_path, run):
        state_dir = tmp_path / "cluster"
        start_cluster(state_dir, f=1, data_size_bytes=8)
        try:
            _meta, endpoints = endpoints_of(state_dir)

            async def storm():
                writers = [
                    ServiceClient(f"w{i}", endpoints, 1, 8)
                    for i in range(3)
                ]
                readers = [
                    ServiceClient(f"r{i}", endpoints, 1, 8)
                    for i in range(2)
                ]

                async def write_some(client, tag):
                    for round_number in range(3):
                        await client.write(
                            f"{tag}{round_number}".encode().ljust(8, b".")
                        )

                async def read_some(client):
                    return [await client.read() for _ in range(3)]

                results = await asyncio.gather(
                    *(write_some(w, w.name) for w in writers),
                    *(read_some(r) for r in readers),
                )
                for client in writers + readers:
                    await client.close()
                return writers, readers, results

            writers, readers, results = run(storm())
            written = {
                f"{w.name}{i}".encode().ljust(8, b".")
                for w in writers for i in range(3)
            } | {bytes(8)}
            for values in results[len(writers):]:
                assert all(value in written for value in values)
        finally:
            stop_cluster(state_dir)

    def test_double_start_raises_and_exits_3(self, tmp_path, capsys):
        state_dir = tmp_path / "cluster"
        start_cluster(state_dir, f=1, data_size_bytes=8)
        try:
            with pytest.raises(AlreadyRunningError):
                start_cluster(state_dir, f=1, data_size_bytes=8)
            code = main(["serve", "--f", "1", "--data-size", "8",
                         "--state-dir", str(state_dir)])
            assert code == EXIT_ALREADY_RUNNING == 3
            assert "already running" in capsys.readouterr().err
        finally:
            stop_cluster(state_dir)

    def test_stop_without_start_raises_and_exits_4(self, tmp_path, capsys):
        missing = tmp_path / "never-started"
        with pytest.raises(NotRunningError):
            stop_cluster(missing)
        code = main(["stop", "--state-dir", str(missing)])
        assert code == EXIT_NOT_RUNNING == 4
        assert "no cluster" in capsys.readouterr().err

    def test_stop_twice_exits_4(self, tmp_path, capsys):
        state_dir = tmp_path / "cluster"
        start_cluster(state_dir, f=1, data_size_bytes=8)
        assert main(["stop", "--state-dir", str(state_dir)]) == EXIT_OK
        assert main(["stop", "--state-dir", str(state_dir)]) \
            == EXIT_NOT_RUNNING
        capsys.readouterr()

    def test_distinct_exit_codes(self):
        assert len({EXIT_OK, EXIT_ALREADY_RUNNING, EXIT_NOT_RUNNING, 1}) == 4


class TestDrain:
    def test_graceful_drain_completes_inflight_ops(self, loopback, run):
        """SIGTERM semantics in miniature: drain() stops accepting but
        lets the request already inside the server finish."""

        async def scenario():
            async with loopback(handle_delay_s=0.05) as cluster:
                client = cluster.client("w0", timeout=5.0)
                write = asyncio.ensure_future(client.write(b"slowpoke"))
                await asyncio.sleep(0.02)  # write is now in flight
                await cluster.drain("s0")
                result = await write
                value = await client.read()
                await client.close()
                return result, value

        result, value = run(scenario())
        assert result == "ok"
        assert value == b"slowpoke"

    def test_drained_server_refuses_new_work(self, loopback, run):
        async def scenario():
            async with loopback() as cluster:
                await cluster.drain("s0", "s1")
                live = cluster.server_storage_bits()
                # Quorum is gone (2 of 3 down) — a bounded-retry client
                # must time out rather than hang.
                client = cluster.client("w0", timeout=0.2, retries=1)
                from repro.errors import QuorumTimeout
                try:
                    await client.write(b"too-late")
                    raise AssertionError("write should not find a quorum")
                except QuorumTimeout:
                    pass
                finally:
                    await client.close()
                return live

        assert run(scenario()) == 64  # only s2's replica remains at rest
