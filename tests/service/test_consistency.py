"""Consistency over real sockets: loopback histories, existing checkers.

The simulated deployment proves ABD strongly regular and (without
concurrent write races) linearizable under the model's schedulers; this
suite closes the loop for the production transport by collecting *real*
invoke/return intervals from concurrent TCP clients and feeding the
merged history to the very same ``repro.spec`` checkers.
"""

import asyncio

from repro.service import merge_histories
from repro.spec import (
    check_linearizability,
    check_strong_regularity,
    check_weak_regularity,
)

D = 8


def padded(tag: str) -> bytes:
    return tag.encode().ljust(D, b"_")


async def _concurrent_workload(cluster, writers=3, readers=2, rounds=3):
    writer_clients = [cluster.client(f"w{i}") for i in range(writers)]
    reader_clients = [cluster.client(f"r{i}") for i in range(readers)]

    async def write_loop(client):
        for round_number in range(rounds):
            await client.write(padded(f"{client.name}{round_number}"))

    async def read_loop(client):
        for _ in range(rounds):
            await client.read()

    await asyncio.gather(
        *(write_loop(client) for client in writer_clients),
        *(read_loop(client) for client in reader_clients),
    )
    clients = writer_clients + reader_clients
    history = merge_histories(clients)
    for client in clients:
        await client.close()
    return history


class TestSocketsHistories:
    def test_concurrent_history_is_linearizable(self, loopback, run):
        async def scenario():
            async with loopback() as cluster:
                return await _concurrent_workload(cluster)

        history = run(scenario())
        assert len(history.ops) == 3 * 3 + 2 * 3
        assert all(op.return_time is not None for op in history.ops)
        report = check_linearizability(history)
        assert report.ok, report.note

    def test_concurrent_history_is_strongly_regular(self, loopback, run):
        async def scenario():
            async with loopback() as cluster:
                return await _concurrent_workload(cluster, writers=2,
                                                  readers=3)

        history = run(scenario())
        assert check_weak_regularity(history).ok
        assert check_strong_regularity(history).ok

    def test_history_under_server_latency(self, loopback, run):
        """Artificial per-request latency widens overlap windows — more
        genuinely-concurrent intervals for the checkers to chew on."""

        async def scenario():
            async with loopback(handle_delay_s=0.01) as cluster:
                return await _concurrent_workload(cluster, writers=2,
                                                  readers=2, rounds=2)

        history = run(scenario())
        overlapping = sum(
            1
            for a in history.ops for b in history.ops
            if a.op_uid < b.op_uid
            and a.invoke_time < b.return_time
            and b.invoke_time < a.return_time
        )
        assert overlapping > 0  # the workload really was concurrent
        assert check_linearizability(history).ok
        assert check_strong_regularity(history).ok

    def test_sequential_reads_see_monotone_freshness(self, loopback, run):
        """Strong regularity's reader-side consequence over sockets: a
        reader's successive non-concurrent reads never go back in time."""

        async def scenario():
            async with loopback() as cluster:
                writer = cluster.client("w0")
                reader = cluster.client("r0")
                seen = []
                for index in range(4):
                    await writer.write(padded(f"v{index}"))
                    seen.append(await reader.read())
                await writer.close()
                await reader.close()
                return seen

        seen = run(scenario())
        versions = [int(value[1:2]) for value in seen]
        assert versions == sorted(versions)
        assert seen[-1] == padded("v3")
