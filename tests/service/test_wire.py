"""Wire codec + framing: lossless byte round-trips, loud failures."""

import asyncio

import pytest

from repro.coding.oracles import BlockSource, CodeBlock
from repro.errors import WireError
from repro.msgnet.protocol import READ_TS, REPLY_VALUE, WRITE
from repro.registers.timestamps import TS_ZERO, Timestamp
from repro.service.framing import (
    MAX_FRAME_BYTES,
    pack_frame,
    read_frame,
    write_frame,
)
from repro.service.wire import decode_payload, encode_payload


def block(payload=b"abcd", index=1):
    return CodeBlock(
        payload=payload, index=index,
        source=BlockSource(5, index), size_bits=len(payload) * 8,
    )


class TestCodec:
    def test_timestamp_roundtrip_preserves_ordering(self):
        wire = encode_payload(("ts-reply", (0, 1), Timestamp(3, "w")))
        decoded = decode_payload(wire)
        assert decoded[2] == Timestamp(3, "w")
        assert decoded[2] > Timestamp(2, "z")  # still totally ordered

    def test_block_roundtrip_preserves_metering_fields(self):
        original = block()
        decoded = decode_payload(
            encode_payload((REPLY_VALUE, (7, 1), TS_ZERO, original))
        )
        assert decoded[3] == original
        assert decoded[3].size_bits == original.size_bits
        assert decoded[3].source == original.source

    def test_request_ids_stay_tuples(self):
        # Quorum rounds compare request ids with ==; a list would never
        # equal the tuple the machine issued.
        decoded = decode_payload(encode_payload((READ_TS, (42, 2))))
        assert decoded == (READ_TS, (42, 2))
        assert isinstance(decoded[1], tuple)

    def test_bytes_roundtrip(self):
        decoded = decode_payload(encode_payload(("x", (0, 1), b"\x00\xff")))
        assert decoded[2] == b"\x00\xff"

    def test_full_write_payload_roundtrip(self):
        payload = (WRITE, (3, 2), Timestamp(9, "w1"), block(b"\x01" * 16, 0))
        assert decode_payload(encode_payload(payload)) == payload

    def test_unknown_tag_raises(self):
        with pytest.raises(WireError):
            decode_payload(b'[{"!":"alien","x":1}]')

    def test_junk_bytes_raise(self):
        with pytest.raises(WireError):
            decode_payload(b"\xde\xad\xbe\xef")

    def test_non_tuple_toplevel_raises(self):
        with pytest.raises(WireError):
            decode_payload(b'{"not":"a payload"}')

    def test_unencodable_object_raises(self):
        with pytest.raises(WireError):
            encode_payload(("x", (0, 1), object()))


async def frames_from(*chunks: bytes) -> list[bytes | None]:
    """Feed raw bytes to a reader; collect frames until EOF/None."""
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    reader.feed_eof()
    frames = []
    while True:
        frame = await read_frame(reader)
        frames.append(frame)
        if frame is None:
            return frames


class TestFraming:
    def test_roundtrip(self, run):
        body = encode_payload((READ_TS, (0, 1)))
        assert run(frames_from(pack_frame(body))) == [body, None]

    def test_two_frames_stay_separate(self, run):
        assert run(frames_from(pack_frame(b"one"), pack_frame(b"two"))) == [
            b"one", b"two", None,
        ]

    def test_clean_eof_returns_none(self, run):
        assert run(frames_from()) == [None]

    def test_eof_inside_header_raises(self, run):
        with pytest.raises(WireError):
            run(frames_from(b"\x00\x00"))

    def test_eof_inside_body_raises(self, run):
        with pytest.raises(WireError):
            run(frames_from(pack_frame(b"full")[:-2]))

    def test_oversized_announcement_raises(self, run):
        header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(WireError):
            run(frames_from(header))

    def test_oversized_pack_raises(self):
        class Huge(bytes):
            def __len__(self):
                return MAX_FRAME_BYTES + 1

        with pytest.raises(WireError):
            pack_frame(Huge())

    def test_write_frame_is_readable(self, run):
        async def loop_through():
            reader = asyncio.StreamReader()

            class Sink:
                def write(self, data):
                    reader.feed_data(data)

                async def drain(self):
                    pass

            await write_frame(Sink(), b"payload")
            reader.feed_eof()
            return await read_frame(reader)

        assert run(loop_through()) == b"payload"
