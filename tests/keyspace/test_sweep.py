"""Tests for the keyspace sweep axis: byte-identity, pooling, shapes."""

import json

import pytest

from repro.analysis import (
    KeyspaceSweepResult,
    keyspace_advantage_ratios,
    keyspace_grid,
    keyspace_shape_violations,
    run_keyspace_sweep,
)
from repro.analysis.sweeps import run_keyspace_sweep as serial_sweep

#: The reference crossover grid: small enough for CI, skewed enough that
#: hotspot (2 hot keys over 16 shards) concentrates real concurrency.
CELLS = keyspace_grid(
    skews=("uniform", "hotspot"),
    registers=("coded-only", "adaptive"),
    keys=(512,),
    shards=(16,),
    waves=3,
    wave_size=48,
    reads_per_wave=4,
    hot_keys=2,
    hot_weight=0.95,
    vnodes=16,
    seed=0,
)


@pytest.fixture(scope="module")
def serial_reference():
    return serial_sweep(CELLS)


class TestGrid:
    def test_cartesian_and_deduplicated(self):
        assert len(CELLS) == 4
        assert len(set(CELLS)) == 4
        assert {c.skew for c in CELLS} == {"uniform", "hotspot"}
        assert {c.register for c in CELLS} == {"coded-only", "adaptive"}


class TestByteIdentity:
    def test_same_cells_same_bytes(self, serial_reference):
        """Same-seed sweeps serialize byte-identically, timing stripped."""
        again = serial_sweep(CELLS)
        assert again.to_json(include_timing=False) == \
            serial_reference.to_json(include_timing=False)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_pooled_matches_serial(self, serial_reference, workers):
        pooled = run_keyspace_sweep(CELLS, workers=workers)
        assert pooled.to_json(include_timing=False) == \
            serial_reference.to_json(include_timing=False)

    def test_roundtrip_through_json(self, serial_reference, tmp_path):
        path = tmp_path / "keyspace.json"
        serial_reference.save(path)
        loaded = KeyspaceSweepResult.load(path)
        assert loaded.to_json(include_timing=False) == \
            serial_reference.to_json(include_timing=False)
        document = json.loads(path.read_text())
        # v2 added the coding_backend execution-metadata field.
        assert document["version"] == 2


class TestShapes:
    def test_floors_hold_on_every_record(self, serial_reference):
        assert all(r.floor_violations == 0 for r in serial_reference.records)

    def test_hotspot_advantage_exceeds_uniform(self, serial_reference):
        """The headline crossover: concentrating concurrency widens the
        coded-only/adaptive peak-storage gap."""
        ratios = keyspace_advantage_ratios(serial_reference)
        assert set(ratios) == {"uniform", "hotspot"}
        assert ratios["hotspot"] > ratios["uniform"]
        assert ratios["uniform"] > 1.0

    def test_shape_checker_passes_the_reference(self, serial_reference):
        assert keyspace_shape_violations(serial_reference) == []

    def test_table_renders_every_record(self, serial_reference):
        table = serial_reference.table()
        assert table.count("\n") >= len(serial_reference.records)
        assert "aggregate_peak_bo_state_bits" in table


class TestSelection:
    def test_select_filters_by_axis(self, serial_reference):
        hot = serial_reference.select(skew="hotspot")
        assert len(hot) == 2
        assert {r.register for r in hot} == {"coded-only", "adaptive"}
