"""Tests for the sharded keyspace runner: floors, parity, determinism."""

import pytest

from repro.errors import ParameterError
from repro.keyspace import KeyspaceSpec, run_keyspace

#: Small enough for CI, skewed enough to concentrate real concurrency:
#: 2 hot keys over 8 shards puts most of each 32-op wave on <= 2 shards.
HOT = KeyspaceSpec(
    keys=256, shards=8, register="adaptive", skew="hotspot",
    hot_keys=2, hot_weight=0.95, waves=2, wave_size=32,
    reads_per_wave=4, vnodes=16, seed=3,
)
UNIFORM = KeyspaceSpec(
    keys=256, shards=8, register="coded-only", skew="uniform",
    waves=2, wave_size=32, reads_per_wave=4, vnodes=16, seed=3,
)


@pytest.fixture(scope="module")
def hot_result():
    return run_keyspace(HOT)


@pytest.fixture(scope="module")
def uniform_result():
    return run_keyspace(UNIFORM)


class TestAccounting:
    def test_every_operation_completes(self, hot_result):
        assert hot_result.completed_writes == HOT.waves * HOT.wave_size
        assert hot_result.completed_reads == HOT.waves * HOT.reads_per_wave

    def test_wave_concurrency_partitions_each_wave(self, hot_result):
        for wave in range(HOT.waves):
            routed = sum(
                c for (w, _shard), c in hot_result.wave_concurrency.items()
                if w == wave
            )
            assert routed == HOT.wave_size

    def test_distinct_keys_bounded_by_draws(self, hot_result):
        assert 1 <= hot_result.distinct_keys <= HOT.total_ops
        assert hot_result.distinct_keys <= HOT.keys

    def test_hotspot_concentrates_concurrency(self, hot_result,
                                              uniform_result):
        """The headline physics: hotspot's per-shard c far exceeds
        uniform's, on identical wave sizes."""
        assert hot_result.max_shard_c > uniform_result.max_shard_c
        assert hot_result.active_shards <= uniform_result.active_shards


class TestTheorem1Floors:
    @pytest.mark.parametrize("register", ["abd", "coded-only", "adaptive"])
    def test_every_active_shard_meets_its_floor(self, register):
        spec = KeyspaceSpec(
            keys=128, shards=4, register=register, skew="hotspot",
            hot_keys=2, hot_weight=0.9, waves=2, wave_size=16,
            vnodes=16, seed=1,
        )
        outcome = run_keyspace(spec)
        assert outcome.floor_violations == []
        active = [s for s in outcome.shard_stats if s.waves_active]
        assert active, "hotspot wave must load at least one shard"
        assert all(s.thm1_floor_bits > 0 for s in active)

    def test_idle_shards_have_zero_floor(self, hot_result):
        idle = [s for s in hot_result.shard_stats if not s.waves_active]
        assert idle, "2 hot keys over 8 shards must leave idle shards"
        assert all(s.thm1_floor_bits == 0 for s in idle)
        assert all(s.peak_storage_bits == 0 for s in idle)


class TestLedgerParity:
    @pytest.mark.parametrize("register", ["coded-only", "adaptive"])
    def test_incremental_ledger_matches_reference_walk(self, register):
        """audit_storage_every=1 cross-checks the O(1) ledger against the
        full-walk ReferenceStorageMeter at every action of every shard
        simulation; a divergence raises from inside the tracker."""
        spec = KeyspaceSpec(
            keys=128, shards=4, register=register, skew="hotspot",
            hot_keys=2, hot_weight=0.9, waves=2, wave_size=16,
            reads_per_wave=2, vnodes=16, seed=2,
        )
        audited = run_keyspace(spec, audit_storage_every=1)
        unaudited = run_keyspace(spec)
        assert audited.aggregate_peak_storage_bits == \
            unaudited.aggregate_peak_storage_bits
        assert audited.aggregate_final_bits == unaudited.aggregate_final_bits


class TestDeterminism:
    def test_same_spec_same_measurements(self, hot_result):
        again = run_keyspace(HOT)
        assert again.wave_concurrency == hot_result.wave_concurrency
        assert again.distinct_keys == hot_result.distinct_keys
        for a, b in zip(again.shard_stats, hot_result.shard_stats):
            assert (a.max_c, a.peak_storage_bits, a.peak_bo_state_bits,
                    a.final_bo_state_bits, a.thm1_floor_bits, a.steps) == \
                   (b.max_c, b.peak_storage_bits, b.peak_bo_state_bits,
                    b.final_bo_state_bits, b.thm1_floor_bits, b.steps)

    def test_seed_changes_the_draw(self):
        other = run_keyspace(
            KeyspaceSpec(
                keys=256, shards=8, register="adaptive", skew="hotspot",
                hot_keys=2, hot_weight=0.95, waves=2, wave_size=32,
                reads_per_wave=4, vnodes=16, seed=4,
            )
        )
        baseline = run_keyspace(HOT)
        assert other.wave_concurrency != baseline.wave_concurrency


class TestValidation:
    def test_unknown_register(self):
        with pytest.raises(ParameterError):
            KeyspaceSpec(keys=8, shards=2, register="paxos")

    def test_unknown_skew(self):
        with pytest.raises(ParameterError):
            KeyspaceSpec(keys=8, shards=2, skew="pareto")

    def test_coded_width_must_divide(self):
        with pytest.raises(ParameterError):
            KeyspaceSpec(keys=8, shards=2, k=3, data_size_bytes=16)

    def test_counts_must_be_positive(self):
        with pytest.raises(ParameterError):
            KeyspaceSpec(keys=0, shards=2)
        with pytest.raises(ParameterError):
            KeyspaceSpec(keys=8, shards=2, reads_per_wave=-1)

    def test_pool_sizes(self):
        assert KeyspaceSpec(keys=8, shards=2, register="abd", f=2).n == 5
        assert KeyspaceSpec(keys=8, shards=2, f=2, k=2).n == 6
