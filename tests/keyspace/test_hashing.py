"""Tests for the consistent-hash ring: determinism, disruption, balance."""

import pytest

from repro.errors import ParameterError
from repro.keyspace import HashRing, hash_point


class TestDeterminism:
    def test_same_parameters_same_mapping(self):
        keys = range(2000)
        a = HashRing(16, vnodes=32)
        b = HashRing(16, vnodes=32)
        assert [a.shard_of(k) for k in keys] == [b.shard_of(k) for k in keys]

    def test_salt_namespaces_the_ring(self):
        keys = range(2000)
        a = HashRing(16, vnodes=32, salt="a")
        b = HashRing(16, vnodes=32, salt="b")
        assert [a.shard_of(k) for k in keys] != [b.shard_of(k) for k in keys]

    def test_hash_point_is_pure_sha256(self):
        # Pinned value: a silent change to the point derivation would
        # silently re-shard every keyspace sweep baseline.
        assert hash_point("ring:key0") == hash_point("ring:key0")
        assert hash_point("ring:key0") != hash_point("ring:key1")
        assert 0 <= hash_point("x") < 2 ** 64


class TestMinimalDisruption:
    def test_removing_a_shard_only_moves_its_own_keys(self):
        """Consistent hashing's defining property: keys not owned by the
        removed shard keep their owner."""
        keys = list(range(4000))
        full = HashRing(12, vnodes=48)
        owners = {k: full.shard_of(k) for k in keys}
        # "Remove" the last shard by building the ring without it; shard
        # ids 0..10 occupy identical ring points (same salt, same tags).
        reduced = HashRing(11, vnodes=48)
        moved = 0
        for key in keys:
            new_owner = reduced.shard_of(key)
            if owners[key] == 11:
                moved += 1
                assert new_owner != 11
            else:
                assert new_owner == owners[key]
        assert moved > 0

    def test_adding_a_shard_only_steals_keys(self):
        keys = list(range(4000))
        small = HashRing(12, vnodes=48)
        grown = HashRing(13, vnodes=48)
        for key in keys:
            before, after = small.shard_of(key), grown.shard_of(key)
            assert after == before or after == 12


class TestBalance:
    def test_vnodes_smooth_the_load(self):
        keys = list(range(20000))
        ring = HashRing(16, vnodes=64)
        counts = ring.load_counts(keys)
        assert sum(counts.values()) == len(keys)
        expected = len(keys) / 16
        # 64 vnodes keeps every shard within a factor ~2 of fair share.
        assert min(counts.values()) > expected / 2
        assert max(counts.values()) < expected * 2

    def test_every_shard_owns_some_arc(self):
        ring = HashRing(8, vnodes=64)
        counts = ring.load_counts(range(20000))
        assert all(counts[s] > 0 for s in range(8))

    def test_assign_partitions_and_preserves_order(self):
        ring = HashRing(4, vnodes=16)
        keys = list(range(100))
        grouped = ring.assign(keys)
        flat = [k for shard in grouped.values() for k in shard]
        assert sorted(flat) == keys
        for shard, members in grouped.items():
            assert members == [k for k in keys if ring.shard_of(k) == shard]
            assert members == sorted(members)


class TestValidation:
    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ParameterError):
            HashRing(0)

    def test_rejects_nonpositive_vnodes(self):
        with pytest.raises(ParameterError):
            HashRing(4, vnodes=0)

    def test_single_shard_owns_everything(self):
        ring = HashRing(1, vnodes=4)
        assert ring.load_counts(range(100)) == {0: 100}
