"""Tests for the regime-sweep engine and its reference overlays."""

import pytest

from repro.analysis import (
    SweepGrid,
    SweepPoint,
    SweepResult,
    adaptive_upper_bound_bits,
    disintegrated_bound_bits,
    lrc_max_dimension,
    lrc_storage_floor_bits,
    run_sweep,
    theorem1_bound_bits,
)
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def small_result():
    grid = SweepGrid.cartesian(
        registers=("abd", "coded-only", "adaptive"),
        fs=(1, 2),
        ks=(2,),
        cs=(1, 2, 4),
        data_sizes=(48,),
        seed=5,
    )
    return run_sweep(grid)


class TestBounds:
    def test_theorem1_min_of_two_arms(self):
        # f-arm: (f+1) D/2; c-arm: c (D/2 + 1).
        assert theorem1_bound_bits(f=3, c=100, data_bits=384) == 4 * 192
        assert theorem1_bound_bits(f=100, c=2, data_bits=384) == 2 * 193

    def test_disintegrated_strengthens_theorem1(self):
        for f in range(1, 8):
            for c in range(1, 16):
                assert disintegrated_bound_bits(f, c, 384) >= \
                    theorem1_bound_bits(f, c, 384)

    def test_adaptive_bound_matches_paper_formula(self):
        # (min(f, c) + 1) * (n / k) * D with n = 2f + k.
        assert adaptive_upper_bound_bits(f=3, k=3, c=8, data_bits=384) == \
            4 * 9 * 384 // 3

    def test_lrc_max_dimension_distance_corollary(self):
        # n=10, f=2, r=2: largest k with k + ceil(k/2) <= 9 is k = 6.
        assert lrc_max_dimension(n=10, f=2, locality=2) == 6
        # Unbounded locality recovers the Singleton bound k = n - f.
        assert lrc_max_dimension(n=10, f=2, locality=100) == 8

    def test_lrc_floor_between_mds_and_replication(self):
        for n, f in ((5, 1), (9, 3), (14, 5)):
            floor = lrc_storage_floor_bits(n, f, 384, locality=2)
            assert -(-n * 384 // (n - f)) <= floor <= n * 384

    def test_lrc_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            lrc_max_dimension(n=0, f=1, locality=2)


class TestGrid:
    def test_cartesian_size_and_order(self):
        grid = SweepGrid.cartesian(
            registers=("abd", "adaptive"), fs=(1, 2), ks=(2,),
            cs=(1, 3), data_sizes=(48,),
        )
        assert len(grid) == 8
        assert grid.points[0].register == "abd"

    def test_where_filters_points(self):
        grid = SweepGrid.cartesian(
            registers=("adaptive",), fs=(1, 2, 3), ks=(2,), cs=(1, 2),
            data_sizes=(48,), where=lambda p: p.c <= p.f,
        )
        assert all(point.c <= point.f for point in grid)
        assert len(grid) == 5

    def test_explicit_deduplicates_preserving_order(self):
        point = SweepPoint("adaptive", f=1, k=2, c=1, data_size_bytes=48)
        other = SweepPoint("coded-only", f=1, k=2, c=1, data_size_bytes=48)
        grid = SweepGrid.explicit([point, other, point])
        assert grid.points == (point, other)

    def test_abd_canonicalised_to_k1_and_deduplicated(self):
        # ABD's setup ignores k: one run per (f, c), not one per grid k.
        grid = SweepGrid.cartesian(
            registers=("abd", "adaptive"), fs=(2,), ks=(2, 3, 4), cs=(1,),
            data_sizes=(48,),
        )
        abd_points = [p for p in grid if p.register == "abd"]
        assert abd_points == [
            SweepPoint("abd", f=2, k=1, c=1, data_size_bytes=48)
        ]
        assert len([p for p in grid if p.register == "adaptive"]) == 3

    def test_unknown_register_rejected_at_build_time(self):
        with pytest.raises(ParameterError, match="unknown register"):
            SweepGrid.explicit(
                [SweepPoint("paxos", f=1, k=2, c=1, data_size_bytes=48)]
            )

    def test_indivisible_data_size_rejected_at_build_time(self):
        with pytest.raises(ParameterError):
            SweepGrid.cartesian(
                registers=("adaptive",), fs=(1,), ks=(5,), cs=(1,),
                data_sizes=(48,),
            )

    def test_nk_points_derived_from_setups(self):
        grid = SweepGrid.cartesian(
            registers=("adaptive",), fs=(1, 3), ks=(2, 4), cs=(1,),
            data_sizes=(48,),
        )
        assert grid.nk_points() == [(4, 2), (6, 4), (8, 2), (10, 4)]


class TestRunSweep:
    def test_one_record_per_point_in_grid_order(self, small_result):
        assert len(small_result) == 18
        assert [r.register for r in small_result.records[:3]] == ["abd"] * 3

    def test_deterministic_given_fixed_seed(self, small_result):
        grid = SweepGrid.cartesian(
            registers=("abd", "coded-only", "adaptive"),
            fs=(1, 2), ks=(2,), cs=(1, 2, 4), data_sizes=(48,), seed=5,
        )
        again = run_sweep(grid)
        # Every measured field is deterministic; wall_clock_s is metadata.
        assert again.to_json(include_timing=False) == \
            small_result.to_json(include_timing=False)

    def test_measured_curves_have_paper_shapes(self, small_result):
        for f in (1, 2):
            abd = [y for _, y in small_result.series(f=f, register="abd")]
            coded = [
                y for _, y in small_result.series(f=f, register="coded-only")
            ]
            assert len(set(abd)) == 1
            assert coded == sorted(coded)

    def test_records_sit_above_lower_bound_overlays(self, small_result):
        for record in small_result.records:
            if record.register in ("coded-only", "adaptive"):
                assert record.peak_bo_state_bits >= record.thm1_bits

    def test_progress_callback_sees_every_point(self):
        grid = SweepGrid.cartesian(
            registers=("abd",), fs=(1,), ks=(2,), cs=(1, 2),
            data_sizes=(48,),
        )
        seen = []
        run_sweep(grid, progress=lambda done, total, point: seen.append(
            (done, total, point.c)
        ))
        assert seen == [(1, 2, 1), (2, 2, 2)]


class TestSweepResultIO:
    def test_json_roundtrip(self, small_result):
        assert SweepResult.from_json(small_result.to_json()).records == \
            small_result.records

    def test_save_and_load(self, small_result, tmp_path):
        path = small_result.save(tmp_path / "nested" / "sweep.json")
        assert SweepResult.load(path).records == small_result.records

    def test_version_guard(self):
        with pytest.raises(ParameterError, match="version"):
            SweepResult.from_json('{"version": 99, "records": []}')

    def test_table_renders_all_records(self, small_result):
        table = small_result.table()
        assert table.count("\n") == len(small_result) + 1
        assert "disintegrated_bits" in table

    def test_select_and_series(self, small_result):
        rows = small_result.select(register="adaptive", f=2)
        assert {row.c for row in rows} == {1, 2, 4}
        series = small_result.series(register="adaptive", f=2)
        assert [x for x, _ in series] == [1, 2, 4]
