"""Tests for the regime-sweep engine, its scenario axis, and overlays."""

import pytest

from repro.analysis import (
    Scenario,
    SweepGrid,
    SweepPoint,
    SweepResult,
    adaptive_upper_bound_bits,
    crossover_shape_violations,
    disintegrated_bound_bits,
    lrc_max_dimension,
    lrc_storage_floor_bits,
    run_sweep,
    theorem1_bound_bits,
)
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def small_result():
    grid = SweepGrid.cartesian(
        registers=("abd", "coded-only", "adaptive"),
        fs=(1, 2),
        ks=(2,),
        cs=(1, 2, 4),
        data_sizes=(48,),
        seed=5,
    )
    return run_sweep(grid)


class TestBounds:
    def test_theorem1_min_of_two_arms(self):
        # f-arm: (f+1) D/2; c-arm: c (D/2 + 1).
        assert theorem1_bound_bits(f=3, c=100, data_bits=384) == 4 * 192
        assert theorem1_bound_bits(f=100, c=2, data_bits=384) == 2 * 193

    def test_disintegrated_strengthens_theorem1(self):
        for f in range(1, 8):
            for c in range(1, 16):
                assert disintegrated_bound_bits(f, c, 384) >= \
                    theorem1_bound_bits(f, c, 384)

    def test_adaptive_bound_matches_paper_formula(self):
        # (min(f, c) + 1) * (n / k) * D with n = 2f + k.
        assert adaptive_upper_bound_bits(f=3, k=3, c=8, data_bits=384) == \
            4 * 9 * 384 // 3

    def test_lrc_max_dimension_distance_corollary(self):
        # n=10, f=2, r=2: largest k with k + ceil(k/2) <= 9 is k = 6.
        assert lrc_max_dimension(n=10, f=2, locality=2) == 6
        # Unbounded locality recovers the Singleton bound k = n - f.
        assert lrc_max_dimension(n=10, f=2, locality=100) == 8

    def test_lrc_floor_between_mds_and_replication(self):
        for n, f in ((5, 1), (9, 3), (14, 5)):
            floor = lrc_storage_floor_bits(n, f, 384, locality=2)
            assert -(-n * 384 // (n - f)) <= floor <= n * 384

    def test_lrc_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            lrc_max_dimension(n=0, f=1, locality=2)


class TestGrid:
    def test_cartesian_size_and_order(self):
        grid = SweepGrid.cartesian(
            registers=("abd", "adaptive"), fs=(1, 2), ks=(2,),
            cs=(1, 3), data_sizes=(48,),
        )
        assert len(grid) == 8
        assert grid.points[0].register == "abd"

    def test_where_filters_points(self):
        grid = SweepGrid.cartesian(
            registers=("adaptive",), fs=(1, 2, 3), ks=(2,), cs=(1, 2),
            data_sizes=(48,), where=lambda p: p.c <= p.f,
        )
        assert all(point.c <= point.f for point in grid)
        assert len(grid) == 5

    def test_explicit_deduplicates_preserving_order(self):
        point = SweepPoint("adaptive", f=1, k=2, c=1, data_size_bytes=48)
        other = SweepPoint("coded-only", f=1, k=2, c=1, data_size_bytes=48)
        grid = SweepGrid.explicit([point, other, point])
        assert grid.points == (point, other)

    def test_abd_canonicalised_to_k1_and_deduplicated(self):
        # ABD's setup ignores k: one run per (f, c), not one per grid k.
        grid = SweepGrid.cartesian(
            registers=("abd", "adaptive"), fs=(2,), ks=(2, 3, 4), cs=(1,),
            data_sizes=(48,),
        )
        abd_points = [p for p in grid if p.register == "abd"]
        assert abd_points == [
            SweepPoint("abd", f=2, k=1, c=1, data_size_bytes=48)
        ]
        assert len([p for p in grid if p.register == "adaptive"]) == 3

    def test_unknown_register_rejected_at_build_time(self):
        with pytest.raises(ParameterError, match="unknown register"):
            SweepGrid.explicit(
                [SweepPoint("paxos", f=1, k=2, c=1, data_size_bytes=48)]
            )

    def test_indivisible_data_size_rejected_at_build_time(self):
        with pytest.raises(ParameterError):
            SweepGrid.cartesian(
                registers=("adaptive",), fs=(1,), ks=(5,), cs=(1,),
                data_sizes=(48,),
            )

    def test_nk_points_derived_from_setups(self):
        grid = SweepGrid.cartesian(
            registers=("adaptive",), fs=(1, 3), ks=(2, 4), cs=(1,),
            data_sizes=(48,),
        )
        assert grid.nk_points() == [(4, 2), (6, 4), (8, 2), (10, 4)]


class TestRunSweep:
    def test_one_record_per_point_in_grid_order(self, small_result):
        assert len(small_result) == 18
        assert [r.register for r in small_result.records[:3]] == ["abd"] * 3

    def test_deterministic_given_fixed_seed(self, small_result):
        grid = SweepGrid.cartesian(
            registers=("abd", "coded-only", "adaptive"),
            fs=(1, 2), ks=(2,), cs=(1, 2, 4), data_sizes=(48,), seed=5,
        )
        again = run_sweep(grid)
        # Every measured field is deterministic; wall_clock_s is metadata.
        assert again.to_json(include_timing=False) == \
            small_result.to_json(include_timing=False)

    def test_measured_curves_have_paper_shapes(self, small_result):
        for f in (1, 2):
            abd = [y for _, y in small_result.series(f=f, register="abd")]
            coded = [
                y for _, y in small_result.series(f=f, register="coded-only")
            ]
            assert len(set(abd)) == 1
            assert coded == sorted(coded)

    def test_records_sit_above_lower_bound_overlays(self, small_result):
        for record in small_result.records:
            if record.register in ("coded-only", "adaptive"):
                assert record.peak_bo_state_bits >= record.thm1_bits

    def test_progress_callback_sees_every_point(self):
        grid = SweepGrid.cartesian(
            registers=("abd",), fs=(1,), ks=(2,), cs=(1, 2),
            data_sizes=(48,),
        )
        seen = []
        run_sweep(grid, progress=lambda done, total, point: seen.append(
            (done, total, point.c)
        ))
        assert seen == [(1, 2, 1), (2, 2, 2)]


SCENARIO_GRID = SweepGrid.cartesian(
    registers=("abd", "coded-only", "adaptive"),
    fs=(2,), ks=(2,), cs=(1, 2, 4), data_sizes=(48,), seed=11,
)

SCENARIOS = (
    Scenario("uniform"),
    Scenario("churn+crash", pattern="churn", ops_per_client=2,
             bo_crashes=1, client_crashes=1),
    Scenario("read-heavy", pattern="read-heavy", readers=4,
             reads_per_reader=2),
)


@pytest.fixture(scope="module")
def scenario_result():
    return run_sweep(SCENARIO_GRID, scenarios=SCENARIOS,
                     audit_storage_every=1)


class TestScenario:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(ParameterError, match="pattern"):
            Scenario("bad", pattern="zigzag")

    def test_read_heavy_needs_readers(self):
        with pytest.raises(ParameterError, match="readers"):
            Scenario("rh", pattern="read-heavy", readers=0)

    def test_client_cohort_matches_pattern_naming(self):
        assert Scenario("u").client_cohort(2) == ("w0", "w1")
        assert Scenario("s", pattern="staggered").client_cohort(2) == \
            ("sw0", "sw1")
        assert Scenario("r", pattern="read-heavy",
                        readers=3).client_cohort(2) == ("rw0", "rw1")
        assert Scenario("c", pattern="churn").client_cohort(2) == \
            ("c0-0", "c0-1")

    def test_crash_schedule_clamped_to_f_budget(self):
        scenario = Scenario("crashy", bo_crashes=5, client_crashes=5)
        point = SweepPoint("adaptive", f=1, k=2, c=2, data_size_bytes=48)
        schedule = scenario.crash_schedule(point, n=point.n)
        assert len(schedule.bo_victims) == 1  # clamped to f = 1
        assert len(schedule.client_victims) == 2  # clamped to cohort size

    def test_crash_schedule_deterministic_per_seed(self):
        scenario = Scenario("crashy", bo_crashes=1, client_crashes=1)
        point = SweepPoint("adaptive", f=2, k=2, c=3, data_size_bytes=48,
                           seed=9)
        assert scenario.crash_schedule(point, n=6) == \
            scenario.crash_schedule(point, n=6)
        other = SweepPoint("adaptive", f=2, k=2, c=3, data_size_bytes=48,
                           seed=10)
        assert scenario.crash_schedule(point, n=6) != \
            scenario.crash_schedule(other, n=6)


class TestScenarioSweep:
    def test_one_record_per_cell_scenario_major(self, scenario_result):
        assert len(scenario_result) == len(SCENARIO_GRID) * len(SCENARIOS)
        names = [r.scenario for r in scenario_result.records]
        per_scenario = len(SCENARIO_GRID)
        assert names == (
            ["uniform"] * per_scenario
            + ["churn+crash"] * per_scenario
            + ["read-heavy"] * per_scenario
        )
        assert scenario_result.scenarios() == [
            "uniform", "churn+crash", "read-heavy",
        ]

    def test_crash_scenarios_really_fire(self, scenario_result):
        crashed = scenario_result.select(scenario="churn+crash")
        assert all(r.bo_crashes == 1 for r in crashed)
        assert all(r.client_crashes == 1 for r in crashed)
        clean = scenario_result.select(scenario="uniform")
        assert all(r.bo_crashes == r.client_crashes == 0 for r in clean)

    def test_read_heavy_records_completed_reads(self, scenario_result):
        for record in scenario_result.select(scenario="read-heavy"):
            assert record.completed_reads == 4 * 2

    def test_shapes_hold_across_scenarios(self, scenario_result):
        assert crossover_shape_violations(scenario_result) == []

    def test_crash_peaks_respect_lower_bounds(self, scenario_result):
        """Theorem 1 / the adaptive bound are adversarial lower bounds;
        crashing <= f objects must not drop measured peaks below them."""
        for record in scenario_result.records:
            if record.register in ("coded-only", "adaptive"):
                assert record.peak_bo_state_bits >= record.thm1_bits
            if record.register == "adaptive":
                assert record.peak_bo_state_bits <= \
                    2 * record.adaptive_bound_bits

    def test_same_seed_scenario_sweep_is_byte_identical(self):
        """The determinism contract extends to crash scenarios: same grid,
        same scenarios, same seeds => byte-identical JSON, crash victims
        and firing order included."""
        again = run_sweep(SCENARIO_GRID, scenarios=SCENARIOS)
        reference = run_sweep(SCENARIO_GRID, scenarios=SCENARIOS)
        assert again.to_json(include_timing=False) == \
            reference.to_json(include_timing=False)

    def test_duplicate_scenario_names_rejected(self):
        with pytest.raises(ParameterError, match="duplicate"):
            run_sweep(SCENARIO_GRID,
                      scenarios=(Scenario("x"), Scenario("x")))

    def test_legacy_shape_args_conflict_with_explicit_scenarios(self):
        """readers/writes_per_writer silently vanishing into an explicit
        scenario list would measure the wrong workload — reject it."""
        with pytest.raises(ParameterError, match="Scenario"):
            run_sweep(SCENARIO_GRID, scenarios=(Scenario("x"),), readers=2)

    def test_bad_crash_timing_rejected(self):
        with pytest.raises(ParameterError, match="crash_"):
            Scenario("x", bo_crashes=1, crash_spacing=0)


class TestPaddedDAxis:
    def test_pad_lifts_divisibility_requirement(self):
        grid = SweepGrid.cartesian(
            registers=("adaptive",), fs=(1,), ks=(5,), cs=(1,),
            data_sizes=(48,), pad=True,
        )
        assert len(grid) == 1
        assert grid.points[0].padded

    def test_abd_points_canonicalised_unpadded(self):
        grid = SweepGrid.cartesian(
            registers=("abd", "adaptive"), fs=(1,), ks=(4,), cs=(1,),
            data_sizes=(6,), pad=True,
        )
        abd = [p for p in grid if p.register == "abd"]
        assert abd == [SweepPoint("abd", f=1, k=1, c=1, data_size_bytes=6)]

    def test_padding_overhead_shows_at_small_d(self):
        """The bounds are linear in D; padding's 4-byte prefix and block
        rounding are additive constants that dominate at small D and
        vanish (relatively) at large D."""
        grid = SweepGrid.cartesian(
            registers=("coded-only",), fs=(1,), ks=(4,), cs=(2,),
            data_sizes=(6, 12, 96, 192), pad=True, seed=1,
        )
        result = run_sweep(grid)
        overheads = {
            record.data_bits: record.peak_bo_state_bits / record.data_bits
            for record in result.records
        }
        # Measured on this grid: ~9.0 bits/bit at D = 48 bits vs ~4.6 at
        # D = 1536 — the additive prefix/rounding terms roughly double the
        # relative cost at the small end.
        assert overheads[6 * 8] > 1.8 * overheads[192 * 8]
        assert overheads[6 * 8] > overheads[12 * 8] > overheads[192 * 8]

    def test_padded_records_round_trip(self):
        grid = SweepGrid.cartesian(
            registers=("coded-only",), fs=(1,), ks=(4,), cs=(1,),
            data_sizes=(6,), pad=True,
        )
        result = run_sweep(grid)
        assert result.records[0].padded
        again = SweepResult.from_json(result.to_json())
        assert again.records == result.records


class TestSweepResultIO:
    def test_json_roundtrip(self, small_result):
        assert SweepResult.from_json(small_result.to_json()).records == \
            small_result.records

    def test_save_and_load(self, small_result, tmp_path):
        path = small_result.save(tmp_path / "nested" / "sweep.json")
        assert SweepResult.load(path).records == small_result.records

    def test_version_guard(self):
        with pytest.raises(ParameterError, match="version"):
            SweepResult.from_json('{"version": 99, "records": []}')

    def test_version1_documents_still_load(self, small_result):
        """Pre-scenario JSON (version 1, no scenario/crash/padded fields)
        loads as crash-free uniform records — which is what those runs
        measured."""
        import json

        document = json.loads(small_result.to_json())
        document["version"] = 1
        for record in document["records"]:
            for legacy_missing in ("scenario", "padded", "completed_reads",
                                   "bo_crashes", "client_crashes"):
                del record[legacy_missing]
        loaded = SweepResult.from_json(json.dumps(document))
        assert loaded.records == small_result.records

    def test_table_renders_all_records(self, small_result):
        table = small_result.table()
        assert table.count("\n") == len(small_result) + 1
        assert "disintegrated_bits" in table

    def test_select_and_series(self, small_result):
        rows = small_result.select(register="adaptive", f=2)
        assert {row.c for row in rows} == {1, 2, 4}
        series = small_result.series(register="adaptive", f=2)
        assert [x for x, _ in series] == [1, 2, 4]
