"""Tests for the parallel sweep executor: pool fan-out, merge, resume.

The determinism matrix here is the PR's acceptance criterion: pooled
``run_sweep`` JSON must be byte-identical to the serial engine's output
for workers in {1, 2, 4} on the reference scenario grid — crash firing
records included.
"""

import json

import pytest

import repro.analysis.executor as executor_module
from repro.analysis import (
    RECORD_METADATA_FIELDS,
    Scenario,
    SweepGrid,
    SweepJournal,
    SweepRecord,
    SweepResult,
    default_chunk_size,
    run_sweep,
    sweep_cells,
    sweep_signature,
)
from repro.analysis.sweeps import run_sweep as serial_run_sweep
from repro.errors import CheckpointError, ParameterError

#: The reference scenario grid: a crash-free wave and churn-with-crashes
#: over (f=2, k=2) — 6 points x 2 scenarios = 12 cells, heavy enough to
#: exercise chunked dispatch, light enough for CI.
GRID = SweepGrid.cartesian(
    registers=("abd", "coded-only", "adaptive"),
    fs=(2,), ks=(2,), cs=(1, 2), data_sizes=(48,), seed=21,
)

SCENARIOS = (
    Scenario("uniform"),
    Scenario("churn+crash", pattern="churn", ops_per_client=2,
             bo_crashes=1, client_crashes=1),
)

ENGINE_KNOBS = dict(max_steps=400_000, lrc_locality=2,
                    audit_storage_every=0)


@pytest.fixture(scope="module")
def serial_reference():
    return serial_run_sweep(GRID, scenarios=SCENARIOS)


class TestPooledDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pooled_json_byte_identical_to_serial(self, serial_reference,
                                                  workers):
        """The acceptance matrix: any worker count, same bytes."""
        pooled = run_sweep(GRID, scenarios=SCENARIOS, workers=workers)
        assert pooled.to_json(include_timing=False) == \
            serial_reference.to_json(include_timing=False)

    def test_pooled_records_carry_worker_metadata(self):
        pooled = run_sweep(GRID, scenarios=SCENARIOS, workers=2,
                           chunk_size=1)
        workers_seen = {record.worker for record in pooled.records}
        # Pool workers are numbered globally per parent process, so the
        # exact values depend on pools created earlier; what matters is
        # that pooled cells carry real (positive) worker numbers from at
        # most two processes.
        assert workers_seen
        assert all(worker > 0 for worker in workers_seen)
        assert len(workers_seen) <= 2
        serial = serial_run_sweep(GRID, scenarios=SCENARIOS)
        assert {record.worker for record in serial.records} == {0}

    def test_crash_cells_fire_identically_in_pool(self, serial_reference):
        pooled = run_sweep(GRID, scenarios=SCENARIOS, workers=2)
        for ours, theirs in zip(pooled.records,
                                serial_reference.records):
            assert (ours.bo_crashes, ours.client_crashes) == \
                (theirs.bo_crashes, theirs.client_crashes)
        crashed = pooled.select(scenario="churn+crash")
        assert crashed and all(r.bo_crashes == 1 for r in crashed)

    def test_progress_sees_every_cell_once(self):
        seen = []
        run_sweep(GRID, scenarios=SCENARIOS, workers=2,
                  progress=lambda done, total, point: seen.append(done))
        assert sorted(seen) == list(range(1, len(GRID) * 2 + 1))

    def test_workers_below_one_rejected(self):
        with pytest.raises(ParameterError, match="workers"):
            run_sweep(GRID, workers=0)


class TestMetadataStripping:
    def test_include_timing_false_strips_all_metadata_fields(
        self, serial_reference
    ):
        document = json.loads(serial_reference.to_json(include_timing=False))
        for record in document["records"]:
            for field in RECORD_METADATA_FIELDS:
                assert field not in record
        for field in RECORD_METADATA_FIELDS:
            assert field not in document["record_fields"]

    def test_results_differing_only_in_metadata_compare_equal(
        self, serial_reference
    ):
        from dataclasses import replace

        relabelled = SweepResult([
            replace(record, worker=record.worker + 7,
                    wall_clock_s=record.wall_clock_s + 1.0)
            for record in serial_reference.records
        ])
        assert relabelled.to_json(include_timing=False) == \
            serial_reference.to_json(include_timing=False)
        # With timing included they differ — metadata is still recorded.
        assert relabelled.to_json() != serial_reference.to_json()
        assert '"worker"' in serial_reference.to_json()


class TestBackendThreading:
    """``coding_backend`` pins the GF kernel everywhere — parent, pool
    workers, and the record metadata — without changing the results."""

    @pytest.fixture(autouse=True)
    def _restore_backend(self):
        from repro.coding import get_backend, use_backend

        original = get_backend().name
        yield
        use_backend(original)

    def test_records_carry_the_active_backend(self, serial_reference):
        from repro.coding import get_backend

        assert {r.coding_backend for r in serial_reference.records} == \
            {get_backend().name}

    def test_pinned_backend_reaches_pool_workers(self, serial_reference):
        pooled = run_sweep(GRID, scenarios=SCENARIOS, workers=2,
                           coding_backend="numpy-table")
        assert {r.coding_backend for r in pooled.records} == \
            {"numpy-table"}
        # Backend choice is execution metadata: measured fields match the
        # default-backend serial reference byte for byte.
        assert pooled.to_json(include_timing=False) == \
            serial_reference.to_json(include_timing=False)

    def test_unknown_backend_rejected_before_any_work(self):
        with pytest.raises(ParameterError, match="coding backend"):
            run_sweep(GRID, scenarios=SCENARIOS,
                      coding_backend="no-such-kernel")


class TestChunking:
    def test_default_chunk_size_bounds(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(10, 1) == 10
        assert default_chunk_size(8, 4) == 1
        assert default_chunk_size(1000, 4) == 32  # capped
        assert default_chunk_size(100, 4) == 7  # ~4 tasks per worker

    def test_explicit_chunk_size_still_deterministic(self,
                                                     serial_reference):
        pooled = run_sweep(GRID, scenarios=SCENARIOS, workers=2,
                           chunk_size=5)
        assert pooled.to_json(include_timing=False) == \
            serial_reference.to_json(include_timing=False)


class TestCheckpointJournal:
    def _checkpoint(self, tmp_path):
        return tmp_path / "sweep.journal.jsonl"

    def test_journal_written_and_resume_recomputes_nothing(
        self, tmp_path, monkeypatch, serial_reference
    ):
        checkpoint = self._checkpoint(tmp_path)
        run_sweep(GRID, scenarios=SCENARIOS, checkpoint=checkpoint)
        lines = checkpoint.read_text().splitlines()
        assert len(lines) == len(GRID) * 2 + 1  # header + one per cell
        header = json.loads(lines[0])
        assert header["journal"] == "repro-sweep-journal"
        assert header["total_cells"] == len(GRID) * 2

        def boom(*args, **kwargs):
            raise AssertionError("resume recomputed a completed cell")

        monkeypatch.setattr(executor_module, "execute_cell", boom)
        resumed = run_sweep(GRID, scenarios=SCENARIOS,
                            checkpoint=checkpoint, resume=True)
        assert resumed.to_json(include_timing=False) == \
            serial_reference.to_json(include_timing=False)

    def test_existing_checkpoint_without_resume_raises(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        run_sweep(GRID, scenarios=SCENARIOS, checkpoint=checkpoint)
        with pytest.raises(CheckpointError, match="resume"):
            run_sweep(GRID, scenarios=SCENARIOS, checkpoint=checkpoint)

    def test_resume_without_existing_journal_starts_fresh(self, tmp_path,
                                                          serial_reference):
        checkpoint = self._checkpoint(tmp_path)
        result = run_sweep(GRID, scenarios=SCENARIOS,
                           checkpoint=checkpoint, resume=True)
        assert result.to_json(include_timing=False) == \
            serial_reference.to_json(include_timing=False)
        assert checkpoint.exists()

    def test_truncated_trailing_line_tolerated_and_recomputed(
        self, tmp_path, monkeypatch, serial_reference
    ):
        """Kill-mid-write leaves half a JSON line; resume recomputes
        exactly that cell and still reproduces the serial bytes."""
        checkpoint = self._checkpoint(tmp_path)
        run_sweep(GRID, scenarios=SCENARIOS, checkpoint=checkpoint)
        text = checkpoint.read_text()
        truncated = text.rstrip("\n")
        truncated = truncated[: len(truncated) - 25]  # chop mid-record
        checkpoint.write_text(truncated)

        calls = []
        real = executor_module.execute_cell
        monkeypatch.setattr(
            executor_module, "execute_cell",
            lambda *args, **kwargs: calls.append(args) or
            real(*args, **kwargs),
        )
        resumed = run_sweep(GRID, scenarios=SCENARIOS,
                            checkpoint=checkpoint, resume=True)
        assert len(calls) == 1
        assert resumed.to_json(include_timing=False) == \
            serial_reference.to_json(include_timing=False)
        # The resume must have trimmed the partial line before appending:
        # the journal is whole again (every line parses, a second resume
        # recomputes nothing and reproduces the same bytes).
        assert checkpoint.read_text().endswith("\n")
        for line in checkpoint.read_text().splitlines():
            json.loads(line)
        again = run_sweep(GRID, scenarios=SCENARIOS, checkpoint=checkpoint,
                          resume=True)
        assert len(calls) == 1  # nothing recomputed the second time
        assert again.to_json(include_timing=False) == \
            serial_reference.to_json(include_timing=False)

    def test_corrupt_interior_line_raises(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        run_sweep(GRID, scenarios=SCENARIOS, checkpoint=checkpoint)
        lines = checkpoint.read_text().splitlines()
        lines[2] = lines[2][:10]  # corrupt a non-trailing line
        checkpoint.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            run_sweep(GRID, scenarios=SCENARIOS, checkpoint=checkpoint,
                      resume=True)

    def test_journal_from_different_grid_raises(self, tmp_path):
        """A journal must never silently merge into a different sweep."""
        checkpoint = self._checkpoint(tmp_path)
        other_grid = SweepGrid.cartesian(
            registers=("adaptive",), fs=(1,), ks=(2,), cs=(1, 2, 4),
            data_sizes=(48,), seed=3,
        )
        run_sweep(other_grid, checkpoint=checkpoint)
        with pytest.raises(CheckpointError, match="different sweep"):
            run_sweep(GRID, scenarios=SCENARIOS, checkpoint=checkpoint,
                      resume=True)

    def test_journal_with_different_engine_knobs_raises(self, tmp_path):
        """The signature pins engine knobs too: a journal measured with
        different audit/step settings is not the same sweep."""
        checkpoint = self._checkpoint(tmp_path)
        run_sweep(GRID, scenarios=SCENARIOS, checkpoint=checkpoint,
                  max_steps=200_000)
        with pytest.raises(CheckpointError, match="different sweep"):
            run_sweep(GRID, scenarios=SCENARIOS, checkpoint=checkpoint,
                      resume=True)

    def test_resume_after_interrupt_mid_scenario(self, tmp_path,
                                                 serial_reference):
        """Interrupt the sweep partway through the *second* scenario (the
        classic CI-timeout shape), then resume: only the unfinished cells
        run, and the merged result matches the uninterrupted bytes."""
        checkpoint = self._checkpoint(tmp_path)
        cells_total = len(GRID) * 2
        interrupt_after = len(GRID) + 2  # 2 cells into scenario 2

        def interrupter(done, total, point):
            if done >= interrupt_after:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep(GRID, scenarios=SCENARIOS, checkpoint=checkpoint,
                      progress=interrupter)
        journaled = checkpoint.read_text().splitlines()
        assert len(journaled) == interrupt_after + 1  # header + done cells

        resumed_cells = []
        resumed = run_sweep(
            GRID, scenarios=SCENARIOS, checkpoint=checkpoint, resume=True,
            progress=lambda done, total, point: resumed_cells.append(done),
        )
        assert len(resumed_cells) == cells_total - interrupt_after
        assert resumed.to_json(include_timing=False) == \
            serial_reference.to_json(include_timing=False)

    def test_parallel_resume_of_serial_journal(self, tmp_path,
                                               serial_reference):
        """Worker count is execution metadata: a serial journal resumes
        under a pool (and vice versa) with identical measured bytes."""
        checkpoint = self._checkpoint(tmp_path)
        interrupt_after = 3

        def interrupter(done, total, point):
            if done >= interrupt_after:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep(GRID, scenarios=SCENARIOS, checkpoint=checkpoint,
                      progress=interrupter)
        resumed = run_sweep(GRID, scenarios=SCENARIOS,
                            checkpoint=checkpoint, resume=True, workers=2)
        assert resumed.to_json(include_timing=False) == \
            serial_reference.to_json(include_timing=False)

    def test_journal_total_cells_mismatch_raises(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        cells = sweep_cells(GRID, SCENARIOS)
        signature = sweep_signature(cells, **ENGINE_KNOBS)
        journal = SweepJournal(checkpoint, signature, len(cells))
        journal.open_for_append(fresh=True)
        journal.close()
        with pytest.raises(CheckpointError, match="cells"):
            SweepJournal(checkpoint, signature, len(cells) + 5).load()

    def test_journal_cell_index_out_of_range_raises(self, tmp_path,
                                                    serial_reference):
        checkpoint = self._checkpoint(tmp_path)
        cells = sweep_cells(GRID, SCENARIOS)
        signature = sweep_signature(cells, **ENGINE_KNOBS)
        journal = SweepJournal(checkpoint, signature, len(cells))
        journal.open_for_append(fresh=True)
        journal.append(len(cells) + 3, serial_reference.records[0])
        journal.close()
        with pytest.raises(CheckpointError, match="outside"):
            journal.load()

    def test_not_a_journal_raises(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        checkpoint.write_text('{"some": "other json"}\n')
        with pytest.raises(CheckpointError, match="header"):
            run_sweep(GRID, scenarios=SCENARIOS, checkpoint=checkpoint,
                      resume=True)


class TestSweepSignature:
    def test_signature_stable_across_processes_inputs(self):
        cells = sweep_cells(GRID, SCENARIOS)
        assert sweep_signature(cells, **ENGINE_KNOBS) == \
            sweep_signature(list(cells), **ENGINE_KNOBS)

    def test_signature_sensitive_to_every_axis(self):
        cells = sweep_cells(GRID, SCENARIOS)
        base = sweep_signature(cells, **ENGINE_KNOBS)
        assert sweep_signature(cells[:-1], **ENGINE_KNOBS) != base
        assert sweep_signature(
            sweep_cells(GRID, SCENARIOS[:1]), **ENGINE_KNOBS
        ) != base
        knobs = dict(ENGINE_KNOBS, audit_storage_every=1)
        assert sweep_signature(cells, **knobs) != base

    def test_record_round_trips_through_journal_json(self,
                                                     serial_reference):
        from dataclasses import asdict

        record = serial_reference.records[-1]
        rebuilt = SweepRecord(**json.loads(json.dumps(asdict(record))))
        assert rebuilt == record
