"""Report-generator tests."""

from repro.analysis.report import generate_report, report_ok


class TestReport:
    def test_generates_all_sections(self):
        report = generate_report()
        assert "# Reproduction report" in report
        assert "Theorem 1" in report
        assert "Storage costs across registers" in report
        assert "Channel parking" in report

    def test_all_sections_reproduce(self):
        report = generate_report()
        assert report_ok(report)
        assert report.count("reproduced") >= 3

    def test_report_cli(self, capsys, tmp_path):
        from repro.cli import main

        output = tmp_path / "report.md"
        code = main(["report", "--output", str(output)])
        assert code == 0
        assert output.exists()
        assert report_ok(output.read_text())
