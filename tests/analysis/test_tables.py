"""Analysis helper tests."""

import pytest

from repro.analysis import (
    SeriesPoint,
    format_bits,
    format_ratio,
    format_table,
    linear_slope,
    monotone_nondecreasing,
)


class TestFormatting:
    def test_format_bits_small_exact(self):
        assert format_bits(384) == "384b"

    def test_format_bits_kib(self):
        assert format_bits(8 * 1024 * 16) == "16.0KiB"

    def test_format_bits_mib(self):
        assert format_bits(8 * 1024 * 1024 * 3) == "3.00MiB"

    def test_format_ratio(self):
        assert format_ratio(150, 100) == "1.50x"

    def test_format_ratio_zero_prediction(self):
        assert format_ratio(5, 0) == "n/a"

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:2])

    def test_format_table_empty_rows(self):
        table = format_table(["x"], [])
        assert "x" in table


class TestSeries:
    def test_series_point_ratio(self):
        assert SeriesPoint(1, 150, 100).ratio == 1.5

    def test_monotone_accepts_flat(self):
        assert monotone_nondecreasing([3, 3, 3])

    def test_monotone_rejects_drop(self):
        assert not monotone_nondecreasing([3, 2, 5])

    def test_monotone_slack(self):
        assert monotone_nondecreasing([100, 95, 110], slack=0.1)

    def test_linear_slope_exact(self):
        assert linear_slope([0, 1, 2], [5, 7, 9]) == pytest.approx(2.0)

    def test_linear_slope_needs_two_points(self):
        with pytest.raises(ValueError):
            linear_slope([1], [2])
