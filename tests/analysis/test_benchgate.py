"""Tests for the bench-summary schema and the CI regression gate."""

import importlib.util
import json
import pathlib

import pytest

from repro.analysis.benchgate import (
    bench_summary_path,
    compare_summaries,
    load_bench_summary,
    metric,
    throughput_ratio,
    write_bench_summary,
)
from repro.errors import ParameterError

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _load_checker():
    """Import scripts/check_bench_regression.py as a module."""
    path = REPO_ROOT / "scripts" / "check_bench_regression.py"
    spec = importlib.util.spec_from_file_location("check_bench_regression",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


def summary(name="sim_throughput", value=1000.0, direction="higher",
            quick=True, metric_name="actions_per_s"):
    return {
        "bench": name,
        "schema": 1,
        "quick": quick,
        "metrics": {metric_name: metric(value, "x/s", direction)},
    }


class TestSummaryIO:
    def test_write_and_load_round_trip(self, tmp_path):
        path = write_bench_summary(
            "demo", {"mbps": metric(123.4, "MB/s")}, tmp_path, quick=True
        )
        assert path == bench_summary_path(tmp_path, "demo")
        document = load_bench_summary(path)
        assert document["bench"] == "demo"
        assert document["quick"] is True
        assert document["metrics"]["mbps"]["value"] == 123.4

    def test_written_document_is_canonical(self, tmp_path):
        path = write_bench_summary(
            "demo", {"b": metric(1, "u"), "a": metric(2, "u")},
            tmp_path, quick=False,
        )
        text = path.read_text()
        # Canonical: sorted keys, stable indent — so diffs against the
        # committed baselines stay reviewable.
        assert text == json.dumps(json.loads(text), indent=2,
                                  sort_keys=True) + "\n"

    def test_bad_direction_rejected(self, tmp_path):
        with pytest.raises(ParameterError, match="direction"):
            metric(1.0, "u", direction="sideways")
        with pytest.raises(ParameterError, match="direction"):
            write_bench_summary(
                "demo", {"m": {"value": 1.0, "unit": "u"}}, tmp_path,
                quick=True,
            )

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text('{"bench": "x", "schema": 99, "metrics": {}}')
        with pytest.raises(ParameterError, match="schema"):
            load_bench_summary(path)


class TestCompare:
    def test_equal_summaries_pass(self):
        assert compare_summaries(summary(), summary()) == []

    def test_synthetic_50_percent_regression_fails(self):
        """The acceptance demonstration: a 50% throughput drop against
        the committed baseline must fail the 40% gate."""
        baseline = summary(value=1000.0)
        regressed = summary(value=500.0)
        problems = compare_summaries(baseline, regressed, threshold=0.40)
        assert len(problems) == 1
        assert "regressed to 0.50x" in problems[0]

    def test_within_slack_passes(self):
        # 35% down is inside the 40% gate.
        assert compare_summaries(summary(value=1000.0),
                                 summary(value=650.0)) == []

    def test_improvement_passes(self):
        assert compare_summaries(summary(value=1000.0),
                                 summary(value=5000.0)) == []

    def test_lower_direction_judged_as_implied_throughput(self):
        # Wall-clock doubling = implied throughput halving: fails.
        baseline = summary(value=0.01, direction="lower",
                           metric_name="cell_s")
        slow = summary(value=0.02, direction="lower", metric_name="cell_s")
        assert compare_summaries(baseline, slow)
        # 1.3x slower is within the 40% gate (ratio 0.77).
        ok = summary(value=0.013, direction="lower", metric_name="cell_s")
        assert compare_summaries(baseline, ok) == []

    def test_missing_metric_fails(self):
        current = summary()
        current["metrics"] = {}
        problems = compare_summaries(summary(), current)
        assert problems and "missing" in problems[0]

    def test_extra_current_metric_ignored(self):
        current = summary()
        current["metrics"]["new_metric"] = metric(1.0, "u")
        assert compare_summaries(summary(), current) == []

    def test_mode_mismatch_fails(self):
        problems = compare_summaries(summary(quick=True),
                                     summary(quick=False))
        assert problems and "mode mismatch" in problems[0]

    def test_bench_name_mismatch_fails(self):
        problems = compare_summaries(summary(name="a"), summary(name="b"))
        assert problems and "not 'a'" in problems[0]

    def test_direction_change_fails(self):
        problems = compare_summaries(
            summary(direction="higher"), summary(direction="lower")
        )
        assert problems and "direction changed" in problems[0]

    def test_zero_baseline_not_comparable(self):
        assert throughput_ratio(metric(0.0, "u"), metric(5.0, "u")) is None
        assert compare_summaries(summary(value=0.0), summary(value=0.0)) \
            == []

    def test_bad_threshold_rejected(self):
        with pytest.raises(ParameterError, match="threshold"):
            compare_summaries(summary(), summary(), threshold=1.5)


class TestCheckerScript:
    def _seed(self, directory, value, name="demo"):
        directory.mkdir(parents=True, exist_ok=True)
        write_bench_summary(
            name, {"throughput": metric(value, "x/s")}, directory,
            quick=True,
        )

    def test_gate_passes_on_matching_dirs(self, tmp_path, capsys):
        self._seed(tmp_path / "baselines", 1000.0)
        self._seed(tmp_path / "results", 980.0)
        code = checker.main([
            "--baselines", str(tmp_path / "baselines"),
            "--results", str(tmp_path / "results"),
        ])
        assert code == 0
        assert "bench gate ok" in capsys.readouterr().out

    def test_gate_fails_on_synthetic_regression(self, tmp_path, capsys):
        """End-to-end acceptance: inject a 50% throughput regression and
        watch the CI entrypoint exit non-zero."""
        self._seed(tmp_path / "baselines", 1000.0)
        self._seed(tmp_path / "results", 500.0)
        code = checker.main([
            "--baselines", str(tmp_path / "baselines"),
            "--results", str(tmp_path / "results"),
        ])
        assert code == 1
        assert "BENCH REGRESSION" in capsys.readouterr().out

    def test_missing_current_summary_fails(self, tmp_path):
        self._seed(tmp_path / "baselines", 1000.0)
        (tmp_path / "results").mkdir()
        problems = checker.check_regressions(
            tmp_path / "baselines", tmp_path / "results"
        )
        assert problems and "did the bench step run" in problems[0]

    def test_no_baselines_is_itself_a_failure(self, tmp_path):
        (tmp_path / "baselines").mkdir()
        (tmp_path / "results").mkdir()
        problems = checker.check_regressions(
            tmp_path / "baselines", tmp_path / "results"
        )
        assert problems and "no BENCH_" in problems[0]

    def test_committed_baselines_reject_synthetic_50pct_regression(
        self, tmp_path
    ):
        """Acceptance end-to-end: halve the throughput of every metric in
        the *committed* baselines and the gate must flag every bench."""
        baselines = REPO_ROOT / "benchmarks" / "baselines"
        results = tmp_path / "results"
        results.mkdir()
        names = set()
        for path in baselines.glob("BENCH_*.json"):
            document = load_bench_summary(path)
            names.add(document["bench"])
            regressed = {
                metric_name: dict(
                    entry,
                    value=entry["value"] * (
                        0.5 if entry["direction"] == "higher" else 2.0
                    ),
                )
                for metric_name, entry in document["metrics"].items()
            }
            (results / path.name).write_text(json.dumps(
                dict(document, metrics=regressed), indent=2, sort_keys=True
            ))
        problems = checker.check_regressions(baselines, results,
                                             threshold=0.40)
        flagged = {problem.split(".")[0] for problem in problems}
        assert flagged == names  # every committed bench trips the gate

    def test_committed_baselines_cover_every_quick_bench(self):
        """The gate only guards benches with committed baselines — keep
        the set in lockstep with the CI quick steps."""
        committed = {
            path.name
            for path in (REPO_ROOT / "benchmarks" / "baselines").glob(
                "BENCH_*.json"
            )
        }
        assert committed == {
            "BENCH_coding_throughput.json",
            "BENCH_crossover.json",
            "BENCH_parallel_sweep.json",
            "BENCH_scenario_sweep.json",
            "BENCH_service_faults.json",
            "BENCH_service_loopback.json",
            "BENCH_keyspace.json",
            "BENCH_sim_throughput.json",
        }
        for name in committed:
            document = load_bench_summary(
                REPO_ROOT / "benchmarks" / "baselines" / name
            )
            assert document["quick"] is True
            assert document["metrics"], f"{name} gates nothing"
