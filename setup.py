"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` on old setuptools needs a
``setup.py``-based develop install; all real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
