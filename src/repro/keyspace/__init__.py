"""Sharded multi-register keyspaces: million-key skewed workloads.

See :mod:`repro.keyspace.runner` for the model (shard = register,
per-shard concurrency = wave routing) and :mod:`repro.keyspace.hashing`
for the consistent-hash ring. The sweep axis over (skew, shards, keys)
lives in :mod:`repro.analysis.sweeps` (``KeyspacePoint`` /
``run_keyspace_sweep``), parallel-executor compatible via
:mod:`repro.analysis.executor`.
"""

from repro.keyspace.hashing import HashRing, hash_point
from repro.keyspace.runner import (
    KEYSPACE_REGISTERS,
    KeyspaceResult,
    KeyspaceSpec,
    ShardStats,
    run_keyspace,
)

__all__ = [
    "HashRing",
    "KEYSPACE_REGISTERS",
    "KeyspaceResult",
    "KeyspaceSpec",
    "ShardStats",
    "hash_point",
    "run_keyspace",
]
