"""The sharded keyspace: million-key workloads over many registers.

Every workload elsewhere in this repository drives *one* register. This
module models the north star's "heavy traffic from millions of users"
scenario: ``keys`` logical keys are sharded onto ``shards`` register
instances (each its own ``n = 2f + k`` base-object pool) by a
consistent-hash ring, and a skewed stream of per-key operations is
driven through them in synchronous waves.

The mapping onto the paper's model is direct. A shard *is* a register;
clients writing different keys of the same shard are concurrent writers
of that register, so a shard's write concurrency in a wave — the paper's
``c`` — is simply the number of wave operations routed to it. Skew is
therefore the experiment's x-axis in disguise:

* ``uniform`` spreads a wave's operations over ~all shards, so per-shard
  ``c`` stays near ``wave_size / shards`` — concurrency spread thin;
* ``hotspot`` (fewer hot keys than shards) lands most of the wave on the
  few shards owning hot keys — concurrency concentrated, which is where
  coded-only storage grows like ``c * (n/k) * D`` while the adaptive
  register stays at ``(min(f, c) + 1) * (n/k) * D``.

Each ``(wave, shard)`` cell runs a fresh simulation to quiescence under
the fair scheduler, metered by the O(1) incremental
:class:`~repro.storage.cost.StorageLedger` (via
:class:`~repro.storage.cost.PeakTracker`), so aggregate Definition 2
bits across hundreds of shard runs stay cheap to track. Co-located
coded shards share one scheme object, one per-wave
:class:`~repro.coding.oracles.BatchEncodePlan` stacked over the *union*
write wave, and one :class:`~repro.coding.oracles.DecodeShareCache` —
the cross-shard twin of the single-register runner's batching, and pure
caching: measurements are identical with the pools disabled.

Per shard, the realized peak Definition 2 cost is checked against the
Theorem 1 floor at that shard's own maximum concurrency
(:func:`~repro.analysis.sweeps.theorem1_bound_bits`) — the per-shard
lower-bound audit the keyspace benchmark asserts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.coding.oracles import BatchEncodePlan, DecodeShareCache
from repro.coding.scheme import CodingScheme, MDSCodingScheme
from repro.errors import ParameterError, SchedulerExhausted
from repro.keyspace.hashing import HashRing
from repro.registers import (
    ABDRegister,
    AdaptiveRegister,
    CASRegister,
    CodedOnlyRegister,
    RegisterSetup,
    SafeCodedRegister,
    replication_setup,
)
from repro.sim.kernel import Simulation
from repro.sim.schedulers import FairScheduler
from repro.storage.cost import PeakTracker, StorageMeter
from repro.workloads.generators import (
    KEY_SKEWS,
    cumulative_weights,
    make_value,
    sample_keys,
    skew_weights,
)

#: Registers the keyspace can shard over (ABD is the replication point).
KEYSPACE_REGISTERS = {
    "abd": ABDRegister,
    "adaptive": AdaptiveRegister,
    "cas": CASRegister,
    "coded-only": CodedOnlyRegister,
    "safe": SafeCodedRegister,
}


@dataclass(frozen=True)
class KeyspaceSpec:
    """Shape of one sharded-keyspace run — the experiment's free variables.

    ``keys`` is the keyspace size (ids ``0 .. keys-1``; a million keys is
    just a million-entry popularity vector — only *touched* keys cost
    simulation time). Each of ``waves`` waves draws ``wave_size`` write
    operations (and ``reads_per_wave`` reads) from the ``skew``
    distribution — every draw is one client with one outstanding
    operation, so repeated hot keys mean *concurrent* writers. ``seed``
    determines every draw and every written value.
    """

    keys: int
    shards: int
    register: str = "adaptive"
    f: int = 1
    k: int = 2
    data_size_bytes: int = 16
    skew: str = "uniform"
    zipf_s: float = 1.1
    hot_keys: int = 8
    hot_weight: float = 0.9
    waves: int = 4
    wave_size: int = 64
    reads_per_wave: int = 0
    vnodes: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.register not in KEYSPACE_REGISTERS:
            raise ParameterError(
                f"unknown register {self.register!r}; known: "
                f"{sorted(KEYSPACE_REGISTERS)}"
            )
        if self.skew not in KEY_SKEWS:
            raise ParameterError(
                f"unknown key skew {self.skew!r}; known: {KEY_SKEWS}"
            )
        if min(self.keys, self.shards, self.waves, self.wave_size) < 1:
            raise ParameterError(
                "keys, shards, waves, and wave_size must all be >= 1"
            )
        if self.reads_per_wave < 0:
            raise ParameterError("reads_per_wave must be >= 0")
        if self.register != "abd" and self.data_size_bytes % self.k != 0:
            raise ParameterError(
                "data_size_bytes must be divisible by k for coded shards"
            )

    @property
    def n(self) -> int:
        """Base objects per shard (``2f + k`` coded, ``2f + 1`` for ABD)."""
        if self.register == "abd":
            return 2 * self.f + 1
        return 2 * self.f + self.k

    @property
    def data_size_bits(self) -> int:
        return self.data_size_bytes * 8

    @property
    def total_ops(self) -> int:
        return self.waves * (self.wave_size + self.reads_per_wave)

    def weights(self) -> list[float]:
        """The popularity vector this spec's waves draw from."""
        return skew_weights(
            self.skew, self.keys, zipf_s=self.zipf_s,
            hot_keys=self.hot_keys, hot_weight=self.hot_weight,
        )


@dataclass
class ShardStats:
    """One shard's accumulated measurements across every wave.

    ``max_c`` is the shard's realized write concurrency (the largest
    write count any single wave routed to it) — the ``c`` its Theorem 1
    floor is evaluated at. ``peak_storage_bits`` is the largest
    Definition 2 cost (base-object state + channel-parked bits) observed
    at any action of any of its waves; ``final_bo_state_bits`` is the
    at-rest state after the shard's *last* wave settled (GC included).
    """

    shard: int
    waves_active: int = 0
    max_c: int = 0
    write_ops: int = 0
    read_ops: int = 0
    completed_writes: int = 0
    completed_reads: int = 0
    steps: int = 0
    peak_storage_bits: int = 0
    peak_bo_state_bits: int = 0
    final_bo_state_bits: int = 0
    thm1_floor_bits: int = 0

    @property
    def floor_ok(self) -> bool:
        """Peak Definition 2 bits meet the shard's own Theorem 1 floor."""
        return self.waves_active == 0 or (
            self.peak_storage_bits >= self.thm1_floor_bits
        )


@dataclass
class KeyspaceResult:
    """Everything a sharded run measured, per shard and in aggregate."""

    spec: KeyspaceSpec
    shard_stats: list[ShardStats]
    distinct_keys: int
    wall_clock_s: float = 0.0
    #: (wave, shard) -> write concurrency, for distribution diagnostics.
    wave_concurrency: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def active_shards(self) -> int:
        return sum(1 for stats in self.shard_stats if stats.waves_active)

    @property
    def max_shard_c(self) -> int:
        return max((stats.max_c for stats in self.shard_stats), default=0)

    @property
    def total_actions(self) -> int:
        return sum(stats.steps for stats in self.shard_stats)

    @property
    def completed_writes(self) -> int:
        return sum(stats.completed_writes for stats in self.shard_stats)

    @property
    def completed_reads(self) -> int:
        return sum(stats.completed_reads for stats in self.shard_stats)

    @property
    def aggregate_peak_storage_bits(self) -> int:
        """Sum of per-shard Definition 2 peaks (each at its own worst
        action — a per-shard-peak total, not one simultaneous snapshot)."""
        return sum(stats.peak_storage_bits for stats in self.shard_stats)

    @property
    def aggregate_peak_bo_state_bits(self) -> int:
        """Sum of per-shard base-object-state peaks (the Section 5 count)."""
        return sum(stats.peak_bo_state_bits for stats in self.shard_stats)

    @property
    def aggregate_final_bits(self) -> int:
        """At-rest base-object bits across all shards after settling."""
        return sum(stats.final_bo_state_bits for stats in self.shard_stats)

    @property
    def floor_violations(self) -> list[int]:
        """Shards whose measured peak fell below their Theorem 1 floor."""
        return [
            stats.shard for stats in self.shard_stats if not stats.floor_ok
        ]

    @property
    def actions_per_s(self) -> float:
        """Aggregate scheduler throughput across every shard simulation."""
        if self.wall_clock_s <= 0:
            return 0.0
        return self.total_actions / self.wall_clock_s


def _shard_setup(
    spec: KeyspaceSpec, scheme: CodingScheme | None
) -> RegisterSetup:
    if spec.register == "abd":
        return replication_setup(
            f=spec.f, data_size_bytes=spec.data_size_bytes
        )
    # Every coded shard's setup returns the *same* scheme object: the
    # BatchEncodePlan/DecodeShareCache pools key on scheme identity, so
    # object sharing is what lets co-located shards share one stacked
    # encode pass and one decode cache.
    return RegisterSetup(
        f=spec.f, k=spec.k, data_size_bytes=spec.data_size_bytes,
        scheme_factory=lambda _setup: scheme,
    )


def _shared_scheme(spec: KeyspaceSpec) -> CodingScheme | None:
    """One scheme object for all of a run's coded shards (None for ABD)."""
    if spec.register == "abd":
        return None
    template = RegisterSetup(
        f=spec.f, k=spec.k, data_size_bytes=spec.data_size_bytes
    )
    return template.build_scheme()


def _run_shard_wave(
    spec: KeyspaceSpec,
    setup: RegisterSetup,
    writes: list[tuple[int, bytes]],
    reads: int,
    wave: int,
    encode_plan: BatchEncodePlan | None,
    decode_cache: DecodeShareCache | None,
    stats: ShardStats,
    *,
    max_steps: int,
    audit_storage_every: int,
) -> None:
    """Run one shard's slice of one wave and fold it into ``stats``."""
    protocol = KEYSPACE_REGISTERS[spec.register](setup)
    sim = Simulation(protocol, keep_events=False)
    sim.encode_plan = encode_plan
    sim.decode_cache = decode_cache
    for slot, value in writes:
        client = sim.add_client(f"w{wave}.{slot}")
        client.enqueue_write(value)
    for reader in range(reads):
        client = sim.add_client(f"r{wave}.{reader}")
        client.enqueue_read()
    meter = StorageMeter(sim)
    tracker = PeakTracker(meter, audit_every=audit_storage_every)
    run = sim.run(FairScheduler(), max_steps=max_steps, on_action=tracker)
    if run.exhausted:
        raise SchedulerExhausted(
            f"keyspace shard {stats.shard} wave {wave}: {max_steps} steps "
            f"without quiescence ({len(writes)} writers, {reads} readers)"
        )
    stats.waves_active += 1
    stats.max_c = max(stats.max_c, len(writes))
    stats.write_ops += len(writes)
    stats.read_ops += reads
    stats.completed_writes += sum(
        1 for op in sim.trace.writes() if op.complete
    )
    stats.completed_reads += sum(
        1 for op in sim.trace.reads() if op.complete
    )
    stats.steps += run.steps
    stats.peak_storage_bits = max(stats.peak_storage_bits, tracker.peak_bits)
    stats.peak_bo_state_bits = max(
        stats.peak_bo_state_bits, tracker.peak_bo_only_bits
    )
    stats.final_bo_state_bits = meter.bo_only_cost_bits()


def run_keyspace(
    spec: KeyspaceSpec,
    *,
    max_steps: int = 400_000,
    audit_storage_every: int = 0,
    progress: Callable[[int, int], None] | None = None,
) -> KeyspaceResult:
    """Drive ``spec``'s skewed key stream through its sharded registers.

    Wave by wave: draw the wave's keys, route them over the consistent
    hash ring, and run each loaded shard's register simulation to
    quiescence — all shards of a wave sharing one stacked encode plan
    over the union write wave (coded registers) and the run-wide decode
    cache. Deterministic end to end: the result is a pure function of
    ``spec`` and the engine knobs.

    ``audit_storage_every = N`` cross-checks every shard's incremental
    ledger against the full-walk reference meter every ``N`` actions.
    ``progress`` (if given) is called as ``progress(done_waves, waves)``.
    """
    ring = HashRing(spec.shards, vnodes=spec.vnodes)
    cum_weights = cumulative_weights(spec.weights())
    scheme = _shared_scheme(spec)
    setup = _shard_setup(spec, scheme)
    decode_cache = (
        DecodeShareCache(scheme)
        if isinstance(scheme, MDSCodingScheme) else None
    )
    stats = [ShardStats(shard=shard) for shard in range(spec.shards)]
    touched: set[int] = set()
    wave_concurrency: dict[tuple[int, int], int] = {}
    started = time.perf_counter()
    for wave in range(spec.waves):
        write_keys = sample_keys(
            cum_weights, spec.wave_size, spec.seed, f"wave{wave}.w"
        )
        read_keys = sample_keys(
            cum_weights, spec.reads_per_wave, spec.seed, f"wave{wave}.r"
        )
        touched.update(write_keys)
        touched.update(read_keys)
        writes_by_shard: dict[int, list[tuple[int, bytes]]] = {}
        wave_values: list[bytes] = []
        for slot, key in enumerate(write_keys):
            # Values are distinct per operation (same key, two clients,
            # two values) so concurrent hot-key writers are real writes,
            # not no-op overwrites.
            value = make_value(setup, f"key{key}.wave{wave}.op{slot}",
                               spec.seed)
            writes_by_shard.setdefault(ring.shard_of(key), []).append(
                (slot, value)
            )
            wave_values.append(value)
        reads_by_shard: dict[int, int] = {}
        for key in read_keys:
            shard = ring.shard_of(key)
            reads_by_shard[shard] = reads_by_shard.get(shard, 0) + 1
        encode_plan = None
        if isinstance(scheme, MDSCodingScheme) and len(wave_values) >= 2:
            # One stacked encode pass for the whole wave, shared by every
            # shard simulation the wave touches.
            encode_plan = BatchEncodePlan(
                scheme, wave_values, range(scheme.n)
            )
        for shard in sorted(set(writes_by_shard) | set(reads_by_shard)):
            shard_writes = writes_by_shard.get(shard, [])
            wave_concurrency[(wave, shard)] = len(shard_writes)
            _run_shard_wave(
                spec, setup, shard_writes, reads_by_shard.get(shard, 0),
                wave, encode_plan, decode_cache, stats[shard],
                max_steps=max_steps,
                audit_storage_every=audit_storage_every,
            )
        if progress is not None:
            progress(wave + 1, spec.waves)
    # Imported here, not at module level: the sweep engine imports this
    # module for its keyspace axis, so a top-level import would cycle.
    from repro.analysis.sweeps import theorem1_bound_bits

    for shard_stats in stats:
        shard_stats.thm1_floor_bits = (
            theorem1_bound_bits(spec.f, shard_stats.max_c,
                                spec.data_size_bits)
            if shard_stats.max_c else 0
        )
    return KeyspaceResult(
        spec=spec,
        shard_stats=stats,
        distinct_keys=len(touched),
        wall_clock_s=round(time.perf_counter() - started, 6),
        wave_concurrency=wave_concurrency,
    )
