"""Consistent hashing: the deterministic key -> shard ring.

The keyspace places each shard on a hash ring at ``vnodes`` pseudo-random
points (SHA-256 of ``(salt, shard, vnode)``); a key belongs to the shard
owning the first ring point clockwise of the key's own hash. Two
properties matter here:

* **Determinism** — ring points and key hashes are pure SHA-256, so the
  same ``(shards, vnodes, salt)`` always yields the same mapping, on any
  host and in any pool worker. Sharded sweeps inherit byte-identical
  reproducibility from this.
* **Minimal disruption** — removing a shard reassigns only the keys that
  shard owned (each to the next point clockwise); every other key keeps
  its shard. ``tests/keyspace/test_hashing.py`` pins both.

Virtual nodes smooth the load: with ``vnodes`` points per shard the
largest arc shrinks like ``O(log(shards) / vnodes)`` of the ring, so the
uniform-skew waves of ``repro.keyspace`` spread evenly instead of
following one unlucky arc.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable

from repro.errors import ParameterError


def hash_point(tag: str) -> int:
    """A ring position: the first 8 bytes of SHA-256 over ``tag``."""
    return int.from_bytes(hashlib.sha256(tag.encode()).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over ``shards`` shards.

    ``salt`` namespaces the ring (two rings with different salts place
    the same shards at independent points — useful for re-hashing tests);
    key ids are plain integers, hashed as ``"<salt>:key<id>"``.
    """

    def __init__(self, shards: int, vnodes: int = 64, salt: str = "ring"):
        if shards < 1:
            raise ParameterError("shards must be >= 1")
        if vnodes < 1:
            raise ParameterError("vnodes must be >= 1")
        self.shards = shards
        self.vnodes = vnodes
        self.salt = salt
        placed = sorted(
            (hash_point(f"{salt}:shard{shard}:v{vnode}"), shard)
            for shard in range(shards)
            for vnode in range(vnodes)
        )
        self._points = [point for point, _shard in placed]
        self._owners = [shard for _point, shard in placed]

    def shard_of(self, key: int) -> int:
        """The shard owning ``key``: first ring point clockwise of it."""
        position = hash_point(f"{self.salt}:key{key}")
        index = bisect_right(self._points, position) % len(self._points)
        return self._owners[index]

    def assign(self, keys: Iterable[int]) -> dict[int, list[int]]:
        """Group ``keys`` by owning shard (insertion order preserved)."""
        grouped: dict[int, list[int]] = {}
        for key in keys:
            grouped.setdefault(self.shard_of(key), []).append(key)
        return grouped

    def load_counts(self, keys: Iterable[int]) -> dict[int, int]:
        """How many of ``keys`` each shard owns (shards absent: zero)."""
        counts = dict.fromkeys(range(self.shards), 0)
        for key in keys:
            counts[self.shard_of(key)] += 1
        return counts
