"""Higher-level workload patterns beyond the flat burst.

:class:`~repro.workloads.generators.WorkloadSpec` models the paper's
canonical setting — a burst of ``c`` concurrent writers. Real evaluations
also need shaped load; these builders enqueue richer schedules on a
prepared simulation:

* :func:`staggered_writers` — writers that start one quorum-round apart,
  producing a sliding concurrency window rather than a c-burst;
* :func:`read_heavy` — a small writer pool against many repeating readers
  (the FW-termination stress shape);
* :func:`churn` — clients that arrive in waves, each wave writing then
  reading back, modelling client turnover.

Each returns the prepared :class:`~repro.sim.kernel.Simulation` plus the
expected completed-operation counts so tests and benches can assert
drainage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Type

from repro.registers.base import RegisterProtocol, RegisterSetup
from repro.sim.kernel import Simulation
from repro.sim.schedulers import FairScheduler, Scheduler
from repro.workloads.generators import make_value


@dataclass
class PatternRun:
    """A prepared simulation plus its expected op counts."""

    sim: Simulation
    expected_writes: int
    expected_reads: int

    def drain(self, scheduler: Scheduler | None = None,
              max_steps: int = 400_000):
        """Run to quiescence and return the kernel's RunResult."""
        return self.sim.run(scheduler or FairScheduler(), max_steps=max_steps)

    @property
    def completed_writes(self) -> int:
        return sum(1 for op in self.sim.trace.writes() if op.complete)

    @property
    def completed_reads(self) -> int:
        return sum(1 for op in self.sim.trace.reads() if op.complete)


def staggered_writers(
    protocol_cls: Type[RegisterProtocol],
    setup: RegisterSetup,
    writers: int,
    writes_each: int = 2,
    seed: int = 0,
) -> PatternRun:
    """Writers with pipelined back-to-back writes.

    Unlike the burst, each client queues several writes, so concurrency
    stays near ``writers`` for a long window while timestamps keep
    advancing — the steady-state shape for GC (Lemma 8) under sustained
    load.
    """
    sim = Simulation(protocol_cls(setup))
    for index in range(writers):
        client = sim.add_client(f"sw{index}")
        for round_number in range(writes_each):
            client.enqueue_write(
                make_value(setup, f"stag-{index}-{round_number}", seed)
            )
    return PatternRun(sim, expected_writes=writers * writes_each,
                      expected_reads=0)


def read_heavy(
    protocol_cls: Type[RegisterProtocol],
    setup: RegisterSetup,
    readers: int,
    reads_each: int = 3,
    writers: int = 1,
    seed: int = 0,
) -> PatternRun:
    """Few writers, many repeat readers — FW-termination stress."""
    sim = Simulation(protocol_cls(setup))
    for index in range(writers):
        client = sim.add_client(f"rw{index}")
        client.enqueue_write(make_value(setup, f"rh-{index}", seed))
    for index in range(readers):
        client = sim.add_client(f"rr{index}")
        for _ in range(reads_each):
            client.enqueue_read()
    return PatternRun(
        sim,
        expected_writes=writers,
        expected_reads=readers * reads_each,
    )


def churn(
    protocol_cls: Type[RegisterProtocol],
    setup: RegisterSetup,
    waves: int,
    clients_per_wave: int = 2,
    seed: int = 0,
) -> PatternRun:
    """Client turnover: waves of write-then-read clients.

    Wave ``i`` is only enqueued after wave ``i - 1`` drains, so each wave
    observes its predecessors' completed writes — exercising timestamp
    propagation through ``storedTS`` across generations of clients.
    The returned :class:`PatternRun` is already drained.
    """
    sim = Simulation(protocol_cls(setup))
    total_clients = 0
    for wave in range(waves):
        for index in range(clients_per_wave):
            client = sim.add_client(f"c{wave}-{index}")
            client.enqueue_write(
                make_value(setup, f"churn-{wave}-{index}", seed)
            )
            client.enqueue_read()
            total_clients += 1
        sim.run(FairScheduler())
    return PatternRun(
        sim,
        expected_writes=total_clients,
        expected_reads=total_clients,
    )
