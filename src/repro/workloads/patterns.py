"""Higher-level workload patterns beyond the flat burst.

:class:`~repro.workloads.generators.WorkloadSpec` models the paper's
canonical setting — a burst of ``c`` concurrent writers. Real evaluations
also need shaped load; these builders enqueue richer schedules on a
prepared simulation:

* :func:`staggered_writers` — writers that start one quorum-round apart,
  producing a sliding concurrency window rather than a c-burst;
* :func:`read_heavy` — a small writer pool against many repeating readers
  (the FW-termination stress shape);
* :func:`churn` — clients that arrive in waves, each wave writing then
  reading back, modelling client turnover.

Each returns a :class:`PatternRun` whose :meth:`~PatternRun.drain` runs the
schedule to quiescence *with storage metering*, giving the same measurement
surface as :class:`~repro.workloads.runner.WorkloadResult` (``spec``,
``peak_storage_bits``, ``peak_bo_state_bits``, ``final_bo_state_bits``,
``series``, ``history``): analysis code — the scenario sweep engine in
particular — consumes either without ``isinstance`` branching. Builders
know every write value up front, so they install the same
:class:`~repro.coding.oracles.BatchEncodePlan` (one stacked encode pass per
run) and :class:`~repro.coding.oracles.DecodeShareCache` the uniform-wave
runner uses; pattern sweeps pay the vectorized coding path, not one matrix
pass per operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Type

from repro.coding.oracles import DecodeShareCache
from repro.registers.base import RegisterProtocol, RegisterSetup
from repro.sim.kernel import RunResult, Simulation
from repro.sim.schedulers import FairScheduler, Scheduler
from repro.storage.cost import PeakTracker, StorageMeter
from repro.workloads.generators import WorkloadSpec, make_value
from repro.workloads.runner import build_encode_plan


@dataclass
class PatternRun:
    """A prepared pattern run, measurement-compatible with WorkloadResult.

    ``phases`` holds the not-yet-enqueued stages of the schedule (churn's
    waves; single-phase patterns enqueue at build time and leave it empty).
    :meth:`drain` runs every phase to quiescence under one
    :class:`~repro.storage.cost.PeakTracker`, after which the
    ``peak_*``/``final_*``/``series`` fields carry the same Definition 2 /
    Definition 6 measurements :func:`~repro.workloads.runner.
    run_register_workload` reports — the parity the scenario sweep engine
    relies on. ``spec`` describes the schedule's shape in
    :class:`~repro.workloads.generators.WorkloadSpec` terms (total writers,
    writes per writer, readers), so sweep records serialise patterns and
    uniform waves identically.
    """

    sim: Simulation
    expected_writes: int
    expected_reads: int
    spec: WorkloadSpec | None = None
    phases: list[Callable[[Simulation], None]] = field(default_factory=list)
    run: RunResult | None = None
    peak_storage_bits: int = 0
    peak_bo_state_bits: int = 0
    final_bo_state_bits: int = 0
    series: list[tuple[int, int]] = field(default_factory=list)

    def drain(
        self,
        scheduler: Scheduler | None = None,
        max_steps: int = 400_000,
        *,
        keep_series: bool = False,
        audit_storage_every: int = 0,
        configure: Callable[[Simulation, Scheduler], Scheduler] | None = None,
    ) -> RunResult:
        """Run every phase to quiescence, metering storage throughout.

        ``configure`` may wrap the scheduler (e.g. in a
        :class:`~repro.sim.failures.FailurePlan`) before any phase runs —
        the hook scenario sweeps use for seed-derived crash injection.
        ``audit_storage_every = N`` cross-checks the incremental ledger
        against the full-walk reference every ``N`` actions. Draining twice
        is a no-op returning the first :class:`RunResult`.
        """
        if self.run is not None:
            return self.run
        scheduler = scheduler or FairScheduler()
        if configure is not None:
            scheduler = configure(self.sim, scheduler)
        meter = StorageMeter(self.sim)
        tracker = PeakTracker(
            meter, keep_series=keep_series, audit_every=audit_storage_every
        )
        phases = self.phases or [lambda sim: None]
        steps = 0
        quiescent = True
        for phase in phases:
            phase(self.sim)
            result = self.sim.run(
                scheduler, max_steps=max_steps - steps, on_action=tracker
            )
            steps += result.steps
            quiescent = result.quiescent
            if not quiescent:
                break
        self.phases = []
        self.run = RunResult(
            steps, quiescent=quiescent, stopped_by_predicate=False
        )
        self.peak_storage_bits = tracker.peak_bits
        self.peak_bo_state_bits = tracker.peak_bo_only_bits
        self.final_bo_state_bits = meter.bo_only_cost_bits()
        self.series = tracker.series
        return self.run

    # ------------------------------------------- WorkloadResult parity

    @property
    def trace(self):
        return self.sim.trace

    @property
    def history(self):
        """Checker-ready history of this run."""
        from repro.spec.histories import History

        return History.from_trace(self.sim.trace, self.sim.protocol.setup.v0())

    @property
    def completed_writes(self) -> int:
        return sum(1 for op in self.sim.trace.writes() if op.complete)

    @property
    def completed_reads(self) -> int:
        return sum(1 for op in self.sim.trace.reads() if op.complete)

    @property
    def total_rmw_applies(self) -> int:
        return sum(bo.applied_count for bo in self.sim.base_objects)


def _prepare(sim: Simulation, wave: list[bytes], expect_reads: bool) -> None:
    """Install the shared coding fast paths on a freshly built pattern sim."""
    sim.encode_plan = build_encode_plan(sim, wave)
    if expect_reads:
        sim.decode_cache = DecodeShareCache(sim.scheme)


def staggered_writers(
    protocol_cls: Type[RegisterProtocol],
    setup: RegisterSetup,
    writers: int,
    writes_each: int = 2,
    seed: int = 0,
) -> PatternRun:
    """Writers with pipelined back-to-back writes.

    Unlike the burst, each client queues several writes, so concurrency
    stays near ``writers`` for a long window while timestamps keep
    advancing — the steady-state shape for GC (Lemma 8) under sustained
    load.
    """
    sim = Simulation(protocol_cls(setup))
    wave = []
    for index in range(writers):
        client = sim.add_client(f"sw{index}")
        for round_number in range(writes_each):
            value = make_value(setup, f"stag-{index}-{round_number}", seed)
            client.enqueue_write(value)
            wave.append(value)
    _prepare(sim, wave, expect_reads=False)
    return PatternRun(
        sim,
        expected_writes=writers * writes_each,
        expected_reads=0,
        spec=WorkloadSpec(
            writers=writers, writes_per_writer=writes_each, readers=0,
            seed=seed,
        ),
    )


def read_heavy(
    protocol_cls: Type[RegisterProtocol],
    setup: RegisterSetup,
    readers: int,
    reads_each: int = 3,
    writers: int = 1,
    seed: int = 0,
) -> PatternRun:
    """Few writers, many repeat readers — FW-termination stress."""
    sim = Simulation(protocol_cls(setup))
    wave = []
    for index in range(writers):
        client = sim.add_client(f"rw{index}")
        value = make_value(setup, f"rh-{index}", seed)
        client.enqueue_write(value)
        wave.append(value)
    for index in range(readers):
        client = sim.add_client(f"rr{index}")
        for _ in range(reads_each):
            client.enqueue_read()
    _prepare(sim, wave, expect_reads=True)
    return PatternRun(
        sim,
        expected_writes=writers,
        expected_reads=readers * reads_each,
        spec=WorkloadSpec(
            writers=writers, writes_per_writer=1, readers=readers,
            reads_per_reader=reads_each, seed=seed,
        ),
    )


def churn(
    protocol_cls: Type[RegisterProtocol],
    setup: RegisterSetup,
    waves: int,
    clients_per_wave: int = 2,
    seed: int = 0,
) -> PatternRun:
    """Client turnover: waves of write-then-read clients.

    Wave ``i`` is only enqueued after wave ``i - 1`` drains, so each wave
    observes its predecessors' completed writes — exercising timestamp
    propagation through ``storedTS`` across generations of clients. Waves
    are :class:`PatternRun` *phases*: nothing runs until
    :meth:`PatternRun.drain`, which meters storage across all waves in one
    pass (and lets a crash plan installed at drain time span wave
    boundaries). One :class:`~repro.coding.oracles.BatchEncodePlan` covers
    every wave's values, so the whole run costs one stacked encode pass.
    """
    sim = Simulation(protocol_cls(setup))
    wave_values = [
        [
            make_value(setup, f"churn-{wave}-{index}", seed)
            for index in range(clients_per_wave)
        ]
        for wave in range(waves)
    ]
    _prepare(sim, [v for per_wave in wave_values for v in per_wave],
             expect_reads=True)

    def enqueue_wave(wave: int) -> Callable[[Simulation], None]:
        def phase(sim: Simulation) -> None:
            for index in range(clients_per_wave):
                client = sim.add_client(f"c{wave}-{index}")
                client.enqueue_write(wave_values[wave][index])
                client.enqueue_read()

        return phase

    total_clients = waves * clients_per_wave
    return PatternRun(
        sim,
        expected_writes=total_clients,
        expected_reads=total_clients,
        spec=WorkloadSpec(
            writers=total_clients, writes_per_writer=1, readers=total_clients,
            reads_per_reader=1, seed=seed,
        ),
        phases=[enqueue_wave(wave) for wave in range(waves)],
    )
