"""Deterministic workload material: values and client schedules.

Experiments need *distinct* values per write (the consistency checkers match
reads to writes by value) that are *reproducible* across runs (benchmarks
must be stable). Values are therefore derived by expanding SHA-256 over a
``(seed, tag)`` pair to the register width.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.registers.base import RegisterSetup


def make_value(setup: RegisterSetup, tag: str, seed: int = 0) -> bytes:
    """Return a deterministic pseudo-random value for this register width.

    Distinct tags yield distinct values (up to SHA-256 collisions, which is
    to say: distinct).
    """
    out = bytearray()
    counter = 0
    while len(out) < setup.data_size_bytes:
        digest = hashlib.sha256(f"{seed}:{tag}:{counter}".encode()).digest()
        out.extend(digest)
        counter += 1
    return bytes(out[: setup.data_size_bytes])


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a register workload — the experiment's free variables.

    ``writers`` concurrent writer clients each issue ``writes_per_writer``
    writes back-to-back; ``readers`` reader clients each issue
    ``reads_per_reader`` reads. With a fair or random scheduler all clients
    run concurrently, so the write-concurrency level ``c`` equals
    ``writers`` (each client keeps at most one operation outstanding —
    the well-formedness condition of Appendix A). This is the paper's
    *point contention*: the ``c`` of Theorem 1's ``Omega(min(f, c) D)``
    lower bound and of the adaptive algorithm's
    ``O((min(f, c) + 1) (n/k) D)`` storage, which is why sweeps drive it
    as their x-axis. ``seed`` determines every written value
    (:func:`make_value`), making runs bit-reproducible.
    """

    writers: int = 2
    writes_per_writer: int = 1
    readers: int = 1
    reads_per_reader: int = 1
    seed: int = 0

    @property
    def concurrency(self) -> int:
        """The paper's ``c``: maximum concurrent outstanding writes."""
        return self.writers

    def write_values(self, setup: RegisterSetup) -> dict[str, list[bytes]]:
        """Map each writer name to its sequence of distinct values."""
        return {
            writer_name(index): [
                make_value(setup, f"w{index}.{j}", self.seed)
                for j in range(self.writes_per_writer)
            ]
            for index in range(self.writers)
        }


def writer_name(index: int) -> str:
    return f"w{index}"


def reader_name(index: int) -> str:
    return f"r{index}"
