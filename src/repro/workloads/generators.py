"""Deterministic workload material: values and client schedules.

Experiments need *distinct* values per write (the consistency checkers match
reads to writes by value) that are *reproducible* across runs (benchmarks
must be stable). Values are therefore derived by expanding SHA-256 over a
``(seed, tag)`` pair to the register width.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate

from repro.errors import ParameterError
from repro.registers.base import RegisterSetup


def make_value(setup: RegisterSetup, tag: str, seed: int = 0) -> bytes:
    """Return a deterministic pseudo-random value for this register width.

    Distinct tags yield distinct values (up to SHA-256 collisions, which is
    to say: distinct).
    """
    out = bytearray()
    counter = 0
    while len(out) < setup.data_size_bytes:
        digest = hashlib.sha256(f"{seed}:{tag}:{counter}".encode()).digest()
        out.extend(digest)
        counter += 1
    return bytes(out[: setup.data_size_bytes])


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a register workload — the experiment's free variables.

    ``writers`` concurrent writer clients each issue ``writes_per_writer``
    writes back-to-back; ``readers`` reader clients each issue
    ``reads_per_reader`` reads. With a fair or random scheduler all clients
    run concurrently, so the write-concurrency level ``c`` equals
    ``writers`` (each client keeps at most one operation outstanding —
    the well-formedness condition of Appendix A). This is the paper's
    *point contention*: the ``c`` of Theorem 1's ``Omega(min(f, c) D)``
    lower bound and of the adaptive algorithm's
    ``O((min(f, c) + 1) (n/k) D)`` storage, which is why sweeps drive it
    as their x-axis. ``seed`` determines every written value
    (:func:`make_value`), making runs bit-reproducible.
    """

    writers: int = 2
    writes_per_writer: int = 1
    readers: int = 1
    reads_per_reader: int = 1
    seed: int = 0

    @property
    def concurrency(self) -> int:
        """The paper's ``c``: maximum concurrent outstanding writes."""
        return self.writers

    def write_values(self, setup: RegisterSetup) -> dict[str, list[bytes]]:
        """Map each writer name to its sequence of distinct values."""
        return {
            writer_name(index): [
                make_value(setup, f"w{index}.{j}", self.seed)
                for j in range(self.writes_per_writer)
            ]
            for index in range(self.writers)
        }


def writer_name(index: int) -> str:
    return f"w{index}"


def reader_name(index: int) -> str:
    return f"r{index}"


# ------------------------------------------------------- key-skew streams
#
# The keyspace layer (``repro.keyspace``) draws per-wave key streams from
# a popularity distribution over key ids ``0 .. keys-1``. Like the values
# above, every draw is derived by expanding SHA-256 over ``(seed, tag)``
# — no stateful RNG — so a wave's key set is a pure function of the spec,
# which is what makes sharded sweeps byte-reproducible and pool-safe.

#: Key-popularity shapes the keyspace workloads understand.
KEY_SKEWS = ("uniform", "zipfian", "hotspot")


def unit_interval(seed: int, tag: str) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from a ``(seed, tag)`` pair."""
    digest = hashlib.sha256(f"{seed}:{tag}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def uniform_weights(keys: int) -> list[float]:
    """Every key equally popular: concurrency spread as thin as possible."""
    if keys < 1:
        raise ParameterError("keys must be >= 1")
    return [1.0 / keys] * keys


def zipf_weights(keys: int, s: float = 1.1) -> list[float]:
    """Normalized zipfian popularity: key of rank ``r`` gets ``1/r^s`` mass.

    Rank order is key-id order (key 0 is the hottest), so distribution
    tests and plots need no separate rank permutation; the hash ring
    scatters ids across shards regardless.
    """
    if keys < 1:
        raise ParameterError("keys must be >= 1")
    if s <= 0:
        raise ParameterError("zipf exponent s must be > 0")
    raw = [1.0 / (rank ** s) for rank in range(1, keys + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


def hotspot_weights(
    keys: int, hot_keys: int, hot_weight: float = 0.9
) -> list[float]:
    """Hot-key skew: ``hot_keys`` keys split ``hot_weight`` of all traffic.

    The first ``hot_keys`` ids are the hot set (sharing ``hot_weight``
    evenly); the rest split the remaining mass evenly. With fewer hot
    keys than shards this concentrates write concurrency on the few
    shards owning them — the regime that separates the coded-only and
    adaptive storage curves.
    """
    if keys < 1:
        raise ParameterError("keys must be >= 1")
    if not 1 <= hot_keys <= keys:
        raise ParameterError("hot_keys must be in [1, keys]")
    if not 0 < hot_weight < 1:
        raise ParameterError("hot_weight must be in (0, 1)")
    if hot_keys == keys:  # degenerate: everything "hot" means uniform
        return uniform_weights(keys)
    hot = hot_weight / hot_keys
    cold = (1.0 - hot_weight) / (keys - hot_keys)
    return [hot] * hot_keys + [cold] * (keys - hot_keys)


def skew_weights(
    skew: str,
    keys: int,
    *,
    zipf_s: float = 1.1,
    hot_keys: int = 8,
    hot_weight: float = 0.9,
) -> list[float]:
    """Build the popularity vector for one of :data:`KEY_SKEWS`."""
    if skew == "uniform":
        return uniform_weights(keys)
    if skew == "zipfian":
        return zipf_weights(keys, zipf_s)
    if skew == "hotspot":
        return hotspot_weights(keys, hot_keys, hot_weight)
    raise ParameterError(f"unknown key skew {skew!r}; known: {KEY_SKEWS}")


def cumulative_weights(weights: list[float]) -> list[float]:
    """Prefix sums of a popularity vector, rescaled to end exactly at 1.

    The sampling table :func:`sample_keys` bisects: rescaling kills the
    float drift that would otherwise leave the final interval slightly
    short (or long) of the unit draw's range.
    """
    if not weights:
        raise ParameterError("weights must be non-empty")
    sums = list(accumulate(weights))
    total = sums[-1]
    if total <= 0:
        raise ParameterError("weights must have positive mass")
    return [value / total for value in sums]


def sample_keys(
    cum_weights: list[float], count: int, seed: int, tag: str
) -> list[int]:
    """Draw ``count`` key ids (with replacement) from a cumulative table.

    Draw ``i`` inverts the CDF at ``unit_interval(seed, f"{tag}.{i}")``,
    so the stream is fully determined by ``(seed, tag)`` and draws can
    repeat hot keys — repeated draws model *distinct clients* writing the
    same key concurrently, which is exactly the paper's concurrency ``c``
    once keys are mapped onto shared registers.
    """
    if count < 0:
        raise ParameterError("count must be >= 0")
    return [
        bisect_right(cum_weights, unit_interval(seed, f"{tag}.{draw}"))
        for draw in range(count)
    ]
