"""A bounded fuzz driver: many seeded adversarial runs, one verdict.

For anyone modifying a register: ``fuzz_register`` runs a batch of seeded
random-schedule workloads (optionally with crash injection), checks every
history with the supplied checker, and returns the failing seeds with
their violation reports — the library-grade version of what the test
suite does ad hoc. Wired into the CLI as ``python -m repro fuzz``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Type

from repro.registers.base import RegisterProtocol, RegisterSetup
from repro.sim.failures import seeded_crash_schedule
from repro.sim.schedulers import RandomScheduler
from repro.spec.histories import History
from repro.workloads.generators import WorkloadSpec, reader_name, writer_name
from repro.workloads.runner import run_register_workload


@dataclass
class FuzzFailure:
    seed: int
    reason: str


@dataclass
class FuzzResult:
    runs: int
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            return f"{self.runs} fuzz runs, all consistent"
        lines = [f"{self.runs} fuzz runs, {len(self.failures)} FAILURES:"]
        lines.extend(f"  seed {f.seed}: {f.reason}" for f in self.failures)
        return "\n".join(lines)


def fuzz_register(
    register_cls: Type[RegisterProtocol],
    setup: RegisterSetup,
    checker: Callable[[History], object],
    runs: int = 25,
    writers: int = 3,
    readers: int = 2,
    ops_each: int = 2,
    crash_objects: int = 0,
    crash_clients: int = 0,
    base_seed: int = 0,
    max_steps: int = 400_000,
) -> FuzzResult:
    """Run ``runs`` seeded adversarial workloads and check every history.

    ``checker`` is any of the ``repro.spec`` checkers (it must return an
    object with a truthy ``ok``). ``crash_objects`` injects that many
    base-object crashes (must be ``<= setup.f``); ``crash_clients`` kills
    that many writer/reader clients mid-run. Victims and firing times come
    from :func:`~repro.sim.failures.seeded_crash_schedule`, so every run is
    reproducible from its seed alone.
    """
    if crash_objects > setup.f:
        raise ValueError("crash_objects must not exceed f")
    cohort = tuple(writer_name(i) for i in range(writers)) + tuple(
        reader_name(i) for i in range(readers)
    )
    if crash_clients > len(cohort):
        raise ValueError("crash_clients must not exceed writers + readers")
    result = FuzzResult(runs=runs)
    for offset in range(runs):
        seed = base_seed + offset
        spec = WorkloadSpec(
            writers=writers,
            writes_per_writer=ops_each,
            readers=readers,
            reads_per_reader=ops_each,
            seed=seed,
        )

        def configure(sim, scheduler, seed=seed):
            if not crash_objects and not crash_clients:
                return scheduler
            schedule = seeded_crash_schedule(
                seed,
                bo_count=setup.n,
                bo_crashes=crash_objects,
                client_names=cohort,
                client_crashes=crash_clients,
            )
            return schedule.install(scheduler)

        try:
            run = run_register_workload(
                register_cls, setup, spec,
                scheduler=RandomScheduler(seed),
                configure=configure,
                max_steps=max_steps,
            )
        except Exception as error:  # noqa: BLE001 - fuzz must not abort
            result.failures.append(FuzzFailure(seed, f"run error: {error}"))
            continue
        report = checker(run.history)
        if not getattr(report, "ok", False):
            violations = getattr(report, "violations", [])
            detail = "; ".join(str(v) for v in violations) or "check failed"
            result.failures.append(FuzzFailure(seed, detail))
    return result
