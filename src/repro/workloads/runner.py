"""The experiment runner: wire a register, a workload, and a scheduler.

:func:`run_register_workload` is the one-call entry point used by the
examples, the tests, and every benchmark: it builds the simulation, enqueues
the workload, runs to quiescence (or budget), and returns a
:class:`WorkloadResult` bundling the trace, the storage measurements, and
the checker-ready history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Type

from repro.errors import SchedulerExhausted
from repro.registers.base import RegisterProtocol, RegisterSetup
from repro.sim.kernel import RunResult, Simulation
from repro.sim.schedulers import FairScheduler, Scheduler
from repro.sim.trace import Trace
from repro.storage.cost import PeakTracker, StorageMeter
from repro.workloads.generators import WorkloadSpec, reader_name, writer_name


@dataclass
class WorkloadResult:
    """Everything an experiment wants to know about one run."""

    sim: Simulation
    run: RunResult
    peak_storage_bits: int
    peak_bo_state_bits: int
    final_bo_state_bits: int
    spec: WorkloadSpec = field(default=None)  # type: ignore[assignment]
    series: list[tuple[int, int]] = field(default_factory=list)

    @property
    def trace(self) -> Trace:
        return self.sim.trace

    @property
    def history(self) -> "History":
        """Checker-ready history of this run."""
        from repro.spec.histories import History

        return History.from_trace(self.sim.trace, self.sim.protocol.setup.v0())

    @property
    def completed_writes(self) -> int:
        return sum(1 for op in self.trace.writes() if op.complete)

    @property
    def completed_reads(self) -> int:
        return sum(1 for op in self.trace.reads() if op.complete)

    @property
    def total_rmw_applies(self) -> int:
        return sum(bo.applied_count for bo in self.sim.base_objects)


def run_register_workload(
    protocol_cls: Type[RegisterProtocol],
    setup: RegisterSetup,
    spec: WorkloadSpec | None = None,
    scheduler: Scheduler | None = None,
    max_steps: int = 400_000,
    keep_series: bool = False,
    keep_events: bool = True,
    require_quiescence: bool = True,
    configure: Callable[[Simulation, Scheduler], Scheduler] | None = None,
) -> WorkloadResult:
    """Run ``spec`` against a fresh register and measure storage.

    ``configure`` may wrap the scheduler (e.g. in a
    :class:`~repro.sim.failures.FailurePlan`) after clients are set up.
    ``require_quiescence`` raises :class:`SchedulerExhausted` if the budget
    runs out first — which, for fair schedulers and FW-terminating
    registers, indicates a liveness bug worth failing loudly on.
    """
    spec = spec or WorkloadSpec()
    scheduler = scheduler or FairScheduler()
    protocol = protocol_cls(setup)
    sim = Simulation(protocol, keep_events=keep_events)

    values = spec.write_values(setup)
    for index in range(spec.writers):
        client = sim.add_client(writer_name(index))
        for value in values[writer_name(index)]:
            client.enqueue_write(value)
    for index in range(spec.readers):
        client = sim.add_client(reader_name(index))
        for _ in range(spec.reads_per_reader):
            client.enqueue_read()

    if configure is not None:
        scheduler = configure(sim, scheduler)

    meter = StorageMeter(sim)
    tracker = PeakTracker(meter, keep_series=keep_series)
    run = sim.run(scheduler, max_steps=max_steps, on_action=tracker)
    if require_quiescence and run.exhausted:
        raise SchedulerExhausted(
            f"{protocol.name}: {max_steps} steps without quiescence "
            f"({spec.writers} writers, {spec.readers} readers)"
        )
    return WorkloadResult(
        sim=sim,
        run=run,
        peak_storage_bits=tracker.peak_bits,
        peak_bo_state_bits=tracker.peak_bo_only_bits,
        final_bo_state_bits=meter.bo_only_cost_bits(),
        spec=spec,
        series=tracker.series,
    )
