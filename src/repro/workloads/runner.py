"""The experiment runner: wire a register, a workload, and a scheduler.

:func:`run_register_workload` is the one-call entry point used by the
examples, the tests, and every benchmark: it builds the simulation, enqueues
the workload, runs to quiescence (or budget), and returns a
:class:`WorkloadResult` bundling the trace, the storage measurements, and
the checker-ready history.

Because the runner knows every write value before the simulation starts, it
pre-encodes the whole wave through one
:class:`~repro.coding.oracles.BatchEncodePlan` — the runner-side twin of
:func:`~repro.coding.oracles.prime_encode_oracles` — so a sweep with
hundreds of concurrent writers pays a single stacked
:meth:`~repro.coding.scheme.CodingScheme.encode_batch` pass instead of one
matrix multiplication per writer. Priming never changes payloads, source
tags, or storage measurements; ``prime_encodes=False`` restores fully lazy
encoding (useful when benchmarking the encode path itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Type

from repro.coding.oracles import BatchEncodePlan, DecodeShareCache
from repro.coding.scheme import MDSCodingScheme
from repro.errors import SchedulerExhausted
from repro.registers.base import RegisterProtocol, RegisterSetup
from repro.sim.kernel import RunResult, Simulation
from repro.sim.schedulers import FairScheduler, Scheduler
from repro.sim.trace import Trace
from repro.storage.cost import PeakTracker, StorageMeter
from repro.workloads.generators import WorkloadSpec, reader_name, writer_name


@dataclass
class WorkloadResult:
    """Everything an experiment wants to know about one run.

    The storage fields are the paper's two cost notions, measured at every
    scheduler action over the run:

    * ``peak_storage_bits`` — the Definition 2 cost: base-object states
      *plus* everything parked in the channels (pending RMW arguments and
      undelivered responses). This is the quantity Theorem 1 lower-bounds
      and the reason channel-parking (Section 3.2) cannot evade it.
    * ``peak_bo_state_bits`` — base-object state only, the quantity the
      paper's upper-bound analyses (Section 5) count; ``final_bo_state_bits``
      is the same measure after quiescence (i.e. after garbage collection
      has settled).

    ``series`` (when requested via ``keep_series``) holds ``(time, bits)``
    samples of the Definition 2 cost; ``history`` rebuilds the
    invoke/return operation history the Appendix A checkers consume.
    """

    sim: Simulation
    run: RunResult
    peak_storage_bits: int
    peak_bo_state_bits: int
    final_bo_state_bits: int
    spec: WorkloadSpec | None = None
    series: list[tuple[int, int]] = field(default_factory=list)

    @property
    def trace(self) -> Trace:
        return self.sim.trace

    @property
    def history(self) -> "History":
        """Checker-ready history of this run."""
        from repro.spec.histories import History

        return History.from_trace(self.sim.trace, self.sim.protocol.setup.v0())

    @property
    def completed_writes(self) -> int:
        return sum(1 for op in self.trace.writes() if op.complete)

    @property
    def completed_reads(self) -> int:
        return sum(1 for op in self.trace.reads() if op.complete)

    @property
    def total_rmw_applies(self) -> int:
        return sum(bo.applied_count for bo in self.sim.base_objects)


def build_encode_plan(
    sim: Simulation, wave: list[bytes]
) -> BatchEncodePlan | None:
    """Pre-encode a write wave, when a stacked pass actually saves work.

    Only MDS matrix codes (bounded block domain, ``encode_batch`` as one
    stacked multiplication) benefit; replication's "encode" is a copy and
    rateless schemes have no fixed codeword to pre-encode, so those setups
    keep lazy per-oracle encoding (identical measurements either way).
    Shared by this runner and the :mod:`~repro.workloads.patterns` builders,
    which know their write values at construction time too.
    """
    if len(wave) < 2:
        return None  # nothing to share a pass across
    if not isinstance(sim.scheme, MDSCodingScheme):
        return None
    return BatchEncodePlan(sim.scheme, wave, range(sim.scheme.n))


def _build_encode_plan(
    sim: Simulation, values: dict[str, list[bytes]]
) -> BatchEncodePlan | None:
    wave = [value for per_writer in values.values() for value in per_writer]
    return build_encode_plan(sim, wave)


def run_register_workload(
    protocol_cls: Type[RegisterProtocol],
    setup: RegisterSetup,
    spec: WorkloadSpec | None = None,
    scheduler: Scheduler | None = None,
    max_steps: int = 400_000,
    keep_series: bool = False,
    keep_events: bool = True,
    require_quiescence: bool = True,
    configure: Callable[[Simulation, Scheduler], Scheduler] | None = None,
    prime_encodes: bool = True,
    share_decodes: bool = True,
    audit_storage_every: int = 0,
) -> WorkloadResult:
    """Run ``spec`` against a fresh register and measure storage.

    This is the experiment primitive behind every benchmark and sweep: it
    instantiates ``protocol_cls`` over ``setup``'s ``n = 2f + k`` simulated
    base objects, enqueues ``spec``'s writers and readers (the paper's
    concurrency parameter ``c`` equals ``spec.writers`` — each client keeps
    at most one write outstanding), drives the scheduler to quiescence, and
    returns a :class:`WorkloadResult` with the Definition 2 / Definition 6
    storage measurements tracked at every action.

    ``configure`` may wrap the scheduler (e.g. in a
    :class:`~repro.sim.failures.FailurePlan`) after clients are set up.
    ``require_quiescence`` raises :class:`SchedulerExhausted` if the budget
    runs out first — which, for fair schedulers and FW-terminating
    registers, indicates a liveness bug worth failing loudly on.
    ``prime_encodes`` (default on) batches the whole write wave through one
    :class:`~repro.coding.oracles.BatchEncodePlan` stacked encode pass;
    ``share_decodes`` (default on) lets readers assembling the same block
    set share one stacked decode pass through a
    :class:`~repro.coding.oracles.DecodeShareCache`. Both are optimisations
    only and never change any measurement. ``audit_storage_every = N``
    cross-checks the incremental storage ledger against the full-walk
    reference meter every ``N`` actions (CI smoke runs use this).
    """
    spec = spec or WorkloadSpec()
    scheduler = scheduler or FairScheduler()
    protocol = protocol_cls(setup)
    sim = Simulation(protocol, keep_events=keep_events)

    values = spec.write_values(setup)
    if prime_encodes:
        sim.encode_plan = _build_encode_plan(sim, values)
    if share_decodes:
        sim.decode_cache = DecodeShareCache(sim.scheme)
    for index in range(spec.writers):
        client = sim.add_client(writer_name(index))
        for value in values[writer_name(index)]:
            client.enqueue_write(value)
    for index in range(spec.readers):
        client = sim.add_client(reader_name(index))
        for _ in range(spec.reads_per_reader):
            client.enqueue_read()

    if configure is not None:
        scheduler = configure(sim, scheduler)

    meter = StorageMeter(sim)
    tracker = PeakTracker(
        meter, keep_series=keep_series, audit_every=audit_storage_every
    )
    run = sim.run(scheduler, max_steps=max_steps, on_action=tracker)
    if require_quiescence and run.exhausted:
        raise SchedulerExhausted(
            f"{protocol.name}: {max_steps} steps without quiescence "
            f"({spec.writers} writers, {spec.readers} readers)"
        )
    return WorkloadResult(
        sim=sim,
        run=run,
        peak_storage_bits=tracker.peak_bits,
        peak_bo_state_bits=tracker.peak_bo_only_bits,
        final_bo_state_bits=meter.bo_only_cost_bits(),
        spec=spec,
        series=tracker.series,
    )
