"""Workload generation and the experiment runner."""

from repro.workloads.generators import (
    WorkloadSpec,
    make_value,
    reader_name,
    writer_name,
)
from repro.workloads.fuzz import FuzzFailure, FuzzResult, fuzz_register
from repro.workloads.patterns import (
    PatternRun,
    churn,
    read_heavy,
    staggered_writers,
)
from repro.workloads.runner import (
    WorkloadResult,
    build_encode_plan,
    run_register_workload,
)

__all__ = [
    "FuzzFailure",
    "FuzzResult",
    "PatternRun",
    "WorkloadResult",
    "WorkloadSpec",
    "build_encode_plan",
    "churn",
    "fuzz_register",
    "make_value",
    "read_heavy",
    "reader_name",
    "run_register_workload",
    "staggered_writers",
    "writer_name",
]
