"""Workload generation and the experiment runner."""

from repro.workloads.generators import (
    KEY_SKEWS,
    WorkloadSpec,
    cumulative_weights,
    hotspot_weights,
    make_value,
    reader_name,
    sample_keys,
    skew_weights,
    uniform_weights,
    unit_interval,
    writer_name,
    zipf_weights,
)
from repro.workloads.fuzz import FuzzFailure, FuzzResult, fuzz_register
from repro.workloads.patterns import (
    PatternRun,
    churn,
    read_heavy,
    staggered_writers,
)
from repro.workloads.runner import (
    WorkloadResult,
    build_encode_plan,
    run_register_workload,
)

__all__ = [
    "FuzzFailure",
    "FuzzResult",
    "KEY_SKEWS",
    "PatternRun",
    "WorkloadResult",
    "WorkloadSpec",
    "build_encode_plan",
    "churn",
    "cumulative_weights",
    "fuzz_register",
    "hotspot_weights",
    "make_value",
    "read_heavy",
    "reader_name",
    "run_register_workload",
    "sample_keys",
    "skew_weights",
    "staggered_writers",
    "uniform_weights",
    "unit_interval",
    "writer_name",
    "zipf_weights",
]
