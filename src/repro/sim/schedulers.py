"""Schedulers: the paper's "environment".

A scheduler picks the next enabled action. Three non-adversarial policies
live here; the paper's freezing adversary Ad (Definition 7) lives in
:mod:`repro.lowerbound.adversary` and plugs into the same interface.

* :class:`FairScheduler` produces *fair runs* (Appendix A): every pending
  RMW on a live object is eventually applied and delivered, and every
  runnable client is eventually stepped. It rotates between the three action
  categories and serves each category FIFO.
* :class:`RandomScheduler` picks uniformly among enabled actions from a
  seeded RNG. Random runs are fair with probability 1 and are the fuzzing
  workhorse for the consistency checkers.
* :class:`SequentialScheduler` runs one client's outstanding operation to
  completion before touching another client — it generates sequential
  histories for sanity baselines.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.sim.actions import Action, ActionKind

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.kernel import Simulation


class Scheduler(ABC):
    """Strategy interface: choose the next enabled action, or ``None``."""

    @abstractmethod
    def next_action(self, sim: "Simulation") -> Action | None:
        """Return the next action to execute, or ``None`` when quiescent."""


class FairScheduler(Scheduler):
    """Round-robin over action categories, FIFO within each.

    Rotating categories guarantees that neither client steps nor memory
    actions can starve the other; FIFO within a category guarantees no
    individual RMW or client starves within it.
    """

    _CATEGORIES = (ActionKind.APPLY, ActionKind.DELIVER, ActionKind.STEP_CLIENT)

    def __init__(self) -> None:
        self._rotation = 0
        self._client_rotation: dict[str, int] = {}
        self._step_counter = 0

    def next_action(self, sim: "Simulation") -> Action | None:
        for offset in range(len(self._CATEGORIES)):
            category = self._CATEGORIES[
                (self._rotation + offset) % len(self._CATEGORIES)
            ]
            action = self._pick(sim, category)
            if action is not None:
                self._rotation = (
                    self._rotation + offset + 1
                ) % len(self._CATEGORIES)
                return action
        return None

    def _pick(self, sim: "Simulation", category: ActionKind) -> Action | None:
        if category is ActionKind.APPLY:
            pending = sim.appliable_rmws()
            if pending:
                return Action(ActionKind.APPLY, pending[0].rmw_id)
            return None
        if category is ActionKind.DELIVER:
            applied = sim.deliverable_responses()
            if applied:
                return Action(ActionKind.DELIVER, applied[0].rmw_id)
            return None
        runnable = sim.runnable_clients()
        if not runnable:
            return None
        # Least-recently-stepped first, so every runnable client recurs.
        runnable.sort(key=lambda c: self._client_rotation.get(c.name, -1))
        chosen = runnable[0]
        self._step_counter += 1
        self._client_rotation[chosen.name] = self._step_counter
        return Action(ActionKind.STEP_CLIENT, chosen.name)


class RandomScheduler(Scheduler):
    """Uniformly random enabled action from a seeded RNG."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def next_action(self, sim: "Simulation") -> Action | None:
        actions = sim.enabled_actions()
        if not actions:
            return None
        return self.rng.choice(actions)


class ScriptedScheduler(Scheduler):
    """Replay a recorded action sequence verbatim.

    Used by the black-box replacement experiment (Definition 5): two runs
    that execute the same script are identical except for the payload bytes
    of the replaced write — provided the algorithm really is black-box.
    Replaying is sound because action targets (client names, RMW ids) are
    assigned deterministically by trigger order, which the script fixes.
    """

    def __init__(self, actions: list[Action]) -> None:
        self.actions = list(actions)
        self.position = 0

    def next_action(self, sim: "Simulation") -> Action | None:
        if self.position >= len(self.actions):
            return None
        action = self.actions[self.position]
        self.position += 1
        return action

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.actions)


class SoloClientScheduler(Scheduler):
    """Schedule only one client's actions; everyone else is frozen.

    This is the paper's "solo read" device (Lemma 1): after the cut, the
    adversary lets a single reader run while all other clients' pending
    RMWs never take effect.
    """

    def __init__(self, client_name: str) -> None:
        self.client_name = client_name

    def next_action(self, sim: "Simulation") -> Action | None:
        for rmw in sim.appliable_rmws():
            if rmw.client_name == self.client_name:
                return Action(ActionKind.APPLY, rmw.rmw_id)
        for rmw in sim.deliverable_responses():
            if rmw.client_name == self.client_name:
                return Action(ActionKind.DELIVER, rmw.rmw_id)
        client = sim.clients.get(self.client_name)
        if client is not None and client.runnable():
            return Action(ActionKind.STEP_CLIENT, self.client_name)
        return None


class SequentialScheduler(Scheduler):
    """Run each client's operation to completion before the next client.

    Produces sequential (no-concurrency) histories. Clients are served in
    name order; memory actions of the active client are served before its
    next local step so each round completes synchronously.
    """

    def next_action(self, sim: "Simulation") -> Action | None:
        active = next(
            (
                client
                for client in sorted(sim.clients.values(), key=lambda c: c.name)
                if client.current is not None and not client.crashed
            ),
            None,
        )
        if active is None:
            # Start the next queued op, if any client has one.
            for client in sorted(sim.clients.values(), key=lambda c: c.name):
                if client.runnable():
                    return Action(ActionKind.STEP_CLIENT, client.name)
            return None
        # Serve the active client's memory actions first, FIFO.
        for rmw in sim.appliable_rmws():
            if rmw.client_name == active.name:
                return Action(ActionKind.APPLY, rmw.rmw_id)
        for rmw in sim.deliverable_responses():
            if rmw.client_name == active.name:
                return Action(ActionKind.DELIVER, rmw.rmw_id)
        if active.runnable():
            return Action(ActionKind.STEP_CLIENT, active.name)
        return None  # active client blocked with nothing in flight: deadlock
