"""Schedulers: the paper's "environment".

A scheduler picks the next enabled action. Three non-adversarial policies
live here; the paper's freezing adversary Ad (Definition 7) lives in
:mod:`repro.lowerbound.adversary` and plugs into the same interface.

* :class:`FairScheduler` produces *fair runs* (Appendix A): every pending
  RMW on a live object is eventually applied and delivered, and every
  runnable client is eventually stepped. It rotates between the three action
  categories and serves each category FIFO.
* :class:`RandomScheduler` picks uniformly among enabled actions from a
  seeded RNG. Random runs are fair with probability 1 and are the fuzzing
  workhorse for the consistency checkers.
* :class:`SequentialScheduler` runs one client's outstanding operation to
  completion before touching another client — it generates sequential
  histories for sanity baselines.
"""

from __future__ import annotations

import random
import weakref
from abc import ABC, abstractmethod
from collections import deque
from typing import TYPE_CHECKING

from repro.sim.actions import Action, ActionKind

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.kernel import Simulation


class Scheduler(ABC):
    """Strategy interface: choose the next enabled action, or ``None``."""

    @abstractmethod
    def next_action(self, sim: "Simulation") -> Action | None:
        """Return the next action to execute, or ``None`` when quiescent."""


class FairScheduler(Scheduler):
    """Round-robin over action categories, FIFO within each.

    Rotating categories guarantees that neither client steps nor memory
    actions can starve the other; FIFO within a category guarantees no
    individual RMW or client starves within it.
    """

    _CATEGORIES = (ActionKind.APPLY, ActionKind.DELIVER, ActionKind.STEP_CLIENT)

    def __init__(self) -> None:
        self._rotation = 0
        # Rotation deques replace the old per-step sort over all runnable
        # clients: never-stepped clients first (in arrival order), then
        # stepped clients least-recently-stepped first. Picking scans past
        # blocked clients without reordering them — identical schedules to
        # the sort, O(skipped + 1) per pick instead of O(clients log
        # clients). The deques are per-simulation state, reset when the
        # scheduler is pointed at a different simulation (a weak sentinel,
        # so a reusable scheduler does not pin finished runs in memory).
        self._sim_ref: "weakref.ref[Simulation] | None" = None
        self._fresh: deque[str] = deque()
        self._stepped: deque[str] = deque()
        self._known: set[str] = set()

    def next_action(self, sim: "Simulation") -> Action | None:
        if self._sim_ref is None or self._sim_ref() is not sim:
            self._sim_ref = weakref.ref(sim)
            self._fresh.clear()
            self._stepped.clear()
            self._known.clear()
        for offset in range(len(self._CATEGORIES)):
            category = self._CATEGORIES[
                (self._rotation + offset) % len(self._CATEGORIES)
            ]
            action = self._pick(sim, category)
            if action is not None:
                self._rotation = (
                    self._rotation + offset + 1
                ) % len(self._CATEGORIES)
                return action
        return None

    def _pick(self, sim: "Simulation", category: ActionKind) -> Action | None:
        if category is ActionKind.APPLY:
            rmw = sim.first_appliable()
            if rmw is not None:
                return Action(ActionKind.APPLY, rmw.rmw_id)
            return None
        if category is ActionKind.DELIVER:
            rmw = sim.first_deliverable()
            if rmw is not None:
                return Action(ActionKind.DELIVER, rmw.rmw_id)
            return None
        if len(self._known) != len(sim.clients):
            for name in sim.clients:
                if name not in self._known:
                    self._known.add(name)
                    self._fresh.append(name)
        for queue in (self._fresh, self._stepped):
            crashed: list[str] = []
            chosen: str | None = None
            for name in queue:
                client = sim.clients[name]
                if client.crashed:
                    crashed.append(name)
                    continue
                if client.runnable():
                    chosen = name
                    break
            # Crashes are final, so crashed clients leave the rotation for
            # good (they stay in _known, which only guards re-admission).
            for name in crashed:
                queue.remove(name)
            if chosen is not None:
                queue.remove(chosen)
                self._stepped.append(chosen)
                return Action(ActionKind.STEP_CLIENT, chosen)
        return None


class RandomScheduler(Scheduler):
    """Uniformly random enabled action from a seeded RNG.

    Samples over category *counts* — runnable clients, appliable RMWs
    (``len(pending)``), deliverable responses — and indexes into the
    kernel's swap-remove arrays, so a draw costs O(clients) instead of
    materialising (and then discarding) the full enabled-action list with
    its two sorts. The distribution is unchanged: every enabled action is
    equally likely. The draw *sequence* for a given seed differs from the
    pre-indexed implementation (one ``randrange`` over the total instead of
    a ``choice`` over a sorted list), so runs are reproducible per seed but
    not against traces recorded before the indexed queues existed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def next_action(self, sim: "Simulation") -> Action | None:
        runnable = sim.runnable_clients()
        steps = len(runnable)
        applies = sim.appliable_count()
        delivers = sim.deliverable_count()
        total = steps + applies + delivers
        if total == 0:
            return None
        draw = self.rng.randrange(total)
        if draw < steps:
            return Action(ActionKind.STEP_CLIENT, runnable[draw].name)
        draw -= steps
        if draw < applies:
            return Action(ActionKind.APPLY, sim.appliable_nth(draw).rmw_id)
        return Action(
            ActionKind.DELIVER, sim.deliverable_nth(draw - applies).rmw_id
        )


class ScriptedScheduler(Scheduler):
    """Replay a recorded action sequence verbatim.

    Used by the black-box replacement experiment (Definition 5): two runs
    that execute the same script are identical except for the payload bytes
    of the replaced write — provided the algorithm really is black-box.
    Replaying is sound because action targets (client names, RMW ids) are
    assigned deterministically by trigger order, which the script fixes.
    """

    def __init__(self, actions: list[Action]) -> None:
        self.actions = list(actions)
        self.position = 0

    def next_action(self, sim: "Simulation") -> Action | None:
        if self.position >= len(self.actions):
            return None
        action = self.actions[self.position]
        self.position += 1
        return action

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.actions)


class SoloClientScheduler(Scheduler):
    """Schedule only one client's actions; everyone else is frozen.

    This is the paper's "solo read" device (Lemma 1): after the cut, the
    adversary lets a single reader run while all other clients' pending
    RMWs never take effect.
    """

    def __init__(self, client_name: str) -> None:
        self.client_name = client_name

    def next_action(self, sim: "Simulation") -> Action | None:
        # Per-client kernel indices: O(own work), independent of how many
        # other clients' RMWs the adversary left frozen in the queues.
        rmw = sim.first_appliable_for(self.client_name)
        if rmw is not None:
            return Action(ActionKind.APPLY, rmw.rmw_id)
        applied = sim.first_deliverable_for(self.client_name)
        if applied is not None:
            return Action(ActionKind.DELIVER, applied.rmw_id)
        client = sim.clients.get(self.client_name)
        if client is not None and client.runnable():
            return Action(ActionKind.STEP_CLIENT, self.client_name)
        return None


class SequentialScheduler(Scheduler):
    """Run each client's operation to completion before the next client.

    Produces sequential (no-concurrency) histories. Clients are served in
    name order; memory actions of the active client are served before its
    next local step so each round completes synchronously.
    """

    def __init__(self) -> None:
        self._sim_ref: "weakref.ref[Simulation] | None" = None
        self._sorted_names: list[str] = []

    def next_action(self, sim: "Simulation") -> Action | None:
        # Clients are only ever added (never renamed or removed), so the
        # sorted-name cache refreshes on growth — or on a new simulation
        # (weak sentinel: reuse must not pin the previous run in memory).
        if (
            self._sim_ref is None
            or self._sim_ref() is not sim
            or len(self._sorted_names) != len(sim.clients)
        ):
            self._sim_ref = weakref.ref(sim)
            self._sorted_names = sorted(sim.clients)
        active = next(
            (
                client
                for client in map(sim.clients.__getitem__, self._sorted_names)
                if client.current is not None and not client.crashed
            ),
            None,
        )
        if active is None:
            # Start the next queued op, if any client has one.
            for name in self._sorted_names:
                if sim.clients[name].runnable():
                    return Action(ActionKind.STEP_CLIENT, name)
            return None
        # Serve the active client's memory actions first, FIFO — per-client
        # kernel indices make each probe O(own work).
        rmw = sim.first_appliable_for(active.name)
        if rmw is not None:
            return Action(ActionKind.APPLY, rmw.rmw_id)
        applied = sim.first_deliverable_for(active.name)
        if applied is not None:
            return Action(ActionKind.DELIVER, applied.rmw_id)
        if active.runnable():
            return Action(ActionKind.STEP_CLIENT, active.name)
        return None  # active client blocked with nothing in flight: deadlock
