"""Schedulable actions and protocol yield-points.

A protocol coroutine interacts with the kernel in exactly two ways:

* it calls :meth:`OperationContext.trigger` to register a pending RMW on a
  base object (non-blocking — the RMW takes effect only when a scheduler
  applies it);
* it ``yield``s a :class:`WaitResponses` to suspend until enough of its
  RMWs have responded (or a bare :class:`Pause` to let time pass).

Schedulers, in turn, pick from the kernel's enabled :class:`Action` set:
step a client coroutine, apply a pending RMW, or deliver an applied RMW's
response. ``APPLY_DELIVER`` performs apply and delivery atomically — the
paper's adversary Ad uses exactly that shape in rule 1 of Definition 7.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class RMWStatus(enum.Enum):
    """Lifecycle of a triggered RMW."""

    PENDING = "pending"        # triggered, has not taken effect
    APPLIED = "applied"        # took effect; response not yet delivered
    DELIVERED = "delivered"    # response reached the client
    DROPPED = "dropped"        # base object crashed before taking effect


@dataclass
class RMWHandle:
    """Client-side view of one triggered RMW."""

    rmw_id: int
    bo_id: int
    op_uid: int
    label: str
    status: RMWStatus = RMWStatus.PENDING
    response: Any = None

    @property
    def responded(self) -> bool:
        return self.status is RMWStatus.DELIVERED


@dataclass
class WaitResponses:
    """Yielded by a protocol: resume once ``need`` handles have responded."""

    handles: list[RMWHandle]
    need: int

    def satisfied(self) -> bool:
        return sum(1 for handle in self.handles if handle.responded) >= self.need

    def unsatisfiable(self) -> bool:
        """True when too many RMWs were dropped for ``need`` to be reached."""
        live = sum(
            1 for handle in self.handles if handle.status is not RMWStatus.DROPPED
        )
        return live < self.need


@dataclass
class Pause:
    """Yielded by a protocol to cede control for one scheduling step."""

    def satisfied(self) -> bool:
        return True

    def unsatisfiable(self) -> bool:
        return False


class ActionKind(enum.Enum):
    """What a scheduler may do next."""

    STEP_CLIENT = "step"
    APPLY = "apply"
    DELIVER = "deliver"
    APPLY_DELIVER = "apply+deliver"


@dataclass(frozen=True)
class Action:
    """One schedulable kernel action.

    ``target`` is a client name for ``STEP_CLIENT`` and an ``rmw_id``
    otherwise.
    """

    kind: ActionKind
    target: Any

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Action({self.kind.value}, {self.target})"


@dataclass
class PendingRMW:
    """Kernel record of a triggered-but-not-applied RMW.

    ``args`` is the *visible* parameter structure of the RMW (the paper
    counts blocks riding in pending RMW parameters as client state, so the
    cost meter walks ``args``). ``fn(state, args) -> (new_state, response)``
    must be a pure function.
    """

    rmw_id: int
    bo_id: int
    client_name: str
    op_uid: int
    fn: Any
    args: Any
    label: str
    handle: RMWHandle
    trigger_time: int = 0


@dataclass
class AppliedRMW:
    """Kernel record of an applied RMW whose response is undelivered.

    Until delivery the response is part of the *base object's* state
    ("all the responses of pending RMWs that took effect on it"), so the
    cost meter walks ``response``.
    """

    rmw_id: int
    bo_id: int
    client_name: str
    op_uid: int
    response: Any
    handle: RMWHandle
    apply_time: int = 0
    extra: dict = field(default_factory=dict)
