"""The simulation kernel: asynchronous fault-prone shared memory.

The kernel realises the paper's model (Section 2) exactly:

* a set ``B`` of ``n`` base objects supporting atomic RMW, of which any
  ``f`` may crash;
* an unbounded set of clients, any number of which may crash;
* an environment (here: a :class:`~repro.sim.schedulers.Scheduler`) that
  decides, action by action, which enabled transition happens next —
  stepping a client's local code, letting a pending RMW take effect, or
  delivering an applied RMW's response.

Because *triggering* an RMW and the RMW *taking effect* are separate
transitions, a scheduler can hold any RMW pending indefinitely; because
apply and delivery are also separate, responses can lag arbitrarily. This is
precisely the freedom the paper's adversary Ad (Definition 7) exploits, and
the freedom a fair scheduler must eventually resolve (Appendix A's fairness:
every RMW by a correct client on a correct object eventually responds, and
every correct client gets infinitely many opportunities to step).

Granularity note: one ``STEP_CLIENT`` action advances a protocol coroutine
to its next ``yield``, during which it may trigger several RMWs (the
pseudo-code's ``|| for`` burst). Splitting the burst further would not change
any bound: triggers have no shared-memory effect until applied, and the
scheduler fully controls applies.

Performance note: the kernel maintains *indexed queues* so the schedulers'
hot paths are O(1) (amortised) per action instead of rebuilding sorted
action lists each step. Two invariants make this cheap:

* ``pending`` only ever holds RMWs on **live** objects (a base-object crash
  drops its pending RMWs, and triggers on crashed objects are dropped at
  registration), and rmw ids are assigned monotonically — so the
  insertion-ordered dict *is* the oldest-first appliable queue;
* ``applied`` is keyed per base object and per client, with a lazy min-heap
  over rmw ids for the globally oldest deliverable response and a
  swap-remove array for O(1) uniform sampling.

Mutation is funnelled through exactly four transitions — ``register_rmw``,
``apply_rmw``, ``deliver_response``, and the ``crash_*`` pair — each of
which notifies registered :class:`KernelListener` hooks. The incremental
storage ledger (:class:`~repro.storage.cost.StorageLedger`) rides these
hooks to keep Definition 2 bits as a delta ledger rather than re-walking
the whole system state per action.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ParameterError, ProtocolError
from repro.sim.actions import (
    Action,
    ActionKind,
    AppliedRMW,
    Pause,
    PendingRMW,
    RMWHandle,
    RMWStatus,
    WaitResponses,
)
from repro.sim.base_object import BaseObject
from repro.sim.client import Client, OperationContext
from repro.sim.trace import EventKind, OpKind, Trace

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.registers.base import RegisterProtocol
    from repro.sim.schedulers import Scheduler
    from repro.storage.cost import StorageLedger


class KernelListener:
    """Observer of the kernel's state-mutating transitions.

    Subclass and override the hooks you need; every hook is a no-op by
    default. Listeners are notified *after* the kernel's own bookkeeping,
    so the simulation state they observe is the post-transition state.
    The incremental storage ledger is the canonical listener; tests attach
    additional ones to assert transition-level invariants.
    """

    def on_trigger(self, rmw: PendingRMW) -> None:
        """``rmw`` was registered as pending (its object is live)."""

    def on_apply(self, rmw: AppliedRMW) -> None:
        """``rmw`` took effect; its object's state is already updated."""

    def on_deliver(self, rmw: AppliedRMW) -> None:
        """``rmw`` left the applied set (delivered, or dropped because its
        client crashed) — either way its response left storage."""

    def on_bo_crash(
        self,
        bo_id: int,
        dropped_pending: list[PendingRMW],
        dropped_applied: list[AppliedRMW],
    ) -> None:
        """Base object ``bo_id`` crashed, dropping the listed RMWs."""

    def on_client_crash(self, name: str) -> None:
        """Client ``name`` crashed (no storage effect under Definition 2)."""


@dataclass
class RunResult:
    """Outcome of :meth:`Simulation.run`."""

    steps: int
    quiescent: bool
    stopped_by_predicate: bool

    @property
    def exhausted(self) -> bool:
        return not self.quiescent and not self.stopped_by_predicate


class Simulation:
    """One run of a register protocol over fault-prone shared memory."""

    def __init__(self, protocol: "RegisterProtocol", strict_waits: bool = True,
                 keep_events: bool = True) -> None:
        self.protocol = protocol
        self.scheme = protocol.scheme
        self.strict_waits = strict_waits
        self.time = 0
        self.trace = Trace(keep_events=keep_events)
        self.base_objects = [
            BaseObject(bo_id, protocol.initial_bo_state(bo_id))
            for bo_id in range(protocol.n)
        ]
        self.clients: dict[str, Client] = {}
        self.pending: dict[int, PendingRMW] = {}
        self.applied: dict[int, AppliedRMW] = {}
        self._next_rmw_id = 0
        self._next_op_uid = 0
        # Indexed queues (see the module docstring's performance note).
        self._pending_by_bo: dict[int, dict[int, PendingRMW]] = {}
        self._pending_by_client: dict[str, dict[int, PendingRMW]] = {}
        self._applied_by_bo: dict[int, dict[int, AppliedRMW]] = {}
        self._applied_by_client: dict[str, dict[int, AppliedRMW]] = {}
        #: Lazy min-heap of applied rmw ids (settled/undeliverable entries
        #: are discarded when they surface at the top).
        self._applied_heap: list[int] = []
        # Swap-remove arrays + position maps: O(1) add/discard/uniform-sample
        # over the appliable and deliverable sets (RandomScheduler's path).
        self._pending_arr: list[int] = []
        self._pending_pos: dict[int, int] = {}
        self._deliverable_arr: list[int] = []
        self._deliverable_pos: dict[int, int] = {}
        self._listeners: list[KernelListener] = []
        self._storage_ledger: "StorageLedger | None" = None
        #: Optional :class:`~repro.coding.oracles.BatchEncodePlan`: when set
        #: (by a workload runner that knows the write wave up front), every
        #: freshly created encode oracle is warmed from its one stacked
        #: encode pass instead of encoding lazily. Purely a cache warm-up —
        #: payloads, tags, and measurements are identical either way.
        self.encode_plan = None
        #: Optional :class:`~repro.coding.oracles.DecodeShareCache`: when set
        #: (by a workload runner), readers that assemble the same block set
        #: share one stacked decode pass instead of decoding per read.
        #: Also a pure cache — decoded values are identical either way.
        self.decode_cache = None

    # ----------------------------------------------------------- listeners

    def add_listener(self, listener: KernelListener) -> None:
        """Attach a transition observer (see :class:`KernelListener`)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: KernelListener) -> None:
        self._listeners.remove(listener)

    @property
    def storage_ledger(self) -> "StorageLedger":
        """The shared incremental storage ledger (created on first use).

        Creating it seeds the ledger from the current state with one full
        walk; from then on the kernel's transition hooks keep it current,
        so every :class:`~repro.storage.cost.StorageMeter` read is O(1)
        regardless of how much protocol state has accreted.
        """
        if self._storage_ledger is None:
            from repro.storage.cost import StorageLedger

            self._storage_ledger = StorageLedger(self)
            self._listeners.append(self._storage_ledger)
        return self._storage_ledger

    # -------------------------------------------------- swap-remove arrays

    @staticmethod
    def _arr_add(arr: list[int], pos: dict[int, int], rmw_id: int) -> None:
        pos[rmw_id] = len(arr)
        arr.append(rmw_id)

    @staticmethod
    def _arr_discard(arr: list[int], pos: dict[int, int], rmw_id: int) -> None:
        index = pos.pop(rmw_id, None)
        if index is None:
            return
        last = arr.pop()
        if last != rmw_id:
            arr[index] = last
            pos[last] = index

    # ------------------------------------------------------------- clients

    def add_client(self, name: str) -> Client:
        if name in self.clients:
            raise ParameterError(f"duplicate client name {name!r}")
        client = Client(name, self)
        self.clients[name] = client
        return client

    def client(self, name: str) -> Client:
        return self.clients[name]

    # ------------------------------------------------------------ triggers

    def register_rmw(
        self,
        ctx: OperationContext,
        bo_id: int,
        fn: Any,
        args: Any,
        label: str,
    ) -> RMWHandle:
        """Record a pending RMW (called via ``OperationContext.trigger``)."""
        if not 0 <= bo_id < len(self.base_objects):
            raise ProtocolError(f"trigger on unknown base object {bo_id}")
        rmw_id = self._next_rmw_id
        self._next_rmw_id += 1
        handle = RMWHandle(
            rmw_id=rmw_id,
            bo_id=bo_id,
            op_uid=ctx.op_uid,
            label=label,
        )
        if self.base_objects[bo_id].crashed:
            # Triggering on a crashed object is allowed; it just never responds.
            handle.status = RMWStatus.DROPPED
            self.trace.event(
                self.time, EventKind.DROP, rmw=rmw_id, bo=bo_id, reason="crashed"
            )
            return handle
        rmw = PendingRMW(
            rmw_id=rmw_id,
            bo_id=bo_id,
            client_name=ctx.client.name,
            op_uid=ctx.op_uid,
            fn=fn,
            args=args,
            label=label,
            handle=handle,
            trigger_time=self.time,
        )
        self.pending[rmw_id] = rmw
        self._pending_by_bo.setdefault(bo_id, {})[rmw_id] = rmw
        self._pending_by_client.setdefault(rmw.client_name, {})[rmw_id] = rmw
        self._arr_add(self._pending_arr, self._pending_pos, rmw_id)
        self.trace.event(
            self.time, EventKind.TRIGGER, rmw=rmw_id, bo=bo_id,
            client=ctx.client.name, label=label,
        )
        for listener in self._listeners:
            listener.on_trigger(rmw)
        return handle

    def _unindex_pending(self, rmw: PendingRMW) -> None:
        self._pending_by_bo[rmw.bo_id].pop(rmw.rmw_id, None)
        self._pending_by_client[rmw.client_name].pop(rmw.rmw_id, None)
        self._arr_discard(self._pending_arr, self._pending_pos, rmw.rmw_id)

    def _unindex_applied(self, rmw: AppliedRMW) -> None:
        self._applied_by_bo[rmw.bo_id].pop(rmw.rmw_id, None)
        self._applied_by_client[rmw.client_name].pop(rmw.rmw_id, None)
        self._arr_discard(
            self._deliverable_arr, self._deliverable_pos, rmw.rmw_id
        )

    # ----------------------------------------------------- enabled actions

    def runnable_clients(self) -> list[Client]:
        return [client for client in self.clients.values() if client.runnable()]

    def appliable_rmws(self) -> list[PendingRMW]:
        """Pending RMWs whose base object is live, oldest first.

        ``pending`` only ever holds RMWs on live objects (crashes drop
        theirs, triggers on crashed objects never register) and rmw ids are
        monotone, so the insertion-ordered dict is already this list — no
        filter, no sort.
        """
        return list(self.pending.values())

    def deliverable_responses(self) -> list[AppliedRMW]:
        """Applied RMWs whose client is live, oldest first."""
        return [self.applied[rmw_id] for rmw_id in sorted(self._deliverable_arr)]

    # O(1)-ish accessors used by the schedulers' hot paths.

    def first_appliable(self) -> PendingRMW | None:
        """Oldest pending RMW (its object is live by invariant), if any."""
        return next(iter(self.pending.values()), None)

    def first_appliable_for(self, client_name: str) -> PendingRMW | None:
        """Oldest pending RMW triggered by ``client_name``, if any."""
        per_client = self._pending_by_client.get(client_name)
        if not per_client:
            return None
        return next(iter(per_client.values()))

    def first_deliverable(self) -> AppliedRMW | None:
        """Oldest applied RMW whose client is live, if any.

        Amortised O(log) via the lazy heap: settled entries and entries of
        crashed clients (permanently undeliverable — crashes are final) are
        discarded as they surface.
        """
        heap = self._applied_heap
        while heap:
            rmw = self.applied.get(heap[0])
            if rmw is None or self.clients[rmw.client_name].crashed:
                heapq.heappop(heap)
                continue
            return rmw
        return None

    def first_deliverable_for(self, client_name: str) -> AppliedRMW | None:
        """Oldest applied RMW awaiting delivery to live ``client_name``."""
        client = self.clients.get(client_name)
        if client is None or client.crashed:
            return None
        per_client = self._applied_by_client.get(client_name)
        if not per_client:
            return None
        # Apply order need not be rmw-id order; min over own work only.
        return per_client[min(per_client)]

    def appliable_count(self) -> int:
        return len(self.pending)

    def deliverable_count(self) -> int:
        return len(self._deliverable_arr)

    def appliable_nth(self, index: int) -> PendingRMW:
        """The ``index``-th appliable RMW in arbitrary (stable) order —
        uniform-sampling support; ordering is *not* oldest-first."""
        return self.pending[self._pending_arr[index]]

    def deliverable_nth(self, index: int) -> AppliedRMW:
        """The ``index``-th deliverable response in arbitrary order."""
        return self.applied[self._deliverable_arr[index]]

    def enabled_actions(self) -> list[Action]:
        actions = [
            Action(ActionKind.STEP_CLIENT, client.name)
            for client in self.runnable_clients()
        ]
        actions.extend(
            Action(ActionKind.APPLY, rmw.rmw_id) for rmw in self.appliable_rmws()
        )
        actions.extend(
            Action(ActionKind.DELIVER, rmw.rmw_id)
            for rmw in self.deliverable_responses()
        )
        return actions

    def quiescent(self) -> bool:
        if self.pending or self._deliverable_arr:
            return False
        return not any(client.runnable() for client in self.clients.values())

    # ------------------------------------------------------------- actions

    def execute(self, action: Action) -> None:
        """Perform one schedulable action and advance time."""
        if action.kind is ActionKind.STEP_CLIENT:
            self.step_client(self.clients[action.target])
        elif action.kind is ActionKind.APPLY:
            self.apply_rmw(action.target)
        elif action.kind is ActionKind.DELIVER:
            self.deliver_response(action.target)
        elif action.kind is ActionKind.APPLY_DELIVER:
            self.apply_rmw(action.target)
            self.deliver_response(action.target)
        else:  # pragma: no cover - exhaustive enum
            raise ParameterError(f"unknown action {action}")

    def step_client(self, client: Client) -> None:
        """Advance a client's coroutine to its next yield (or start an op)."""
        self.time += 1
        if client.crashed:
            raise ProtocolError(f"stepping crashed client {client.name}")
        if client.current is None:
            if not client.queue:
                return
            queued = client.queue.popleft()
            ctx = OperationContext(
                kernel=self,
                client=client,
                op_uid=self._next_op_uid,
                kind=queued.kind,
                value=queued.value,
            )
            self._next_op_uid += 1
            client.current = ctx
            self.trace.record_invoke(
                self.time, ctx.op_uid, client.name, queued.kind, queued.value
            )
            if queued.kind is OpKind.WRITE:
                ctx.generator = self.protocol.write_gen(ctx, queued.value)
            else:
                ctx.generator = self.protocol.read_gen(ctx)
        ctx = client.current
        waiting = ctx.waiting
        if isinstance(waiting, WaitResponses) and not waiting.satisfied():
            if self.strict_waits and waiting.unsatisfiable():
                raise ProtocolError(
                    f"client {client.name} waits for {waiting.need} responses "
                    "that can never arrive (too many crashes)"
                )
            return  # not actually runnable; benign no-op for lenient schedulers
        ctx.waiting = None
        try:
            yielded = ctx.generator.send(None)
        except StopIteration as stop:
            self._complete_op(client, ctx, stop.value)
            return
        if isinstance(yielded, (WaitResponses, Pause)):
            ctx.waiting = yielded
        else:
            raise ProtocolError(
                f"protocol yielded {type(yielded).__name__}; expected "
                "WaitResponses or Pause"
            )

    def _complete_op(self, client: Client, ctx: OperationContext, result: Any) -> None:
        ctx.expire_oracles()
        self.trace.record_return(self.time, ctx.op_uid, result)
        client.current = None
        client.completed_ops += 1

    def apply_rmw(self, rmw_id: int) -> None:
        """Let a pending RMW take effect on its base object."""
        self.time += 1
        rmw = self.pending.pop(rmw_id, None)
        if rmw is None:
            raise ProtocolError(f"apply of unknown/settled RMW {rmw_id}")
        self._unindex_pending(rmw)
        base_object = self.base_objects[rmw.bo_id]
        response = base_object.apply(rmw.fn, rmw.args)
        rmw.handle.status = RMWStatus.APPLIED
        applied = AppliedRMW(
            rmw_id=rmw_id,
            bo_id=rmw.bo_id,
            client_name=rmw.client_name,
            op_uid=rmw.op_uid,
            response=response,
            handle=rmw.handle,
            apply_time=self.time,
        )
        self.applied[rmw_id] = applied
        self._applied_by_bo.setdefault(rmw.bo_id, {})[rmw_id] = applied
        self._applied_by_client.setdefault(rmw.client_name, {})[rmw_id] = applied
        heapq.heappush(self._applied_heap, rmw_id)
        if not self.clients[rmw.client_name].crashed:
            self._arr_add(self._deliverable_arr, self._deliverable_pos, rmw_id)
        self.trace.event(
            self.time, EventKind.APPLY, rmw=rmw_id, bo=rmw.bo_id,
            client=rmw.client_name, label=rmw.label,
        )
        for listener in self._listeners:
            listener.on_apply(applied)

    def deliver_response(self, rmw_id: int) -> None:
        """Deliver an applied RMW's response to its client."""
        self.time += 1
        rmw = self.applied.pop(rmw_id, None)
        if rmw is None:
            raise ProtocolError(f"delivery of unknown/settled RMW {rmw_id}")
        self._unindex_applied(rmw)
        client = self.clients[rmw.client_name]
        if client.crashed:
            rmw.handle.status = RMWStatus.DROPPED
            self.trace.event(
                self.time, EventKind.DROP, rmw=rmw_id, reason="client-crashed"
            )
        else:
            rmw.handle.response = rmw.response
            rmw.handle.status = RMWStatus.DELIVERED
            self.trace.event(
                self.time, EventKind.DELIVER, rmw=rmw_id, client=rmw.client_name
            )
        # Delivered or dropped, the response left storage either way.
        for listener in self._listeners:
            listener.on_deliver(rmw)

    # -------------------------------------------------------------- crashes

    def crash_base_object(self, bo_id: int) -> None:
        """Crash a base object; its pending work is dropped.

        O(own work): the per-object indices hand over exactly the RMWs that
        involve ``bo_id`` — no scan of the global queues.
        """
        self.time += 1
        base_object = self.base_objects[bo_id]
        base_object.crash()
        dropped_pending = list(self._pending_by_bo.pop(bo_id, {}).values())
        for rmw in dropped_pending:
            del self.pending[rmw.rmw_id]
            self._pending_by_client[rmw.client_name].pop(rmw.rmw_id, None)
            self._arr_discard(self._pending_arr, self._pending_pos, rmw.rmw_id)
            rmw.handle.status = RMWStatus.DROPPED
        dropped_applied = list(self._applied_by_bo.pop(bo_id, {}).values())
        for rmw in dropped_applied:
            del self.applied[rmw.rmw_id]
            self._applied_by_client[rmw.client_name].pop(rmw.rmw_id, None)
            self._arr_discard(
                self._deliverable_arr, self._deliverable_pos, rmw.rmw_id
            )
            rmw.handle.status = RMWStatus.DROPPED
        self.trace.event(self.time, EventKind.CRASH_BO, bo=bo_id)
        for listener in self._listeners:
            listener.on_bo_crash(bo_id, dropped_pending, dropped_applied)

    def crash_client(self, name: str) -> None:
        """Crash a client. Its already-triggered RMWs may still take effect."""
        self.time += 1
        self.clients[name].crash()
        # Its applied-but-undelivered responses stay in storage (they sit at
        # the base objects) but can never be delivered: drop them from the
        # deliverable sampling set, O(own work) via the per-client index.
        for rmw_id in self._applied_by_client.get(name, {}):
            self._arr_discard(self._deliverable_arr, self._deliverable_pos, rmw_id)
        self.trace.event(self.time, EventKind.CRASH_CLIENT, client=name)
        for listener in self._listeners:
            listener.on_client_crash(name)

    def crashed_base_objects(self) -> int:
        return sum(1 for bo in self.base_objects if bo.crashed)

    # ------------------------------------------------------------------ run

    def run(
        self,
        scheduler: "Scheduler",
        max_steps: int = 200_000,
        until: Callable[["Simulation"], bool] | None = None,
        on_action: Callable[["Simulation", Action], None] | None = None,
    ) -> RunResult:
        """Drive the simulation with ``scheduler``.

        Stops when the scheduler reports quiescence (returns ``None``), the
        ``until`` predicate fires, or ``max_steps`` actions have executed.
        """
        steps = 0
        while steps < max_steps:
            if until is not None and until(self):
                return RunResult(steps, quiescent=False, stopped_by_predicate=True)
            action = scheduler.next_action(self)
            if action is None:
                return RunResult(steps, quiescent=True, stopped_by_predicate=False)
            self.execute(action)
            if on_action is not None:
                on_action(self, action)
            steps += 1
        return RunResult(steps, quiescent=False, stopped_by_predicate=False)
