"""The simulation kernel: asynchronous fault-prone shared memory.

The kernel realises the paper's model (Section 2) exactly:

* a set ``B`` of ``n`` base objects supporting atomic RMW, of which any
  ``f`` may crash;
* an unbounded set of clients, any number of which may crash;
* an environment (here: a :class:`~repro.sim.schedulers.Scheduler`) that
  decides, action by action, which enabled transition happens next —
  stepping a client's local code, letting a pending RMW take effect, or
  delivering an applied RMW's response.

Because *triggering* an RMW and the RMW *taking effect* are separate
transitions, a scheduler can hold any RMW pending indefinitely; because
apply and delivery are also separate, responses can lag arbitrarily. This is
precisely the freedom the paper's adversary Ad (Definition 7) exploits, and
the freedom a fair scheduler must eventually resolve (Appendix A's fairness:
every RMW by a correct client on a correct object eventually responds, and
every correct client gets infinitely many opportunities to step).

Granularity note: one ``STEP_CLIENT`` action advances a protocol coroutine
to its next ``yield``, during which it may trigger several RMWs (the
pseudo-code's ``|| for`` burst). Splitting the burst further would not change
any bound: triggers have no shared-memory effect until applied, and the
scheduler fully controls applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ParameterError, ProtocolError
from repro.sim.actions import (
    Action,
    ActionKind,
    AppliedRMW,
    Pause,
    PendingRMW,
    RMWHandle,
    RMWStatus,
    WaitResponses,
)
from repro.sim.base_object import BaseObject
from repro.sim.client import Client, OperationContext
from repro.sim.trace import EventKind, OpKind, Trace

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.registers.base import RegisterProtocol
    from repro.sim.schedulers import Scheduler


@dataclass
class RunResult:
    """Outcome of :meth:`Simulation.run`."""

    steps: int
    quiescent: bool
    stopped_by_predicate: bool

    @property
    def exhausted(self) -> bool:
        return not self.quiescent and not self.stopped_by_predicate


class Simulation:
    """One run of a register protocol over fault-prone shared memory."""

    def __init__(self, protocol: "RegisterProtocol", strict_waits: bool = True,
                 keep_events: bool = True) -> None:
        self.protocol = protocol
        self.scheme = protocol.scheme
        self.strict_waits = strict_waits
        self.time = 0
        self.trace = Trace(keep_events=keep_events)
        self.base_objects = [
            BaseObject(bo_id, protocol.initial_bo_state(bo_id))
            for bo_id in range(protocol.n)
        ]
        self.clients: dict[str, Client] = {}
        self.pending: dict[int, PendingRMW] = {}
        self.applied: dict[int, AppliedRMW] = {}
        self._next_rmw_id = 0
        self._next_op_uid = 0
        #: Optional :class:`~repro.coding.oracles.BatchEncodePlan`: when set
        #: (by a workload runner that knows the write wave up front), every
        #: freshly created encode oracle is warmed from its one stacked
        #: encode pass instead of encoding lazily. Purely a cache warm-up —
        #: payloads, tags, and measurements are identical either way.
        self.encode_plan = None

    # ------------------------------------------------------------- clients

    def add_client(self, name: str) -> Client:
        if name in self.clients:
            raise ParameterError(f"duplicate client name {name!r}")
        client = Client(name, self)
        self.clients[name] = client
        return client

    def client(self, name: str) -> Client:
        return self.clients[name]

    # ------------------------------------------------------------ triggers

    def register_rmw(
        self,
        ctx: OperationContext,
        bo_id: int,
        fn: Any,
        args: Any,
        label: str,
    ) -> RMWHandle:
        """Record a pending RMW (called via ``OperationContext.trigger``)."""
        if not 0 <= bo_id < len(self.base_objects):
            raise ProtocolError(f"trigger on unknown base object {bo_id}")
        rmw_id = self._next_rmw_id
        self._next_rmw_id += 1
        handle = RMWHandle(
            rmw_id=rmw_id,
            bo_id=bo_id,
            op_uid=ctx.op_uid,
            label=label,
        )
        if self.base_objects[bo_id].crashed:
            # Triggering on a crashed object is allowed; it just never responds.
            handle.status = RMWStatus.DROPPED
            self.trace.event(
                self.time, EventKind.DROP, rmw=rmw_id, bo=bo_id, reason="crashed"
            )
            return handle
        self.pending[rmw_id] = PendingRMW(
            rmw_id=rmw_id,
            bo_id=bo_id,
            client_name=ctx.client.name,
            op_uid=ctx.op_uid,
            fn=fn,
            args=args,
            label=label,
            handle=handle,
            trigger_time=self.time,
        )
        self.trace.event(
            self.time, EventKind.TRIGGER, rmw=rmw_id, bo=bo_id,
            client=ctx.client.name, label=label,
        )
        return handle

    # ----------------------------------------------------- enabled actions

    def runnable_clients(self) -> list[Client]:
        return [client for client in self.clients.values() if client.runnable()]

    def appliable_rmws(self) -> list[PendingRMW]:
        """Pending RMWs whose base object is live, oldest first."""
        return sorted(
            (
                rmw
                for rmw in self.pending.values()
                if not self.base_objects[rmw.bo_id].crashed
            ),
            key=lambda rmw: rmw.rmw_id,
        )

    def deliverable_responses(self) -> list[AppliedRMW]:
        """Applied RMWs whose client is live, oldest first."""
        return sorted(
            (
                rmw
                for rmw in self.applied.values()
                if not self.clients[rmw.client_name].crashed
            ),
            key=lambda rmw: rmw.rmw_id,
        )

    def enabled_actions(self) -> list[Action]:
        actions = [
            Action(ActionKind.STEP_CLIENT, client.name)
            for client in self.runnable_clients()
        ]
        actions.extend(
            Action(ActionKind.APPLY, rmw.rmw_id) for rmw in self.appliable_rmws()
        )
        actions.extend(
            Action(ActionKind.DELIVER, rmw.rmw_id)
            for rmw in self.deliverable_responses()
        )
        return actions

    def quiescent(self) -> bool:
        return not self.enabled_actions()

    # ------------------------------------------------------------- actions

    def execute(self, action: Action) -> None:
        """Perform one schedulable action and advance time."""
        if action.kind is ActionKind.STEP_CLIENT:
            self.step_client(self.clients[action.target])
        elif action.kind is ActionKind.APPLY:
            self.apply_rmw(action.target)
        elif action.kind is ActionKind.DELIVER:
            self.deliver_response(action.target)
        elif action.kind is ActionKind.APPLY_DELIVER:
            self.apply_rmw(action.target)
            self.deliver_response(action.target)
        else:  # pragma: no cover - exhaustive enum
            raise ParameterError(f"unknown action {action}")

    def step_client(self, client: Client) -> None:
        """Advance a client's coroutine to its next yield (or start an op)."""
        self.time += 1
        if client.crashed:
            raise ProtocolError(f"stepping crashed client {client.name}")
        if client.current is None:
            if not client.queue:
                return
            queued = client.queue.popleft()
            ctx = OperationContext(
                kernel=self,
                client=client,
                op_uid=self._next_op_uid,
                kind=queued.kind,
                value=queued.value,
            )
            self._next_op_uid += 1
            client.current = ctx
            self.trace.record_invoke(
                self.time, ctx.op_uid, client.name, queued.kind, queued.value
            )
            if queued.kind is OpKind.WRITE:
                ctx.generator = self.protocol.write_gen(ctx, queued.value)
            else:
                ctx.generator = self.protocol.read_gen(ctx)
        ctx = client.current
        waiting = ctx.waiting
        if isinstance(waiting, WaitResponses) and not waiting.satisfied():
            if self.strict_waits and waiting.unsatisfiable():
                raise ProtocolError(
                    f"client {client.name} waits for {waiting.need} responses "
                    "that can never arrive (too many crashes)"
                )
            return  # not actually runnable; benign no-op for lenient schedulers
        ctx.waiting = None
        try:
            yielded = ctx.generator.send(None)
        except StopIteration as stop:
            self._complete_op(client, ctx, stop.value)
            return
        if isinstance(yielded, (WaitResponses, Pause)):
            ctx.waiting = yielded
        else:
            raise ProtocolError(
                f"protocol yielded {type(yielded).__name__}; expected "
                "WaitResponses or Pause"
            )

    def _complete_op(self, client: Client, ctx: OperationContext, result: Any) -> None:
        ctx.expire_oracles()
        self.trace.record_return(self.time, ctx.op_uid, result)
        client.current = None
        client.completed_ops += 1

    def apply_rmw(self, rmw_id: int) -> None:
        """Let a pending RMW take effect on its base object."""
        self.time += 1
        rmw = self.pending.pop(rmw_id, None)
        if rmw is None:
            raise ProtocolError(f"apply of unknown/settled RMW {rmw_id}")
        base_object = self.base_objects[rmw.bo_id]
        response = base_object.apply(rmw.fn, rmw.args)
        rmw.handle.status = RMWStatus.APPLIED
        self.applied[rmw_id] = AppliedRMW(
            rmw_id=rmw_id,
            bo_id=rmw.bo_id,
            client_name=rmw.client_name,
            op_uid=rmw.op_uid,
            response=response,
            handle=rmw.handle,
            apply_time=self.time,
        )
        self.trace.event(
            self.time, EventKind.APPLY, rmw=rmw_id, bo=rmw.bo_id,
            client=rmw.client_name, label=rmw.label,
        )

    def deliver_response(self, rmw_id: int) -> None:
        """Deliver an applied RMW's response to its client."""
        self.time += 1
        rmw = self.applied.pop(rmw_id, None)
        if rmw is None:
            raise ProtocolError(f"delivery of unknown/settled RMW {rmw_id}")
        client = self.clients[rmw.client_name]
        if client.crashed:
            rmw.handle.status = RMWStatus.DROPPED
            self.trace.event(
                self.time, EventKind.DROP, rmw=rmw_id, reason="client-crashed"
            )
            return
        rmw.handle.response = rmw.response
        rmw.handle.status = RMWStatus.DELIVERED
        self.trace.event(
            self.time, EventKind.DELIVER, rmw=rmw_id, client=rmw.client_name
        )

    # -------------------------------------------------------------- crashes

    def crash_base_object(self, bo_id: int) -> None:
        """Crash a base object; its pending work is dropped."""
        self.time += 1
        base_object = self.base_objects[bo_id]
        base_object.crash()
        for rmw_id in [r for r, rmw in self.pending.items() if rmw.bo_id == bo_id]:
            rmw = self.pending.pop(rmw_id)
            rmw.handle.status = RMWStatus.DROPPED
        for rmw_id in [r for r, rmw in self.applied.items() if rmw.bo_id == bo_id]:
            rmw = self.applied.pop(rmw_id)
            rmw.handle.status = RMWStatus.DROPPED
        self.trace.event(self.time, EventKind.CRASH_BO, bo=bo_id)

    def crash_client(self, name: str) -> None:
        """Crash a client. Its already-triggered RMWs may still take effect."""
        self.time += 1
        self.clients[name].crash()
        self.trace.event(self.time, EventKind.CRASH_CLIENT, client=name)

    def crashed_base_objects(self) -> int:
        return sum(1 for bo in self.base_objects if bo.crashed)

    # ------------------------------------------------------------------ run

    def run(
        self,
        scheduler: "Scheduler",
        max_steps: int = 200_000,
        until: Callable[["Simulation"], bool] | None = None,
        on_action: Callable[["Simulation", Action], None] | None = None,
    ) -> RunResult:
        """Drive the simulation with ``scheduler``.

        Stops when the scheduler reports quiescence (returns ``None``), the
        ``until`` predicate fires, or ``max_steps`` actions have executed.
        """
        steps = 0
        while steps < max_steps:
            if until is not None and until(self):
                return RunResult(steps, quiescent=False, stopped_by_predicate=True)
            action = scheduler.next_action(self)
            if action is None:
                return RunResult(steps, quiescent=True, stopped_by_predicate=False)
            self.execute(action)
            if on_action is not None:
                on_action(self, action)
            steps += 1
        return RunResult(steps, quiescent=False, stopped_by_predicate=False)
