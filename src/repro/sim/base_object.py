"""Fault-prone atomic base objects (Section 2 of the paper).

A base object holds arbitrary protocol state and changes it atomically via
read-modify-write functions. Objects crash-fail: once crashed, pending RMWs
on the object are dropped and it never responds again. The kernel — not the
object — decides *when* a triggered RMW takes effect, which is what gives
schedulers (including the paper's adversary Ad) full control over
asynchrony.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ObjectCrashed

#: Type of an RMW function: pure ``(state, args) -> (new_state, response)``.
RMWFunction = Callable[[Any, Any], tuple[Any, Any]]


class BaseObject:
    """One atomic storage node."""

    def __init__(self, bo_id: int, state: Any) -> None:
        self.bo_id = bo_id
        self.state = state
        self.crashed = False
        #: Number of RMWs that have taken effect (for traces/debugging).
        self.applied_count = 0

    def apply(self, fn: RMWFunction, args: Any) -> Any:
        """Atomically apply ``fn`` and return its response.

        The kernel guards against applying to crashed objects; reaching this
        with ``crashed`` set indicates a kernel bug, hence the hard error.
        """
        if self.crashed:
            raise ObjectCrashed(f"RMW applied to crashed base object {self.bo_id}")
        new_state, response = fn(self.state, args)
        self.state = new_state
        self.applied_count += 1
        return response

    def crash(self) -> None:
        """Crash the object. Idempotent."""
        self.crashed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "crashed" if self.crashed else "live"
        return f"<BaseObject {self.bo_id} {status} applied={self.applied_count}>"
