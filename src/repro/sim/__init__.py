"""The asynchronous fault-prone shared-memory simulator (Section 2).

* :class:`~repro.sim.kernel.Simulation` — the kernel: base objects,
  clients, pending/applied RMW queues, action execution.
* :class:`~repro.sim.schedulers.FairScheduler` /
  :class:`~repro.sim.schedulers.RandomScheduler` /
  :class:`~repro.sim.schedulers.SequentialScheduler` — environments.
* :class:`~repro.sim.failures.FailurePlan` — crash injection.
* :class:`~repro.sim.trace.Trace` — run recording for the checkers.
"""

from repro.sim.actions import (
    Action,
    ActionKind,
    Pause,
    RMWHandle,
    RMWStatus,
    WaitResponses,
)
from repro.sim.base_object import BaseObject
from repro.sim.client import Client, OperationContext
from repro.sim.failures import (
    CrashSchedule,
    FailurePlan,
    after_op_returns,
    after_ops_complete,
    at_time,
    seeded_crash_schedule,
)
from repro.sim.kernel import RunResult, Simulation
from repro.sim.schedulers import (
    FairScheduler,
    RandomScheduler,
    Scheduler,
    SequentialScheduler,
)
from repro.sim.trace import EventKind, OpKind, OpRecord, Trace

__all__ = [
    "Action",
    "ActionKind",
    "BaseObject",
    "Client",
    "CrashSchedule",
    "EventKind",
    "FailurePlan",
    "FairScheduler",
    "OpKind",
    "OpRecord",
    "OperationContext",
    "Pause",
    "RMWHandle",
    "RMWStatus",
    "RandomScheduler",
    "RunResult",
    "Scheduler",
    "SequentialScheduler",
    "Simulation",
    "Trace",
    "WaitResponses",
    "after_op_returns",
    "after_ops_complete",
    "at_time",
    "seeded_crash_schedule",
]
