"""Clients and operation contexts.

A client performs at most one outstanding high-level operation at a time
(well-formedness, Appendix A). Operations are Python generator coroutines
produced by a register protocol; the :class:`OperationContext` is their
handle to the kernel — it triggers RMWs, creates coding oracles, and records
the operation's identity.

Oracles are created through the context so the kernel can expire them when
the operation returns (Definition 1: oracles expire when the operation
completes).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from repro.coding.oracles import DecodeOracle, EncodeOracle
from repro.errors import ProtocolError
from repro.sim.actions import Pause, RMWHandle, WaitResponses
from repro.sim.trace import OpKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.kernel import Simulation


@dataclass
class QueuedOp:
    """An operation waiting for its client to become free."""

    kind: OpKind
    value: bytes | None = None


class OperationContext:
    """The kernel-facing handle of one outstanding operation."""

    def __init__(
        self,
        kernel: "Simulation",
        client: "Client",
        op_uid: int,
        kind: OpKind,
        value: bytes | None,
    ) -> None:
        self.kernel = kernel
        self.client = client
        self.op_uid = op_uid
        self.kind = kind
        self.value = value
        self.generator: Generator | None = None
        self.waiting: WaitResponses | Pause | None = None
        self.handles: list[RMWHandle] = []
        self._encode_oracles: list[EncodeOracle] = []
        self._decode_oracles: list[DecodeOracle] = []
        self.rounds = 0  # incremented by protocols for metrics

    # --------------------------------------------------------------- kernel

    def trigger(self, bo_id: int, fn: Any, args: Any, label: str = "") -> RMWHandle:
        """Register a pending RMW on base object ``bo_id``."""
        handle = self.kernel.register_rmw(self, bo_id, fn, args, label)
        self.handles.append(handle)
        return handle

    # -------------------------------------------------------------- oracles

    def new_encode_oracle(self) -> EncodeOracle:
        """Create ``oracleE(client, w)`` for this (write) operation.

        When the kernel carries a :class:`~repro.coding.oracles.
        BatchEncodePlan` (a workload runner pre-encoded the write wave), the
        fresh oracle is warmed from the plan's shared stacked pass; its
        blocks are identical to what lazy encoding would produce.
        """
        if self.kind is not OpKind.WRITE or self.value is None:
            raise ProtocolError("encode oracle requested by a non-write operation")
        oracle = EncodeOracle(self.kernel.scheme, self.value, self.op_uid)
        if self.kernel.encode_plan is not None:
            self.kernel.encode_plan.prime(oracle)
        self._encode_oracles.append(oracle)
        return oracle

    def new_decode_oracle(self) -> DecodeOracle:
        """Create ``oracleD(client, r)`` for this (read) operation.

        When the kernel carries a :class:`~repro.coding.oracles.
        DecodeShareCache` (installed by a workload runner), readers that
        assemble the same block set share one stacked decode pass; decoded
        values are identical to per-read decoding.
        """
        oracle = DecodeOracle(
            self.kernel.scheme, share_cache=self.kernel.decode_cache
        )
        self._decode_oracles.append(oracle)
        return oracle

    def expire_oracles(self) -> None:
        """Expire all oracles (the operation completed)."""
        for oracle in self._encode_oracles:
            oracle.expire()
        for oracle in self._decode_oracles:
            oracle.expired = True

    # -------------------------------------------------------------- queries

    def responses(self, handles: list[RMWHandle] | None = None) -> list[Any]:
        """Return the delivered responses among ``handles`` (default: all)."""
        chosen = self.handles if handles is None else handles
        return [handle.response for handle in chosen if handle.responded]


class Client:
    """A storage client: a queue of operations, at most one outstanding."""

    def __init__(self, name: str, kernel: "Simulation") -> None:
        self.name = name
        self.kernel = kernel
        self.queue: deque[QueuedOp] = deque()
        self.current: OperationContext | None = None
        self.crashed = False
        self.completed_ops = 0

    # ------------------------------------------------------------- enqueue

    def enqueue_write(self, value: bytes) -> None:
        self.queue.append(QueuedOp(OpKind.WRITE, value))

    def enqueue_read(self) -> None:
        self.queue.append(QueuedOp(OpKind.READ))

    # -------------------------------------------------------------- status

    @property
    def idle(self) -> bool:
        """No outstanding operation and nothing queued."""
        return self.current is None and not self.queue

    def runnable(self) -> bool:
        """Can this client take a local step right now?"""
        if self.crashed:
            return False
        if self.current is None:
            return bool(self.queue)
        waiting = self.current.waiting
        return waiting is None or waiting.satisfied()

    def blocked_wait(self) -> WaitResponses | None:
        """Return the unsatisfied wait blocking this client, if any."""
        if self.current is not None and isinstance(
            self.current.waiting, WaitResponses
        ):
            if not self.current.waiting.satisfied():
                return self.current.waiting
        return None

    def crash(self) -> None:
        self.crashed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "crashed" if self.crashed else ("busy" if self.current else "idle")
        return f"<Client {self.name} {status}>"
