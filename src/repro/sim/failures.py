"""Crash-failure injection plans.

A :class:`FailurePlan` decorates any scheduler with timed or predicate-based
crashes so experiments can kill up to ``f`` base objects (and any number of
clients) mid-run without hand-writing a scheduler. Crashes fire *before* the
wrapped scheduler picks its next action, so a crash can pre-empt a response
that was about to be delivered — the nastiest asynchronous case.

For sweeps and fuzzing, :func:`seeded_crash_schedule` derives a complete
deterministic :class:`CrashSchedule` (victims and firing times) from a seed
by expanding SHA-256 over ``(seed, slot)`` pairs — the same derivation the
workload generators use for values — so two runs of the same scenario seed
crash the same objects and clients at the same simulated times, and the
sweep engine's byte-identical-JSON guarantee extends to crash runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import ParameterError
from repro.sim.actions import Action
from repro.sim.schedulers import Scheduler

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.kernel import Simulation

CrashPredicate = Callable[["Simulation"], bool]


@dataclass
class BaseObjectCrash:
    """Crash base object ``bo_id`` when ``when`` first returns True."""

    bo_id: int
    when: CrashPredicate
    fired: bool = False


@dataclass
class ClientCrash:
    """Crash client ``name`` when ``when`` first returns True."""

    name: str
    when: CrashPredicate
    fired: bool = False


def at_time(time: int) -> CrashPredicate:
    """Crash once the simulation clock reaches ``time``."""
    return lambda sim: sim.time >= time


def after_ops_complete(count: int) -> CrashPredicate:
    """Crash once ``count`` operations have returned."""
    return lambda sim: len(sim.trace.completed_ops()) >= count


def after_op_returns(op_uid: int) -> CrashPredicate:
    """Crash once a specific operation has returned."""
    return lambda sim: (
        op_uid in sim.trace.ops and sim.trace.ops[op_uid].complete
    )


@dataclass
class FailurePlan(Scheduler):
    """Scheduler decorator that injects crashes.

    Wraps ``inner``; before each scheduling decision, fires any due crash
    (at most one per step, so traces stay readable).
    """

    inner: Scheduler
    bo_crashes: list[BaseObjectCrash] = field(default_factory=list)
    client_crashes: list[ClientCrash] = field(default_factory=list)

    def crash_base_object(self, bo_id: int, when: CrashPredicate) -> "FailurePlan":
        self.bo_crashes.append(BaseObjectCrash(bo_id, when))
        return self

    def crash_client(self, name: str, when: CrashPredicate) -> "FailurePlan":
        self.client_crashes.append(ClientCrash(name, when))
        return self

    def next_action(self, sim: "Simulation") -> Action | None:
        for crash in self.bo_crashes:
            if not crash.fired and crash.when(sim):
                crash.fired = True
                sim.crash_base_object(crash.bo_id)
                break
        else:
            for crash in self.client_crashes:
                if not crash.fired and crash.when(sim):
                    crash.fired = True
                    sim.crash_client(crash.name)
                    break
        return self.inner.next_action(sim)

    @property
    def fired_bo_crashes(self) -> int:
        """Base-object crashes that actually fired during the run."""
        return sum(1 for crash in self.bo_crashes if crash.fired)

    @property
    def fired_client_crashes(self) -> int:
        """Client crashes that actually fired during the run."""
        return sum(1 for crash in self.client_crashes if crash.fired)


# -------------------------------------------- seed-derived deterministic plans


def derive_draw(seed: int, tag: str, modulus: int, *,
                domain: str = "crash") -> int:
    """Deterministic pseudo-random draw in ``[0, modulus)`` from (seed, tag).

    SHA-256 based (like :func:`~repro.workloads.generators.make_value`), so
    the draw is stable across Python versions and processes — a property
    ``random.Random`` only promises for some of its methods. ``domain``
    namespaces independent consumers: crash schedules (``"crash"``, the
    historical stream — unchanged bytes for any existing seed), fault
    plans (``"fault"``, :mod:`repro.faults`), and client retry jitter
    (``"backoff"``, :mod:`repro.service.retry`) draw from disjoint
    streams even at equal ``(seed, tag)``.
    """
    if modulus < 1:
        raise ParameterError("derive_draw needs a positive modulus")
    digest = hashlib.sha256(f"{domain}:{seed}:{tag}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % modulus


def _derive(seed: int, tag: str, modulus: int) -> int:
    return derive_draw(seed, tag, modulus, domain="crash")


@dataclass(frozen=True)
class CrashSchedule:
    """A fully determined crash plan: who dies, and at what simulated time.

    ``bo_victims`` and ``client_victims`` are ``(victim, time)`` pairs. The
    schedule is plain data — hashable, comparable, printable — so sweep
    records and tests can reason about it; :meth:`install` turns it into a
    live :class:`FailurePlan` around any scheduler. Firing order is
    deterministic: the plan fires at most one due crash per scheduling step,
    base objects before clients, each list in order.
    """

    bo_victims: tuple[tuple[int, int], ...] = ()
    client_victims: tuple[tuple[str, int], ...] = ()

    def install(self, inner: Scheduler) -> FailurePlan:
        """Wrap ``inner`` in a :class:`FailurePlan` realising this schedule."""
        plan = FailurePlan(inner)
        for bo_id, time in self.bo_victims:
            plan.crash_base_object(bo_id, at_time(time))
        for name, time in self.client_victims:
            plan.crash_client(name, at_time(time))
        return plan

    def __len__(self) -> int:
        return len(self.bo_victims) + len(self.client_victims)


def seeded_crash_schedule(
    seed: int,
    *,
    bo_count: int,
    bo_crashes: int,
    client_names: Sequence[str] = (),
    client_crashes: int = 0,
    start: int = 15,
    spacing: int = 13,
) -> CrashSchedule:
    """Derive a deterministic :class:`CrashSchedule` from ``seed``.

    Victim base objects are ``bo_crashes`` *distinct* ids drawn from
    ``range(bo_count)``; victim clients are ``client_crashes`` distinct
    names drawn from ``client_names``. Crash times start at ``start`` and
    advance by ``spacing`` plus a seed-derived jitter per slot, so no two
    crashes share a firing time and the firing *order* is itself part of
    the schedule. The caller is responsible for keeping ``bo_crashes``
    within the model's ``f`` budget.
    """
    if bo_crashes < 0 or client_crashes < 0:
        raise ParameterError("crash counts must be >= 0")
    if start < 0 or spacing < 1:
        # spacing is a jitter modulus and the guarantee that no two
        # crashes share a firing time; <= 0 would divide by zero or
        # produce colliding/decreasing times.
        raise ParameterError("need start >= 0 and spacing >= 1")
    if bo_crashes > bo_count:
        raise ParameterError(
            f"cannot crash {bo_crashes} of {bo_count} base objects"
        )
    if client_crashes > len(client_names):
        raise ParameterError(
            f"cannot crash {client_crashes} of {len(client_names)} clients"
        )
    times = [
        start + spacing * slot + _derive(seed, f"time{slot}", spacing)
        for slot in range(bo_crashes + client_crashes)
    ]
    remaining_bos = list(range(bo_count))
    bo_victims = []
    for slot in range(bo_crashes):
        index = _derive(seed, f"bo{slot}", len(remaining_bos))
        bo_victims.append((remaining_bos.pop(index), times[slot]))
    remaining_clients = list(client_names)
    client_victims = []
    for slot in range(client_crashes):
        index = _derive(seed, f"client{slot}", len(remaining_clients))
        client_victims.append(
            (remaining_clients.pop(index), times[bo_crashes + slot])
        )
    return CrashSchedule(tuple(bo_victims), tuple(client_victims))
