"""Crash-failure injection plans.

A :class:`FailurePlan` decorates any scheduler with timed or predicate-based
crashes so experiments can kill up to ``f`` base objects (and any number of
clients) mid-run without hand-writing a scheduler. Crashes fire *before* the
wrapped scheduler picks its next action, so a crash can pre-empt a response
that was about to be delivered — the nastiest asynchronous case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.sim.actions import Action
from repro.sim.schedulers import Scheduler

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.kernel import Simulation

CrashPredicate = Callable[["Simulation"], bool]


@dataclass
class BaseObjectCrash:
    """Crash base object ``bo_id`` when ``when`` first returns True."""

    bo_id: int
    when: CrashPredicate
    fired: bool = False


@dataclass
class ClientCrash:
    """Crash client ``name`` when ``when`` first returns True."""

    name: str
    when: CrashPredicate
    fired: bool = False


def at_time(time: int) -> CrashPredicate:
    """Crash once the simulation clock reaches ``time``."""
    return lambda sim: sim.time >= time


def after_ops_complete(count: int) -> CrashPredicate:
    """Crash once ``count`` operations have returned."""
    return lambda sim: len(sim.trace.completed_ops()) >= count


def after_op_returns(op_uid: int) -> CrashPredicate:
    """Crash once a specific operation has returned."""
    return lambda sim: (
        op_uid in sim.trace.ops and sim.trace.ops[op_uid].complete
    )


@dataclass
class FailurePlan(Scheduler):
    """Scheduler decorator that injects crashes.

    Wraps ``inner``; before each scheduling decision, fires any due crash
    (at most one per step, so traces stay readable).
    """

    inner: Scheduler
    bo_crashes: list[BaseObjectCrash] = field(default_factory=list)
    client_crashes: list[ClientCrash] = field(default_factory=list)

    def crash_base_object(self, bo_id: int, when: CrashPredicate) -> "FailurePlan":
        self.bo_crashes.append(BaseObjectCrash(bo_id, when))
        return self

    def crash_client(self, name: str, when: CrashPredicate) -> "FailurePlan":
        self.client_crashes.append(ClientCrash(name, when))
        return self

    def next_action(self, sim: "Simulation") -> Action | None:
        for crash in self.bo_crashes:
            if not crash.fired and crash.when(sim):
                crash.fired = True
                sim.crash_base_object(crash.bo_id)
                break
        else:
            for crash in self.client_crashes:
                if not crash.fired and crash.when(sim):
                    crash.fired = True
                    sim.crash_client(crash.name)
                    break
        return self.inner.next_action(sim)
