"""Run traces and operation records.

The kernel appends a :class:`TraceEvent` for every invocation, return,
trigger, apply, delivery, and crash. The per-operation view
(:class:`OpRecord`) is what the consistency checkers consume: it captures
the paper's ``trace(r)`` — the subsequence of invocations and returns —
plus written/returned values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class OpKind(enum.Enum):
    WRITE = "write"
    READ = "read"


class EventKind(enum.Enum):
    INVOKE = "invoke"
    RETURN = "return"
    TRIGGER = "trigger"
    APPLY = "apply"
    DELIVER = "deliver"
    DROP = "drop"
    CRASH_BO = "crash-bo"
    CRASH_CLIENT = "crash-client"


@dataclass(frozen=True)
class TraceEvent:
    time: int
    kind: EventKind
    details: dict[str, Any]


@dataclass
class OpRecord:
    """One high-level operation's lifecycle."""

    op_uid: int
    client: str
    kind: OpKind
    written: bytes | None = None
    result: Any = None
    invoke_time: int = -1
    return_time: int | None = None

    @property
    def complete(self) -> bool:
        return self.return_time is not None

    def precedes(self, other: "OpRecord") -> bool:
        """Real-time precedence: this op returned before ``other`` invoked."""
        return self.return_time is not None and self.return_time < other.invoke_time


class Trace:
    """Append-only record of everything that happened in a run."""

    def __init__(self, keep_events: bool = True) -> None:
        self.keep_events = keep_events
        self.events: list[TraceEvent] = []
        self.ops: dict[int, OpRecord] = {}

    # -------------------------------------------------------------- events

    def event(self, time: int, kind: EventKind, **details: Any) -> None:
        if self.keep_events:
            self.events.append(TraceEvent(time, kind, details))

    def record_invoke(
        self,
        time: int,
        op_uid: int,
        client: str,
        kind: OpKind,
        written: bytes | None,
    ) -> OpRecord:
        record = OpRecord(
            op_uid=op_uid,
            client=client,
            kind=kind,
            written=written,
            invoke_time=time,
        )
        self.ops[op_uid] = record
        self.event(time, EventKind.INVOKE, op=op_uid, client=client,
                   op_kind=kind.value)
        return record

    def record_return(self, time: int, op_uid: int, result: Any) -> None:
        record = self.ops[op_uid]
        record.return_time = time
        record.result = result
        self.event(time, EventKind.RETURN, op=op_uid, client=record.client)

    # ------------------------------------------------------------- queries

    def completed_ops(self) -> list[OpRecord]:
        return [op for op in self.ops.values() if op.complete]

    def writes(self) -> list[OpRecord]:
        return [op for op in self.ops.values() if op.kind is OpKind.WRITE]

    def reads(self) -> list[OpRecord]:
        return [op for op in self.ops.values() if op.kind is OpKind.READ]

    def events_of_kind(self, kind: EventKind) -> list[TraceEvent]:
        return [event for event in self.events if event.kind is kind]

    def rmw_count(self) -> int:
        """Number of RMWs that took effect during the run."""
        return len(self.events_of_kind(EventKind.APPLY))
