"""Regularity checkers: MWRegWeak and (global-order) MWRegWO.

Following Shao, Welch, Pierce & Lee [14] as adopted by the paper
(Appendix A):

* **Weak regularity (MWRegWeak)** — for every completed read ``rd`` there
  is a linearization of ``rd`` together with all writes. Per read this
  reduces to a local condition on its witness write ``w`` (the write whose
  value ``rd`` returned):

  1. ``w`` was invoked before ``rd`` returned (``not rd < w``), and
  2. no completed write ``w''`` is *interposed*: ``w < w'' < rd``.

  A read returning ``v0`` may witness either the *virtual initial write*
  (valid iff no completed write precedes the read) or any real write that
  wrote ``v0`` again, subject to the same interposition rule.

* **Strong regularity (MWRegWO)** — weak regularity plus: any two reads
  order their commonly-relevant writes consistently. We check the natural
  sufficient condition that timestamp-based algorithms satisfy: a *single*
  total write order serves every read. Each read's witness induces ordering
  constraints (every write preceding ``rd`` is ordered at-or-before ``w``;
  every write following ``rd`` is ordered after ``w``); the history passes
  if some witness assignment makes constraints + real-time write order
  acyclic. Passing implies MWRegWO. A failure here with a passing weak
  check is reported as a strong-regularity violation; for the exotic
  histories where per-read orders could still be reconciled pairwise this
  is conservative, which we accept and document.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.spec.histories import History, HOp


@dataclass
class Violation:
    """One consistency violation, human-readable."""

    read_uid: int
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"read {self.read_uid}: {self.reason}"


@dataclass
class CheckReport:
    """Outcome of a checker run."""

    ok: bool
    violations: list[Violation] = field(default_factory=list)
    witness_order: list[int] | None = None  # write uids, when found

    def __bool__(self) -> bool:
        return self.ok


def _witness_candidates(history: History, read: HOp) -> list[HOp]:
    """Writes that could have produced ``read``'s result under MWRegWeak."""
    candidates = []
    for write in history.writes_of_value(read.result):
        if read.precedes(write):
            continue  # invoked after the read returned: unseeable
        interposed = any(
            other.complete and write.precedes(other) and other.precedes(read)
            for other in history.writes()
            if other.op_uid != write.op_uid
        )
        if not interposed:
            candidates.append(write)
    return candidates


def _initial_value_ok(history: History, read: HOp) -> bool:
    """May ``read`` take the *initial* value as its witness?

    Valid iff no completed write precedes the read (the virtual initial
    write would otherwise have an interposed write).
    """
    return not any(
        w.complete and w.precedes(read) for w in history.writes()
    )


def check_weak_regularity(history: History) -> CheckReport:
    """Check MWRegWeak over all completed reads."""
    violations = []
    for read in history.reads(completed_only=True):
        if read.result == history.v0:
            # Two legal witnesses for a v0 result: the virtual initial
            # write, or any real write that wrote v0 again.
            if not _initial_value_ok(history, read) and not _witness_candidates(
                history, read
            ):
                blocking = [
                    w
                    for w in history.writes()
                    if w.complete and w.precedes(read)
                ]
                violations.append(
                    Violation(
                        read.op_uid,
                        f"returned v0 but write {blocking[0].op_uid} "
                        "completed before it (and no v0-write witness)",
                    )
                )
            continue
        if not _witness_candidates(history, read):
            violations.append(
                Violation(
                    read.op_uid,
                    f"no write can justify result {_short(read.result)} "
                    "(unwritten value, future write, or interposed write)",
                )
            )
    return CheckReport(ok=not violations, violations=violations)


def _short(value: object) -> str:
    text = repr(value)
    return text if len(text) <= 24 else text[:21] + "..."


class _OrderGraph:
    """Edges over write uids; detects cycles by depth-first search."""

    def __init__(self, writes: list[HOp]) -> None:
        self.nodes = [w.op_uid for w in writes]
        self.edges: dict[int, set[int]] = {uid: set() for uid in self.nodes}
        for a, b in itertools.permutations(writes, 2):
            if a.precedes(b):
                self.edges[a.op_uid].add(b.op_uid)

    def copy_with(self, extra: list[tuple[int, int]]) -> "dict[int, set[int]]":
        edges = {uid: set(targets) for uid, targets in self.edges.items()}
        for source, target in extra:
            if source != target:
                edges[source].add(target)
        return edges

    @staticmethod
    def topological(edges: dict[int, set[int]]) -> list[int] | None:
        """Return a topological order, or ``None`` if cyclic."""
        indegree = {uid: 0 for uid in edges}
        for targets in edges.values():
            for target in targets:
                indegree[target] += 1
        stack = sorted(uid for uid, deg in indegree.items() if deg == 0)
        order: list[int] = []
        while stack:
            node = stack.pop()
            order.append(node)
            for target in edges[node]:
                indegree[target] -= 1
                if indegree[target] == 0:
                    stack.append(target)
        if len(order) != len(edges):
            return None
        return order


def check_strong_regularity(
    history: History, max_assignments: int = 20_000
) -> CheckReport:
    """Check global-order strong regularity (sufficient for MWRegWO)."""
    weak = check_weak_regularity(history)
    if not weak.ok:
        return weak

    reads = history.reads(completed_only=True)
    writes = history.writes()
    graph = _OrderGraph(writes)

    candidate_lists: list[tuple[HOp, list[HOp | None]]] = []
    for read in reads:
        if read.result == history.v0:
            # A v0 read may witness the virtual initial write (legal only
            # when no completed write precedes it; ``None`` adds no edges —
            # nothing can be ordered before the initial write) or any real
            # write of v0, constrained like an ordinary witness.
            candidates: list[HOp | None] = list(
                _witness_candidates(history, read)
            )
            if _initial_value_ok(history, read):
                candidates.insert(0, None)
            candidate_lists.append((read, candidates))
        else:
            candidate_lists.append((read, list(_witness_candidates(history, read))))

    assignments = itertools.product(
        *[candidates for _, candidates in candidate_lists]
    )
    for count, assignment in enumerate(assignments):
        if count >= max_assignments:
            break
        extra: list[tuple[int, int]] = []
        feasible = True
        for (read, _), witness in zip(candidate_lists, assignment):
            if witness is None:
                continue
            for other in writes:
                if other.op_uid == witness.op_uid:
                    continue
                if other.precedes(read):
                    extra.append((other.op_uid, witness.op_uid))
                if read.precedes(other):
                    extra.append((witness.op_uid, other.op_uid))
            if read.precedes(witness):  # pragma: no cover - filtered earlier
                feasible = False
                break
        if not feasible:
            continue
        order = _OrderGraph.topological(graph.copy_with(extra))
        if order is not None:
            return CheckReport(ok=True, witness_order=order)
    return CheckReport(
        ok=False,
        violations=[
            Violation(
                -1,
                "no single write order satisfies every read "
                "(strong-regularity/MWRegWO witness not found)",
            )
        ],
    )
