"""Operation histories for consistency checking.

A :class:`History` is the checker-facing view of a run's ``trace(r)``:
invocation/return times, written values, and read results. It carries the
register's initial value ``v0`` so checkers can validate reads that saw no
write.

Precedence follows Appendix A: ``op1`` precedes ``op2`` iff ``op1``'s return
occurs before ``op2``'s invocation; two operations are concurrent when
neither precedes the other. Incomplete operations (no return) never precede
anything, and a linearization may include or exclude them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import MalformedHistory
from repro.sim.trace import OpKind, Trace


@dataclass(frozen=True)
class HOp:
    """One operation as the checkers see it."""

    op_uid: int
    client: str
    kind: OpKind
    written: bytes | None
    result: object
    invoke_time: int
    return_time: int | None

    @property
    def complete(self) -> bool:
        return self.return_time is not None

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.WRITE

    @property
    def is_read(self) -> bool:
        return self.kind is OpKind.READ

    def precedes(self, other: "HOp") -> bool:
        return self.return_time is not None and self.return_time < other.invoke_time

    def concurrent_with(self, other: "HOp") -> bool:
        return not self.precedes(other) and not other.precedes(self)


class History:
    """An immutable collection of operations plus the initial value."""

    def __init__(self, ops: Iterable[HOp], v0: bytes) -> None:
        self.ops = sorted(ops, key=lambda op: (op.invoke_time, op.op_uid))
        self.v0 = v0
        self._validate_well_formed()

    def _validate_well_formed(self) -> None:
        """Each client has non-overlapping operations (Appendix A)."""
        by_client: dict[str, list[HOp]] = {}
        for op in self.ops:
            by_client.setdefault(op.client, []).append(op)
        for client, ops in by_client.items():
            for earlier, later in zip(ops, ops[1:]):
                if earlier.return_time is None:
                    raise MalformedHistory(
                        f"client {client} invoked op {later.op_uid} while "
                        f"op {earlier.op_uid} was outstanding"
                    )
                if earlier.return_time >= later.invoke_time:
                    raise MalformedHistory(
                        f"client {client} ops {earlier.op_uid}/{later.op_uid} overlap"
                    )

    # ------------------------------------------------------------- factory

    @classmethod
    def from_trace(cls, trace: Trace, v0: bytes) -> "History":
        ops = [
            HOp(
                op_uid=record.op_uid,
                client=record.client,
                kind=record.kind,
                written=record.written,
                result=record.result,
                invoke_time=record.invoke_time,
                return_time=record.return_time,
            )
            for record in trace.ops.values()
        ]
        return cls(ops, v0)

    # ------------------------------------------------------------- queries

    def writes(self, completed_only: bool = False) -> list[HOp]:
        return [
            op
            for op in self.ops
            if op.is_write and (op.complete or not completed_only)
        ]

    def reads(self, completed_only: bool = True) -> list[HOp]:
        return [
            op
            for op in self.ops
            if op.is_read and (op.complete or not completed_only)
        ]

    def completed(self) -> list[HOp]:
        return [op for op in self.ops if op.complete]

    def writes_of_value(self, value: object) -> list[HOp]:
        return [op for op in self.ops if op.is_write and op.written == value]

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        writes = len(self.writes())
        reads = len(self.reads(completed_only=False))
        return f"<History {writes} writes, {reads} reads>"


def manual_history(
    entries: list[tuple],
    v0: bytes = b"",
) -> History:
    """Build a history from compact tuples — test helper.

    Each entry is ``(client, kind, value, invoke, return_or_None)`` where
    ``kind`` is ``"w"`` or ``"r"`` and ``value`` is the written value for
    writes / the result for reads.
    """
    ops = []
    for uid, (client, kind, value, invoke, ret) in enumerate(entries):
        if kind == "w":
            op = HOp(uid, client, OpKind.WRITE, value, "ok" if ret else None,
                     invoke, ret)
        else:
            op = HOp(uid, client, OpKind.READ, None, value, invoke, ret)
        ops.append(op)
    return History(ops, v0)
