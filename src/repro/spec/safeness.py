"""Strong safety checking (the paper's extension of Lamport's safe register).

Appendix A: a MWMR register is *strongly safe* if there is a linearization
of the writes such that every read with **no concurrent writes** can be
inserted and see the latest preceding write (or ``v0``). Reads that overlap
any write may return anything — which is precisely the loophole Appendix E's
algorithm exploits to beat the Theorem 1 bound.

The check mirrors the strong-regularity search: each quiescent read names a
witness write that must be ordered last among all writes that precede the
read; edge constraints plus real-time write order must admit a topological
order.
"""

from __future__ import annotations

from repro.spec.histories import History, HOp
from repro.spec.regularity import CheckReport, Violation, _OrderGraph


def _quiescent_reads(history: History) -> list[HOp]:
    """Completed reads with no concurrent write operations."""
    return [
        read
        for read in history.reads(completed_only=True)
        if all(
            write.precedes(read) or read.precedes(write)
            for write in history.writes(completed_only=False)
        )
    ]


def check_strong_safety(history: History) -> CheckReport:
    """Check strong safety; concurrent-with-write reads are unconstrained."""
    writes = history.writes()
    graph = _OrderGraph(writes)
    extra: list[tuple[int, int]] = []
    violations: list[Violation] = []

    for read in _quiescent_reads(history):
        before = [w for w in writes if w.precedes(read)]
        if not before:
            if read.result != history.v0:
                violations.append(
                    Violation(
                        read.op_uid,
                        "no preceding write yet returned a non-initial value",
                    )
                )
            continue
        witnesses = [w for w in before if w.written == read.result]
        if not witnesses:
            violations.append(
                Violation(
                    read.op_uid,
                    "result matches no write that precedes this quiescent read",
                )
            )
            continue
        # The witness must be the maximum among `before`; with several
        # same-value candidates any one may serve — constrain the latest
        # invoked (a canonical choice; same-value writes are interchangeable
        # for the sequential specification).
        witness = max(witnesses, key=lambda w: w.invoke_time)
        for other in before:
            if other.op_uid != witness.op_uid:
                extra.append((other.op_uid, witness.op_uid))

    if violations:
        return CheckReport(ok=False, violations=violations)
    order = _OrderGraph.topological(graph.copy_with(extra))
    if order is None:
        return CheckReport(
            ok=False,
            violations=[
                Violation(-1, "write-order constraints from quiescent reads cycle")
            ],
        )
    return CheckReport(ok=True, witness_order=order)
