"""Consistency checkers for register histories (Appendix A semantics)."""

from repro.spec.histories import History, HOp, manual_history
from repro.spec.linearizability import LinearizabilityReport, check_linearizability
from repro.spec.liveness import LivenessReport, analyze_liveness
from repro.spec.regularity import (
    CheckReport,
    Violation,
    check_strong_regularity,
    check_weak_regularity,
)
from repro.spec.safeness import check_strong_safety

__all__ = [
    "CheckReport",
    "HOp",
    "History",
    "LinearizabilityReport",
    "LivenessReport",
    "Violation",
    "analyze_liveness",
    "check_linearizability",
    "check_strong_regularity",
    "check_strong_safety",
    "check_weak_regularity",
    "manual_history",
]
