"""Atomicity (linearizability) checking for register histories.

Wing & Gong-style search specialised to a read/write register: find a total
order of the completed operations that respects real-time precedence and the
sequential specification (every read returns the latest preceding write's
value, or ``v0``). Memoised on (set of linearized ops, last written value),
which keeps the search fast on test-scale histories.

Used to separate semantics experimentally: ABD *without* read write-back is
strongly regular but not atomic; sequential runs of every register are
atomic. The paper's algorithms never claim atomicity, so this checker
appears in tests and ablations, not in the headline experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spec.histories import History, HOp


@dataclass
class LinearizabilityReport:
    ok: bool
    order: list[int] | None = None  # op uids in linearization order
    explored: int = 0
    note: str = ""

    def __bool__(self) -> bool:
        return self.ok


def check_linearizability(
    history: History, max_states: int = 2_000_000
) -> LinearizabilityReport:
    """Search for a linearization of the history.

    Completed operations must all appear; *incomplete writes* may be
    included (their effect may have taken place) or excluded — the
    standard treatment, needed e.g. when a read returns the value of a
    write still in flight. Incomplete reads are always excludable (they
    have no effect) and are dropped.

    Returns the order found, or ``ok=False`` after an exhaustive search;
    gives up with ``note='budget'`` on state-budget exhaustion (no
    verdict).
    """
    completed = history.completed()
    pending_writes = [
        op for op in history.ops if op.is_write and not op.complete
    ]
    ops = completed + pending_writes
    by_uid = {op.op_uid: op for op in ops}
    uids = sorted(by_uid)
    required = frozenset(op.op_uid for op in completed)

    # Precompute the strict predecessors of each op (incomplete ops precede
    # nothing but can be preceded).
    predecessors: dict[int, set[int]] = {
        uid: {
            other.op_uid
            for other in ops
            if other.op_uid != uid and other.precedes(by_uid[uid])
        }
        for uid in uids
    }

    seen: set[tuple[frozenset[int], object]] = set()
    explored = 0
    order: list[int] = []

    def minimal_candidates(done: frozenset[int]) -> list[HOp]:
        return [
            by_uid[uid]
            for uid in uids
            if uid not in done and predecessors[uid] <= done
        ]

    def dfs(done: frozenset[int], last_value: object) -> bool:
        nonlocal explored
        if required <= done:
            return True
        key = (done, last_value)
        if key in seen:
            return False
        explored += 1
        if explored > max_states:
            raise _Budget()
        for op in minimal_candidates(done):
            if op.is_read and op.result != last_value:
                continue
            next_value = op.written if op.is_write else last_value
            order.append(op.op_uid)
            if dfs(done | {op.op_uid}, next_value):
                return True
            order.pop()
        seen.add(key)
        return False

    try:
        ok = dfs(frozenset(), history.v0)
    except _Budget:
        return LinearizabilityReport(
            ok=False, explored=explored, note="budget"
        )
    return LinearizabilityReport(
        ok=ok, order=list(order) if ok else None, explored=explored
    )


class _Budget(Exception):
    """Internal: search budget exhausted."""
