"""Liveness analysis of recorded runs (Appendix A's conditions).

The paper distinguishes three liveness levels:

* **wait-free** — every correct client's operation completes;
* **lock-free** — some outstanding operation always eventually completes;
* **FW-terminating** — writes are wait-free, and *if finitely many writes
  are invoked*, every read completes.

A finite trace cannot certify liveness (which quantifies over infinite
fair runs), but it can *refute* claims and confirm their finite
consequences: a quiesced fair run with an incomplete operation by a
correct client witnesses a wait-freedom violation; a quiesced run with
finitely many writes and an incomplete read by a correct client refutes
FW-termination. :func:`analyze_liveness` reports exactly these facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.kernel import Simulation
from repro.sim.trace import OpKind


@dataclass
class LivenessReport:
    """What a quiesced run says about the register's liveness claims."""

    quiescent: bool
    crashed_clients: tuple[str, ...]
    crashed_base_objects: int
    f: int
    incomplete_writes_correct: tuple[int, ...] = field(default=())
    incomplete_reads_correct: tuple[int, ...] = field(default=())

    @property
    def within_failure_bound(self) -> bool:
        """Did the run respect the model's f-crash assumption?"""
        return self.crashed_base_objects <= self.f

    @property
    def writes_wait_free(self) -> bool:
        """No correct client's write was left incomplete."""
        return not self.incomplete_writes_correct

    @property
    def fw_terminating(self) -> bool:
        """Writes wait-free and (the run being finite-write by
        construction) every correct client's read completed."""
        return self.writes_wait_free and not self.incomplete_reads_correct

    @property
    def verdict(self) -> str:
        if not self.quiescent:
            return "inconclusive (run did not quiesce)"
        if not self.within_failure_bound:
            return "inconclusive (more than f crashes)"
        if self.fw_terminating:
            return "consistent with FW-termination"
        if self.writes_wait_free:
            return "write-wait-free but a correct read hung"
        return "wait-freedom violated for writes"


def analyze_liveness(sim: Simulation, quiescent: bool) -> LivenessReport:
    """Analyse a finished run for liveness violations."""
    crashed_clients = tuple(
        name for name, client in sim.clients.items() if client.crashed
    )
    incomplete_writes = []
    incomplete_reads = []
    for op in sim.trace.ops.values():
        if op.complete or op.client in crashed_clients:
            continue
        if op.kind is OpKind.WRITE:
            incomplete_writes.append(op.op_uid)
        else:
            incomplete_reads.append(op.op_uid)
    # Queued-but-never-invoked ops do not count: liveness speaks about
    # invoked operations only.
    return LivenessReport(
        quiescent=quiescent,
        crashed_clients=crashed_clients,
        crashed_base_objects=sim.crashed_base_objects(),
        f=sim.protocol.setup.f,
        incomplete_writes_correct=tuple(incomplete_writes),
        incomplete_reads_correct=tuple(incomplete_reads),
    )
