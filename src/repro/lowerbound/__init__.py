"""Section 4 machinery: Claim 1 collisions, the adversary Ad, Theorem 1."""

from repro.lowerbound.adversary import (
    AdAdversary,
    AdSnapshot,
    compute_snapshot,
    outstanding_writes,
)
from repro.lowerbound.blackbox import (
    RecordedRun,
    ReplacementReport,
    record_run,
    replay_run,
    run_replacement_experiment,
    stored_indices_of,
)
from repro.lowerbound.bound import LowerBoundOutcome, run_lower_bound_experiment
from repro.lowerbound.colliding import (
    Claim1Report,
    build_colliding_family,
    find_colliding_pair,
    verify_claim1,
    verify_collision,
    xor_bytes,
)

__all__ = [
    "AdAdversary",
    "AdSnapshot",
    "Claim1Report",
    "LowerBoundOutcome",
    "RecordedRun",
    "ReplacementReport",
    "build_colliding_family",
    "compute_snapshot",
    "find_colliding_pair",
    "outstanding_writes",
    "record_run",
    "replay_run",
    "run_lower_bound_experiment",
    "run_replacement_experiment",
    "stored_indices_of",
    "verify_claim1",
    "verify_collision",
    "xor_bytes",
]
