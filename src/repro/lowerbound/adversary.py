"""The freezing adversary Ad (Definition 7) and its bookkeeping sets.

Given a space threshold ``0 < ell <= D``, the adversary tracks:

* ``F(t)`` — base objects storing at least ``ell`` bits ("full" objects,
  frozen: Ad never lets another RMW take effect on them). Monotone by
  Observation 2.
* ``C-(t)`` — outstanding writes whose distinct-index blocks in storage
  (outside their own client, Definition 6) total at most ``D - ell`` bits.
* ``C+(t)`` — the other outstanding writes: each contributes more than
  ``D - ell`` bits. Ad starves their RMWs.

Scheduling rules (Definition 7):

1. if some ``C-`` operation has a pending RMW on an unfrozen object, apply
   the longest-pending such RMW and deliver its response;
2. otherwise step clients in fair rotation (their local actions — triggering
   RMWs, oracle calls, returns — never touch base objects directly).

The punchline (Lemma 3 + Observation 1): against *any* lock-free black-box
algorithm, this drives the run to a point where ``|F| > f`` (storage at
least ``(f+1) * ell``) or ``|C+| = c`` (storage at least
``c * (D - ell + 1)``). With ``ell = D/2`` both arms are
``Omega(min(f, c) * D)`` — Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ParameterError
from repro.sim.actions import Action, ActionKind
from repro.sim.schedulers import Scheduler
from repro.sim.trace import OpKind
from repro.storage.cost import StorageMeter

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.kernel import Simulation


@dataclass
class AdSnapshot:
    """The adversary's view at one decision point."""

    time: int
    frozen: frozenset[int]          # F(t)
    c_minus: frozenset[int]         # op uids in C-(t)
    c_plus: frozenset[int]          # op uids in C+(t)
    contributions: dict[int, int]   # op uid -> ||S(t, w)|| in bits


def outstanding_writes(sim: "Simulation") -> list[int]:
    """Op uids of currently outstanding (invoked, unreturned) writes."""
    uids = []
    for client in sim.clients.values():
        ctx = client.current
        if ctx is not None and ctx.kind is OpKind.WRITE:
            uids.append(ctx.op_uid)
    return sorted(uids)


def compute_snapshot(
    sim: "Simulation", ell_bits: int, frozen_so_far: set[int]
) -> AdSnapshot:
    """Evaluate F, C-, C+ at the current instant.

    ``frozen_so_far`` enforces Observation 2 (freezing is permanent even if
    garbage collection later shrinks an object below ``ell``).
    """
    meter = StorageMeter(sim)
    for bo in sim.base_objects:
        if bo.bo_id not in frozen_so_far and meter.bo_bits(bo.bo_id) >= ell_bits:
            frozen_so_far.add(bo.bo_id)
    data_bits = sim.scheme.data_size_bits
    c_minus, c_plus = set(), set()
    # One shared sweep of all states/channels covers every outstanding write.
    contributions = meter.ops_contribution_bits(
        outstanding_writes(sim), bo_subset=None, include_channels=True
    )
    for op_uid, contribution in sorted(contributions.items()):
        if contribution <= data_bits - ell_bits:
            c_minus.add(op_uid)
        else:
            c_plus.add(op_uid)
    return AdSnapshot(
        time=sim.time,
        frozen=frozenset(frozen_so_far),
        c_minus=frozenset(c_minus),
        c_plus=frozenset(c_plus),
        contributions=contributions,
    )


@dataclass
class AdAdversary(Scheduler):
    """Definition 7's scheduler. Unfair on purpose."""

    ell_bits: int
    _frozen: set[int] = field(default_factory=set)
    _rotation: dict[str, int] = field(default_factory=dict)
    _step_counter: int = 0
    #: Refreshed before every decision; drivers read it for predicates.
    last_snapshot: AdSnapshot | None = None

    def __post_init__(self) -> None:
        if self.ell_bits <= 0:
            raise ParameterError("ell must be positive")

    def next_action(self, sim: "Simulation") -> Action | None:
        if self.ell_bits > sim.scheme.data_size_bits:
            raise ParameterError("ell must be at most D")
        snapshot = compute_snapshot(sim, self.ell_bits, self._frozen)
        self.last_snapshot = snapshot

        # Rule 1: longest-pending RMW on an unfrozen object by a C- op.
        # (Reads carry no write's oracle blocks; they are honorary C-
        # members — the lower-bound run contains only writes anyway.)
        eligible = [
            rmw
            for rmw in sim.appliable_rmws()  # already oldest-first
            if rmw.bo_id not in snapshot.frozen
            and (
                rmw.op_uid in snapshot.c_minus
                or rmw.op_uid not in snapshot.c_plus  # non-write ops
            )
        ]
        if eligible:
            return Action(ActionKind.APPLY_DELIVER, eligible[0].rmw_id)

        # Rule 2: fair rotation over runnable clients' local actions.
        runnable = sim.runnable_clients()
        if not runnable:
            return None  # everything starved: the driver inspects why
        runnable.sort(key=lambda client: self._rotation.get(client.name, -1))
        chosen = runnable[0]
        self._step_counter += 1
        self._rotation[chosen.name] = self._step_counter
        return Action(ActionKind.STEP_CLIENT, chosen.name)
