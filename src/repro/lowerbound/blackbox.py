"""Executable black-box coding (Definition 5) and Lemma 1's argument.

Definition 5 says: in a black-box algorithm, replacing the value a write
``w`` feeds its encode oracle yields a run with *identical* client and
base-object states at every time — except that blocks sourced to ``w``
carry the new value's payloads. Lemma 1 weaponises this: pick the new
value *I-colliding* with the old one on exactly the indices ``w`` has in
storage; then even the payloads are unchanged, the two runs are fully
indistinguishable, and a solo reader must return the same value in both —
so it can never return ``w``'s value (which differs between the runs)
without violating regularity in one of them.

This module runs that argument on real registers:

1. record a run of ``c`` concurrent writes up to a cut predicate;
2. compute the replaced write's stored index set ``I`` and an I-colliding
   value (``repro.lowerbound.colliding``);
3. replay the *same action script* with the replaced value
   (:class:`~repro.sim.schedulers.ScriptedScheduler`);
4. mechanically verify Definition 5's state correspondence at the cut;
5. run a solo reader in both worlds and verify it returns identical bytes
   — and never the replaced write's (old or new) value.

Any register built on this package's oracles should pass; an algorithm
that sneaked payload bytes into its control flow would be caught at
step 3 or 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Type

from repro.errors import ParameterError, SchedulerExhausted
from repro.lowerbound.colliding import xor_bytes
from repro.registers.base import RegisterProtocol, RegisterSetup
from repro.sim.actions import Action
from repro.sim.kernel import Simulation
from repro.sim.schedulers import Scheduler, ScriptedScheduler, SoloClientScheduler
from repro.sim.trace import OpKind
from repro.storage.blockstore import collect_blocks
from repro.workloads.generators import make_value, writer_name


@dataclass
class RecordedRun:
    """A run plus the action script that produced it."""

    sim: Simulation
    actions: list[Action] = field(default_factory=list)


def record_run(
    protocol_cls: Type[RegisterProtocol],
    setup: RegisterSetup,
    values: list[bytes],
    scheduler: Scheduler,
    until,
    max_steps: int = 200_000,
) -> RecordedRun:
    """Run ``len(values)`` concurrent writers, recording the action script."""
    sim = Simulation(protocol_cls(setup), keep_events=False)
    for index, value in enumerate(values):
        sim.add_client(writer_name(index)).enqueue_write(value)
    recorded = RecordedRun(sim)
    sim.run(
        scheduler,
        max_steps=max_steps,
        until=until,
        on_action=lambda _sim, action: recorded.actions.append(action),
    )
    return recorded


def replay_run(
    protocol_cls: Type[RegisterProtocol],
    setup: RegisterSetup,
    values: list[bytes],
    actions: list[Action],
) -> Simulation:
    """Re-execute a recorded action script on fresh state."""
    sim = Simulation(protocol_cls(setup), keep_events=False)
    for index, value in enumerate(values):
        sim.add_client(writer_name(index)).enqueue_write(value)
    script = ScriptedScheduler(actions)
    sim.run(script, max_steps=len(actions) + 1)
    if not script.exhausted:
        raise ParameterError("replay diverged: script not fully consumed")
    return sim


def stored_indices_of(sim: Simulation, op_uid: int) -> set[int]:
    """Distinct block numbers of ``op_uid`` anywhere in the system.

    Includes base-object states, undelivered responses, and pending RMW
    parameters — every place a payload byte of the write exists outside
    its oracle.
    """
    indices: set[int] = set()

    def absorb(obj) -> None:
        for block in collect_blocks(obj):
            if block.source.op_uid == op_uid:
                indices.add(block.source.index)

    for base_object in sim.base_objects:
        if not base_object.crashed:
            absorb(base_object.state)
    for rmw in sim.applied.values():
        absorb(rmw.response)
    for rmw in sim.pending.values():
        absorb(rmw.args)
    return indices


def _block_map(sim: Simulation) -> dict[tuple, list[bytes]]:
    """Map every block location to its payload instances.

    Key: (region, source op, block number); value: sorted payload list.
    Two runs correspond (Definition 5) iff the maps agree modulo the
    replaced write's payloads.
    """
    mapping: dict[tuple, list[bytes]] = {}

    def absorb(region: tuple, obj) -> None:
        for block in collect_blocks(obj):
            key = (region, block.source.op_uid, block.source.index)
            mapping.setdefault(key, []).append(block.payload)
    for base_object in sim.base_objects:
        absorb(("bo", base_object.bo_id), base_object.state)
    for rmw in sim.applied.values():
        absorb(("resp", rmw.rmw_id), rmw.response)
    for rmw in sim.pending.values():
        absorb(("args", rmw.rmw_id), rmw.args)
    return {key: sorted(payloads) for key, payloads in mapping.items()}


@dataclass
class ReplacementReport:
    """Outcome of one Definition 5 / Lemma 1 experiment."""

    replaced_op_uid: int
    original_value: bytes
    replacement_value: bytes | None    # None: no collision existed (>= D bits)
    stored_indices: tuple[int, ...]
    states_correspond: bool            # Definition 5 item 2, at the cut
    reader_results_equal: bool
    reader_result: bytes | None
    reader_saw_replaced_write: bool    # would be a regularity violation

    @property
    def lemma1_consistent(self) -> bool:
        """The run exhibits exactly what Lemma 1 predicts."""
        if self.replacement_value is None:
            return True  # write pinned >= D bits; premise broken, no claim
        return (
            self.states_correspond
            and self.reader_results_equal
            and not self.reader_saw_replaced_write
        )


def _solo_read(sim: Simulation, max_steps: int = 50_000) -> bytes:
    """Run a fresh reader alone to completion and return its result."""
    reader = sim.add_client("solo-reader")
    reader.enqueue_read()
    result = sim.run(SoloClientScheduler("solo-reader"), max_steps=max_steps)
    read_ops = [
        op for op in sim.trace.ops.values()
        if op.kind is OpKind.READ and op.client == "solo-reader"
    ]
    if not read_ops or not read_ops[-1].complete:
        raise SchedulerExhausted(
            f"solo reader did not return within {result.steps} steps"
        )
    return read_ops[-1].result


def run_replacement_experiment(
    protocol_cls: Type[RegisterProtocol],
    setup: RegisterSetup,
    concurrency: int,
    scheduler: Scheduler,
    until,
    replaced_writer: int = 0,
    seed: int = 0,
    max_steps: int = 200_000,
) -> ReplacementReport:
    """Execute the full Definition 5 + Lemma 1 experiment.

    ``until`` defines the cut (e.g. "writer 0 has two pieces stored").
    The replaced write is ``replaced_writer``'s single write.
    """
    values = [
        make_value(setup, f"bb{index}", seed) for index in range(concurrency)
    ]
    original = record_run(
        protocol_cls, setup, values, scheduler, until, max_steps
    )
    target_uid = next(
        (
            op.op_uid
            for op in original.sim.trace.ops.values()
            if op.kind is OpKind.WRITE
            and op.client == writer_name(replaced_writer)
        ),
        None,
    )
    if target_uid is None:
        raise ParameterError("replaced writer never invoked its write")

    indices = stored_indices_of(original.sim, target_uid)
    scheme = original.sim.scheme
    delta = scheme.collision_delta(indices)
    if delta is None:
        return ReplacementReport(
            replaced_op_uid=target_uid,
            original_value=values[replaced_writer],
            replacement_value=None,
            stored_indices=tuple(sorted(indices)),
            states_correspond=True,
            reader_results_equal=True,
            reader_result=None,
            reader_saw_replaced_write=False,
        )
    replacement = xor_bytes(values[replaced_writer], delta)
    replaced_values = list(values)
    replaced_values[replaced_writer] = replacement

    mirror_sim = replay_run(protocol_cls, setup, replaced_values,
                            original.actions)

    # Definition 5, item 2: identical states except w's payloads, which
    # must equal E(replacement, i) — and on the stored (colliding) indices
    # they are bitwise identical to the original.
    original_map = _block_map(original.sim)
    mirror_map = _block_map(mirror_sim)
    correspond = set(original_map) == set(mirror_map)
    if correspond:
        for key, payloads in original_map.items():
            _region, op_uid, index = key
            mirror_payloads = mirror_map[key]
            if op_uid == target_uid:
                expected = scheme.encode_block(replacement, index)
                if any(p != expected for p in mirror_payloads):
                    correspond = False
                    break
                if index in indices and mirror_payloads != payloads:
                    correspond = False  # collision failed?!
                    break
            elif mirror_payloads != payloads:
                correspond = False
                break

    result_original = _solo_read(original.sim)
    result_mirror = _solo_read(mirror_sim)
    return ReplacementReport(
        replaced_op_uid=target_uid,
        original_value=values[replaced_writer],
        replacement_value=replacement,
        stored_indices=tuple(sorted(indices)),
        states_correspond=correspond,
        reader_results_equal=result_original == result_mirror,
        reader_result=result_original,
        reader_saw_replaced_write=result_original
        in (values[replaced_writer], replacement),
    )
