"""The Theorem 1 experiment driver (Lemma 3 made executable).

:func:`run_lower_bound_experiment` invokes ``c`` concurrent writes against a
register under the freezing adversary :class:`AdAdversary` and runs until
Lemma 3's disjunction fires:

* ``|F(t)| > f`` — at least ``f + 1`` base objects each hold ``>= ell``
  bits, so storage is at least ``(f + 1) * ell``; or
* ``|C+(t)| = c`` — all ``c`` outstanding writes each contribute more than
  ``D - ell`` bits of distinct blocks, so storage is at least
  ``c * (D - ell + 1)`` (Observation 1).

The driver also verifies Corollary 1 along the way: no write may complete
before the disjunction fires (a completion would contradict Lemma 1 for a
correct black-box register).

Setting ``ell = D/2`` instantiates Theorem 1's bound
``min((f+1), c) * D/2 = Omega(min(f, c) * D)``; setting ``ell = D`` yields
Corollary 2 (algorithms that never hold a full replica in ``f + 1`` objects
pay ``Omega(cD)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Type

from repro.lowerbound.adversary import AdAdversary, AdSnapshot, compute_snapshot
from repro.registers.base import RegisterProtocol, RegisterSetup
from repro.sim.kernel import Simulation
from repro.storage.cost import StorageMeter
from repro.workloads.generators import make_value, writer_name


@dataclass
class LowerBoundOutcome:
    """What the adversary achieved."""

    fired: str                       # "frozen", "concurrency", "both" or "none"
    time: int
    steps: int
    storage_bits: int                # Definition 2 cost when fired
    bo_state_bits: int               # base-object-state share of the above
    frozen_count: int
    c_plus_count: int
    concurrency: int                 # the c the run was configured with
    f: int
    ell_bits: int
    data_bits: int
    writes_completed: int            # must stay 0 before firing (Corollary 1)
    snapshot: AdSnapshot

    @property
    def lemma3_bound_bits(self) -> int:
        """min((f+1) * ell, c * (D - ell + 1)) — the guaranteed storage."""
        return min(
            (self.f + 1) * self.ell_bits,
            self.concurrency * (self.data_bits - self.ell_bits + 1),
        )

    @property
    def theorem1_bound_bits(self) -> int:
        """min(f, c) * D / 2 — the headline Omega(min(f, c) * D) at ell=D/2."""
        return min(self.f, self.concurrency) * self.data_bits // 2

    @property
    def bound_satisfied(self) -> bool:
        return self.storage_bits >= self.lemma3_bound_bits


def run_lower_bound_experiment(
    protocol_cls: Type[RegisterProtocol],
    setup: RegisterSetup,
    concurrency: int,
    ell_bits: int | None = None,
    max_steps: int = 500_000,
    seed: int = 0,
) -> LowerBoundOutcome:
    """Drive ``concurrency`` writes with Ad until Lemma 3 fires.

    Returns the outcome with the measured storage at the firing instant.
    ``fired == "none"`` means the budget ran out or the adversary starved
    everything first — for a correct lock-free register that indicates the
    parameters never force the disjunction (e.g. ``ell`` below the initial
    per-object load) and is surfaced for the caller to assert on.
    """
    ell = ell_bits if ell_bits is not None else setup.data_size_bits // 2
    protocol = protocol_cls(setup)
    sim = Simulation(protocol, keep_events=False)
    for index in range(concurrency):
        client = sim.add_client(writer_name(index))
        client.enqueue_write(make_value(setup, f"lb{index}", seed))

    adversary = AdAdversary(ell_bits=ell)

    def fired_state(simulation: Simulation) -> str:
        snapshot = compute_snapshot(simulation, ell, adversary._frozen)
        frozen_fired = len(snapshot.frozen) > setup.f
        # C+ can only be "all outstanding writes" once all writes started.
        started = len(snapshot.c_plus) + len(snapshot.c_minus)
        c_plus_fired = started == concurrency and len(snapshot.c_plus) == concurrency
        if frozen_fired and c_plus_fired:
            return "both"
        if frozen_fired:
            return "frozen"
        if c_plus_fired:
            return "concurrency"
        return "none"

    run = sim.run(
        adversary,
        max_steps=max_steps,
        until=lambda simulation: fired_state(simulation) != "none",
    )
    fired = fired_state(sim)
    snapshot = compute_snapshot(sim, ell, adversary._frozen)
    meter = StorageMeter(sim)
    breakdown = meter.breakdown()
    completed_writes = sum(1 for op in sim.trace.writes() if op.complete)
    return LowerBoundOutcome(
        fired=fired,
        time=sim.time,
        steps=run.steps,
        storage_bits=breakdown.total_bits,
        bo_state_bits=breakdown.bo_state_bits,
        frozen_count=len(snapshot.frozen),
        c_plus_count=len(snapshot.c_plus),
        concurrency=concurrency,
        f=setup.f,
        ell_bits=ell,
        data_bits=setup.data_size_bits,
        writes_completed=completed_writes,
        snapshot=snapshot,
    )
