"""Constructive I-colliding values (Claim 1 of the paper).

Claim 1 argues by pigeonhole that whenever a write's blocks in storage pin
fewer than ``D`` bits, two distinct values collide on those blocks (encode
identically at every stored index). For the linear codes in this package we
can do better than existence: :func:`find_colliding_pair` *computes* such a
pair from the null space of the generator submatrix, and
:func:`verify_claim1` checks the claim's premise/conclusion wiring on any
scheme that supports it.

This is the information-theoretic engine of the whole lower bound: as long
as ``sum size(i) < D`` over a write's stored indices, a reader that must
reconstruct the value from those blocks cannot distinguish the two
colliding values — so regularity forces the system to keep more bits
somewhere.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.coding.scheme import CodingScheme
from repro.errors import ParameterError


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Byte-wise XOR of equal-length strings."""
    if len(a) != len(b):
        raise ParameterError("xor_bytes requires equal lengths")
    return bytes(x ^ y for x, y in zip(a, b))


def find_colliding_pair(
    scheme: CodingScheme,
    indices: Iterable[int],
    base_value: bytes | None = None,
) -> tuple[bytes, bytes] | None:
    """Return two values that encode identically on ``indices``.

    ``None`` when the scheme proves no collision exists (the indices pin
    ``>= D`` bits) or cannot compute one. The first element is
    ``base_value`` (zeros by default); the second differs from it.
    """
    delta = scheme.collision_delta(indices)
    if delta is None:
        return None
    value = base_value if base_value is not None else bytes(scheme.data_size_bytes)
    other = xor_bytes(value, delta)
    return value, other


def verify_collision(
    scheme: CodingScheme, indices: Iterable[int], pair: tuple[bytes, bytes]
) -> bool:
    """Check that the pair really is I-colliding and distinct."""
    value, other = pair
    if value == other:
        return False
    return all(
        scheme.encode_block(value, index) == scheme.encode_block(other, index)
        for index in set(indices)
    )


@dataclass
class Claim1Report:
    """Outcome of a Claim 1 verification on one index set."""

    indices: tuple[int, ...]
    stored_bits: int
    data_bits: int
    premise_holds: bool  # stored_bits < D
    collision_found: bool
    collision_valid: bool

    @property
    def consistent_with_claim(self) -> bool:
        """Premise implies conclusion (no statement when premise fails)."""
        if not self.premise_holds:
            return True
        return self.collision_found and self.collision_valid


def verify_claim1(scheme: CodingScheme, indices: Iterable[int]) -> Claim1Report:
    """Exercise Claim 1 on ``indices``: premise, construction, validation."""
    index_tuple = tuple(sorted(set(indices)))
    stored_bits = scheme.total_bits(index_tuple)
    premise = stored_bits < scheme.data_size_bits
    pair = find_colliding_pair(scheme, index_tuple)
    return Claim1Report(
        indices=index_tuple,
        stored_bits=stored_bits,
        data_bits=scheme.data_size_bits,
        premise_holds=premise,
        collision_found=pair is not None,
        collision_valid=pair is not None and verify_collision(
            scheme, index_tuple, pair
        ),
    )


def build_colliding_family(
    scheme: CodingScheme,
    index_sets: list[Iterable[int]],
    value_factory,
) -> list[tuple[bytes, bytes]]:
    """Lemma 1's ``U_c`` construction: one colliding pair per write.

    For each write's stored index set, produce a (value, colliding partner)
    pair, with all primary values distinct (``value_factory(i)`` must return
    distinct values). Raises :class:`ParameterError` if any index set pins a
    full value — the construction then cannot proceed, exactly as in the
    paper where the premise ``||S(t, w)|| < D`` is required.
    """
    family = []
    for position, indices in enumerate(index_sets):
        base = value_factory(position)
        pair = find_colliding_pair(scheme, indices, base_value=base)
        if pair is None:
            raise ParameterError(
                f"index set #{position} pins a full value; Lemma 1 premise broken"
            )
        family.append(pair)
    return family
