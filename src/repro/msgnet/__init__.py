"""Asynchronous message-passing substrate and ABD in its native form.

The shared-memory model of Section 2 abstracts storage nodes reached over
a network; this package provides that concrete layer (processes, in-flight
messages, adversary-controlled delivery) plus the Attiya-Bar-Noy-Dolev
register implemented directly on messages, so the emulation equivalence
the paper's model rests on can be exercised end to end.

The protocol logic itself (timestamps, quorums, coded replica blocks) is
transport-agnostic: :mod:`repro.msgnet.protocol` holds the sans-I/O state
machines, :mod:`repro.msgnet.transport` defines the :class:`Transport`
seam and its simulated implementation, and :mod:`repro.service` runs the
*same* machines over asyncio TCP sockets.
"""

from repro.msgnet.abd import MsgABDSystem, OpRecord, ServerState
from repro.msgnet.network import (
    FairMsgScheduler,
    Message,
    MsgScheduler,
    Network,
    Process,
    RandomMsgScheduler,
    Receive,
    run_network,
)
from repro.msgnet.protocol import (
    ReadOperation,
    ServerProtocol,
    WriteOperation,
)
from repro.msgnet.transport import (
    SimTransport,
    Transport,
    operation_body,
    server_body,
)

__all__ = [
    "FairMsgScheduler",
    "Message",
    "MsgABDSystem",
    "MsgScheduler",
    "Network",
    "OpRecord",
    "Process",
    "RandomMsgScheduler",
    "ReadOperation",
    "Receive",
    "ServerProtocol",
    "ServerState",
    "SimTransport",
    "Transport",
    "WriteOperation",
    "operation_body",
    "run_network",
    "server_body",
]
