"""Asynchronous message-passing substrate and ABD in its native form.

The shared-memory model of Section 2 abstracts storage nodes reached over
a network; this package provides that concrete layer (processes, in-flight
messages, adversary-controlled delivery) plus the Attiya-Bar-Noy-Dolev
register implemented directly on messages, so the emulation equivalence
the paper's model rests on can be exercised end to end.
"""

from repro.msgnet.abd import MsgABDSystem, ServerState
from repro.msgnet.network import (
    FairMsgScheduler,
    Message,
    MsgScheduler,
    Network,
    Process,
    RandomMsgScheduler,
    Receive,
    run_network,
)

__all__ = [
    "FairMsgScheduler",
    "Message",
    "MsgABDSystem",
    "MsgScheduler",
    "Network",
    "Process",
    "RandomMsgScheduler",
    "Receive",
    "ServerState",
    "run_network",
]
