"""The transport seam: one interface, simulated and real implementations.

The protocol machines in :mod:`repro.msgnet.protocol` never touch a
socket or a scheduler; they speak to a :class:`Transport` — ``send`` /
``broadcast`` one payload, ``on_receive`` a push handler for inbound
payloads. This module defines that interface and implements it for the
simulated :class:`~repro.msgnet.network.Network`; the asyncio TCP twin
lives in :mod:`repro.service` (``AsyncConnectionTransport``). Swapping one
for the other changes *where* messages travel, never *what* is decided —
the parity suite (``tests/service/test_parity.py``) pins that.

This seam is also where faults plug in: :mod:`repro.faults` wraps the
simulated Network (:class:`~repro.faults.simnet.FaultyNetwork`) and
fronts the TCP sockets (:class:`~repro.faults.tcp.FaultProxyCluster`)
with the same seeded plan — the protocol machines above the seam never
know, which is the point.

The simulated network is pull-based (a process generator yields
:class:`~repro.msgnet.network.Receive` to await delivery), so
:class:`SimTransport` owns a tiny pump generator that converts pulls into
pushes; :func:`server_body` and :func:`operation_body` are the two process
bodies the message-passing ABD deployment runs on it.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.msgnet.network import Process, Receive
from repro.msgnet.protocol import ClientOperation, Payload, ServerProtocol

#: A push handler for inbound messages: ``handler(sender, payload)``.
ReceiveHandler = Callable[[str, Payload], None]


@runtime_checkable
class Transport(Protocol):
    """What a protocol machine needs from the world, and nothing more."""

    def send(self, recipient: str, payload: Payload) -> None:
        """Queue one payload for ``recipient`` (at-most-once, unordered)."""

    def broadcast(self, payload: Payload) -> None:
        """Send one payload to every peer this transport knows."""

    def on_receive(self, handler: ReceiveHandler) -> None:
        """Register the single handler for inbound payloads."""


class SimTransport:
    """:class:`Transport` over one simulated network process.

    ``send`` forwards into the network's in-flight multiset; inbound
    messages are pushed to the registered handler by :meth:`pump`, the
    generator the simulated process runs as its body.
    """

    def __init__(self, process: Process, peers: tuple[str, ...] = ()) -> None:
        self.process = process
        self.peers = tuple(peers)
        self._handler: ReceiveHandler | None = None

    def send(self, recipient: str, payload: Payload) -> None:
        self.process.send(recipient, payload)

    def broadcast(self, payload: Payload) -> None:
        for peer in self.peers:
            self.process.send(peer, payload)

    def on_receive(self, handler: ReceiveHandler) -> None:
        self._handler = handler

    def pump(self):
        """Process body: pull deliveries forever, push them to the handler."""
        while True:
            message = yield Receive()
            if self._handler is not None:
                self._handler(message.sender, message.payload)


def server_body(process: Process, protocol: ServerProtocol):
    """The simulated process body of one replica server."""
    transport = SimTransport(process)
    protocol.bind(transport)
    return transport.pump()


def operation_body(
    process: Process,
    operation: ClientOperation,
    on_done: Callable[[ClientOperation], None] | None = None,
    on_deliver: Callable[[str, Payload], None] | None = None,
):
    """The simulated process body of one client operation.

    Emits the operation's opening broadcast, then feeds every delivery to
    the machine until it reports ``done`` (an operation that never reaches
    its quorum simply blocks forever — as it must beyond ``f`` crashes).
    ``on_deliver`` observes the raw reply stream; the parity tests use it
    to record a replayable delivery schedule.
    """

    def emit(outgoing):
        for recipient, payload in outgoing:
            process.send(recipient, payload)

    emit(operation.start())
    while not operation.done:
        message = yield Receive()
        if on_deliver is not None:
            on_deliver(message.sender, message.payload)
        emit(operation.on_message(message.sender, message.payload))
    if on_done is not None:
        on_done(operation)
