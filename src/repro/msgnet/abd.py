"""ABD over real messages — the register in its native habitat.

Attiya-Bar-Noy-Dolev [4] is a *message-passing* algorithm; the paper's
shared-memory model abstracts it. This module closes the loop: ``n = 2f+1``
server processes each hold one timestamped replica, clients broadcast
request messages and await majority acknowledgements, and the network
scheduler (fair or adversarial-random) controls every delivery.

Since the protocol/transport split, the state machines themselves live in
:mod:`repro.msgnet.protocol` (:class:`~repro.msgnet.protocol.ServerProtocol`,
:class:`~repro.msgnet.protocol.WriteOperation`,
:class:`~repro.msgnet.protocol.ReadOperation`) — the very same classes the
asyncio TCP service (:mod:`repro.service`) runs over real sockets. This
module is only the *simulated deployment*: it instantiates the machines on
:mod:`repro.msgnet.network` processes via
:mod:`repro.msgnet.transport`'s generator drivers.

The point of the module is the *equivalence* the paper relies on: the
message-passing system and the shared-memory emulation have the same
storage profile (``(2f+1) D`` server bits, replicas transiently riding the
network) and the same consistency level — demonstrated in
``tests/msgnet/`` by running both and checking both histories with the
same checker, and extended to real TCP in ``tests/service/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.coding.replication import ReplicationCode
from repro.errors import ParameterError
from repro.msgnet.network import (
    FairMsgScheduler,
    MsgScheduler,
    Network,
    run_network,
)
from repro.msgnet.protocol import (
    Payload,
    ReadOperation,
    ServerProtocol,
    ServerState,
    WriteOperation,
)
from repro.msgnet.transport import operation_body, server_body
from repro.sim.trace import OpKind
from repro.spec.histories import History, HOp

__all__ = ["MsgABDSystem", "OpRecord", "ServerState"]


@dataclass
class OpRecord:
    client: str
    kind: OpKind
    written: bytes | None
    invoke_time: int
    return_time: int | None = None
    result: Any = None


class MsgABDSystem:
    """A complete message-passing ABD deployment (simulated transport)."""

    def __init__(self, f: int, data_size_bytes: int,
                 initial_value: bytes | None = None,
                 network: Network | None = None) -> None:
        if f < 1:
            raise ParameterError("f must be >= 1")
        self.f = f
        self.n = 2 * f + 1
        self.majority = f + 1
        self.scheme = ReplicationCode(data_size_bytes, n=self.n)
        self.v0 = initial_value or bytes(data_size_bytes)
        self.network = network if network is not None else Network()
        self.clock = 0
        self.server_states: dict[str, ServerState] = {}
        self.ops: list[OpRecord] = []
        #: Quorum/timestamp decisions in commit order — the parity log.
        self.decisions: list[tuple] = []
        #: Per-client reply deliveries, replayable through fresh machines.
        self.deliveries: dict[str, list[tuple[str, Payload]]] = {}
        #: Unfinished operations by client name — the chaos runner's
        #: resend hook (:func:`repro.faults.simnet.run_chaos`).
        self.live_ops: dict[str, object] = {}
        self._next_op_uid = 0
        self.server_names = [f"s{i}" for i in range(self.n)]
        for index, name in enumerate(self.server_names):
            process = self.network.add_process(name)
            protocol = ServerProtocol(name, self.scheme, index, self.v0)
            self.server_states[name] = protocol.state
            process.start(server_body(process, protocol))

    # ------------------------------------------------------------- clients

    def add_writer(self, name: str, value: bytes) -> None:
        operation = WriteOperation(
            name, self._take_op_uid(), value, self.scheme,
            self.server_names, self.majority, decisions=self.decisions,
        )
        self._launch(name, OpKind.WRITE, value, operation)

    def add_reader(self, name: str) -> None:
        operation = ReadOperation(
            name, self._take_op_uid(), self.scheme,
            self.server_names, self.majority, decisions=self.decisions,
        )
        self._launch(name, OpKind.READ, None, operation)

    def _take_op_uid(self) -> int:
        op_uid = self._next_op_uid
        self._next_op_uid += 1
        return op_uid

    def _launch(self, name, kind, written, operation) -> None:
        record = OpRecord(name, kind, written, self.clock)
        self.ops.append(record)
        log = self.deliveries.setdefault(name, [])
        self.live_ops[name] = operation
        process = self.network.add_process(name)

        def finish(op):
            record.return_time = self.clock
            record.result = op.result
            self.live_ops.pop(name, None)

        process.start(operation_body(
            process, operation, on_done=finish,
            on_deliver=lambda sender, payload: log.append((sender, payload)),
        ))

    # ----------------------------------------------------------------- run

    def run(self, scheduler: MsgScheduler | None = None,
            max_steps: int = 200_000) -> int:
        scheduler = scheduler or FairMsgScheduler()

        def tick(network, action):
            self.clock += 1
            network.advance(self.clock)

        return run_network(self.network, scheduler, max_steps=max_steps,
                           on_action=tick)

    def resend_pending(self) -> int:
        """Re-emit every blocked operation's unanswered requests.

        The simulated analogue of the TCP client's retry timer: under
        message loss the no-resend generator bodies block forever, so an
        outer driver (:func:`repro.faults.simnet.run_chaos`) calls this
        between scheduling rounds. Re-sent requests traverse the network
        (and any installed fault layer) like first sends; the protocol
        machines deduplicate the extra replies. Returns the number of
        messages emitted.
        """
        emitted = 0
        for name, operation in list(self.live_ops.items()):
            process = self.network.processes[name]
            if process.crashed or process.terminated:
                continue
            for recipient, payload in operation.resend():
                self.network.send(name, recipient, payload)
                emitted += 1
        return emitted

    @property
    def pending_ops(self) -> int:
        """Operations that have not yet returned."""
        return sum(
            1 for record in self.ops if record.return_time is None
        )

    def crash_server(self, name: str) -> None:
        self.network.crash_process(name)

    # ------------------------------------------------------------ metering

    def server_storage_bits(self) -> int:
        """Replica bits at live servers — the bo-state analogue."""
        return sum(
            state.block.size_bits
            for name, state in self.server_states.items()
            if not self.network.processes[name].crashed
        )

    def total_storage_bits(self) -> int:
        """Servers + in-flight messages (Definition 2's channel charge)."""
        return self.server_storage_bits() + self.network.storage_bits_in_flight()

    # ------------------------------------------------------------- history

    def history(self) -> History:
        ops = [
            HOp(
                op_uid=index,
                client=record.client,
                kind=record.kind,
                written=record.written,
                result=record.result,
                invoke_time=record.invoke_time,
                return_time=record.return_time,
            )
            for index, record in enumerate(self.ops)
        ]
        return History(ops, self.v0)
