"""ABD over real messages — the register in its native habitat.

Attiya-Bar-Noy-Dolev [4] is a *message-passing* algorithm; the paper's
shared-memory model abstracts it. This module closes the loop: ``n = 2f+1``
server processes each hold one timestamped replica, clients broadcast
request messages and await majority acknowledgements, and the network
scheduler (fair or adversarial-random) controls every delivery.

Protocol (single-writer-per-client, MWMR via timestamp tie-break):

* write(v): broadcast ``read-ts``; on a majority of replies pick
  ``ts = (max + 1, name)``; broadcast ``write`` carrying the replica
  block; return on a majority of acks.
* read(): broadcast ``read``; on a majority of replies return the
  highest-timestamped replica (no write-back — strongly regular, exactly
  like :class:`repro.registers.abd.ABDRegister`).

The point of the module is the *equivalence* the paper relies on: the
message-passing system and the shared-memory emulation have the same
storage profile (``(2f+1) D`` server bits, replicas transiently riding the
network) and the same consistency level — demonstrated in
``tests/msgnet/`` by running both and checking both histories with the
same checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.coding.oracles import BlockSource, CodeBlock
from repro.coding.replication import ReplicationCode
from repro.errors import ParameterError
from repro.msgnet.network import (
    FairMsgScheduler,
    MsgScheduler,
    Network,
    Receive,
    run_network,
)
from repro.registers.base import INITIAL_OP_UID
from repro.registers.timestamps import TS_ZERO, Timestamp
from repro.sim.trace import OpKind
from repro.spec.histories import History, HOp


@dataclass
class ServerState:
    """One server's replica (exposed for storage metering)."""

    block: CodeBlock
    ts: Timestamp


@dataclass
class OpRecord:
    client: str
    kind: OpKind
    written: bytes | None
    invoke_time: int
    return_time: int | None = None
    result: Any = None


class MsgABDSystem:
    """A complete message-passing ABD deployment."""

    def __init__(self, f: int, data_size_bytes: int,
                 initial_value: bytes | None = None) -> None:
        if f < 1:
            raise ParameterError("f must be >= 1")
        self.f = f
        self.n = 2 * f + 1
        self.majority = f + 1
        self.scheme = ReplicationCode(data_size_bytes, n=self.n)
        self.v0 = initial_value or bytes(data_size_bytes)
        self.network = Network()
        self.clock = 0
        self.server_states: dict[str, ServerState] = {}
        self.ops: list[OpRecord] = []
        self._next_op_uid = 0
        self.server_names = [f"s{i}" for i in range(self.n)]
        for index, name in enumerate(self.server_names):
            process = self.network.add_process(name)
            block = CodeBlock(
                payload=self.scheme.encode_block(self.v0, index),
                index=index,
                source=BlockSource(INITIAL_OP_UID, index),
                size_bits=self.scheme.block_size_bits(index),
            )
            self.server_states[name] = ServerState(block, TS_ZERO)
            process.start(self._server_body(process, name))

    # ------------------------------------------------------------- servers

    def _server_body(self, process, name):
        state = self.server_states[name]
        while True:
            message = yield Receive()
            tag, request_id, *rest = message.payload
            if tag == "read-ts":
                process.send(message.sender, ("ts", request_id, state.ts))
            elif tag == "write":
                ts, block = rest
                if ts > state.ts:
                    state.ts = ts
                    state.block = block
                process.send(message.sender, ("ack", request_id))
            elif tag == "read":
                process.send(
                    message.sender, ("value", request_id, state.ts, state.block)
                )

    # ------------------------------------------------------------- clients

    def add_writer(self, name: str, value: bytes) -> None:
        self.scheme.check_value(value)
        record = OpRecord(name, OpKind.WRITE, value, self.clock)
        self.ops.append(record)
        op_uid = self._next_op_uid
        self._next_op_uid += 1
        process = self.network.add_process(name)
        process.start(self._writer_body(process, name, value, op_uid, record))

    def add_reader(self, name: str) -> None:
        record = OpRecord(name, OpKind.READ, None, self.clock)
        self.ops.append(record)
        process = self.network.add_process(name)
        process.start(self._reader_body(process, name, record))

    def _collect(self, request_id: int, want_tag: str, count: int):
        """Sub-generator: gather ``count`` matching replies."""
        replies = []
        while len(replies) < count:
            message = yield Receive()
            tag, rid, *rest = message.payload
            if tag == want_tag and rid == request_id:
                replies.append(rest)
        return replies

    def _writer_body(self, process, name, value, op_uid, record):
        # Phase 1: read timestamps from a majority.
        for server in self.server_names:
            process.send(server, ("read-ts", 2 * op_uid))
        replies = yield from self._collect(2 * op_uid, "ts", self.majority)
        max_ts = max(reply[0] for reply in replies)
        ts = Timestamp(max_ts.num + 1, name)
        # Phase 2: store the replica at a majority. Each message carries a
        # full replica block — this is the in-flight cost the model charges.
        for index, server in enumerate(self.server_names):
            block = CodeBlock(
                payload=self.scheme.encode_block(value, index),
                index=index,
                source=BlockSource(op_uid, index),
                size_bits=self.scheme.block_size_bits(index),
            )
            process.send(server, ("write", 2 * op_uid + 1, ts, block))
        yield from self._collect(2 * op_uid + 1, "ack", self.majority)
        record.return_time = self.clock
        record.result = "ok"

    def _reader_body(self, process, name, record):
        request_id = 10_000 + len(self.ops)
        for server in self.server_names:
            process.send(server, ("read", request_id))
        replies = yield from self._collect(request_id, "value", self.majority)
        best_ts, best_block = max(replies, key=lambda reply: reply[0])
        record.return_time = self.clock
        record.result = self.scheme.decode({best_block.index: best_block.payload})

    # ----------------------------------------------------------------- run

    def run(self, scheduler: MsgScheduler | None = None,
            max_steps: int = 200_000) -> int:
        scheduler = scheduler or FairMsgScheduler()

        def tick(network, action):
            self.clock += 1

        return run_network(self.network, scheduler, max_steps=max_steps,
                           on_action=tick)

    def crash_server(self, name: str) -> None:
        self.network.crash_process(name)

    # ------------------------------------------------------------ metering

    def server_storage_bits(self) -> int:
        """Replica bits at live servers — the bo-state analogue."""
        return sum(
            state.block.size_bits
            for name, state in self.server_states.items()
            if not self.network.processes[name].crashed
        )

    def total_storage_bits(self) -> int:
        """Servers + in-flight messages (Definition 2's channel charge)."""
        return self.server_storage_bits() + self.network.storage_bits_in_flight()

    # ------------------------------------------------------------- history

    def history(self) -> History:
        ops = [
            HOp(
                op_uid=index,
                client=record.client,
                kind=record.kind,
                written=record.written,
                result=record.result,
                invoke_time=record.invoke_time,
                return_time=record.return_time,
            )
            for index, record in enumerate(self.ops)
        ]
        return History(ops, self.v0)
