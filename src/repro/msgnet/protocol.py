"""Transport-agnostic ABD protocol machines (the sans-I/O core).

Attiya-Bar-Noy-Dolev is a *message* protocol: its correctness lives in
what a participant decides when a payload arrives, not in how the payload
travelled. This module isolates exactly that decision layer — timestamps,
quorum tracking, coded replica blocks, server state — as plain state
machines with **no transport reference at all**:

* :class:`ServerProtocol` — one replica server. ``handle(sender, payload)``
  is a pure step: it mutates the replica state and returns the replies to
  emit, ``[(recipient, payload), ...]``.
* :class:`WriteOperation` / :class:`ReadOperation` — one client operation
  each. ``start()`` returns the opening broadcast; ``on_message`` consumes
  one reply and returns follow-up messages; ``done``/``result`` expose the
  outcome. Duplicate replies (a retried request answered twice) are
  deduplicated by sender, so the machines are safe under at-least-once
  transports.

Every quorum/timestamp decision is appended to a caller-supplied
``decisions`` list — ``("choose-ts", op_uid, num, client)`` and friends —
which is what the sim-vs-TCP parity tests compare: the *same* machine
driven over the simulated :class:`~repro.msgnet.network.Network` and over
the asyncio TCP transport (``repro.service``) must log identical
decisions. There is deliberately no protocol code anywhere else: both
transports import these classes (see ``repro.msgnet.transport`` and
``repro.service.server`` / ``repro.service.client``).

Message vocabulary (all payloads are tuples ``(tag, request_id, *rest)``;
request ids are ``(op_uid, phase)`` pairs, unique per client):

====================  =======================================  =================
request               reply                                    server effect
====================  =======================================  =================
``("read-ts", rid)``  ``("ts", rid, ts)``                      none
``("write", rid,      ``("ack", rid)``                         adopt ``(ts,
ts, block)``                                                   block)`` if newer
``("read", rid)``     ``("value", rid, ts, block)``            none
``("status", rid)``   ``("status-reply", rid, ts, size_bits,   none
                      applied_count)``
``("ping", rid)``     ``("pong", rid)``                        none
====================  =======================================  =================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.coding.oracles import BlockSource, CodeBlock
from repro.coding.scheme import CodingScheme
from repro.errors import ProtocolError
from repro.registers.base import INITIAL_OP_UID
from repro.registers.timestamps import TS_ZERO, Timestamp

# ----------------------------------------------------------- message tags

READ_TS = "read-ts"
REPLY_TS = "ts"
WRITE = "write"
REPLY_ACK = "ack"
READ = "read"
REPLY_VALUE = "value"
STATUS = "status"
REPLY_STATUS = "status-reply"
PING = "ping"
REPLY_PONG = "pong"

#: One protocol message: ``(tag, request_id, *rest)``.
Payload = tuple
#: Messages a machine wants sent: ``[(recipient, payload), ...]``.
Outgoing = list[tuple[str, Payload]]


@dataclass
class ServerState:
    """One server's replica (exposed for storage metering)."""

    block: CodeBlock
    ts: Timestamp


def initial_block(scheme: CodingScheme, value: bytes, index: int) -> CodeBlock:
    """The block a fresh replica holds for the initial value ``v0``."""
    return CodeBlock(
        payload=scheme.encode_block(value, index),
        index=index,
        source=BlockSource(INITIAL_OP_UID, index),
        size_bits=scheme.block_size_bits(index),
    )


class ServerProtocol:
    """The replica-side ABD state machine.

    Holds one timestamped block and answers the five request tags. The
    only mutation is the ``write`` rule — adopt strictly newer ``(ts,
    block)`` pairs — which makes retried writes idempotent: an equal-ts
    replay is acknowledged without touching state. ``on_apply`` (when set)
    fires *before* the ack is returned, so a write-ahead journal that
    appends in the callback is guaranteed to persist state ahead of the
    acknowledgement (the crash-recovery contract).
    """

    def __init__(
        self,
        name: str,
        scheme: CodingScheme,
        index: int,
        initial_value: bytes,
        state: ServerState | None = None,
        on_apply: Callable[[Timestamp, CodeBlock], None] | None = None,
    ) -> None:
        self.name = name
        self.scheme = scheme
        self.index = index
        self.state = state or ServerState(
            initial_block(scheme, initial_value, index), TS_ZERO
        )
        self.on_apply = on_apply
        self.applied_count = 0

    # ----------------------------------------------------------- stepping

    def handle(self, sender: str, payload: Payload) -> Outgoing:
        """Consume one request; return the replies to emit."""
        tag, request_id, *rest = payload
        if tag == READ_TS:
            return [(sender, (REPLY_TS, request_id, self.state.ts))]
        if tag == WRITE:
            ts, block = rest
            if ts > self.state.ts:
                self.state.ts = ts
                self.state.block = block
                self.applied_count += 1
                if self.on_apply is not None:
                    self.on_apply(ts, block)
            return [(sender, (REPLY_ACK, request_id))]
        if tag == READ:
            return [(
                sender,
                (REPLY_VALUE, request_id, self.state.ts, self.state.block),
            )]
        if tag == STATUS:
            return [(
                sender,
                (REPLY_STATUS, request_id, self.state.ts,
                 self.state.block.size_bits, self.applied_count),
            )]
        if tag == PING:
            return [(sender, (REPLY_PONG, request_id))]
        raise ProtocolError(f"server {self.name}: unknown request tag {tag!r}")

    def bind(self, transport: "Transport") -> None:
        """Drive this server from a push transport (see ``Transport``)."""
        transport.on_receive(
            lambda sender, payload: [
                transport.send(recipient, reply)
                for recipient, reply in self.handle(sender, payload)
            ]
        )


# ------------------------------------------------------ client operations


class _QuorumRound:
    """Replies to one broadcast, deduplicated by responding server."""

    def __init__(self, want_tag: str, request_id: tuple, need: int) -> None:
        self.want_tag = want_tag
        self.request_id = request_id
        self.need = need
        self.replies: dict[str, tuple] = {}
        self.closed = False

    def offer(self, sender: str, payload: Payload) -> bool:
        """Absorb a reply; True when this message completed the quorum."""
        tag, request_id, *rest = payload
        if self.closed or tag != self.want_tag \
                or request_id != self.request_id:
            return False
        if sender in self.replies:  # duplicate via retry — ignore
            return False
        self.replies[sender] = tuple(rest)
        if len(self.replies) >= self.need:
            self.closed = True
            return True
        return False


class ClientOperation:
    """Common machinery: phase bookkeeping, resend, decision logging."""

    kind: str

    def __init__(
        self,
        client: str,
        op_uid: int,
        scheme: CodingScheme,
        servers: Sequence[str],
        majority: int,
        decisions: list[tuple] | None = None,
    ) -> None:
        self.client = client
        self.op_uid = op_uid
        self.scheme = scheme
        self.servers = list(servers)
        self.majority = majority
        self.decisions = decisions if decisions is not None else []
        self.done = False
        self.result: Any = None
        self._round: _QuorumRound | None = None
        self._current: Outgoing = []

    def _open_round(
        self, phase: int, want_tag: str, requests: Outgoing
    ) -> Outgoing:
        self._round = _QuorumRound(want_tag, (self.op_uid, phase), self.majority)
        self._current = requests
        return list(requests)

    def resend(self) -> Outgoing:
        """Re-emit the current phase's requests to servers still silent.

        Safe under at-least-once delivery: replies are deduplicated by
        sender and server-side writes are idempotent at equal timestamps.
        """
        if self.done or self._round is None:
            return []
        answered = self._round.replies.keys()
        return [
            (server, payload)
            for server, payload in self._current
            if server not in answered
        ]

    def unanswered(self) -> list[str]:
        """Servers still silent in the current phase (diagnostics)."""
        if self.done or self._round is None:
            return []
        return [
            server for server, _payload in self._current
            if server not in self._round.replies
        ]

    def answered(self) -> list[str]:
        """Servers that already replied in the current phase."""
        if self._round is None:
            return []
        return list(self._round.replies)

    def _decide(self, *entry: object) -> None:
        self.decisions.append(tuple(entry))

    def start(self) -> Outgoing:
        raise NotImplementedError

    def on_message(self, sender: str, payload: Payload) -> Outgoing:
        raise NotImplementedError


class WriteOperation(ClientOperation):
    """One ABD write: read-ts round, then store at a majority."""

    kind = "write"

    def __init__(
        self,
        client: str,
        op_uid: int,
        value: bytes,
        scheme: CodingScheme,
        servers: Sequence[str],
        majority: int,
        decisions: list[tuple] | None = None,
    ) -> None:
        super().__init__(client, op_uid, scheme, servers, majority, decisions)
        scheme.check_value(value)
        self.value = value
        self.chosen_ts: Timestamp | None = None

    def start(self) -> Outgoing:
        return self._open_round(1, REPLY_TS, [
            (server, (READ_TS, (self.op_uid, 1)))
            for server in self.servers
        ])

    def on_message(self, sender: str, payload: Payload) -> Outgoing:
        if self.done or not self._round.offer(sender, payload):
            return []
        if self.chosen_ts is None:
            # Phase 1 quorum: pick the next timestamp above everything seen.
            self._decide("phase1-quorum", self.op_uid, len(self._round.replies))
            max_ts = max(reply[0] for reply in self._round.replies.values())
            self.chosen_ts = Timestamp(max_ts.num + 1, self.client)
            self._decide("choose-ts", self.op_uid,
                         self.chosen_ts.num, self.chosen_ts.client)
            # Phase 2: every message carries a full replica block — the
            # in-flight cost the model charges (Section 3.2).
            return self._open_round(2, REPLY_ACK, [
                (server, (WRITE, (self.op_uid, 2), self.chosen_ts,
                          self._block_for(index)))
                for index, server in enumerate(self.servers)
            ])
        self._decide("phase2-quorum", self.op_uid, len(self._round.replies))
        self.done = True
        self.result = "ok"
        return []

    def _block_for(self, index: int) -> CodeBlock:
        return CodeBlock(
            payload=self.scheme.encode_block(self.value, index),
            index=index,
            source=BlockSource(self.op_uid, index),
            size_bits=self.scheme.block_size_bits(index),
        )


class ReadOperation(ClientOperation):
    """One ABD read: collect a majority, return the freshest replica.

    No write-back — strongly regular, exactly like
    :class:`repro.registers.abd.ABDRegister`.
    """

    kind = "read"

    def start(self) -> Outgoing:
        return self._open_round(1, REPLY_VALUE, [
            (server, (READ, (self.op_uid, 1)))
            for server in self.servers
        ])

    def on_message(self, sender: str, payload: Payload) -> Outgoing:
        if self.done or not self._round.offer(sender, payload):
            return []
        self._decide("read-quorum", self.op_uid, len(self._round.replies))
        best_ts, best_block = max(
            self._round.replies.values(), key=lambda reply: reply[0]
        )
        self._decide("read-select", self.op_uid, best_ts.num, best_ts.client)
        self.done = True
        self.result = self.scheme.decode({best_block.index: best_block.payload})
        return []
