"""An asynchronous message-passing simulator.

The paper's Section 2 model — fault-prone shared memory — is the standard
abstraction of a *message-passing* system where each base object lives on
a storage node reachable over an asynchronous network (the reduction of
Attiya-Bar-Noy-Dolev [4]). This package provides that concrete layer:

* :class:`Process` — a generator coroutine with a mailbox; it sends
  messages and yields :class:`Receive` to await delivery;
* :class:`Network` — the in-flight message multiset plus crash state;
  delivery order is fully scheduler-controlled (per-link FIFO is *not*
  assumed — the weakest, paper-compatible network);
* :class:`MsgScheduler` implementations — fair and seeded-random.

Storage accounting carries over unchanged: a message payload may contain
:class:`~repro.coding.oracles.CodeBlock` instances, and
:func:`network_storage_bits` charges them exactly like the kernel charges
pending RMW parameters — "information in channels is counted"
(Section 3.2).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Generator

from repro.errors import ProtocolError, SimulationError
from repro.storage.blockstore import collect_blocks


@dataclass(frozen=True)
class Message:
    """One in-flight message."""

    msg_id: int
    sender: str
    recipient: str
    payload: Any

    def payload_bits(self) -> int:
        return sum(block.size_bits for block in collect_blocks(self.payload))


@dataclass
class Receive:
    """Yielded by a process: resume when at least one message is queued."""


ProcessBody = Generator[Receive, Message, None]


class Process:
    """A named process driven by a generator coroutine.

    The body communicates by calling :meth:`Network.send` (via its handle)
    and yielding :class:`Receive`; the network resumes it with one queued
    message per resumption.
    """

    def __init__(self, name: str, network: "Network") -> None:
        self.name = name
        self.network = network
        self.mailbox: list[Message] = []
        self.body: ProcessBody | None = None
        self.crashed = False
        self.terminated = False
        self._waiting = False

    # ------------------------------------------------------------- actions

    def send(self, recipient: str, payload: Any) -> None:
        self.network.send(self.name, recipient, payload)

    def start(self, body: ProcessBody) -> None:
        if self.body is not None:
            raise ProtocolError(f"process {self.name} already started")
        self.body = body
        self._advance(None)

    def deliver(self, message: Message) -> None:
        """Queue a message; the scheduler later steps the process."""
        self.mailbox.append(message)

    def runnable(self) -> bool:
        if self.crashed or self.terminated or self.body is None:
            return False
        return not self._waiting or bool(self.mailbox)

    def step(self) -> None:
        """Resume the body with the oldest queued message (if waiting)."""
        if self.crashed or self.terminated:
            raise ProtocolError(f"stepping dead process {self.name}")
        if self._waiting:
            if not self.mailbox:
                return
            message = self.mailbox.pop(0)
            self._advance(message)
        else:
            self._advance(None)

    def _advance(self, message: Message | None) -> None:
        try:
            yielded = self.body.send(message)
        except StopIteration:
            self.terminated = True
            self._waiting = False
            return
        if not isinstance(yielded, Receive):
            raise ProtocolError(
                f"process {self.name} yielded {type(yielded).__name__}; "
                "expected Receive"
            )
        self._waiting = True

    def crash(self) -> None:
        self.crashed = True


class Network:
    """The asynchronous network: processes + in-flight messages."""

    def __init__(self) -> None:
        self.processes: dict[str, Process] = {}
        self.in_flight: dict[int, Message] = {}
        self._next_msg_id = 0
        self.delivered_count = 0

    # ------------------------------------------------------------ topology

    def add_process(self, name: str) -> Process:
        if name in self.processes:
            raise SimulationError(f"duplicate process {name!r}")
        process = Process(name, self)
        self.processes[name] = process
        return process

    def crash_process(self, name: str) -> None:
        process = self.processes[name]
        process.crash()
        # Messages addressed to a crashed process are dropped eagerly.
        for msg_id in [m for m, msg in self.in_flight.items()
                       if msg.recipient == name]:
            del self.in_flight[msg_id]

    # ------------------------------------------------------------ transport

    def send(self, sender: str, recipient: str, payload: Any) -> None:
        if recipient not in self.processes:
            raise ProtocolError(f"send to unknown process {recipient!r}")
        if self.processes[recipient].crashed:
            return  # silently dropped
        message = Message(self._next_msg_id, sender, recipient, payload)
        self._next_msg_id += 1
        self.in_flight[message.msg_id] = message

    def deliverable(self) -> list[Message]:
        """In-flight messages whose recipient is alive, oldest first."""
        return sorted(
            (
                message
                for message in self.in_flight.values()
                if not self.processes[message.recipient].crashed
            ),
            key=lambda message: message.msg_id,
        )

    def deliver(self, msg_id: int) -> None:
        message = self.in_flight.pop(msg_id)
        self.processes[message.recipient].deliver(message)
        self.delivered_count += 1

    # ------------------------------------------------------------ queries

    def runnable_processes(self) -> list[Process]:
        return [p for p in self.processes.values() if p.runnable()]

    def quiescent(self) -> bool:
        return not self.deliverable() and not self.runnable_processes()

    def storage_bits_in_flight(self) -> int:
        """Bits in code blocks riding the network right now."""
        return sum(message.payload_bits() for message in self.in_flight.values())

    # -------------------------------------------------------------- clock

    def advance(self, tick: int) -> None:
        """Clock hook: the runner reports scheduler time after each action.

        The base network is timeless; :class:`repro.faults.simnet.FaultyNetwork`
        overrides this to release delayed messages and fire partition /
        crash windows at their scheduled ticks.
        """


class MsgScheduler(ABC):
    """Chooses the next network action: deliver a message or step a process."""

    @abstractmethod
    def next_action(self, network: Network) -> tuple[str, Any] | None:
        """Return ("deliver", msg_id) or ("step", process_name) or None."""


class FairMsgScheduler(MsgScheduler):
    """Alternate deliveries (FIFO) and process steps (LRU)."""

    def __init__(self) -> None:
        self._phase = 0
        self._last_step: dict[str, int] = {}
        self._counter = 0

    def next_action(self, network: Network) -> tuple[str, Any] | None:
        for offset in range(2):
            phase = (self._phase + offset) % 2
            if phase == 0:
                deliverable = network.deliverable()
                if deliverable:
                    self._phase = (phase + 1) % 2
                    return ("deliver", deliverable[0].msg_id)
            else:
                runnable = network.runnable_processes()
                if runnable:
                    runnable.sort(
                        key=lambda p: self._last_step.get(p.name, -1)
                    )
                    chosen = runnable[0]
                    self._counter += 1
                    self._last_step[chosen.name] = self._counter
                    self._phase = (phase + 1) % 2
                    return ("step", chosen.name)
        return None


class RandomMsgScheduler(MsgScheduler):
    """Uniformly random enabled action (seeded)."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def next_action(self, network: Network) -> tuple[str, Any] | None:
        actions: list[tuple[str, Any]] = [
            ("deliver", message.msg_id) for message in network.deliverable()
        ]
        actions.extend(
            ("step", process.name)
            for process in network.runnable_processes()
        )
        if not actions:
            return None
        return self.rng.choice(actions)


def run_network(
    network: Network,
    scheduler: MsgScheduler,
    max_steps: int = 200_000,
    on_action=None,
) -> int:
    """Drive the network until quiescence or budget; return steps taken."""
    steps = 0
    while steps < max_steps:
        action = scheduler.next_action(network)
        if action is None:
            return steps
        kind, target = action
        if kind == "deliver":
            network.deliver(target)
        else:
            network.processes[target].step()
        if on_action is not None:
            on_action(network, action)
        steps += 1
    return steps
