"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
distinguishing the failure domains (coding, simulation, protocol, checking).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class CodingError(ReproError):
    """Base class for erasure-coding failures."""


class EncodingError(CodingError):
    """A value could not be encoded (bad length, bad parameters)."""


class DecodingError(CodingError):
    """A value could not be reconstructed from the supplied blocks."""


class ParameterError(ReproError, ValueError):
    """A constructor or function was given inconsistent parameters."""


class SimulationError(ReproError):
    """Base class for simulator kernel failures."""


class ProtocolError(SimulationError):
    """A protocol coroutine violated the kernel contract."""


class SchedulerExhausted(SimulationError):
    """The scheduler ran out of actions (or budget) before quiescence."""


class ObjectCrashed(SimulationError):
    """An RMW was applied to a crashed base object (kernel bug guard)."""


class MeasurementError(SimulationError):
    """The incremental storage ledger diverged from the full-walk meter."""


class CheckpointError(ReproError):
    """A sweep checkpoint journal is unusable (wrong grid, corrupt body)."""


class FaultPlanError(ReproError, ValueError):
    """A fault-injection plan is inconsistent (bad rates, budget over f)."""


class ServiceError(ReproError):
    """Base class for networked storage-service failures."""


class WireError(ServiceError):
    """A frame or payload could not be encoded/decoded (bad wire data)."""


class JournalError(ServiceError, CheckpointError):
    """A replica journal is unusable (wrong replica config, corrupt body).

    Mirrors :class:`CheckpointError` semantics — a truncated trailing
    line (the kill-mid-write artifact) is tolerated by loaders, anything
    else raises — and subclasses it so journal-aware callers can catch
    either domain with one clause.
    """


class QuorumTimeout(ServiceError):
    """A client operation exhausted its retries or deadline without quorum.

    Carries structured diagnostics alongside the message so callers (and
    ``repro chaos``) can report *which* replicas were unreachable:
    ``op_kind``/``op_uid``/``client`` identify the operation, ``needed``
    is the quorum size, ``answered``/``silent`` partition the contacted
    replicas, and ``attempts``/``elapsed_s``/``deadline_s`` describe the
    retry budget that ran out.
    """

    def __init__(
        self,
        message: str,
        *,
        op_kind: str | None = None,
        op_uid: int | None = None,
        client: str | None = None,
        needed: int | None = None,
        answered: tuple[str, ...] = (),
        silent: tuple[str, ...] = (),
        attempts: int = 0,
        elapsed_s: float = 0.0,
        deadline_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.op_kind = op_kind
        self.op_uid = op_uid
        self.client = client
        self.needed = needed
        self.answered = tuple(answered)
        self.silent = tuple(silent)
        self.attempts = attempts
        self.elapsed_s = elapsed_s
        self.deadline_s = deadline_s


class DaemonError(ServiceError):
    """The daemon lifecycle failed (stale state dir, unresponsive server)."""


class AlreadyRunningError(DaemonError):
    """``repro serve`` found a live cluster in the state dir (double start)."""


class NotRunningError(DaemonError):
    """``repro stop``/``status`` found no live cluster in the state dir."""


class SpecError(ReproError):
    """Base class for consistency-checker failures."""


class MalformedHistory(SpecError):
    """A history violates well-formedness (overlapping ops on one client)."""
