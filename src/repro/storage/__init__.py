"""Storage accounting: block discovery and the Definition 2/6 cost meter."""

from repro.storage.blockstore import (
    collect_blocks,
    distinct_source_bits,
    distinct_source_bits_many,
    sources_present,
    total_bits,
)
from repro.storage.cost import (
    CostBreakdown,
    PeakTracker,
    ReferenceStorageMeter,
    StorageLedger,
    StorageMeter,
)

__all__ = [
    "CostBreakdown",
    "PeakTracker",
    "ReferenceStorageMeter",
    "StorageLedger",
    "StorageMeter",
    "collect_blocks",
    "distinct_source_bits",
    "distinct_source_bits_many",
    "sources_present",
    "total_bits",
]
