"""The storage-cost meter (Definitions 2 and 6 of the paper).

Definition 2 counts the bits of every block instance stored anywhere in the
system at a point in time. Concretely, at any time the meter sums block bits
over:

* every live base object's state (blocks the protocol stored),
* every applied-but-undelivered RMW response (the paper folds these into
  the base object's state: "all the responses of pending RMWs that took
  effect on it"),
* every triggered-but-unapplied RMW's parameters (part of the triggering
  client's state: "the parameters of its pending RMWs that have not yet
  taken effect" — this is how the paper charges algorithms that park data
  in channels).

Meta-data (timestamps, counters) is free, and coding-oracle state is free.

Definition 6's ``||S(t, w)||`` — the bits operation ``w`` contributes in
*distinct-index* blocks outside its own client — is provided by
:meth:`StorageMeter.op_contribution_bits`, with an optional base-object
restriction used by the adversary's ``C-(t)`` bookkeeping (Lemma 2 applies
it to ``B \\ F(t)``).

Two implementations measure the same quantity:

* :class:`ReferenceStorageMeter` re-walks every base-object state, applied
  response, and pending RMW at every query — the executable definition,
  O(system state) per query;
* :class:`StorageLedger` maintains the same sums as a **delta ledger**
  updated at the kernel's four mutation points (trigger / apply / deliver /
  crash) via :class:`~repro.sim.kernel.KernelListener` hooks, making every
  query O(1). The Definition 2 cost only changes at those transitions, so
  the ledger is exact, not approximate; :meth:`StorageLedger.audit` (and
  :class:`PeakTracker`'s ``audit_every``) asserts ledger == full walk.

:class:`StorageMeter` — the class every caller uses — reads the ledger for
Definition 2 queries and falls back to traversal only for the per-operation
Definition 6 accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.errors import MeasurementError, ParameterError
from repro.sim.actions import Action, AppliedRMW, PendingRMW
from repro.sim.kernel import KernelListener
from repro.storage.blockstore import collect_blocks, total_bits

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.kernel import Simulation


@dataclass
class CostBreakdown:
    """Where the bits live at one instant."""

    bo_state_bits: int
    undelivered_response_bits: int
    pending_args_bits: int

    @property
    def total_bits(self) -> int:
        return (
            self.bo_state_bits
            + self.undelivered_response_bits
            + self.pending_args_bits
        )


class ReferenceStorageMeter:
    """The executable Definition 2: a full state walk per query.

    This is the reference implementation the incremental ledger is audited
    against — O(system state) per call, with no cached state of its own, so
    it is correct even for simulations whose state was mutated behind the
    kernel's back (as some whitebox tests do).
    """

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim

    # ------------------------------------------------------- Definition 2

    def bo_bits(self, bo_id: int) -> int:
        """Bits stored at base object ``bo_id`` (state + its undelivered
        responses). Crashed objects hold no retrievable bits."""
        base_object = self.sim.base_objects[bo_id]
        if base_object.crashed:
            return 0
        bits = sum(b.size_bits for b in collect_blocks(base_object.state))
        bits += sum(
            b.size_bits
            for rmw in self.sim.applied.values()
            if rmw.bo_id == bo_id
            for b in collect_blocks(rmw.response)
        )
        return bits

    def breakdown(self) -> CostBreakdown:
        bo_state_bits = sum(
            sum(b.size_bits for b in collect_blocks(bo.state))
            for bo in self.sim.base_objects
            if not bo.crashed
        )
        undelivered = sum(
            sum(b.size_bits for b in collect_blocks(rmw.response))
            for rmw in self.sim.applied.values()
            if not self.sim.base_objects[rmw.bo_id].crashed
        )
        pending = sum(
            sum(b.size_bits for b in collect_blocks(rmw.args))
            for rmw in self.sim.pending.values()
        )
        return CostBreakdown(bo_state_bits, undelivered, pending)

    def cost_bits(self) -> int:
        """Definition 2's storage cost at the current instant."""
        return self.breakdown().total_bits

    def bo_only_cost_bits(self) -> int:
        """Bits in base-object states alone (excluding channel occupancy).

        Useful for comparing against the paper's closed-form per-object
        bounds, which count ``Vp``/``Vf`` contents only.
        """
        return self.breakdown().bo_state_bits

    # ------------------------------------------------------- Definition 6

    def op_contribution_bits(
        self,
        op_uid: int,
        bo_subset: Iterable[int] | None = None,
        include_channels: bool = False,
    ) -> int:
        """``||S(t, w)||``: distinct-index bits of ``op_uid`` in storage.

        ``bo_subset`` restricts to those base objects (Lemma 2 uses
        ``B \\ F(t)``); ``None`` means all live objects. When
        ``include_channels`` is set, blocks riding in undelivered responses
        and in *other* clients' pending RMW parameters are counted too.
        """
        return self.ops_contribution_bits(
            [op_uid], bo_subset=bo_subset, include_channels=include_channels
        )[op_uid]

    def ops_contribution_bits(
        self,
        op_uids: Iterable[int],
        bo_subset: Iterable[int] | None = None,
        include_channels: bool = False,
    ) -> dict[int, int]:
        """``||S(t, w)||`` for many operations, in one state sweep.

        Semantics match per-op :meth:`op_contribution_bits` calls, but base
        object states and channels are traversed once for the whole uid set
        — the adversary evaluates every outstanding write at each decision
        point, which would otherwise rescan the system per write.
        """
        chosen = (
            set(bo_subset)
            if bo_subset is not None
            else {bo.bo_id for bo in self.sim.base_objects}
        )
        wanted = set(op_uids)
        seen: dict[int, dict[int, int]] = {uid: {} for uid in wanted}

        def absorb(obj: object) -> None:
            for block in collect_blocks(obj):
                per_op = seen.get(block.source.op_uid)
                if per_op is not None:
                    per_op[block.source.index] = block.size_bits

        for bo in self.sim.base_objects:
            if bo.crashed or bo.bo_id not in chosen:
                continue
            absorb(bo.state)
        if include_channels:
            for rmw in self.sim.applied.values():
                if rmw.bo_id in chosen:
                    absorb(rmw.response)
            trace_ops = self.sim.trace.ops
            owner_of = {
                uid: trace_ops[uid].client
                for uid in wanted
                if uid in trace_ops
            }
            for rmw in self.sim.pending.values():
                # An op's blocks in its *own* client's pending RMWs don't
                # count (Definition 6 charges storage outside the writer).
                for block in collect_blocks(rmw.args):
                    uid = block.source.op_uid
                    per_op = seen.get(uid)
                    if per_op is None:
                        continue
                    if owner_of.get(uid) == rmw.client_name:
                        continue
                    per_op[block.source.index] = block.size_bits
        return {uid: sum(indexed.values()) for uid, indexed in seen.items()}


class StorageLedger(KernelListener):
    """Incremental Definition 2 accounting: O(1) per query, exact.

    The ledger caches, per base object, the block bits of its state and of
    its applied-but-undelivered responses, and per pending RMW the bits of
    its parameters. Each cache entry changes at exactly one kernel
    transition, where the attached :class:`~repro.sim.kernel.KernelListener`
    hook applies the delta:

    * ``on_trigger`` adds the new RMW's parameter bits;
    * ``on_apply`` retires those parameter bits, adds the response bits,
      and re-walks *one* object's state (the only state that changed);
    * ``on_deliver`` retires the response bits (delivered or dropped);
    * ``on_bo_crash`` zeroes the crashed object's state and response bits
      and retires its dropped pending parameters;
    * ``on_client_crash`` is a no-op — a crashed client's pending
      parameters and applied responses remain in storage under Definition 2.

    The per-action cost is therefore O(bits that changed), not O(system
    state); a :class:`PeakTracker` sampling every action goes from
    O(actions x state) to O(total state churn).

    One sharp edge: the ledger trusts the kernel to be the only mutator.
    Code that rewrites ``base_object.state`` directly (whitebox tests)
    must call :meth:`resync` — or use :class:`ReferenceStorageMeter`.
    :meth:`audit` asserts ledger == full walk and names the first
    discrepancy.
    """

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self._bo_state_bits = [0] * len(sim.base_objects)
        self._bo_response_bits = [0] * len(sim.base_objects)
        self._args_bits: dict[int, int] = {}
        self._response_bits: dict[int, int] = {}
        self.bo_state_total = 0
        self.undelivered_total = 0
        self.pending_args_total = 0
        self.resync()

    def resync(self) -> None:
        """Reseed every cache from the current state (one full walk)."""
        self.bo_state_total = 0
        self.undelivered_total = 0
        self.pending_args_total = 0
        self._args_bits.clear()
        self._response_bits.clear()
        for bo in self.sim.base_objects:
            bits = 0 if bo.crashed else total_bits(bo.state)
            self._bo_state_bits[bo.bo_id] = bits
            self._bo_response_bits[bo.bo_id] = 0
            self.bo_state_total += bits
        for rmw in self.sim.pending.values():
            bits = total_bits(rmw.args)
            self._args_bits[rmw.rmw_id] = bits
            self.pending_args_total += bits
        for rmw in self.sim.applied.values():
            # Crashed objects never hold applied entries (crashes drop them).
            bits = total_bits(rmw.response)
            self._response_bits[rmw.rmw_id] = bits
            self._bo_response_bits[rmw.bo_id] += bits
            self.undelivered_total += bits

    # ------------------------------------------------------- kernel hooks

    def on_trigger(self, rmw: PendingRMW) -> None:
        bits = total_bits(rmw.args)
        self._args_bits[rmw.rmw_id] = bits
        self.pending_args_total += bits

    def on_apply(self, rmw: AppliedRMW) -> None:
        self.pending_args_total -= self._args_bits.pop(rmw.rmw_id, 0)
        response_bits = total_bits(rmw.response)
        self._response_bits[rmw.rmw_id] = response_bits
        self._bo_response_bits[rmw.bo_id] += response_bits
        self.undelivered_total += response_bits
        new_state_bits = total_bits(self.sim.base_objects[rmw.bo_id].state)
        self.bo_state_total += new_state_bits - self._bo_state_bits[rmw.bo_id]
        self._bo_state_bits[rmw.bo_id] = new_state_bits

    def on_deliver(self, rmw: AppliedRMW) -> None:
        response_bits = self._response_bits.pop(rmw.rmw_id, 0)
        self._bo_response_bits[rmw.bo_id] -= response_bits
        self.undelivered_total -= response_bits

    def on_bo_crash(
        self,
        bo_id: int,
        dropped_pending: list[PendingRMW],
        dropped_applied: list[AppliedRMW],
    ) -> None:
        for rmw in dropped_pending:
            self.pending_args_total -= self._args_bits.pop(rmw.rmw_id, 0)
        for rmw in dropped_applied:
            self.undelivered_total -= self._response_bits.pop(rmw.rmw_id, 0)
        self._bo_response_bits[bo_id] = 0
        self.bo_state_total -= self._bo_state_bits[bo_id]
        self._bo_state_bits[bo_id] = 0

    # ------------------------------------------------------------ queries

    def breakdown(self) -> CostBreakdown:
        return CostBreakdown(
            self.bo_state_total, self.undelivered_total, self.pending_args_total
        )

    def bo_bits(self, bo_id: int) -> int:
        if self.sim.base_objects[bo_id].crashed:
            return 0
        return self._bo_state_bits[bo_id] + self._bo_response_bits[bo_id]

    # -------------------------------------------------------------- audit

    def audit(self) -> None:
        """Assert ledger == reference full walk; raise on any divergence."""
        reference = ReferenceStorageMeter(self.sim)
        expected = reference.breakdown()
        actual = self.breakdown()
        if expected != actual:
            raise MeasurementError(
                f"storage ledger diverged from full walk: ledger={actual}, "
                f"reference={expected}"
            )
        for bo in self.sim.base_objects:
            if self.bo_bits(bo.bo_id) != reference.bo_bits(bo.bo_id):
                raise MeasurementError(
                    f"storage ledger diverged at base object {bo.bo_id}: "
                    f"ledger={self.bo_bits(bo.bo_id)}, "
                    f"reference={reference.bo_bits(bo.bo_id)}"
                )


class StorageMeter(ReferenceStorageMeter):
    """Measures storage cost of a running simulation — ledger-backed.

    Drop-in equal to :class:`ReferenceStorageMeter` (the randomized ledger
    parity suite asserts bit-identical results at every action), but
    Definition 2 queries read the simulation's shared
    :class:`StorageLedger` in O(1) instead of re-walking the system state.
    Definition 6 queries (:meth:`op_contribution_bits` and friends) still
    traverse — they need per-source block identities, not sums.
    """

    def __init__(self, sim: "Simulation") -> None:
        super().__init__(sim)
        self.ledger = sim.storage_ledger

    def bo_bits(self, bo_id: int) -> int:
        return self.ledger.bo_bits(bo_id)

    def breakdown(self) -> CostBreakdown:
        return self.ledger.breakdown()

    def audit(self) -> None:
        """Assert the backing ledger matches a reference full walk."""
        self.ledger.audit()


class PeakTracker:
    """Records the worst-case (and optionally the full series of) storage.

    Register it as ``on_action`` in :meth:`Simulation.run`; the paper's
    "storage cost of an algorithm" is the max over all times of all runs,
    which this tracker realises for one run. With a ledger-backed
    :class:`StorageMeter` each sample is O(1), so per-action tracking no
    longer dominates simulation wall-clock.

    ``audit_every = N`` cross-checks the incremental ledger against the
    full-walk reference every ``N`` actions (and raises
    :class:`~repro.errors.MeasurementError` on divergence) — the paranoid
    mode CI smoke runs use.
    """

    def __init__(
        self,
        meter: StorageMeter,
        keep_series: bool = False,
        audit_every: int = 0,
    ) -> None:
        if audit_every and not hasattr(meter, "audit"):
            # Fail loudly: a requested audit must never be a silent no-op.
            raise ParameterError(
                f"audit_every={audit_every} needs a meter with an audit() "
                f"method; {type(meter).__name__} has none"
            )
        self.meter = meter
        self.keep_series = keep_series
        self.audit_every = audit_every
        self.peak_bits = meter.cost_bits()
        self.peak_bo_only_bits = meter.bo_only_cost_bits()
        self.series: list[tuple[int, int]] = []
        self.actions_seen = 0

    def __call__(self, sim: "Simulation", action: Action) -> None:
        breakdown = self.meter.breakdown()
        total = breakdown.total_bits
        if total > self.peak_bits:
            self.peak_bits = total
        if breakdown.bo_state_bits > self.peak_bo_only_bits:
            self.peak_bo_only_bits = breakdown.bo_state_bits
        if self.keep_series:
            self.series.append((sim.time, total))
        self.actions_seen += 1
        if self.audit_every and self.actions_seen % self.audit_every == 0:
            self.meter.audit()
