"""The storage-cost meter (Definitions 2 and 6 of the paper).

Definition 2 counts the bits of every block instance stored anywhere in the
system at a point in time. Concretely, at any time the meter sums block bits
over:

* every live base object's state (blocks the protocol stored),
* every applied-but-undelivered RMW response (the paper folds these into
  the base object's state: "all the responses of pending RMWs that took
  effect on it"),
* every triggered-but-unapplied RMW's parameters (part of the triggering
  client's state: "the parameters of its pending RMWs that have not yet
  taken effect" — this is how the paper charges algorithms that park data
  in channels).

Meta-data (timestamps, counters) is free, and coding-oracle state is free.

Definition 6's ``||S(t, w)||`` — the bits operation ``w`` contributes in
*distinct-index* blocks outside its own client — is provided by
:meth:`StorageMeter.op_contribution_bits`, with an optional base-object
restriction used by the adversary's ``C-(t)`` bookkeeping (Lemma 2 applies
it to ``B \\ F(t)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.sim.actions import Action
from repro.storage.blockstore import collect_blocks

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.kernel import Simulation


@dataclass
class CostBreakdown:
    """Where the bits live at one instant."""

    bo_state_bits: int
    undelivered_response_bits: int
    pending_args_bits: int

    @property
    def total_bits(self) -> int:
        return (
            self.bo_state_bits
            + self.undelivered_response_bits
            + self.pending_args_bits
        )


class StorageMeter:
    """Measures storage cost of a running simulation."""

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim

    # ------------------------------------------------------- Definition 2

    def bo_bits(self, bo_id: int) -> int:
        """Bits stored at base object ``bo_id`` (state + its undelivered
        responses). Crashed objects hold no retrievable bits."""
        base_object = self.sim.base_objects[bo_id]
        if base_object.crashed:
            return 0
        bits = sum(b.size_bits for b in collect_blocks(base_object.state))
        bits += sum(
            b.size_bits
            for rmw in self.sim.applied.values()
            if rmw.bo_id == bo_id
            for b in collect_blocks(rmw.response)
        )
        return bits

    def breakdown(self) -> CostBreakdown:
        bo_state_bits = sum(
            sum(b.size_bits for b in collect_blocks(bo.state))
            for bo in self.sim.base_objects
            if not bo.crashed
        )
        undelivered = sum(
            sum(b.size_bits for b in collect_blocks(rmw.response))
            for rmw in self.sim.applied.values()
            if not self.sim.base_objects[rmw.bo_id].crashed
        )
        pending = sum(
            sum(b.size_bits for b in collect_blocks(rmw.args))
            for rmw in self.sim.pending.values()
        )
        return CostBreakdown(bo_state_bits, undelivered, pending)

    def cost_bits(self) -> int:
        """Definition 2's storage cost at the current instant."""
        return self.breakdown().total_bits

    def bo_only_cost_bits(self) -> int:
        """Bits in base-object states alone (excluding channel occupancy).

        Useful for comparing against the paper's closed-form per-object
        bounds, which count ``Vp``/``Vf`` contents only.
        """
        return self.breakdown().bo_state_bits

    # ------------------------------------------------------- Definition 6

    def op_contribution_bits(
        self,
        op_uid: int,
        bo_subset: Iterable[int] | None = None,
        include_channels: bool = False,
    ) -> int:
        """``||S(t, w)||``: distinct-index bits of ``op_uid`` in storage.

        ``bo_subset`` restricts to those base objects (Lemma 2 uses
        ``B \\ F(t)``); ``None`` means all live objects. When
        ``include_channels`` is set, blocks riding in undelivered responses
        and in *other* clients' pending RMW parameters are counted too.
        """
        return self.ops_contribution_bits(
            [op_uid], bo_subset=bo_subset, include_channels=include_channels
        )[op_uid]

    def ops_contribution_bits(
        self,
        op_uids: Iterable[int],
        bo_subset: Iterable[int] | None = None,
        include_channels: bool = False,
    ) -> dict[int, int]:
        """``||S(t, w)||`` for many operations, in one state sweep.

        Semantics match per-op :meth:`op_contribution_bits` calls, but base
        object states and channels are traversed once for the whole uid set
        — the adversary evaluates every outstanding write at each decision
        point, which would otherwise rescan the system per write.
        """
        chosen = (
            set(bo_subset)
            if bo_subset is not None
            else {bo.bo_id for bo in self.sim.base_objects}
        )
        wanted = set(op_uids)
        seen: dict[int, dict[int, int]] = {uid: {} for uid in wanted}

        def absorb(obj: object) -> None:
            for block in collect_blocks(obj):
                per_op = seen.get(block.source.op_uid)
                if per_op is not None:
                    per_op[block.source.index] = block.size_bits

        for bo in self.sim.base_objects:
            if bo.crashed or bo.bo_id not in chosen:
                continue
            absorb(bo.state)
        if include_channels:
            for rmw in self.sim.applied.values():
                if rmw.bo_id in chosen:
                    absorb(rmw.response)
            trace_ops = self.sim.trace.ops
            owner_of = {
                uid: trace_ops[uid].client
                for uid in wanted
                if uid in trace_ops
            }
            for rmw in self.sim.pending.values():
                # An op's blocks in its *own* client's pending RMWs don't
                # count (Definition 6 charges storage outside the writer).
                for block in collect_blocks(rmw.args):
                    uid = block.source.op_uid
                    per_op = seen.get(uid)
                    if per_op is None:
                        continue
                    if owner_of.get(uid) == rmw.client_name:
                        continue
                    per_op[block.source.index] = block.size_bits
        return {uid: sum(indexed.values()) for uid, indexed in seen.items()}


class PeakTracker:
    """Records the worst-case (and optionally the full series of) storage.

    Register it as ``on_action`` in :meth:`Simulation.run`; the paper's
    "storage cost of an algorithm" is the max over all times of all runs,
    which this tracker realises for one run.
    """

    def __init__(self, meter: StorageMeter, keep_series: bool = False) -> None:
        self.meter = meter
        self.keep_series = keep_series
        self.peak_bits = meter.cost_bits()
        self.peak_bo_only_bits = meter.bo_only_cost_bits()
        self.series: list[tuple[int, int]] = []

    def __call__(self, sim: "Simulation", action: Action) -> None:
        breakdown = self.meter.breakdown()
        total = breakdown.total_bits
        if total > self.peak_bits:
            self.peak_bits = total
        if breakdown.bo_state_bits > self.peak_bo_only_bits:
            self.peak_bo_only_bits = breakdown.bo_state_bits
        if self.keep_series:
            self.series.append((sim.time, total))
