"""Block-instance discovery for storage accounting.

The paper's storage cost (Definition 2) sums the sizes of *block instances*
found anywhere in base-object and client states. Protocol state in this
implementation is ordinary Python data (dataclasses, dicts, lists, tuples)
with :class:`~repro.coding.oracles.CodeBlock` leaves; :func:`collect_blocks`
walks any such structure and yields every block it contains.

Keeping discovery structural (rather than asking each protocol to enumerate
its own blocks) removes a whole class of under-counting bugs: a register
implementation cannot accidentally hide payload bits from the meter by
stashing them in a new field.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator, Mapping
from typing import Any

from repro.coding.oracles import BlockSource, CodeBlock

#: ``dataclasses.fields`` resolves descriptors on every call; protocol states
#: are a handful of dataclass types walked millions of times per run, so the
#: field-name tuples are resolved once per class.
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}

#: Leaf types that can never contain a block.
_ATOMIC_LEAVES = (str, bytes, bytearray, int, float, bool)


def _field_names(cls: type) -> tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(field.name for field in dataclasses.fields(cls))
        _FIELD_NAMES[cls] = names
    return names


def collect_blocks(obj: Any) -> Iterator[CodeBlock]:
    """Yield every :class:`CodeBlock` reachable inside ``obj``.

    Traverses mappings (values only), sequences, sets, and dataclasses, in
    depth-first pre-order. Strings/bytes are treated as leaves. The walk is
    iterative (an explicit stack), so deep protocol state — a GC-free
    register accreting one wrapper per write, say — cannot hit Python's
    recursion limit, and cycles are not expected in protocol state (it is
    built from immutable-ish rounds), so no visited-set is kept.
    """
    stack = [obj]
    while stack:
        node = stack.pop()
        if isinstance(node, CodeBlock):
            yield node
            continue
        if node is None or isinstance(node, _ATOMIC_LEAVES):
            continue
        if isinstance(node, Mapping):
            stack.extend(reversed(list(node.values())))
            continue
        if isinstance(node, (list, tuple)):
            stack.extend(reversed(node))
            continue
        if isinstance(node, (set, frozenset)):
            stack.extend(node)
            continue
        if dataclasses.is_dataclass(node) and not isinstance(node, type):
            names = _field_names(type(node))
            stack.extend(
                getattr(node, name) for name in reversed(names)
            )
            continue
        # Opaque leaf (e.g. a timestamp class): contributes no blocks.


def total_bits(obj: Any) -> int:
    """Return the summed bit size of all blocks reachable inside ``obj``."""
    return sum(block.size_bits for block in collect_blocks(obj))


def distinct_source_bits(obj: Any, op_uid: int) -> int:
    """Return bits from *distinct-index* blocks of operation ``op_uid``.

    This is the inner sum of Definition 6: block numbers are deduplicated
    (storing the same block twice pins no extra information), and each
    distinct number ``i`` contributes ``size(i)`` bits.
    """
    return distinct_source_bits_many(obj, [op_uid])[op_uid]


def distinct_source_bits_many(
    obj: Any, op_uids: Iterable[int]
) -> dict[int, int]:
    """Return Definition 6 sums for many operations in **one** traversal.

    Equivalent to ``{uid: distinct_source_bits(obj, uid) for uid in
    op_uids}`` but walks ``obj`` once, so per-decision-point accounting over
    many concurrent writes (the adversary's ``C-``/``C+`` split) costs one
    sweep instead of one sweep per outstanding operation.
    """
    seen: dict[int, dict[int, int]] = {uid: {} for uid in op_uids}
    for block in collect_blocks(obj):
        per_op = seen.get(block.source.op_uid)
        if per_op is not None:
            per_op[block.source.index] = block.size_bits
    return {uid: sum(indexed.values()) for uid, indexed in seen.items()}


def sources_present(obj: Any) -> set[BlockSource]:
    """Return the set of block sources reachable inside ``obj``."""
    return {block.source for block in collect_blocks(obj)}
