"""Block-instance discovery for storage accounting.

The paper's storage cost (Definition 2) sums the sizes of *block instances*
found anywhere in base-object and client states. Protocol state in this
implementation is ordinary Python data (dataclasses, dicts, lists, tuples)
with :class:`~repro.coding.oracles.CodeBlock` leaves; :func:`collect_blocks`
walks any such structure and yields every block it contains.

Keeping discovery structural (rather than asking each protocol to enumerate
its own blocks) removes a whole class of under-counting bugs: a register
implementation cannot accidentally hide payload bits from the meter by
stashing them in a new field.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator, Mapping
from typing import Any

from repro.coding.oracles import BlockSource, CodeBlock


def collect_blocks(obj: Any) -> Iterator[CodeBlock]:
    """Yield every :class:`CodeBlock` reachable inside ``obj``.

    Traverses mappings (values only), sequences, sets, and dataclasses.
    Strings/bytes are treated as leaves. Cycles are not expected in protocol
    state (it is built from immutable-ish rounds), so no visited-set is kept;
    a cycle would be a protocol bug and recursion would surface it.
    """
    if isinstance(obj, CodeBlock):
        yield obj
        return
    if obj is None or isinstance(obj, (str, bytes, bytearray, int, float, bool)):
        return
    if isinstance(obj, Mapping):
        for value in obj.values():
            yield from collect_blocks(value)
        return
    if isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            yield from collect_blocks(item)
        return
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for field in dataclasses.fields(obj):
            yield from collect_blocks(getattr(obj, field.name))
        return
    # Opaque leaf (e.g. a timestamp class): contributes no blocks.


def total_bits(obj: Any) -> int:
    """Return the summed bit size of all blocks reachable inside ``obj``."""
    return sum(block.size_bits for block in collect_blocks(obj))


def distinct_source_bits(obj: Any, op_uid: int) -> int:
    """Return bits from *distinct-index* blocks of operation ``op_uid``.

    This is the inner sum of Definition 6: block numbers are deduplicated
    (storing the same block twice pins no extra information), and each
    distinct number ``i`` contributes ``size(i)`` bits.
    """
    return distinct_source_bits_many(obj, [op_uid])[op_uid]


def distinct_source_bits_many(
    obj: Any, op_uids: Iterable[int]
) -> dict[int, int]:
    """Return Definition 6 sums for many operations in **one** traversal.

    Equivalent to ``{uid: distinct_source_bits(obj, uid) for uid in
    op_uids}`` but walks ``obj`` once, so per-decision-point accounting over
    many concurrent writes (the adversary's ``C-``/``C+`` split) costs one
    sweep instead of one sweep per outstanding operation.
    """
    seen: dict[int, dict[int, int]] = {uid: {} for uid in op_uids}
    for block in collect_blocks(obj):
        per_op = seen.get(block.source.op_uid)
        if per_op is not None:
            per_op[block.source.index] = block.size_bits
    return {uid: sum(indexed.values()) for uid, indexed in seen.items()}


def sources_present(obj: Any) -> set[BlockSource]:
    """Return the set of block sources reachable inside ``obj``."""
    return {block.source for block in collect_blocks(obj)}
