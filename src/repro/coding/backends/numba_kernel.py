"""The optional ``numba`` backend: a JIT-compiled scalar triple loop.

numba is *not* a repo dependency — this module is imported (and the
backend registered) only when ``importlib.util.find_spec("numba")``
succeeds, which on CI happens in the optional-deps job. The kernel is
the textbook formulation: for each output row, XOR in the product-table
row of each nonzero coefficient, one byte at a time. Compiled, that is a
pure L1-resident loop with no index widening, no packed lanes, and no
tiling needed — it comfortably clears the 1 GB/s target the numpy
kernels cannot reach on gather-bound hardware.

Compilation is deferred to the first call so importing the backend (or
merely having numba installed) costs nothing until the kernel is used.
Output is asserted byte-identical to the other backends by
``tests/coding/test_backends.py`` whenever the backend is registered.
"""

from __future__ import annotations

import numpy as np

from repro.coding.gf256 import _MUL_TABLE

_kernel = None


def _compile():
    import numba

    @numba.njit(
        "void(uint8[:, ::1], uint8[:, ::1], uint8[:, ::1], uint8[:, ::1])",
        nogil=True,
    )
    def kernel(a, b, table, out):  # pragma: no cover - compiled
        rows, inner = a.shape
        width = b.shape[1]
        for r in range(rows):
            for c in range(width):
                out[r, c] = 0
            for i in range(inner):
                coefficient = a[r, i]
                if coefficient == 0:
                    continue
                if coefficient == 1:
                    for c in range(width):
                        out[r, c] ^= b[i, c]
                else:
                    row = table[coefficient]
                    for c in range(width):
                        out[r, c] ^= row[b[i, c]]

    return kernel


def matmul(a: np.ndarray, b: np.ndarray, tile_columns: int) -> np.ndarray:
    """Return ``a @ b`` over GF(2^8) via the JIT kernel.

    ``tile_columns`` is accepted for the backend contract but unused —
    the compiled loop streams each output row once and needs no tiling.
    """
    global _kernel
    if _kernel is None:
        _kernel = _compile()
    out = np.empty((a.shape[0], b.shape[1]), dtype=np.uint8)
    _kernel(
        np.ascontiguousarray(a), np.ascontiguousarray(b), _MUL_TABLE, out
    )
    return out
