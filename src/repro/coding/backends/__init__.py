"""Pluggable GF(2^8) matrix kernels behind one registry.

:func:`repro.coding.gf256.gf_matmul` validates its operands once and then
dispatches to whichever :class:`CodingBackend` is active; everything above
the seam (schemes, oracles, sweeps, the service) is backend-agnostic, and
every backend is CI-asserted byte-identical (``tests/coding/test_backends``).

Three implementations register here:

* ``numpy-table`` — the PR-2 reference kernel: per-group 8-lane packed
  ``uint64`` LUTs, one bounds-checked 256-entry gather per data byte.
* ``numpy-nibble`` — the default: 16-lane ``complex128`` LUTs composed
  from high/low *nibble* product tables (the ISA-L/vpshufb decomposition,
  ``c*x == c*(x & 0xF0) ^ c*(x & 0x0F)``), gathered with ``mode="clip"``
  and pre-cast ``intp`` indices so numpy skips per-element bounds checks.
  Roughly 2x the reference on the RS(16,32) bench; see docs/CODING.md.
* ``numba`` — optional, registered only when :mod:`numba` is importable
  (it is not a repo dependency; CI's optional-deps job installs it). A
  JIT-compiled scalar triple loop that clears 1 GB/s.

Selection: :func:`use_backend` switches process-wide; the first
:func:`get_backend` call with no prior selection reads the
``REPRO_CODING_BACKEND`` environment variable, falling back to
:data:`DEFAULT_BACKEND`. The choice is execution metadata only — results
are byte-identical across backends, which is why sweep signatures and
``to_json(include_timing=False)`` exclude it.
"""

from __future__ import annotations

import importlib.util
import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ParameterError

#: Environment variable consulted by the first :func:`get_backend` call.
ENV_VAR = "REPRO_CODING_BACKEND"

#: Backend used when neither :func:`use_backend` nor the environment chose.
DEFAULT_BACKEND = "numpy-nibble"


@dataclass(frozen=True)
class CodingBackend:
    """A named GF(2^8) matrix kernel.

    ``matmul(a, b, tile_columns)`` receives operands already validated by
    :func:`~repro.coding.gf256.gf_matmul` — 2-D ``uint8`` arrays with
    matching inner dimension, ``b.shape[1] >= 1``, ``a.shape[0] >= 1``,
    and a positive tile width — so kernels run no redundant checks in the
    hot loop.
    """

    name: str
    description: str
    matmul: Callable[[np.ndarray, np.ndarray, int], np.ndarray] = field(
        repr=False
    )


_REGISTRY: dict[str, CodingBackend] = {}
_ACTIVE: CodingBackend | None = None


def register_backend(backend: CodingBackend) -> CodingBackend:
    """Add ``backend`` to the registry (idempotent per name)."""
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Names of every registered backend, sorted."""
    return tuple(sorted(_REGISTRY))


def use_backend(name: str) -> CodingBackend:
    """Make ``name`` the active backend process-wide and return it.

    Unknown names raise :class:`ParameterError` naming the alternatives
    (the ``numba`` backend only registers when numba is importable).
    """
    global _ACTIVE
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ParameterError(
            f"unknown coding backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        )
    _ACTIVE = backend
    return backend


def get_backend() -> CodingBackend:
    """Return the active backend, resolving lazily on first use.

    Resolution order: an explicit :func:`use_backend` call, then the
    ``REPRO_CODING_BACKEND`` environment variable, then
    :data:`DEFAULT_BACKEND`. A bad environment value raises
    :class:`ParameterError` (``repro doctor`` surfaces this as a failed
    check before any encode would hit it).
    """
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = use_backend(os.environ.get(ENV_VAR, DEFAULT_BACKEND))
    return _ACTIVE


def reset_backend() -> None:
    """Forget the active selection; the next :func:`get_backend` call
    re-reads the environment. Used by tests and spawn-pool worker init."""
    global _ACTIVE
    _ACTIVE = None


from repro.coding.backends import numpy_nibble, numpy_table  # noqa: E402

register_backend(
    CodingBackend(
        name="numpy-table",
        description="reference kernel: 8-lane uint64 LUTs, checked gathers",
        matmul=numpy_table.matmul,
    )
)
register_backend(
    CodingBackend(
        name="numpy-nibble",
        description=(
            "default kernel: nibble-composed 16-lane LUTs, clip-mode gathers"
        ),
        matmul=numpy_nibble.matmul,
    )
)

if importlib.util.find_spec("numba") is not None:  # pragma: no cover
    from repro.coding.backends import numba_kernel

    register_backend(
        CodingBackend(
            name="numba",
            description="optional JIT scalar kernel (requires numba)",
            matmul=numba_kernel.matmul,
        )
    )
