"""The ``numpy-nibble`` backend: the default GF(2^8) kernel.

The ISA-L / vpshufb nibble decomposition, translated to numpy. Every
byte splits as ``x == (x & 0xF0) ^ (x & 0x0F)``, and GF(2^8)
multiplication is GF(2)-linear, so for any coefficient ``c``::

    c * x == c * (x & 0xF0)  ^  c * (x & 0x0F)

SIMD code (ISA-L's ``vpshufb`` kernels) exploits this at gather time —
two 16-entry shuffles per byte instead of one 256-entry lookup, because
16 entries fit a vector register. numpy's gather (``np.take``) has no
such register-resident mode; measured on this kernel, a 16-entry table
gathers *no faster* than a 256-entry one (both are load-per-element), so
doing two gathers per byte halves throughput. The decomposition still
pays, just one level up: it builds the *packed* LUTs. Each output-row
group of up to 16 needs a 256-entry table of 16-byte lanes; rather than
packing 256 columns of the product table, we pack two 16-entry nibble
tables (high: ``c * (h << 4)``, low: ``c * l``) and compose all 256
entries as their outer XOR — 32 packed entries built per inner index, 256
derived by one vectorized XOR.

The gather loop itself wins on three measured effects (each ~1.5-5x on
the dev container; see docs/CODING.md for the numbers):

* ``mode="clip"`` — a ``uint8`` index can never exceed 255, so clipping
  against a 256-entry axis is a no-op, and numpy's clip path skips the
  per-element bounds check that dominates ``mode="raise"`` gathers;
* pre-cast ``intp`` indices — ``np.copyto(..., casting="unsafe")`` into a
  reused ``intp`` buffer moves the index widening out of the gather;
* 16-byte lanes — LUT entries are viewed as ``complex128`` (the only
  16-byte numpy itemsize), halving gathers per output byte vs the 8-byte
  ``uint64`` packing of the reference kernel. XOR accumulation runs on
  ``uint64`` views of the same buffers, so lane packing stays
  endian-agnostic exactly like the reference.

Packed LUTs depend only on the coefficient matrix, which encoders reuse
across every value (RS generators, rateless selections), so whole plans
are memoised in an :class:`~repro.coding.lru.LRUCache` keyed by the
matrix bytes.

Operands arrive pre-validated from :func:`repro.coding.gf256.gf_matmul`
(see the backend contract in :mod:`repro.coding.backends`).
"""

from __future__ import annotations

import numpy as np

from repro.coding.gf256 import _MUL_TABLE
from repro.coding.lru import LRUCache

#: Output rows packed per LUT entry (the complex128 itemsize).
LANES = 16

#: Memoised per-matrix plans: (shape, bytes) -> [(start, end, active, luts)].
#: RS(16,32) generators, decode inverses, and rateless selections recur
#: constantly; 64 plans bound worst-case residency near 8 MB.
PLAN_CACHE_LIMIT = 64

_PLAN_CACHE = LRUCache()


def _group_luts(coefficients: np.ndarray, active: np.ndarray) -> np.ndarray:
    """Pack one row-group's LUTs: ``(len(active), 256)`` ``complex128``.

    Entry ``[i, x]`` holds, per lane ``g``, the product
    ``coefficients[g, active[i]] * x`` — composed from the two 16-entry
    nibble tables as described in the module docstring.
    """
    group_size = coefficients.shape[0]
    # (group_size, len(active), 256) products for the active columns only.
    products = _MUL_TABLE[coefficients[:, active]]
    low = np.zeros((active.size, 16, LANES), dtype=np.uint8)
    high = np.zeros((active.size, 16, LANES), dtype=np.uint8)
    low[:, :, :group_size] = products[:, :, :16].transpose(1, 2, 0)
    high[:, :, :group_size] = products[:, :, ::16].transpose(1, 2, 0)
    low_words = low.view(np.uint64)    # (active, 16, 2)
    high_words = high.view(np.uint64)
    # Outer XOR composes entry x = (h << 4) ^ l at flat position 16h + l.
    packed = np.bitwise_xor(
        high_words[:, :, None, :], low_words[:, None, :, :]
    )
    return packed.reshape(active.size, 512).view(np.complex128)


def _plan(a: np.ndarray) -> list:
    """Return (memoised) per-group packed LUTs for coefficient matrix ``a``."""
    key = (a.shape, a.tobytes())
    plan = _PLAN_CACHE.lookup(key)
    if plan is not None:
        return plan
    rows = a.shape[0]
    plan = []
    for group_start in range(0, rows, LANES):
        group_end = min(group_start + LANES, rows)
        coefficients = a[group_start:group_end, :]
        active = np.flatnonzero(coefficients.any(axis=0))
        luts = _group_luts(coefficients, active) if active.size else None
        plan.append((group_start, group_end, active, luts))
    _PLAN_CACHE.store(key, plan, PLAN_CACHE_LIMIT)
    return plan


def _single_row(a: np.ndarray, b: np.ndarray, tile: int) -> np.ndarray:
    """One output row: no packing — clip-mode gathers from table rows."""
    width = b.shape[1]
    result = np.zeros((1, width), dtype=np.uint8)
    out_row = result[0]
    coefficients = a[0].tolist()
    if not any(coefficients):
        return result
    index_buffer = np.empty(tile, dtype=np.intp)
    scratch = np.empty(tile, dtype=np.uint8)
    for start in range(0, width, tile):
        stop = min(start + tile, width)
        span = stop - start
        out_tile = out_row[start:stop]
        index = index_buffer[:span]
        scratch_tile = scratch[:span]
        for i, coefficient in enumerate(coefficients):
            if coefficient == 0:
                continue
            source = b[i, start:stop]
            if coefficient == 1:
                np.bitwise_xor(out_tile, source, out=out_tile)
                continue
            np.copyto(index, source, casting="unsafe")
            np.take(
                _MUL_TABLE[coefficient], index, out=scratch_tile, mode="clip"
            )
            np.bitwise_xor(out_tile, scratch_tile, out=out_tile)
    return result


def matmul(a: np.ndarray, b: np.ndarray, tile_columns: int) -> np.ndarray:
    """Return ``a @ b`` over GF(2^8); see the module docstring."""
    rows = a.shape[0]
    width = b.shape[1]
    tile = min(tile_columns, width)
    if rows == 1:
        return _single_row(a, b, tile)
    result = np.empty((rows, width), dtype=np.uint8)
    index_buffer = np.empty(tile, dtype=np.intp)
    scratch_buffer = np.empty(tile * LANES, dtype=np.uint8)
    acc_buffer = np.empty(tile * LANES, dtype=np.uint8)
    for group_start, group_end, active, luts in _plan(a):
        if luts is None:
            result[group_start:group_end] = 0
            continue
        group_size = group_end - group_start
        for start in range(0, width, tile):
            stop = min(start + tile, width)
            span = stop - start
            packed = acc_buffer[: span * LANES]
            acc_complex = packed.view(np.complex128)
            acc_words = packed.view(np.uint64)
            scratch_complex = scratch_buffer[: span * LANES].view(
                np.complex128
            )
            scratch_words = scratch_buffer[: span * LANES].view(np.uint64)
            index = index_buffer[:span]
            for position, i in enumerate(active):
                np.copyto(index, b[i, start:stop], casting="unsafe")
                if position == 0:
                    # First term gathers straight into the accumulator.
                    np.take(luts[0], index, out=acc_complex, mode="clip")
                    continue
                np.take(
                    luts[position], index, out=scratch_complex, mode="clip"
                )
                np.bitwise_xor(acc_words, scratch_words, out=acc_words)
            lanes = packed.reshape(span, LANES)
            result[group_start:group_end, start:stop] = lanes[:, :group_size].T
    return result
