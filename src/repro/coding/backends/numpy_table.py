"""The ``numpy-table`` backend: the PR-2 reference kernel, unchanged.

Output rows are processed in groups of up to 8: for each group and each
active inner index the 8 relevant product-table rows are packed side by
side into a 256-entry ``uint64`` LUT, so a single gather per data byte
multiplies it by all 8 group coefficients at once. Accumulation is
XOR-only, so the pack/unpack byte views are endian-agnostic. A single-row
product skips the packing and gathers straight from 256-entry table rows.

This is the correctness reference the other backends are asserted
byte-identical against; it stays deliberately close to the shape every
prior perf number was measured on. Operands arrive pre-validated from
:func:`repro.coding.gf256.gf_matmul` (see the backend contract in
:mod:`repro.coding.backends`).
"""

from __future__ import annotations

import numpy as np

from repro.coding.gf256 import _MUL_TABLE


def matmul(a: np.ndarray, b: np.ndarray, tile_columns: int) -> np.ndarray:
    """Return ``a @ b`` over GF(2^8); see the module docstring."""
    rows, inner = a.shape
    width = b.shape[1]
    tile = tile_columns
    b_rows = list(b)
    if rows == 1:
        result = np.zeros((1, width), dtype=np.uint8)
        out_row = result[0]
        scratch = np.empty(min(tile, width), dtype=np.uint8)
        coefficients = a[0].tolist()
        for start in range(0, width, tile):
            stop = min(start + tile, width)
            out_tile = out_row[start:stop]
            scratch_tile = scratch[: stop - start]
            for i, coefficient in enumerate(coefficients):
                if coefficient == 0:
                    continue
                if coefficient == 1:
                    np.bitwise_xor(out_tile, b_rows[i][start:stop], out=out_tile)
                    continue
                np.take(
                    _MUL_TABLE[coefficient], b_rows[i][start:stop],
                    out=scratch_tile,
                )
                np.bitwise_xor(out_tile, scratch_tile, out=out_tile)
        return result
    result = np.empty((rows, width), dtype=np.uint8)
    tile = min(tile, width)
    packed_acc = np.zeros(tile, dtype=np.uint64)
    scratch64 = np.empty(tile, dtype=np.uint64)
    for group_start in range(0, rows, 8):
        group_end = min(group_start + 8, rows)
        group_size = group_end - group_start
        coefficients = a[group_start:group_end, :]
        active = [i for i in range(inner) if coefficients[:, i].any()]
        if not active:
            result[group_start:group_end] = 0
            continue
        # Pack the group's table rows once — (active, 256) uint64 LUTs reused
        # for every column tile below.
        lut_bytes = np.zeros((len(active), 256, 8), dtype=np.uint8)
        for position, i in enumerate(active):
            lut_bytes[position, :, :group_size] = _MUL_TABLE[
                coefficients[:, i]
            ].T
        luts = lut_bytes.reshape(len(active), -1).view(np.uint64)
        for start in range(0, width, tile):
            stop = min(start + tile, width)
            span = stop - start
            acc = packed_acc[:span]
            acc[:] = 0
            scratch = scratch64[:span]
            for position, i in enumerate(active):
                np.take(luts[position], b_rows[i][start:stop], out=scratch)
                np.bitwise_xor(acc, scratch, out=acc)
            lanes = acc.view(np.uint8).reshape(span, 8)
            result[group_start:group_end, start:stop] = lanes[:, :group_size].T
    return result
