"""A tiny recency-ordered bounded map shared by the coding-layer caches.

Both :class:`~repro.coding.reed_solomon.ReedSolomonCode`'s decode-inverse
cache and :class:`~repro.coding.oracles.DecodeShareCache` need the same
idiom — hit refreshes recency, miss inserts, eviction drops the
least-recently-used entries beyond a bound — so it lives once, here.
Stored values may legitimately be ``None`` (an undecodable block set), so
lookups take an explicit miss ``default`` instead of treating ``None`` as
absent.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterator

_MISSING = object()


class LRUCache:
    """Least-recently-used map; the owner supplies the bound per store.

    The bound is a ``store`` argument rather than constructor state so
    owners whose limit is a (test-adjustable) attribute — e.g.
    ``ReedSolomonCode.DECODE_CACHE_LIMIT`` — always evict against the
    current value.
    """

    def __init__(self) -> None:
        self._entries: OrderedDict[Any, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Any]:
        return iter(self._entries)

    def lookup(self, key: Any, default: Any = None) -> Any:
        """Return the stored value (refreshing recency) or ``default``."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            return default
        self._entries.move_to_end(key)
        return value

    def store(self, key: Any, value: Any, max_entries: int) -> None:
        """Insert ``key`` as most recent; evict down to ``max_entries``."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > max_entries:
            self._entries.popitem(last=False)
