"""Single-parity XOR code: k data shards plus one XOR parity block.

This is the cheapest MDS code (``n = k + 1``; any ``k`` of the ``k + 1``
blocks decode). It tolerates one erasure and is the code behind the paper's
introductory cost figure ``(k + 2) D / k`` for ``f = 1`` storage: ``k + 2f``
blocks of ``D / k`` bits each with ``f = 1``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from functools import reduce

import numpy as np

from repro.coding.scheme import MDSCodingScheme, stack_group_payloads


def _xor_payloads(payloads: list[bytes]) -> bytes:
    arrays = [np.frombuffer(payload, dtype=np.uint8) for payload in payloads]
    return reduce(np.bitwise_xor, arrays).tobytes()


class XorParityCode(MDSCodingScheme):
    """k-of-(k+1) erasure code with a single XOR parity block."""

    name = "xor-parity"

    def __init__(self, k: int, data_size_bytes: int) -> None:
        super().__init__(k, k + 1, data_size_bytes)

    def encode_block(self, value: bytes, index: int) -> bytes:
        self.check_index(index)
        shards = self.shards(value)
        if index < self.k:
            return shards[index]
        return _xor_payloads(shards)

    def encode_batch(
        self, values: Sequence[bytes], indices: Iterable[int]
    ) -> list[dict[int, bytes]]:
        """Encode a batch: all parities fall out of one XOR reduction."""
        index_list = list(indices)
        for index in index_list:
            self.check_index(index)
        for value in values:
            self.check_value(value)
        if not values:
            return []
        parities: np.ndarray | None = None
        if any(index == self.k for index in index_list):
            cube = np.frombuffer(b"".join(values), dtype=np.uint8).reshape(
                len(values), self.k, self.shard_bytes
            )
            parities = np.bitwise_xor.reduce(cube, axis=1)
        results: list[dict[int, bytes]] = []
        size = self.shard_bytes
        for j, value in enumerate(values):
            blocks: dict[int, bytes] = {}
            for index in index_list:
                if index < self.k:
                    blocks[index] = value[index * size: (index + 1) * size]
                else:
                    blocks[index] = parities[j].tobytes()
            results.append(blocks)
        return results

    def decode_batch(
        self, blocks_batch: Sequence[Mapping[int, bytes]]
    ) -> list[bytes | None]:
        """Decode a batch, one XOR reduction per distinct erasure pattern."""
        results: list[bytes | None] = [None] * len(blocks_batch)
        grouped: dict[tuple[int, ...], list[int]] = {}
        for j, blocks in enumerate(blocks_batch):
            self.check_blocks(blocks)
            if len(blocks) < self.k:
                continue
            pattern = tuple(sorted(blocks))
            if self.k not in pattern:  # all-systematic fast path
                results[j] = b"".join(
                    blocks[index] for index in range(self.k)
                )
            else:
                grouped.setdefault(pattern, []).append(j)
        for pattern, members in grouped.items():
            missing = [i for i in range(self.k) if i not in pattern]
            if not missing:  # parity redundant: all data on hand
                for j in members:
                    results[j] = b"".join(
                        blocks_batch[j][index] for index in range(self.k)
                    )
                continue
            if len(missing) != 1:
                continue  # k blocks incl. parity but 2+ data gaps: undecodable
            stacked = stack_group_payloads(
                blocks_batch, members, pattern, self.shard_bytes
            )
            rebuilt = np.bitwise_xor.reduce(stacked, axis=0).reshape(
                len(members), self.shard_bytes
            )
            for pos, j in enumerate(members):
                blocks = blocks_batch[j]
                results[j] = b"".join(
                    blocks[index] if index in blocks else rebuilt[pos].tobytes()
                    for index in range(self.k)
                )
        return results

    def collision_delta(self, indices: Iterable[int]) -> bytes | None:
        """Return a delta hidden from the given blocks, if one exists.

        With fewer than ``k`` distinct blocks stored, at least one data shard
        is unconstrained: if some data index is absent we can flip it and the
        parity... only if the parity is also absent; when the parity is
        present we must flip *two* absent data shards to keep it unchanged.
        """
        index_set = {index for index in indices}
        for index in index_set:
            self.check_index(index)
        if len(index_set) >= self.k:
            return None
        absent_data = [i for i in range(self.k) if i not in index_set]
        delta = bytearray(self.data_size_bytes)
        if self.k not in index_set:
            # Parity not stored: flip a single absent data shard
            # (one always exists because len(index_set) < k).
            delta[absent_data[0] * self.shard_bytes] = 1
        else:
            # Parity stored: |index_set| <= k - 1 including parity, so at
            # least two data shards are absent; flip both so parity is kept.
            first, second = absent_data[0], absent_data[1]
            delta[first * self.shard_bytes] = 1
            delta[second * self.shard_bytes] = 1
        return bytes(delta)
