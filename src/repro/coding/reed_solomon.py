"""Systematic Reed-Solomon k-of-n erasure code over GF(2^8).

The generator is built from an ``n x k`` Vandermonde matrix ``V`` as
``G = V @ inv(V[:k])``, which makes the first ``k`` rows the identity
(systematic) while preserving the MDS property: any ``k`` rows of ``G`` are
the product of an invertible Vandermonde submatrix with ``inv(V[:k])`` and
are therefore invertible.

Block ``i`` is the byte-wise GF(2^8) inner product of row ``G[i]`` with the
``k`` data shards; decoding inverts the ``k x k`` submatrix picked out by the
available block indices. Encoding of systematic blocks (``index < k``) is a
plain shard copy.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.coding import matrix as gfmat
from repro.coding.gf256 import gf_addmul_bytes
from repro.coding.scheme import MDSCodingScheme
from repro.errors import ParameterError


class ReedSolomonCode(MDSCodingScheme):
    """Systematic RS(k, n) over GF(2^8); requires ``n <= 256``."""

    name = "reed-solomon"

    def __init__(self, k: int, n: int, data_size_bytes: int) -> None:
        super().__init__(k, n, data_size_bytes)
        if n > 256:
            raise ParameterError("Reed-Solomon over GF(2^8) supports n <= 256")
        vander = gfmat.vandermonde(n, k)
        top_inverse = gfmat.mat_inv([row[:] for row in vander[:k]])
        self._generator = gfmat.mat_mul(vander, top_inverse)
        # Cache of inverted decode submatrices keyed by the index tuple.
        self._decode_cache: dict[tuple[int, ...], gfmat.Matrix] = {}

    # ---------------------------------------------------------------- codec

    def generator_row(self, index: int) -> list[int]:
        """Return row ``index`` of the generator matrix (k coefficients)."""
        self.check_index(index)
        return list(self._generator[index])

    def encode_block(self, value: bytes, index: int) -> bytes:
        self.check_index(index)
        shards = self.shards(value)
        if index < self.k:
            return shards[index]
        row = self._generator[index]
        accumulator = np.zeros(self.shard_bytes, dtype=np.uint8)
        for coefficient, shard in zip(row, shards):
            gf_addmul_bytes(
                accumulator, coefficient, np.frombuffer(shard, dtype=np.uint8)
            )
        return accumulator.tobytes()

    def decode(self, blocks: Mapping[int, bytes]) -> bytes | None:
        self.check_blocks(blocks)
        if len(blocks) < self.k:
            return None
        chosen = sorted(blocks)[: self.k]
        key = tuple(chosen)
        inverse = self._decode_cache.get(key)
        if inverse is None:
            submatrix = [self._generator[index] for index in chosen]
            inverse = gfmat.mat_inv(submatrix)
            self._decode_cache[key] = inverse
        payload_arrays = [
            np.frombuffer(blocks[index], dtype=np.uint8) for index in chosen
        ]
        shards = []
        for row in inverse:
            accumulator = np.zeros(self.shard_bytes, dtype=np.uint8)
            for coefficient, payload in zip(row, payload_arrays):
                gf_addmul_bytes(accumulator, coefficient, payload)
            shards.append(accumulator.tobytes())
        return b"".join(shards)

    # ------------------------------------------------------------ collisions

    def collision_delta(self, indices: Iterable[int]) -> bytes | None:
        """Return a value delta invisible to the blocks at ``indices``.

        Exists iff the generator rows at ``indices`` do not span GF(2^8)^k,
        i.e. iff fewer than ``k`` distinct indices are given (MDS property);
        this matches Claim 1's ``sum size(i) < D`` condition exactly.
        """
        index_set = sorted(set(indices))
        for index in index_set:
            self.check_index(index)
        rows = [self._generator[index] for index in index_set]
        kernel = gfmat.null_space_vector(rows, self.k)
        if kernel is None:
            return None
        # Spread the shard-symbol delta across byte 0 of each shard.
        delta = bytearray(self.data_size_bytes)
        for shard_index, symbol in enumerate(kernel):
            delta[shard_index * self.shard_bytes] = symbol
        return bytes(delta)
