"""Systematic Reed-Solomon k-of-n erasure code over GF(2^8).

The generator is built from an ``n x k`` Vandermonde matrix ``V`` as
``G = V @ inv(V[:k])``, which makes the first ``k`` rows the identity
(systematic) while preserving the MDS property: any ``k`` rows of ``G`` are
the product of an invertible Vandermonde submatrix with ``inv(V[:k])`` and
are therefore invertible.

Block ``i`` is the byte-wise GF(2^8) inner product of row ``G[i]`` with the
``k`` data shards; decoding inverts the ``k x k`` submatrix picked out by the
available block indices. Encoding of systematic blocks (``index < k``) is a
plain shard copy.

All codec paths are expressed as :func:`~repro.coding.gf256.gf_matmul`
products against a cached ``uint8`` generator:

* :meth:`ReedSolomonCode.encode_batch` stacks many values column-wise
  (:meth:`~repro.coding.scheme.MDSCodingScheme.shard_stack`) and encodes the
  whole batch — every requested parity row of every codeword — in one pass;
* :meth:`ReedSolomonCode.decode_batch` groups entries by erasure pattern and
  runs one cached-inverse multiplication per distinct pattern, with an
  all-systematic fast path.

The scalar ``encode_many``/``decode`` forms are the base-class batch-of-one
shims; only :meth:`ReedSolomonCode.encode_block` keeps a direct override
(the systematic shard copy).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.coding import matrix as gfmat
from repro.coding.gf256 import gf_matmul
from repro.coding.lru import LRUCache
from repro.coding.scheme import (
    MDSCodingScheme,
    stack_group_payloads,
    unstack_rows,
)
from repro.errors import ParameterError


class ReedSolomonCode(MDSCodingScheme):
    """Systematic RS(k, n) over GF(2^8); requires ``n <= 256``."""

    name = "reed-solomon"

    #: Maximum number of cached decode inverses (erasure patterns). Each
    #: entry is a ``k x k`` uint8 matrix; at the cap the cache tops out
    #: around ``256 * k^2`` bytes. Large-(n, k) sweeps visit far more than
    #: 256 distinct patterns, so eviction (LRU) is required for the cache
    #: not to grow with the number of patterns seen.
    DECODE_CACHE_LIMIT = 256

    def __init__(self, k: int, n: int, data_size_bytes: int) -> None:
        super().__init__(k, n, data_size_bytes)
        if n > 256:
            raise ParameterError("Reed-Solomon over GF(2^8) supports n <= 256")
        vander = gfmat.vandermonde(n, k)
        top_inverse = gfmat.mat_inv([row[:] for row in vander[:k]])
        self._generator = gfmat.mat_mul(vander, top_inverse)
        #: ``uint8`` copy of the generator, the operand of every encode pass.
        self._generator_np = gfmat.to_array(self._generator)
        # LRU cache of inverted decode submatrices keyed by the index tuple;
        # bounded by DECODE_CACHE_LIMIT, least-recently-used pattern evicted.
        self._decode_cache = LRUCache()

    # ---------------------------------------------------------------- codec

    def generator_row(self, index: int) -> list[int]:
        """Return row ``index`` of the generator matrix (k coefficients)."""
        self.check_index(index)
        return list(self._generator[index])

    def encode_block(self, value: bytes, index: int) -> bytes:
        self.check_index(index)
        if index < self.k:
            return self.shards(value)[index]
        product = gf_matmul(
            self._generator_np[index: index + 1], self.shard_matrix(value)
        )
        return product.tobytes()

    def encode_batch(
        self, values: Sequence[bytes], indices: Iterable[int]
    ) -> list[dict[int, bytes]]:
        """Encode a batch of values with one stacked generator multiply."""
        index_list = list(indices)
        for index in index_list:
            self.check_index(index)
        for value in values:
            self.check_value(value)
        if not values:
            return []
        parity = sorted({i for i in index_list if i >= self.k})
        cube = None
        if parity:
            product = gf_matmul(
                self._generator_np[parity], self.shard_stack(values)
            )
            cube = unstack_rows(product, len(values), self.shard_bytes)
        results: list[dict[int, bytes]] = []
        size = self.shard_bytes
        for j, value in enumerate(values):
            blocks: dict[int, bytes] = {}
            for index in index_list:
                if index < self.k:
                    blocks[index] = value[index * size: (index + 1) * size]
            if cube is not None:
                for pos, index in enumerate(parity):
                    blocks[index] = cube[pos, j].tobytes()
            results.append(blocks)
        return results

    def _decode_inverse(self, chosen: tuple[int, ...]) -> np.ndarray:
        """Return (and LRU-cache) the inverse of the generator rows ``chosen``.

        A hit refreshes the pattern's recency; a miss inverts the submatrix,
        inserts it, and evicts the least-recently-used pattern once more than
        :data:`DECODE_CACHE_LIMIT` patterns are held.
        """
        inverse = self._decode_cache.lookup(chosen)
        if inverse is not None:
            return inverse
        submatrix = [self._generator[index] for index in chosen]
        inverse = gfmat.to_array(gfmat.mat_inv(submatrix))
        self._decode_cache.store(chosen, inverse, self.DECODE_CACHE_LIMIT)
        return inverse

    def decode_batch(
        self, blocks_batch: Sequence[Mapping[int, bytes]]
    ) -> list[bytes | None]:
        """Decode a batch, one matrix pass per distinct erasure pattern."""
        results: list[bytes | None] = [None] * len(blocks_batch)
        grouped: dict[tuple[int, ...], list[int]] = {}
        systematic = tuple(range(self.k))
        for j, blocks in enumerate(blocks_batch):
            self.check_blocks(blocks)
            if len(blocks) < self.k:
                continue
            chosen = tuple(sorted(blocks)[: self.k])
            if chosen == systematic:
                results[j] = b"".join(blocks[index] for index in chosen)
            else:
                grouped.setdefault(chosen, []).append(j)
        for chosen, members in grouped.items():
            payload = stack_group_payloads(
                blocks_batch, members, chosen, self.shard_bytes
            )
            product = gf_matmul(self._decode_inverse(chosen), payload)
            cube = unstack_rows(product, len(members), self.shard_bytes)
            for pos, j in enumerate(members):
                results[j] = cube[:, pos].tobytes()
        return results

    # ------------------------------------------------------------ collisions

    def collision_delta(self, indices: Iterable[int]) -> bytes | None:
        """Return a value delta invisible to the blocks at ``indices``.

        Exists iff the generator rows at ``indices`` do not span GF(2^8)^k,
        i.e. iff fewer than ``k`` distinct indices are given (MDS property);
        this matches Claim 1's ``sum size(i) < D`` condition exactly.
        """
        index_set = sorted(set(indices))
        for index in index_set:
            self.check_index(index)
        rows = [self._generator[index] for index in index_set]
        kernel = gfmat.null_space_vector(rows, self.k)
        if kernel is None:
            return None
        # Spread the shard-symbol delta across byte 0 of each shard.
        delta = bytearray(self.data_size_bytes)
        for shard_index, symbol in enumerate(kernel):
            delta[shard_index * self.shard_bytes] = symbol
        return bytes(delta)
