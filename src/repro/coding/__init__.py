"""Erasure-coding substrate: GF(2^8) arithmetic, codes, and oracles.

Public surface:

* :class:`~repro.coding.scheme.CodingScheme` — the symmetric coding
  interface of Section 3.1 (``E``, ``D``, ``size(i)``).
* :class:`~repro.coding.reed_solomon.ReedSolomonCode` — systematic k-of-n
  MDS code (the workhorse of the register emulations).
* :class:`~repro.coding.replication.ReplicationCode` — full replication as
  the ``k = 1`` degenerate code.
* :class:`~repro.coding.xor_parity.XorParityCode` — single-parity MDS code.
* :class:`~repro.coding.rateless.RatelessXorCode` — unbounded-index fountain
  code (the reason the paper's block domain is ``N``).
* :class:`~repro.coding.oracles.EncodeOracle` /
  :class:`~repro.coding.oracles.DecodeOracle` — Definition 1's oracles, with
  source tagging (Definition 4) for black-box storage accounting.
"""

from repro.coding.oracles import BlockSource, CodeBlock, DecodeOracle, EncodeOracle
from repro.coding.padding import PaddedScheme, padded_size
from repro.coding.rateless import RatelessXorCode
from repro.coding.reed_solomon import ReedSolomonCode
from repro.coding.replication import ReplicationCode
from repro.coding.scheme import CodingScheme, MDSCodingScheme
from repro.coding.xor_parity import XorParityCode

__all__ = [
    "BlockSource",
    "CodeBlock",
    "CodingScheme",
    "DecodeOracle",
    "EncodeOracle",
    "MDSCodingScheme",
    "PaddedScheme",
    "RatelessXorCode",
    "padded_size",
    "ReedSolomonCode",
    "ReplicationCode",
    "XorParityCode",
]
