"""Erasure-coding substrate: GF(2^8) arithmetic, codes, and oracles.

Public surface:

* :class:`~repro.coding.scheme.CodingScheme` — the symmetric coding
  interface of Section 3.1 (``E``, ``D``, ``size(i)``).
* :class:`~repro.coding.reed_solomon.ReedSolomonCode` — systematic k-of-n
  MDS code (the workhorse of the register emulations).
* :class:`~repro.coding.replication.ReplicationCode` — full replication as
  the ``k = 1`` degenerate code.
* :class:`~repro.coding.xor_parity.XorParityCode` — single-parity MDS code.
* :class:`~repro.coding.rateless.RatelessXorCode` — unbounded-index fountain
  code (the reason the paper's block domain is ``N``).
* :class:`~repro.coding.oracles.EncodeOracle` /
  :class:`~repro.coding.oracles.DecodeOracle` — Definition 1's oracles, with
  source tagging (Definition 4) for black-box storage accounting.
* :func:`~repro.coding.gf256.gf_matmul` — the vectorised GF(2^8) batch
  engine every scheme's ``encode_batch`` / ``decode_batch`` rides;
  :func:`~repro.coding.oracles.prime_encode_oracles` — one shared encode
  pass for a burst of live oracles — and its runner-side twin
  :class:`~repro.coding.oracles.BatchEncodePlan`, which pre-encodes a
  write wave before any oracle exists.
* :mod:`~repro.coding.backends` — the pluggable kernel registry under
  ``gf_matmul``: :func:`~repro.coding.backends.available_backends`,
  :func:`~repro.coding.backends.use_backend`,
  :func:`~repro.coding.backends.get_backend`, and the
  ``REPRO_CODING_BACKEND`` environment override. All backends are
  byte-identical; selection is purely an execution knob.
"""

from repro.coding.backends import (
    CodingBackend,
    available_backends,
    get_backend,
    register_backend,
    reset_backend,
    use_backend,
)
from repro.coding.gf256 import gf_matmul
from repro.coding.oracles import (
    BatchEncodePlan,
    BlockSource,
    CodeBlock,
    DecodeOracle,
    DecodeShareCache,
    EncodeOracle,
    prime_encode_oracles,
)
from repro.coding.padding import PaddedScheme, padded_size
from repro.coding.rateless import RatelessXorCode
from repro.coding.reed_solomon import ReedSolomonCode
from repro.coding.replication import ReplicationCode
from repro.coding.scheme import CodingScheme, MDSCodingScheme
from repro.coding.xor_parity import XorParityCode

__all__ = [
    "BatchEncodePlan",
    "BlockSource",
    "CodeBlock",
    "CodingBackend",
    "CodingScheme",
    "DecodeOracle",
    "DecodeShareCache",
    "EncodeOracle",
    "MDSCodingScheme",
    "PaddedScheme",
    "RatelessXorCode",
    "available_backends",
    "get_backend",
    "gf_matmul",
    "padded_size",
    "prime_encode_oracles",
    "register_backend",
    "reset_backend",
    "ReedSolomonCode",
    "ReplicationCode",
    "use_backend",
    "XorParityCode",
]
