"""Encoding/decoding oracles with source tagging (Definitions 1 and 4).

Writers obtain code blocks exclusively through an :class:`EncodeOracle`;
readers accumulate blocks in a :class:`DecodeOracle` and call
:meth:`DecodeOracle.done`. Every block handed out is wrapped in a
:class:`CodeBlock` carrying its *source* — the ``(operation uid, block
number)`` pair of the paper's source function (Definition 4) — and its bit
size. The storage-cost meter (Definition 2) and the lower-bound adversary's
``||S(t, w)||`` accounting (Definition 6) read only the tag and the size,
never the payload, which is what makes the algorithms *black-box*
(Definition 5): swapping the written value changes payloads but no tags,
sizes, or control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.coding.scheme import CodingScheme
from repro.errors import ProtocolError


@dataclass(frozen=True)
class BlockSource:
    """The source-function image of a stored block: which op, which number."""

    op_uid: int
    index: int


@dataclass(frozen=True)
class CodeBlock:
    """An immutable code block as handed out by an encode oracle.

    ``payload`` is the coded bytes. Protocol code must treat it as opaque;
    only decode oracles may interpret it.
    """

    payload: bytes
    index: int
    source: BlockSource
    size_bits: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CodeBlock(op={self.source.op_uid}, i={self.index}, "
            f"{self.size_bits}b)"
        )


class EncodeOracle:
    """``oracleE(c_i, w)`` — produces blocks of one written value.

    Initialised when a write is invoked; ``get(i)`` returns ``E(v, i)``
    tagged with this write's uid. The oracle caches blocks so repeated
    ``get`` calls return the identical object (idempotent sources).
    """

    def __init__(self, scheme: CodingScheme, value: bytes, op_uid: int) -> None:
        scheme.check_value(value)
        self.scheme = scheme
        self.op_uid = op_uid
        self._value = value
        self._blocks: dict[int, CodeBlock] = {}
        self.expired = False

    def get(self, index: int) -> CodeBlock:
        """Return block number ``index`` of the written value."""
        if self.expired:
            raise ProtocolError("encode oracle used after its write completed")
        block = self._blocks.get(index)
        if block is None:
            payload = self.scheme.encode_block(self._value, index)
            block = CodeBlock(
                payload=payload,
                index=index,
                source=BlockSource(self.op_uid, index),
                size_bits=self.scheme.block_size_bits(index),
            )
            self._blocks[index] = block
        return block

    def get_many(self, indices: list[int]) -> list[CodeBlock]:
        """Return blocks for every index in ``indices`` (in order)."""
        return [self.get(index) for index in indices]

    def expire(self) -> None:
        """Invalidate the oracle (the write completed)."""
        self.expired = True


@dataclass
class DecodeOracle:
    """``oracleD(c_i, r)`` — accumulates blocks and decodes on ``done``.

    The paper indexes pushes by an attempt number ``i`` so a reader can run
    several decode attempts; we keep that: ``push(block, attempt)`` files the
    block under ``attempt`` and ``done(attempt)`` decodes that attempt's
    blocks.
    """

    scheme: CodingScheme
    _attempts: dict[int, dict[int, bytes]] = field(default_factory=dict)
    expired: bool = False

    def push(self, block: CodeBlock, attempt: int = 0) -> None:
        """File ``block`` under decode attempt ``attempt``."""
        if self.expired:
            raise ProtocolError("decode oracle used after its read completed")
        self._attempts.setdefault(attempt, {})[block.index] = block.payload

    def push_payload(self, index: int, payload: bytes, attempt: int = 0) -> None:
        """File a raw payload (used when blocks were re-wrapped by storage)."""
        if self.expired:
            raise ProtocolError("decode oracle used after its read completed")
        self._attempts.setdefault(attempt, {})[index] = payload

    def blocks_in(self, attempt: int = 0) -> int:
        """Return how many distinct blocks attempt ``attempt`` holds."""
        return len(self._attempts.get(attempt, {}))

    def done(self, attempt: int = 0) -> bytes | None:
        """Decode attempt ``attempt`` and expire the oracle.

        Returns the reconstructed value, or ``None`` if undecodable.
        """
        blocks = self._attempts.get(attempt, {})
        value = self.scheme.decode(blocks)
        self.expired = True
        return value

    def peek(self, attempt: int = 0) -> bytes | None:
        """Decode without expiring (used by retrying readers)."""
        return self.scheme.decode(self._attempts.get(attempt, {}))
