"""Encoding/decoding oracles with source tagging (Definitions 1 and 4).

Writers obtain code blocks exclusively through an :class:`EncodeOracle`;
readers accumulate blocks in a :class:`DecodeOracle` and call
:meth:`DecodeOracle.done`. Every block handed out is wrapped in a
:class:`CodeBlock` carrying its *source* — the ``(operation uid, block
number)`` pair of the paper's source function (Definition 4) — and its bit
size. The storage-cost meter (Definition 2) and the lower-bound adversary's
``||S(t, w)||`` accounting (Definition 6) read only the tag and the size,
never the payload, which is what makes the algorithms *black-box*
(Definition 5): swapping the written value changes payloads but no tags,
sizes, or control flow.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.coding.lru import LRUCache
from repro.coding.scheme import CodingScheme
from repro.errors import ParameterError, ProtocolError


@dataclass(frozen=True)
class BlockSource:
    """The source-function image of a stored block: which op, which number."""

    op_uid: int
    index: int


@dataclass(frozen=True)
class CodeBlock:
    """An immutable code block as handed out by an encode oracle.

    ``payload`` is the coded bytes. Protocol code must treat it as opaque;
    only decode oracles may interpret it.
    """

    payload: bytes
    index: int
    source: BlockSource
    size_bits: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CodeBlock(op={self.source.op_uid}, i={self.index}, "
            f"{self.size_bits}b)"
        )


class EncodeOracle:
    """``oracleE(c_i, w)`` — produces blocks of one written value.

    Initialised when a write is invoked; ``get(i)`` returns ``E(v, i)``
    tagged with this write's uid. The oracle caches blocks so repeated
    ``get`` calls return the identical object (idempotent sources).
    """

    def __init__(self, scheme: CodingScheme, value: bytes, op_uid: int) -> None:
        scheme.check_value(value)
        self.scheme = scheme
        self.op_uid = op_uid
        self._value = value
        self._blocks: dict[int, CodeBlock] = {}
        self.expired = False

    def get(self, index: int) -> CodeBlock:
        """Return block number ``index`` of the written value."""
        if self.expired:
            raise ProtocolError("encode oracle used after its write completed")
        block = self._blocks.get(index)
        if block is None:
            payload = self.scheme.encode_block(self._value, index)
            block = self._wrap(index, payload)
        return block

    def get_many(self, indices: Iterable[int]) -> list[CodeBlock]:
        """Return blocks for every index in ``indices`` (in order).

        Semantically ``[oracleE.get(i) for i in indices]`` — Definition 1's
        oracle queried once per block number, every block tagged with this
        write's ``(op_uid, index)`` source (Definition 4) — but uncached
        indices are encoded together through the scheme's
        :meth:`~repro.coding.scheme.CodingScheme.encode_many`, so a write
        that sends pieces to all ``n`` base objects pays one vectorised
        encode pass for the whole codeword instead of ``n`` scalar calls.
        Caching keeps sources idempotent: repeated queries for one index
        return the identical :class:`CodeBlock` object.
        """
        if self.expired:
            raise ProtocolError("encode oracle used after its write completed")
        index_list = list(indices)
        missing = [i for i in index_list if i not in self._blocks]
        if missing:
            for index, payload in self.scheme.encode_many(
                self._value, missing
            ).items():
                self._wrap(index, payload)
        return [self._blocks[index] for index in index_list]

    def _wrap(self, index: int, payload: bytes) -> CodeBlock:
        """Tag a freshly encoded payload and cache it (idempotent sources)."""
        block = CodeBlock(
            payload=payload,
            index=index,
            source=BlockSource(self.op_uid, index),
            size_bits=self.scheme.block_size_bits(index),
        )
        self._blocks[index] = block
        return block

    def expire(self) -> None:
        """Invalidate the oracle (the write completed)."""
        self.expired = True


def prime_encode_oracles(
    oracles: "list[EncodeOracle]", indices: Iterable[int]
) -> None:
    """Pre-fill many writes' oracles with one shared vectorised encode pass.

    Groups the oracles by scheme and routes each group's values through a
    single :meth:`~repro.coding.scheme.CodingScheme.encode_batch` call, so a
    burst of concurrent writes (a workload generator enqueueing a wave, a
    sweep driving many writers) encodes every codeword in one stacked matrix
    multiplication. Subsequent :meth:`EncodeOracle.get` calls hit the cache
    and return the identical tagged blocks they would have produced lazily.
    """
    index_list = list(indices)
    # Group by (scheme, still-missing indices) so a re-primed oracle is
    # only encoded for the blocks it actually lacks.
    groups: dict[tuple[int, tuple[int, ...]], list[EncodeOracle]] = {}
    for oracle in oracles:
        if oracle.expired:
            raise ProtocolError("cannot prime an expired encode oracle")
        pending = tuple(i for i in index_list if i not in oracle._blocks)
        if not pending:
            continue
        groups.setdefault((id(oracle.scheme), pending), []).append(oracle)
    for (_, pending), group in groups.items():
        batch = group[0].scheme.encode_batch(
            [oracle._value for oracle in group], pending
        )
        for oracle, blocks in zip(group, batch):
            for index, payload in blocks.items():
                oracle._wrap(index, payload)


class BatchEncodePlan:
    """One stacked encode pass covering a wave of writes known in advance.

    :func:`prime_encode_oracles` batches across oracles that already exist;
    a workload runner, however, knows every write value *before* the
    simulation creates a single oracle (oracles are born lazily, inside
    ``write_gen``, one per invoked write). The plan closes that gap: it runs
    the same stacked :meth:`~repro.coding.scheme.CodingScheme.encode_batch`
    pass up front, keyed by value, and :meth:`prime` transplants the cached
    payloads into each oracle the moment it is created — re-tagged with
    *that oracle's* ``op_uid``, so the source function (Definition 4) is
    byte-for-byte identical to what lazy encoding would have produced.

    Priming is a pure cache warm-up: block payloads, tags, sizes, control
    flow, and therefore every storage measurement are unchanged; only the
    number of matrix passes drops (one per wave instead of one per write).
    """

    def __init__(
        self,
        scheme: CodingScheme,
        values: Iterable[bytes],
        indices: Iterable[int],
    ) -> None:
        self.scheme = scheme
        self.indices = list(indices)
        unique = list(dict.fromkeys(values))
        encoded = scheme.encode_batch(unique, self.indices)
        self._payloads: dict[bytes, dict[int, bytes]] = dict(
            zip(unique, encoded)
        )

    def __len__(self) -> int:
        return len(self._payloads)

    def prime(self, oracle: EncodeOracle) -> bool:
        """Warm ``oracle`` from the plan; return ``True`` when it applied.

        A plan only primes oracles of the scheme it encoded for, and only
        values it has seen; anything else is left to encode lazily.
        """
        if oracle.scheme is not self.scheme:
            return False
        payloads = self._payloads.get(oracle._value)
        if payloads is None:
            return False
        for index, payload in payloads.items():
            if index not in oracle._blocks:
                oracle._wrap(index, payload)
        return True


class DecodeShareCache:
    """One stacked decode pass shared by readers assembling the same blocks.

    The read-side twin of :class:`BatchEncodePlan`: a workload with many
    readers typically has them all reassemble the *same* codeword (the
    latest write's blocks), yet each reader's
    :meth:`DecodeOracle.done` would run its own matrix pass. The cache keys
    on the exact ``(index, payload)`` set a reader assembled; the first
    reader pays one :meth:`~repro.coding.scheme.CodingScheme.decode_batch`
    pass (the vectorised path) and every subsequent reader with the same
    set reuses the decoded value.

    Decoding is a pure function of the block set, so sharing is
    measurement-invisible: returned values — including ``None`` for
    undecodable sets — are byte-identical to per-read decoding (the parity
    suite asserts this across every register). Entries are LRU-bounded so
    long churn workloads cannot accrete unbounded decoded values.
    """

    _MISS = object()

    def __init__(self, scheme: CodingScheme, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ParameterError("DecodeShareCache needs max_entries >= 1")
        self.scheme = scheme
        self.max_entries = max_entries
        self._cache = LRUCache()
        self.hits = 0
        self.misses = 0

    def decode(self, blocks: Mapping[int, bytes]) -> bytes | None:
        """Decode ``blocks``, sharing the pass with identical block sets."""
        key = tuple(sorted(blocks.items()))
        cached = self._cache.lookup(key, self._MISS)
        if cached is not self._MISS:
            self.hits += 1
            return cached
        self.misses += 1
        [value] = self.scheme.decode_batch([dict(blocks)])
        self._cache.store(key, value, self.max_entries)
        return value


@dataclass
class DecodeOracle:
    """``oracleD(c_i, r)`` — accumulates blocks and decodes on ``done``.

    The paper indexes pushes by an attempt number ``i`` so a reader can run
    several decode attempts; we keep that: ``push(block, attempt)`` files the
    block under ``attempt`` and ``done(attempt)`` decodes that attempt's
    blocks. When a :class:`DecodeShareCache` is attached (the workload
    runner installs one per simulation), the decode pass is shared across
    oracles that assembled identical block sets.
    """

    scheme: CodingScheme
    _attempts: dict[int, dict[int, bytes]] = field(default_factory=dict)
    expired: bool = False
    share_cache: DecodeShareCache | None = None

    def push(self, block: CodeBlock, attempt: int = 0) -> None:
        """File ``block`` under decode attempt ``attempt``."""
        if self.expired:
            raise ProtocolError("decode oracle used after its read completed")
        self._attempts.setdefault(attempt, {})[block.index] = block.payload

    def push_payload(self, index: int, payload: bytes, attempt: int = 0) -> None:
        """File a raw payload (used when blocks were re-wrapped by storage)."""
        if self.expired:
            raise ProtocolError("decode oracle used after its read completed")
        self._attempts.setdefault(attempt, {})[index] = payload

    def blocks_in(self, attempt: int = 0) -> int:
        """Return how many distinct blocks attempt ``attempt`` holds."""
        return len(self._attempts.get(attempt, {}))

    def _decode(self, blocks: dict[int, bytes]) -> bytes | None:
        if self.share_cache is not None:
            return self.share_cache.decode(blocks)
        return self.scheme.decode(blocks)

    def done(self, attempt: int = 0) -> bytes | None:
        """Decode attempt ``attempt`` and expire the oracle.

        Returns the reconstructed value, or ``None`` if undecodable.
        """
        value = self._decode(self._attempts.get(attempt, {}))
        self.expired = True
        return value

    def peek(self, attempt: int = 0) -> bytes | None:
        """Decode without expiring (used by retrying readers)."""
        return self._decode(self._attempts.get(attempt, {}))
