"""Rateless (LT-style) fountain code over GF(2).

The paper's model uses ``N`` as the block-number domain precisely to capture
rateless codes ("a limit-less sequence of blocks", Section 3.1). This scheme
realises that: block ``i`` is the XOR of a pseudo-random subset of the ``k``
value shards, with the subset derived deterministically from ``(seed, i)``
via SHA-256, so the code is symmetric (all blocks have the shard size) and
the index space is unbounded.

Any set of blocks whose subset-masks span GF(2)^k decodes; ``k`` random
blocks suffice with probability ``prod_{j>=1} (1 - 2^-j) ~ 0.289`` and each
extra block roughly halves the failure probability, which is the standard
rateless trade-off. :meth:`RatelessXorCode.decode` returns ``None`` (the
paper's bottom) when the received masks do not span.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Mapping

import numpy as np

from repro.coding.scheme import CodingScheme
from repro.errors import DecodingError, ParameterError


class RatelessXorCode(CodingScheme):
    """Unbounded-index XOR fountain code with ``k`` source shards."""

    name = "rateless-xor"

    def __init__(self, k: int, data_size_bytes: int, seed: int = 0) -> None:
        super().__init__(data_size_bytes)
        if k < 1:
            raise ParameterError("k must be >= 1")
        if data_size_bytes % k != 0:
            raise ParameterError("data_size_bytes must be divisible by k")
        self.k = k
        self.seed = seed
        self.shard_bytes = data_size_bytes // k

    # ------------------------------------------------------------- masking

    def mask(self, index: int) -> int:
        """Return the nonzero k-bit shard-subset mask for block ``index``."""
        if index < 0:
            raise ParameterError("block index must be non-negative")
        digest = hashlib.sha256(f"{self.seed}:{index}".encode()).digest()
        value = int.from_bytes(digest[:16], "big")
        mask = value & ((1 << self.k) - 1)
        if mask == 0:
            mask = 1 << (index % self.k)
        return mask

    # --------------------------------------------------------------- codec

    def block_size_bits(self, index: int) -> int:
        if index < 0:
            raise ParameterError("block index must be non-negative")
        return self.shard_bytes * 8

    def min_blocks_to_decode(self) -> int:
        return self.k

    def _shards(self, value: bytes) -> list[np.ndarray]:
        self.check_value(value)
        flat = np.frombuffer(value, dtype=np.uint8)
        return [
            flat[i * self.shard_bytes: (i + 1) * self.shard_bytes]
            for i in range(self.k)
        ]

    def encode_block(self, value: bytes, index: int) -> bytes:
        shards = self._shards(value)
        mask = self.mask(index)
        accumulator = np.zeros(self.shard_bytes, dtype=np.uint8)
        for shard_index in range(self.k):
            if mask & (1 << shard_index):
                np.bitwise_xor(accumulator, shards[shard_index], out=accumulator)
        return accumulator.tobytes()

    def decode(self, blocks: Mapping[int, bytes]) -> bytes | None:
        for index, payload in blocks.items():
            if len(payload) != self.shard_bytes:
                raise DecodingError(
                    f"block {index} is {len(payload)} bytes, "
                    f"expected {self.shard_bytes}"
                )
        # Forward GF(2) elimination keyed by each row's highest set bit.
        basis: dict[int, tuple[int, np.ndarray]] = {}
        for index in sorted(blocks):
            mask = self.mask(index)
            payload = np.frombuffer(blocks[index], dtype=np.uint8).copy()
            while mask:
                pivot = mask.bit_length() - 1
                existing = basis.get(pivot)
                if existing is None:
                    basis[pivot] = (mask, payload)
                    break
                mask ^= existing[0]
                payload = np.bitwise_xor(payload, existing[1])
        if len(basis) < self.k:
            return None
        # Back-substitution, ascending: once rows for pivots < p are unit
        # vectors, clearing row p's lower bits makes it a unit vector too
        # (forward elimination guarantees row p has no bits above p).
        for pivot in sorted(basis):
            mask, payload = basis[pivot]
            residual = mask ^ (1 << pivot)
            while residual:
                bit = residual.bit_length() - 1
                payload = np.bitwise_xor(payload, basis[bit][1])
                residual ^= 1 << bit
            basis[pivot] = (1 << pivot, payload)
        shards = [basis[i][1].tobytes() for i in range(self.k)]
        return b"".join(shards)

    # ------------------------------------------------------------ collisions

    def collision_delta(self, indices: Iterable[int]) -> bytes | None:
        """Return a delta hidden from ``indices``, or ``None`` if they span.

        Works over GF(2): find a nonzero shard subset orthogonal to every
        block mask, then flip byte 0 of exactly those shards. Such a subset
        exists iff the masks do not span GF(2)^k — in particular whenever
        fewer than ``k`` distinct blocks are stored (Claim 1's premise).
        """
        basis: dict[int, int] = {}
        for index in set(indices):
            reduced = self.mask(index)
            while reduced:
                pivot = reduced.bit_length() - 1
                if pivot not in basis:
                    basis[pivot] = reduced
                    break
                reduced ^= basis[pivot]
        if len(basis) >= self.k:
            return None
        # Reduce to RREF ascending (see decode); rows keep only their pivot
        # bit plus free (non-pivot) bits afterwards.
        for pivot in sorted(basis):
            row = basis[pivot]
            residual = row ^ (1 << pivot)
            while residual:
                bit = residual.bit_length() - 1
                if bit in basis:
                    row ^= basis[bit]
                residual ^= 1 << bit
            basis[pivot] = row
        free_bit = next(bit for bit in range(self.k) if bit not in basis)
        # Kernel vector: set the free variable, solve each pivot variable.
        kernel = 1 << free_bit
        for pivot, row in basis.items():
            if row & (1 << free_bit):
                kernel |= 1 << pivot
        delta = bytearray(self.data_size_bytes)
        for shard_index in range(self.k):
            if kernel & (1 << shard_index):
                delta[shard_index * self.shard_bytes] = 1
        return bytes(delta)
