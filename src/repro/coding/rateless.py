"""Rateless (LT-style) fountain code over GF(2).

The paper's model uses ``N`` as the block-number domain precisely to capture
rateless codes ("a limit-less sequence of blocks", Section 3.1). This scheme
realises that: block ``i`` is the XOR of a pseudo-random subset of the ``k``
value shards, with the subset derived deterministically from ``(seed, i)``
via SHA-256, so the code is symmetric (all blocks have the shard size) and
the index space is unbounded.

Any set of blocks whose subset-masks span GF(2)^k decodes; ``k`` random
blocks suffice with probability ``prod_{j>=1} (1 - 2^-j) ~ 0.289`` and each
extra block roughly halves the failure probability, which is the standard
rateless trade-off. :meth:`RatelessXorCode.decode` returns ``None`` (the
paper's bottom) when the received masks do not span.

Payload arithmetic is vectorised: masks expand to 0/1 coefficient rows
(:meth:`RatelessXorCode.coefficient_rows`) and encoding is one
:func:`~repro.coding.gf256.gf_matmul` pass — a GF(2) subset-XOR is exactly a
GF(2^8) matrix product with 0/1 coefficients. Decoding eliminates over the
integer masks only (tracking which received blocks combine into each shard)
and then applies the resulting selection matrix to all payloads in a single
pass; no byte is touched until the combination is known.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.coding.gf256 import gf_matmul
from repro.coding.scheme import (
    CodingScheme,
    stack_group_payloads,
    stack_values,
    unstack_rows,
)
from repro.errors import DecodingError, ParameterError


class RatelessXorCode(CodingScheme):
    """Unbounded-index XOR fountain code with ``k`` source shards."""

    name = "rateless-xor"

    def __init__(self, k: int, data_size_bytes: int, seed: int = 0) -> None:
        super().__init__(data_size_bytes)
        if k < 1:
            raise ParameterError("k must be >= 1")
        if data_size_bytes % k != 0:
            raise ParameterError("data_size_bytes must be divisible by k")
        self.k = k
        self.seed = seed
        self.shard_bytes = data_size_bytes // k

    # ------------------------------------------------------------- masking

    def mask(self, index: int) -> int:
        """Return the nonzero k-bit shard-subset mask for block ``index``."""
        if index < 0:
            raise ParameterError("block index must be non-negative")
        digest = hashlib.sha256(f"{self.seed}:{index}".encode()).digest()
        value = int.from_bytes(digest[:16], "big")
        mask = value & ((1 << self.k) - 1)
        if mask == 0:
            mask = 1 << (index % self.k)
        return mask

    # --------------------------------------------------------------- codec

    def block_size_bits(self, index: int) -> int:
        if index < 0:
            raise ParameterError("block index must be non-negative")
        return self.shard_bytes * 8

    def min_blocks_to_decode(self) -> int:
        return self.k

    def coefficient_rows(self, indices: Sequence[int]) -> np.ndarray:
        """Return the ``(len(indices), k)`` 0/1 mask matrix for ``indices``."""
        rows = np.zeros((len(indices), self.k), dtype=np.uint8)
        for pos, index in enumerate(indices):
            mask = self.mask(index)
            for shard_index in range(self.k):
                if mask & (1 << shard_index):
                    rows[pos, shard_index] = 1
        return rows

    def encode_batch(
        self, values: Sequence[bytes], indices: Iterable[int]
    ) -> list[dict[int, bytes]]:
        """Encode a batch of values with one stacked mask multiply."""
        index_list = list(dict.fromkeys(indices))
        for value in values:
            self.check_value(value)
        if not values:
            return []
        rows = self.coefficient_rows(index_list)
        stacked = stack_values(values, self.k, self.shard_bytes)
        cube = unstack_rows(
            gf_matmul(rows, stacked), len(values), self.shard_bytes
        )
        return [
            {
                index: cube[pos, j].tobytes()
                for pos, index in enumerate(index_list)
            }
            for j in range(len(values))
        ]

    def _selection_matrix(self, indices: Sequence[int]) -> np.ndarray | None:
        """Return the ``(k, len(indices))`` 0/1 matrix mapping received
        payloads to decoded shards, or ``None`` if the masks do not span.

        Gauss-Jordan runs over the integer masks alone; ``combo`` bitmasks
        record which received rows were folded into each pivot, so the whole
        byte-level work collapses to one matrix product afterwards.
        """
        # Forward GF(2) elimination keyed by each row's highest set bit.
        basis: dict[int, tuple[int, int]] = {}
        for row_pos, index in enumerate(indices):
            mask = self.mask(index)
            combo = 1 << row_pos
            while mask:
                pivot = mask.bit_length() - 1
                existing = basis.get(pivot)
                if existing is None:
                    basis[pivot] = (mask, combo)
                    break
                mask ^= existing[0]
                combo ^= existing[1]
        if len(basis) < self.k:
            return None
        # Back-substitution, ascending: once rows for pivots < p are unit
        # vectors, clearing row p's lower bits makes it a unit vector too
        # (forward elimination guarantees row p has no bits above p).
        for pivot in sorted(basis):
            mask, combo = basis[pivot]
            residual = mask ^ (1 << pivot)
            while residual:
                bit = residual.bit_length() - 1
                combo ^= basis[bit][1]
                residual ^= 1 << bit
            basis[pivot] = (1 << pivot, combo)
        selection = np.zeros((self.k, len(indices)), dtype=np.uint8)
        for pivot in range(self.k):
            combo = basis[pivot][1]
            for row_pos in range(len(indices)):
                if combo & (1 << row_pos):
                    selection[pivot, row_pos] = 1
        return selection

    def _check_payloads(self, blocks: Mapping[int, bytes]) -> None:
        for index, payload in blocks.items():
            if len(payload) != self.shard_bytes:
                raise DecodingError(
                    f"block {index} is {len(payload)} bytes, "
                    f"expected {self.shard_bytes}"
                )

    def decode_batch(
        self, blocks_batch: Sequence[Mapping[int, bytes]]
    ) -> list[bytes | None]:
        """Decode a batch, one mask elimination + pass per index pattern."""
        results: list[bytes | None] = [None] * len(blocks_batch)
        grouped: dict[tuple[int, ...], list[int]] = {}
        for j, blocks in enumerate(blocks_batch):
            self._check_payloads(blocks)
            grouped.setdefault(tuple(sorted(blocks)), []).append(j)
        for order, members in grouped.items():
            selection = self._selection_matrix(order)
            if selection is None:
                continue
            payload = stack_group_payloads(
                blocks_batch, members, order, self.shard_bytes
            )
            cube = unstack_rows(
                gf_matmul(selection, payload), len(members), self.shard_bytes
            )
            for pos, j in enumerate(members):
                results[j] = cube[:, pos].tobytes()
        return results

    # ------------------------------------------------------------ collisions

    def collision_delta(self, indices: Iterable[int]) -> bytes | None:
        """Return a delta hidden from ``indices``, or ``None`` if they span.

        Works over GF(2): find a nonzero shard subset orthogonal to every
        block mask, then flip byte 0 of exactly those shards. Such a subset
        exists iff the masks do not span GF(2)^k — in particular whenever
        fewer than ``k`` distinct blocks are stored (Claim 1's premise).
        """
        basis: dict[int, int] = {}
        for index in set(indices):
            reduced = self.mask(index)
            while reduced:
                pivot = reduced.bit_length() - 1
                if pivot not in basis:
                    basis[pivot] = reduced
                    break
                reduced ^= basis[pivot]
        if len(basis) >= self.k:
            return None
        # Reduce to RREF ascending (see decode); rows keep only their pivot
        # bit plus free (non-pivot) bits afterwards.
        for pivot in sorted(basis):
            row = basis[pivot]
            residual = row ^ (1 << pivot)
            while residual:
                bit = residual.bit_length() - 1
                if bit in basis:
                    row ^= basis[bit]
                residual ^= 1 << bit
            basis[pivot] = row
        free_bit = next(bit for bit in range(self.k) if bit not in basis)
        # Kernel vector: set the free variable, solve each pivot variable.
        kernel = 1 << free_bit
        for pivot, row in basis.items():
            if row & (1 << free_bit):
                kernel |= 1 << pivot
        delta = bytearray(self.data_size_bytes)
        for shard_index in range(self.k):
            if kernel & (1 << shard_index):
                delta[shard_index * self.shard_bytes] = 1
        return bytes(delta)
