"""Abstract coding-scheme interface (Section 3.1 of the paper).

A coding scheme is a pair of functions ``E : V x N -> E`` (encode value ``v``
into block number ``i``) and ``D : 2^E -> V  u {None}`` (decode a set of
blocks, or fail). Values are byte strings of a fixed length ``D/8`` where
``D`` is the paper's data size in bits.

All schemes here are *symmetric* (Definition 3): the block size depends only
on the block number, never on the value — :meth:`CodingScheme.block_size_bits`
is a function of ``index`` alone.

Linear schemes additionally expose :meth:`CodingScheme.collision_delta`,
which constructively realises Claim 1 (the pigeonhole argument): given a set
of indices whose total block size is below ``D`` bits, it returns a nonzero
value-difference ``delta`` such that ``E(v, i) == E(v ^ delta, i)`` for every
``i`` in the set. Two values differing by ``delta`` are *I-colliding* in the
paper's terminology.

The implementable surface is the **batch pair**:
:meth:`CodingScheme.encode_batch` encodes many values into one index set and
:meth:`CodingScheme.decode_batch` decodes many block maps, in one call —
concrete codes implement exactly these two (as single
:func:`~repro.coding.gf256.gf_matmul` passes, so sweeps over many concurrent
writes pay one table gather per generator coefficient instead of one Python
call per block). The scalar forms — :meth:`CodingScheme.encode_block`,
:meth:`CodingScheme.encode_many`, :meth:`CodingScheme.decode` — are
compatibility shims delegating to the batch pair with batch size 1; schemes
may still override them where a cheaper direct path exists (for example the
systematic shard copy in Reed-Solomon). New schemes (LRC, regenerating
codes) therefore implement one pair, not three methods plus two loops.
Scheme implementations should route all GF work through
:func:`~repro.coding.gf256.gf_matmul` (the backend dispatch boundary) —
per-byte :func:`~repro.coding.gf256.gf_mul_bytes` scalar paths in schemes
are deprecated; the helper remains for tests and table construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import DecodingError, EncodingError, ParameterError


def stack_values(values: Sequence[bytes], k: int, shard_bytes: int) -> np.ndarray:
    """Stack ``m`` values into one ``(k, m * shard_bytes)`` ``uint8`` matrix.

    Column layout groups each value's shard bytes contiguously: columns
    ``[j * shard_bytes, (j + 1) * shard_bytes)`` hold value ``j``, row ``i``
    holds shard ``i``. Encoding is column-wise independent, so multiplying a
    generator matrix against this stack encodes the whole batch in one
    :func:`~repro.coding.gf256.gf_matmul` call; :func:`unstack_rows` slices
    the product back apart.
    """
    count = len(values)
    if count == 1:  # zero-copy: a lone value is already shard-major
        return np.frombuffer(values[0], dtype=np.uint8).reshape(k, shard_bytes)
    flat = np.frombuffer(b"".join(values), dtype=np.uint8)
    cube = flat.reshape(count, k, shard_bytes)
    return np.ascontiguousarray(cube.transpose(1, 0, 2)).reshape(
        k, count * shard_bytes
    )


def unstack_rows(product: np.ndarray, count: int, shard_bytes: int) -> np.ndarray:
    """Reshape a ``(rows, count * shard_bytes)`` product to ``(rows, count,
    shard_bytes)`` so ``result[r, j]`` is value ``j``'s block for row ``r``."""
    rows = product.shape[0]
    return product.reshape(rows, count, shard_bytes)


def stack_group_payloads(
    blocks_batch: Sequence[Mapping[int, bytes]],
    members: Sequence[int],
    indices: Sequence[int],
    shard_bytes: int,
) -> np.ndarray:
    """Stack one erasure-pattern group's payloads for a single solve pass.

    ``members`` are positions into ``blocks_batch`` that share the index
    pattern ``indices``. The result is ``(len(indices), len(members) *
    shard_bytes)``: row ``r`` holds block ``indices[r]`` of every member,
    columns blocked per member — the layout :func:`unstack_rows` undoes
    after multiplying by a decode matrix.
    """
    return np.stack(
        [
            np.frombuffer(blocks_batch[j][index], dtype=np.uint8)
            for index in indices
            for j in members
        ]
    ).reshape(len(indices), len(members) * shard_bytes)


class CodingScheme(ABC):
    """A symmetric coding scheme over fixed-size byte-string values."""

    #: Human-readable scheme name (used in benchmark tables).
    name: str = "abstract"

    def __init__(self, data_size_bytes: int) -> None:
        if data_size_bytes <= 0:
            raise ParameterError("data_size_bytes must be positive")
        self.data_size_bytes = data_size_bytes

    @property
    def data_size_bits(self) -> int:
        """The paper's ``D``: the number of bits in a value."""
        return self.data_size_bytes * 8

    # ------------------------------------------------------------------ API
    #
    # The abstract surface is the batch pair plus the two size/shape
    # queries; the scalar encode/decode forms below are derived.

    @abstractmethod
    def encode_batch(
        self, values: Sequence[bytes], indices: Iterable[int]
    ) -> list[dict[int, bytes]]:
        """Encode every value in ``values`` into every index in ``indices``.

        The batched form of the paper's encoder ``E : V x N -> E``
        (Section 3.1): entry ``j`` of the result is ``{i: E(values[j], i)
        for i in indices}`` — batching is an execution strategy, never a
        semantic change. Linear schemes implement it as a single stacked
        matrix multiplication so a batch of concurrent writes (a sweep's
        writer wave, a :class:`~repro.coding.oracles.BatchEncodePlan`)
        shares one vectorised encode pass.
        """

    @abstractmethod
    def decode_batch(
        self, blocks_batch: Sequence[Mapping[int, bytes]]
    ) -> list[bytes | None]:
        """Decode every block map in ``blocks_batch``.

        The batched form of the paper's decoder ``D : 2^E -> V u {bottom}``
        (Section 3.1): returns one value (or ``None``, the paper's bottom,
        when the blocks are insufficient) per entry, in order. Raises
        :class:`DecodingError` on malformed payloads. Vectorised schemes
        group entries by erasure pattern and run one matrix pass per
        distinct pattern, so a read storm pays one inverse multiplication
        per pattern instead of one per read.
        """

    @abstractmethod
    def block_size_bits(self, index: int) -> int:
        """Return ``size(index)`` — the bit length of any block ``index``."""

    @abstractmethod
    def min_blocks_to_decode(self) -> int:
        """Return the minimum number of distinct blocks that can decode."""

    # Scalar compatibility shims — the historical per-block API, derived
    # from the batch pair with batch size 1. Schemes override these only
    # when a strictly cheaper direct path exists.

    def encode_block(self, value: bytes, index: int) -> bytes:
        """Return ``E(value, index)`` as raw bytes (batch-of-one shim)."""
        return self.encode_batch([value], [index])[0][index]

    def encode_many(self, value: bytes, indices: Iterable[int]) -> dict[int, bytes]:
        """Encode ``value`` into every index in ``indices``
        (batch-of-one shim over :meth:`encode_batch`)."""
        return self.encode_batch([value], indices)[0]

    def decode(self, blocks: Mapping[int, bytes]) -> bytes | None:
        """Return the value reconstructed from ``{index: payload}``.

        Returns ``None`` when the blocks are insufficient (the paper's
        ``bottom``). Raises :class:`DecodingError` on malformed payloads.
        Batch-of-one shim over :meth:`decode_batch`.
        """
        return self.decode_batch([blocks])[0]

    def collision_delta(self, indices: Iterable[int]) -> bytes | None:
        """Return a nonzero delta with ``E(v, i) == E(v ^ delta, i)`` on ``indices``.

        Returns ``None`` when no collision exists (for example when the
        indices carry ``>= D`` bits, or the scheme does not support the
        computation). Subclasses for linear codes override this.
        """
        return None

    # ------------------------------------------------------------- helpers

    def check_value(self, value: bytes) -> None:
        """Validate a value's length; raise :class:`EncodingError` if bad."""
        if len(value) != self.data_size_bytes:
            raise EncodingError(
                f"{self.name}: value is {len(value)} bytes, "
                f"expected {self.data_size_bytes}"
            )

    def total_bits(self, indices: Iterable[int]) -> int:
        """Return the summed block size of a set of *distinct* indices."""
        return sum(self.block_size_bits(index) for index in set(indices))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} D={self.data_size_bits} bits>"


class MDSCodingScheme(CodingScheme):
    """Base class for k-of-n maximum-distance-separable schemes.

    The value is split into ``k`` equal shards of ``data_size_bytes / k``
    bytes; every block has the shard size; any ``k`` distinct blocks decode.
    """

    def __init__(self, k: int, n: int, data_size_bytes: int) -> None:
        super().__init__(data_size_bytes)
        if k < 1:
            raise ParameterError("k must be >= 1")
        if n < k:
            raise ParameterError("n must be >= k")
        if data_size_bytes % k != 0:
            raise ParameterError(
                f"data_size_bytes ({data_size_bytes}) must be divisible by k ({k})"
            )
        self.k = k
        self.n = n
        self.shard_bytes = data_size_bytes // k

    def min_blocks_to_decode(self) -> int:
        return self.k

    def block_size_bits(self, index: int) -> int:
        self.check_index(index)
        return self.shard_bytes * 8

    def check_index(self, index: int) -> None:
        """Validate a block number against ``n``."""
        if not 0 <= index < self.n:
            raise ParameterError(
                f"{self.name}: block index {index} outside [0, {self.n})"
            )

    def shards(self, value: bytes) -> list[bytes]:
        """Split ``value`` into ``k`` equal shards."""
        self.check_value(value)
        size = self.shard_bytes
        return [value[i * size: (i + 1) * size] for i in range(self.k)]

    def shard_matrix(self, value: bytes) -> np.ndarray:
        """Return ``value`` as a ``(k, shard_bytes)`` ``uint8`` matrix."""
        self.check_value(value)
        return np.frombuffer(value, dtype=np.uint8).reshape(
            self.k, self.shard_bytes
        )

    def shard_stack(self, values: Sequence[bytes]) -> np.ndarray:
        """Return a batch of values as one ``(k, m * shard_bytes)`` matrix
        (see :func:`stack_values` for the column layout)."""
        for value in values:
            self.check_value(value)
        return stack_values(values, self.k, self.shard_bytes)

    def check_blocks(self, blocks: Mapping[int, bytes]) -> None:
        """Validate decode input payload sizes and index ranges."""
        for index, payload in blocks.items():
            self.check_index(index)
            if len(payload) != self.shard_bytes:
                raise DecodingError(
                    f"{self.name}: block {index} is {len(payload)} bytes, "
                    f"expected {self.shard_bytes}"
                )
