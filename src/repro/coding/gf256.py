"""Arithmetic over the finite field GF(2^8).

The field is realised as polynomials over GF(2) modulo the AES polynomial
``x^8 + x^4 + x^3 + x + 1`` (0x11B). Multiplication and division go through
discrete log/antilog tables built once at import time from the generator
``0x03``, which is primitive for this modulus.

Two interfaces are provided:

* scalar helpers (:func:`gf_mul`, :func:`gf_div`, :func:`gf_inv`,
  :func:`gf_pow`) operating on Python ints in ``range(256)``;
* vectorised helpers (:func:`gf_mul_bytes`, :func:`gf_addmul_bytes`)
  operating on ``numpy`` ``uint8`` arrays, used by the Reed-Solomon hot path.

Addition in GF(2^8) is XOR; no helper is needed beyond ``^`` /
``np.bitwise_xor``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

#: The field modulus: x^8 + x^4 + x^3 + x + 1.
MODULUS = 0x11B

#: Generator used to build the log/antilog tables (primitive for 0x11B).
GENERATOR = 0x03

#: Field order.
ORDER = 256


def _mul_no_table(a: int, b: int) -> int:
    """Russian-peasant multiplication in GF(2^8), used only to seed tables."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= MODULUS
        b >>= 1
    return result


def _build_tables() -> tuple[list[int], list[int]]:
    """Build antilog (exp) and log tables for the field.

    ``exp[i] = GENERATOR ** i`` for ``i`` in ``range(255)``, extended to 510
    entries so sums/differences of logs never need an explicit ``% 255``.
    ``log[exp[i]] = i``; ``log[0]`` is a sentinel (callers guard zero).
    """
    exp = [0] * 510
    log = [0] * 256
    value = 1
    for exponent in range(255):
        exp[exponent] = value
        log[value] = exponent
        value = _mul_no_table(value, GENERATOR)
    if value != 1:
        raise AssertionError("generator 0x03 must have order 255")
    for exponent in range(255, 510):
        exp[exponent] = exp[exponent - 255]
    return exp, log


_EXP, _LOG = _build_tables()

#: Numpy copies of the tables for the vectorised helpers.
_EXP_NP = np.array(_EXP, dtype=np.uint8)
_LOG_NP = np.array(_LOG, dtype=np.int32)


def gf_add(a: int, b: int) -> int:
    """Return ``a + b`` in GF(2^8) (which is XOR)."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Return ``a * b`` in GF(2^8)."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_pow(a: int, exponent: int) -> int:
    """Return ``a ** exponent`` in GF(2^8) for ``exponent >= 0``."""
    if exponent < 0:
        raise ParameterError("negative exponent; use gf_inv then gf_pow")
    if exponent == 0:
        return 1
    if a == 0:
        return 0
    return _EXP[(_LOG[a] * exponent) % 255]


def gf_inv(a: int) -> int:
    """Return the multiplicative inverse of ``a`` in GF(2^8).

    Raises :class:`ZeroDivisionError` for ``a == 0``.
    """
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(2^8)")
    return _EXP[255 - _LOG[a]]


def gf_div(a: int, b: int) -> int:
    """Return ``a / b`` in GF(2^8). Raises ``ZeroDivisionError`` if b == 0."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return _EXP[_LOG[a] - _LOG[b] + 255]


def gf_mul_bytes(scalar: int, data: np.ndarray) -> np.ndarray:
    """Return ``scalar * data`` element-wise over GF(2^8).

    ``data`` must be a ``uint8`` array; a new array is returned.
    """
    if scalar == 0:
        return np.zeros_like(data)
    if scalar == 1:
        return data.copy()
    log_scalar = int(_LOG_NP[scalar])
    nonzero = data != 0
    result = np.zeros_like(data)
    logs = _LOG_NP[data[nonzero]] + log_scalar
    result[nonzero] = _EXP_NP[logs]
    return result


def gf_addmul_bytes(accumulator: np.ndarray, scalar: int, data: np.ndarray) -> None:
    """In-place ``accumulator ^= scalar * data`` over GF(2^8)."""
    if scalar == 0:
        return
    if scalar == 1:
        np.bitwise_xor(accumulator, data, out=accumulator)
        return
    np.bitwise_xor(accumulator, gf_mul_bytes(scalar, data), out=accumulator)


def gf_poly_eval(coefficients: list[int], x: int) -> int:
    """Evaluate a polynomial (lowest-degree coefficient first) at ``x``.

    Horner's rule over GF(2^8).
    """
    result = 0
    for coefficient in reversed(coefficients):
        result = gf_mul(result, x) ^ coefficient
    return result
